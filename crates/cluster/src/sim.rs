//! The fluid-flow cluster simulator.
//!
//! Time advances in fixed quanta (default 1 ms). Every quantum the simulator
//! computes a max–min fair allocation of each machine's CPU among runnable
//! threads and of NIC bandwidth among active flows, advances all work and
//! transfers by the quantum, and processes state transitions: operations
//! completing, queues filling and draining (with hysteresis, so producers
//! stall in bursts as real bounded queues make them), stop-the-world GC
//! pauses, and barrier rendezvous.
//!
//! The outputs are exactly what a real SUT gives Grade10: a structured
//! execution log (phase and blocking events) and per-resource utilization
//! series sampled by the monitor — plus the fine-grained ground truth that a
//! real system could not easily provide, which powers the Table II accuracy
//! experiments.

use crate::alloc::{fair_share_single, max_min_fair, Consumer};
use crate::config::{ClusterConfig, MachineId};
use crate::logging::{LogEvent, LogRecord, PhasePath};
use crate::monitor::{Monitor, ResourceSeries, ResourceSpec};
use crate::ops::{Op, ThreadProgram};
use crate::time::{SimDuration, SimTime};

/// Blocking-resource names the simulator emits.
pub mod blocking_resources {
    /// Stop-the-world garbage collection.
    pub const GC: &str = "gc";
    /// Outbound message queue full.
    pub const MSGQ: &str = "msgq";
    /// Waiting at a synchronization barrier.
    pub const BARRIER: &str = "barrier";
    /// Waiting for the outbound queue to drain.
    pub const FLUSH: &str = "flush";
}

/// Fraction of the queue bound below which stalled producers resume. The
/// gap between full (1.0) and this watermark is what produces the bursty
/// stall/run pattern of bounded producer queues (Fig. 3, region ③).
const QUEUE_RESUME_FRACTION: f64 = 0.5;

const EPS: f64 = 1e-9;

#[derive(Clone, Debug, PartialEq)]
enum Status {
    Ready,
    Computing,
    Sending,
    DiskIo,
    WaitFlush,
    WaitBarrier(u32),
    Sleeping(SimTime),
    Done,
}

struct ThreadState {
    machine: usize,
    ops: Vec<Op>,
    pc: usize,
    status: Status,
    // Compute-op progress.
    remaining_work: f64,
    max_cores: f64,
    alloc_per_work: f64,
    /// Message bytes still to produce, per destination, per unit work.
    msg_rate: Vec<(usize, f64)>,
    produces_remote: bool,
    queue_stalled: bool,
    // Send-op progress.
    send_dst: usize,
    send_remaining: f64,
    // DiskIo-op progress.
    disk_remaining: f64,
    /// Open blocking record, if any.
    blocked_on: Option<&'static str>,
}

struct MachineState {
    /// Outbound queue backlog per destination machine, bytes.
    backlog: Vec<f64>,
    heap_used: f64,
    gc_until: Option<SimTime>,
    gc_pauses: u64,
    gc_paused_threads: Vec<usize>,
}

impl MachineState {
    /// Total queued bytes. Computed from the per-destination backlogs on
    /// demand — an incrementally maintained total accumulates float drift
    /// and can strand FlushWait above the emptiness epsilon forever.
    fn backlog_total(&self) -> f64 {
        self.backlog.iter().sum()
    }
}

#[derive(Default)]
struct BarrierState {
    arrived: u32,
    waiting: Vec<usize>,
}

/// One completed GC pause (for engine statistics and tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GcPause {
    /// The machine the pause occurred on.
    pub machine: MachineId,
    /// When the pause began.
    pub start: SimTime,
    /// How long the collector ran.
    pub duration: SimDuration,
}

/// Aggregate statistics of a simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Every completed stop-the-world GC pause.
    pub gc_pauses: Vec<GcPause>,
    /// Total thread-time spent stalled on full message queues.
    pub queue_stall_time: SimDuration,
    /// Total thread-time spent waiting at barriers.
    pub barrier_wait_time: SimDuration,
    /// Number of quanta simulated.
    pub quanta: u64,
}

/// Everything a simulation run produces.
pub struct SimOutput {
    /// Structured execution log (phase and blocking events), time-ordered.
    pub logs: Vec<LogRecord>,
    /// Ground-truth utilization series, one per resource instance.
    pub series: Vec<ResourceSeries>,
    /// Resource instances and capacities of the cluster.
    pub resources: Vec<ResourceSpec>,
    /// Instant the last thread finished.
    pub end_time: SimTime,
    /// Aggregate statistics of the run.
    pub stats: SimStats,
}

/// Builds and runs one simulation.
pub struct Simulation {
    config: ClusterConfig,
    programs: Vec<ThreadProgram>,
}

impl Simulation {
    /// Creates a simulation over `config`. Panics on invalid configs.
    pub fn new(config: ClusterConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid cluster config: {e}");
        }
        Simulation {
            config,
            programs: Vec::new(),
        }
    }

    /// Adds a thread program; returns its cluster-wide thread index.
    pub fn add_thread(&mut self, program: ThreadProgram) -> usize {
        assert!(
            (program.machine as usize) < self.config.machines.len(),
            "thread bound to unknown machine {}",
            program.machine
        );
        self.programs.push(program);
        self.programs.len() - 1
    }

    /// Runs to completion and returns the outputs.
    pub fn run(self) -> SimOutput {
        Runner::new(self.config, self.programs).run()
    }
}

struct Runner {
    config: ClusterConfig,
    threads: Vec<ThreadState>,
    machines: Vec<MachineState>,
    barriers: std::collections::BTreeMap<u32, BarrierState>,
    /// Machine-local thread index per global thread (for log records).
    local_idx: Vec<u16>,
    logs: Vec<LogRecord>,
    monitor: Monitor,
    stats: SimStats,
    now: SimTime,
}

impl Runner {
    fn new(config: ClusterConfig, programs: Vec<ThreadProgram>) -> Self {
        let nm = config.machines.len();
        let mut per_machine_count = vec![0u16; nm];
        let mut local_idx = Vec::with_capacity(programs.len());
        let threads: Vec<ThreadState> = programs
            .into_iter()
            .map(|p| {
                let m = p.machine as usize;
                local_idx.push(per_machine_count[m]);
                per_machine_count[m] += 1;
                ThreadState {
                    machine: m,
                    ops: p.ops,
                    pc: 0,
                    status: Status::Ready,
                    remaining_work: 0.0,
                    max_cores: 1.0,
                    alloc_per_work: 0.0,
                    msg_rate: Vec::new(),
                    produces_remote: false,
                    queue_stalled: false,
                    send_dst: 0,
                    send_remaining: 0.0,
                    disk_remaining: 0.0,
                    blocked_on: None,
                }
            })
            .collect();
        let machines = (0..nm)
            .map(|_| MachineState {
                backlog: vec![0.0; nm],
                heap_used: 0.0,
                gc_until: None,
                gc_pauses: 0,
                gc_paused_threads: Vec::new(),
            })
            .collect();
        let monitor = Monitor::new(&config);
        Runner {
            config,
            threads,
            machines,
            barriers: std::collections::BTreeMap::new(),
            local_idx,
            logs: Vec::new(),
            monitor,
            stats: SimStats::default(),
            now: SimTime::ZERO,
        }
    }

    fn log(&mut self, tid: usize, event: LogEvent) {
        self.logs.push(LogRecord {
            time: self.now,
            machine: self.threads[tid].machine as u16,
            thread: self.local_idx[tid],
            event,
        });
    }

    fn set_blocked(&mut self, tid: usize, resource: Option<&'static str>) {
        if self.threads[tid].blocked_on == resource {
            return;
        }
        if let Some(old) = self.threads[tid].blocked_on {
            self.log(
                tid,
                LogEvent::BlockEnd {
                    resource: old.to_string(),
                },
            );
        }
        if let Some(new) = resource {
            self.log(
                tid,
                LogEvent::BlockStart {
                    resource: new.to_string(),
                },
            );
        }
        self.threads[tid].blocked_on = resource;
    }

    /// Advances thread programs through all zero-duration transitions until
    /// a fixpoint: phase logs, barrier releases, flush completions, and the
    /// start of durative ops.
    fn advance_programs(&mut self) {
        loop {
            let mut progressed = false;
            for tid in 0..self.threads.len() {
                // Re-check waiting states that may now be satisfied.
                match self.threads[tid].status {
                    Status::WaitFlush
                        if self.machines[self.threads[tid].machine].backlog_total() <= EPS => {
                            self.set_blocked(tid, None);
                            self.threads[tid].status = Status::Ready;
                            self.threads[tid].pc += 1;
                            progressed = true;
                        }
                    Status::Sleeping(until)
                        if self.now >= until => {
                            self.threads[tid].status = Status::Ready;
                            self.threads[tid].pc += 1;
                            progressed = true;
                        }
                    _ => {}
                }
                if self.threads[tid].status != Status::Ready {
                    continue;
                }
                progressed |= self.start_next_op(tid);
            }
            // Release barriers whose quorum arrived.
            let ready_ids: Vec<u32> = self
                .barriers
                .iter()
                .filter_map(|(&id, st)| {
                    let participants = match self.find_barrier_participants(id) {
                        Some(p) => p,
                        None => return None,
                    };
                    (st.arrived >= participants).then_some(id)
                })
                .collect();
            for id in ready_ids {
                let Some(st) = self.barriers.remove(&id) else {
                    unreachable!("barrier {id:?} was collected from this map above");
                };
                for tid in st.waiting {
                    self.set_blocked(tid, None);
                    self.threads[tid].status = Status::Ready;
                    self.threads[tid].pc += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Looks up the participant count of barrier `id` from any thread
    /// currently waiting on it (all arrivals must agree; checked).
    fn find_barrier_participants(&self, id: u32) -> Option<u32> {
        let st = self.barriers.get(&id)?;
        let tid = *st.waiting.first()?;
        match &self.threads[tid].ops[self.threads[tid].pc] {
            Op::Barrier { participants, .. } => Some(*participants),
            _ => None,
        }
    }

    /// Starts the op at the current pc of `tid`. Returns true if the thread
    /// made progress (consumed a zero-cost op or entered a durative state).
    fn start_next_op(&mut self, tid: usize) -> bool {
        let pc = self.threads[tid].pc;
        if pc >= self.threads[tid].ops.len() {
            if self.threads[tid].status != Status::Done {
                self.set_blocked(tid, None);
                self.threads[tid].status = Status::Done;
                return true;
            }
            return false;
        }
        let op = self.threads[tid].ops[pc].clone();
        match op {
            Op::PhaseStart(path) => {
                self.log(tid, LogEvent::PhaseStart { path });
                self.threads[tid].pc += 1;
                true
            }
            Op::PhaseEnd(path) => {
                self.log(tid, LogEvent::PhaseEnd { path });
                self.threads[tid].pc += 1;
                true
            }
            Op::Compute {
                work,
                max_cores,
                alloc_per_work,
                msgs,
            } => {
                if work <= EPS {
                    self.threads[tid].pc += 1;
                    return true;
                }
                let machine = self.threads[tid].machine;
                let mut msg_rate = Vec::new();
                let mut produces_remote = false;
                for (dst, bytes) in msgs.per_dst {
                    if bytes > 0.0 && dst as usize != machine {
                        msg_rate.push((dst as usize, bytes / work));
                        produces_remote = true;
                    }
                }
                let t = &mut self.threads[tid];
                t.remaining_work = work;
                t.max_cores = max_cores.max(EPS);
                t.alloc_per_work = alloc_per_work;
                t.msg_rate = msg_rate;
                t.produces_remote = produces_remote;
                t.queue_stalled = false;
                t.status = Status::Computing;
                true
            }
            Op::Send { dst, bytes } => {
                if bytes <= EPS || dst as usize == self.threads[tid].machine {
                    self.threads[tid].pc += 1;
                    return true;
                }
                let t = &mut self.threads[tid];
                t.send_dst = dst as usize;
                t.send_remaining = bytes;
                t.status = Status::Sending;
                true
            }
            Op::DiskIo { bytes } => {
                if bytes <= EPS {
                    self.threads[tid].pc += 1;
                    return true;
                }
                let t = &mut self.threads[tid];
                t.disk_remaining = bytes;
                t.status = Status::DiskIo;
                true
            }
            Op::FlushWait => {
                if self.machines[self.threads[tid].machine].backlog_total() <= EPS {
                    self.threads[tid].pc += 1;
                    true
                } else {
                    self.threads[tid].status = Status::WaitFlush;
                    self.set_blocked(tid, Some(blocking_resources::FLUSH));
                    true
                }
            }
            Op::Barrier { id, .. } => {
                let st = self.barriers.entry(id).or_default();
                st.arrived += 1;
                st.waiting.push(tid);
                self.threads[tid].status = Status::WaitBarrier(id);
                self.set_blocked(tid, Some(blocking_resources::BARRIER));
                true
            }
            Op::Sleep { dur } => {
                if dur.is_zero() {
                    self.threads[tid].pc += 1;
                    true
                } else {
                    self.threads[tid].status = Status::Sleeping(self.now + dur);
                    true
                }
            }
        }
    }

    /// Starts and ends GC pauses at quantum boundaries.
    fn gc_transitions(&mut self) {
        for m in 0..self.machines.len() {
            // End a pause that has run its course.
            if let Some(until) = self.machines[m].gc_until {
                if self.now >= until {
                    let Some(gc) = self.config.machines[m].gc.as_ref() else {
                        unreachable!("machine {m} has gc_until set, so it has a GC config");
                    };
                    self.machines[m].heap_used *= gc.live_fraction;
                    self.machines[m].gc_until = None;
                    let paused = std::mem::take(&mut self.machines[m].gc_paused_threads);
                    for tid in paused {
                        self.set_blocked(tid, None);
                    }
                }
            }
            // Start a pause if the heap crossed the trigger.
            if self.machines[m].gc_until.is_none() {
                if let Some(gc) = &self.config.machines[m].gc {
                    if self.machines[m].heap_used >= gc.trigger_fraction * gc.heap_bytes {
                        let pause_secs =
                            gc.min_pause_secs + gc.pause_per_byte * self.machines[m].heap_used;
                        let dur = SimDuration::from_secs_f64(pause_secs)
                            .max(self.config.quantum);
                        self.machines[m].gc_until = Some(self.now + dur);
                        self.machines[m].gc_pauses += 1;
                        self.stats.gc_pauses.push(GcPause {
                            machine: m as MachineId,
                            start: self.now,
                            duration: dur,
                        });
                        let affected: Vec<usize> = (0..self.threads.len())
                            .filter(|&tid| {
                                self.threads[tid].machine == m
                                    && self.threads[tid].status == Status::Computing
                            })
                            .collect();
                        for &tid in &affected {
                            self.set_blocked(tid, Some(blocking_resources::GC));
                        }
                        self.machines[m].gc_paused_threads = affected;
                    }
                }
            }
        }
    }

    /// Updates queue-stall flags with hysteresis and maintains their
    /// blocking records.
    fn queue_stall_transitions(&mut self) {
        for tid in 0..self.threads.len() {
            if self.threads[tid].status != Status::Computing
                || !self.threads[tid].produces_remote
            {
                continue;
            }
            let m = self.threads[tid].machine;
            // GC blocking takes precedence over queue accounting.
            if self.machines[m].gc_until.is_some() {
                continue;
            }
            let cap = match self.config.machines[m].out_queue_bytes {
                Some(c) => c,
                None => continue,
            };
            let total = self.machines[m].backlog_total();
            let stalled = self.threads[tid].queue_stalled;
            let new_stalled = if stalled {
                total > cap * QUEUE_RESUME_FRACTION
            } else {
                total >= cap
            };
            self.threads[tid].queue_stalled = new_stalled;
            self.set_blocked(
                tid,
                new_stalled.then_some(blocking_resources::MSGQ),
            );
        }
    }

    fn run(mut self) -> SimOutput {
        let dt = self.config.quantum;
        let dt_secs = dt.as_secs_f64();
        let max_quanta = self.config.max_sim_time / dt;

        self.advance_programs();
        let mut end_time = self.now;

        for _ in 0..max_quanta {
            if self
                .threads
                .iter()
                .all(|t| t.status == Status::Done)
            {
                let drained = self
                    .machines
                    .iter()
                    .all(|m| m.backlog_total() <= EPS);
                if drained {
                    break;
                }
            }
            self.stats.quanta += 1;

            self.gc_transitions();
            self.queue_stall_transitions();

            // ---- CPU allocation (per machine) ----
            let nm = self.machines.len();
            let mut cpu_used = vec![0.0f64; nm];
            let mut machine_threads: Vec<Vec<usize>> = vec![Vec::new(); nm];
            for tid in 0..self.threads.len() {
                let t = &self.threads[tid];
                if t.status == Status::Computing
                    && !t.queue_stalled
                    && self.machines[t.machine].gc_until.is_none()
                {
                    machine_threads[t.machine].push(tid);
                }
            }
            let mut shares: Vec<f64> = vec![0.0; self.threads.len()];
            for m in 0..nm {
                if self.machines[m].gc_until.is_some() {
                    // Stop-the-world collection burns the whole machine.
                    cpu_used[m] = self.config.machines[m].cores;
                    continue;
                }
                let tids = &machine_threads[m];
                if tids.is_empty() {
                    continue;
                }
                let demands: Vec<f64> = tids
                    .iter()
                    .map(|&tid| {
                        let t = &self.threads[tid];
                        t.max_cores.min(t.remaining_work / dt_secs)
                    })
                    .collect();
                let alloc = fair_share_single(&demands, self.config.machines[m].cores);
                for (i, &tid) in tids.iter().enumerate() {
                    shares[tid] = alloc[i];
                    cpu_used[m] += alloc[i];
                }
            }

            // ---- Network allocation ----
            // Links: out link of machine m = index m; in link = nm + m.
            let mut consumers: Vec<Consumer> = Vec::new();
            // (kind, machine-or-thread): queue backlogs first, then sends.
            enum FlowRef {
                Queue { src: usize, dst: usize },
                Send { tid: usize },
            }
            let mut flow_refs: Vec<FlowRef> = Vec::new();
            for src in 0..nm {
                for dst in 0..nm {
                    let pending = self.machines[src].backlog[dst];
                    if pending > EPS {
                        consumers.push(Consumer {
                            demand: pending / dt_secs,
                            links: vec![src, nm + dst],
                        });
                        flow_refs.push(FlowRef::Queue { src, dst });
                    }
                }
            }
            for tid in 0..self.threads.len() {
                let t = &self.threads[tid];
                if t.status == Status::Sending && t.send_remaining > EPS {
                    consumers.push(Consumer {
                        demand: t.send_remaining / dt_secs,
                        links: vec![t.machine, nm + t.send_dst],
                    });
                    flow_refs.push(FlowRef::Send { tid });
                }
            }
            let mut capacities = Vec::with_capacity(2 * nm);
            for m in 0..nm {
                capacities.push(self.config.machines[m].net_out_bps);
            }
            for m in 0..nm {
                capacities.push(self.config.machines[m].net_in_bps);
            }
            let rates = max_min_fair(&consumers, &capacities);

            // ---- Advance by one quantum ----
            let mut net_out_used = vec![0.0f64; nm];
            let mut net_in_used = vec![0.0f64; nm];
            for (i, fr) in flow_refs.iter().enumerate() {
                let moved = rates[i] * dt_secs;
                match *fr {
                    FlowRef::Queue { src, dst } => {
                        let b = &mut self.machines[src].backlog[dst];
                        let moved = moved.min(*b);
                        *b -= moved;
                        // Snap near-empty backlogs to exactly zero so
                        // FlushWait terminates despite float rounding.
                        if *b < 1e-6 {
                            *b = 0.0;
                        }
                        net_out_used[src] += moved / dt_secs;
                        net_in_used[dst] += moved / dt_secs;
                    }
                    FlowRef::Send { tid } => {
                        let (src, dst, rem) = {
                            let t = &self.threads[tid];
                            (t.machine, t.send_dst, t.send_remaining)
                        };
                        let moved = moved.min(rem);
                        self.threads[tid].send_remaining -= moved;
                        net_out_used[src] += moved / dt_secs;
                        net_in_used[dst] += moved / dt_secs;
                    }
                }
            }

            // ---- Disk allocation (per machine) ----
            let mut disk_used = vec![0.0f64; nm];
            {
                let mut disk_threads: Vec<Vec<usize>> = vec![Vec::new(); nm];
                for tid in 0..self.threads.len() {
                    if self.threads[tid].status == Status::DiskIo {
                        disk_threads[self.threads[tid].machine].push(tid);
                    }
                }
                for m in 0..nm {
                    if disk_threads[m].is_empty() {
                        continue;
                    }
                    let demands: Vec<f64> = disk_threads[m]
                        .iter()
                        .map(|&tid| self.threads[tid].disk_remaining / dt_secs)
                        .collect();
                    let alloc =
                        fair_share_single(&demands, self.config.machines[m].disk_bps);
                    for (i, &tid) in disk_threads[m].iter().enumerate() {
                        let moved = (alloc[i] * dt_secs).min(self.threads[tid].disk_remaining);
                        self.threads[tid].disk_remaining -= moved;
                        disk_used[m] += moved / dt_secs;
                    }
                }
            }

            for tid in 0..self.threads.len() {
                let share = shares[tid];
                match self.threads[tid].status {
                    Status::Computing => {
                        if self.threads[tid].queue_stalled {
                            self.stats.queue_stall_time += dt;
                            continue;
                        }
                        if self.machines[self.threads[tid].machine].gc_until.is_some() {
                            continue;
                        }
                        let done = (share * dt_secs).min(self.threads[tid].remaining_work);
                        self.threads[tid].remaining_work -= done;
                        let m = self.threads[tid].machine;
                        self.machines[m].heap_used +=
                            self.threads[tid].alloc_per_work * done;
                        let msg_rate = std::mem::take(&mut self.threads[tid].msg_rate);
                        for &(dst, per_work) in &msg_rate {
                            let bytes = per_work * done;
                            self.machines[m].backlog[dst] += bytes;
                        }
                        self.threads[tid].msg_rate = msg_rate;
                        if self.threads[tid].remaining_work <= EPS {
                            self.threads[tid].status = Status::Ready;
                            self.threads[tid].pc += 1;
                        }
                    }
                    Status::Sending
                        if self.threads[tid].send_remaining <= EPS => {
                            self.threads[tid].status = Status::Ready;
                            self.threads[tid].pc += 1;
                        }
                    Status::DiskIo
                        if self.threads[tid].disk_remaining <= EPS => {
                            self.threads[tid].status = Status::Ready;
                            self.threads[tid].pc += 1;
                        }
                    Status::WaitBarrier(_) => {
                        self.stats.barrier_wait_time += dt;
                    }
                    _ => {}
                }
            }

            // ---- Monitoring ----
            let mut runnable = vec![0.0f64; nm];
            for t in &self.threads {
                // Threads that want CPU this quantum: computing (even while
                // paused by GC — they would run if they could), but not
                // stalled on a full queue, which is a downstream wait.
                if t.status == Status::Computing && !t.queue_stalled {
                    runnable[t.machine] += 1.0;
                }
            }
            self.monitor.record_quantum(
                &cpu_used,
                &net_out_used,
                &net_in_used,
                &disk_used,
                &runnable,
                dt,
            );

            self.now += dt;
            self.advance_programs();
            end_time = self.now;
        }

        let unfinished: Vec<usize> = (0..self.threads.len())
            .filter(|&t| self.threads[t].status != Status::Done)
            .collect();
        assert!(
            unfinished.is_empty(),
            "simulation hit max_sim_time with unfinished threads {unfinished:?} \
             (statuses: {:?})",
            unfinished
                .iter()
                .map(|&t| self.threads[t].status.clone())
                .collect::<Vec<_>>()
        );

        // Close any blocking records left open (defensive; normally none).
        for tid in 0..self.threads.len() {
            self.set_blocked(tid, None);
        }

        let (series, resources) = self.monitor.finish();
        SimOutput {
            logs: self.logs,
            series,
            resources,
            end_time,
            stats: self.stats,
        }
    }
}

impl SimOutput {
    /// Convenience: all phase start/end pairs as `(path, start, end)`,
    /// matched per (machine, thread) in log order.
    pub fn phase_intervals(&self) -> Vec<(PhasePath, SimTime, SimTime)> {
        let mut open: std::collections::HashMap<(u16, u16, String), Vec<(PhasePath, SimTime)>> =
            std::collections::HashMap::new();
        let mut out = Vec::new();
        for rec in &self.logs {
            match &rec.event {
                LogEvent::PhaseStart { path } => {
                    open.entry((rec.machine, rec.thread, path.to_string()))
                        .or_default()
                        .push((path.clone(), rec.time));
                }
                LogEvent::PhaseEnd { path } => {
                    if let Some(stack) =
                        open.get_mut(&(rec.machine, rec.thread, path.to_string()))
                    {
                        if let Some((p, start)) = stack.pop() {
                            out.push((p, start, rec.time));
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }
}

