//! Thread programs: the operations a simulated engine thread executes.
//!
//! Engines compile a workload into one [`ThreadProgram`] per simulated thread
//! (compute threads, communication threads, loaders). The simulator executes
//! programs under closed-loop resource dynamics: CPU is fair-shared, message
//! production stalls on full queues, GC pauses everything on a machine, and
//! barriers rendezvous across machines — so the *durations* of the phases an
//! engine declares emerge from contention rather than being scripted.

use crate::config::MachineId;
use crate::logging::PhasePath;
use crate::time::SimDuration;

/// Message bytes produced by a compute op, split by destination machine.
#[derive(Clone, Debug, Default)]
pub struct MsgOutput {
    /// `(destination, bytes)` pairs; the destination may equal the sender
    /// (local messages never touch the network and bypass the queue).
    pub per_dst: Vec<(MachineId, f64)>,
}

impl MsgOutput {
    /// No messages.
    pub fn none() -> Self {
        MsgOutput::default()
    }

    /// Total remote bytes (excluding self-destined traffic).
    pub fn remote_bytes(&self, self_machine: MachineId) -> f64 {
        self.per_dst
            .iter()
            .filter(|(d, _)| *d != self_machine)
            .map(|(_, b)| *b)
            .sum()
    }
}

/// One operation in a thread program.
#[derive(Clone, Debug)]
pub enum Op {
    /// Emit a phase-start log record.
    PhaseStart(PhasePath),
    /// Emit a phase-end log record.
    PhaseEnd(PhasePath),
    /// Burn CPU. Messages are produced into the machine's outbound queue
    /// proportionally to work progress; heap bytes are allocated likewise.
    Compute {
        /// Core-seconds of work.
        work: f64,
        /// Maximum cores this op can use concurrently (1.0 for a worker
        /// thread, >1 for phases modeled as a single multi-core op).
        max_cores: f64,
        /// Heap bytes allocated per core-second of work (drives GC).
        alloc_per_work: f64,
        /// Messages produced over the lifetime of this op.
        msgs: MsgOutput,
    },
    /// Synchronously transfer bytes to another machine (bypasses the
    /// message queue; the thread resumes when the transfer completes).
    /// Synchronously transfer bytes to another machine (bypasses the queue).
    Send {
        /// Destination machine.
        dst: MachineId,
        /// Bytes to transfer.
        bytes: f64,
    },
    /// Transfer bytes to or from local storage; the thread resumes when
    /// the transfer completes. Reads and writes share the disk bandwidth.
    DiskIo {
        /// Bytes to transfer.
        bytes: f64,
    },
    /// Wait until this machine's outbound message queue is fully drained.
    FlushWait,
    /// Wait until `participants` threads (cluster-wide) have arrived at
    /// barrier `id`. Each barrier id is released once; engines use fresh ids
    /// per superstep.
    /// Wait until `participants` threads have arrived at barrier `id`.
    Barrier {
        /// Barrier identifier; each id is released once.
        id: u32,
        /// Threads that must arrive before anyone proceeds.
        participants: u32,
    },
    /// Idle for a fixed duration (models I/O waits and think time).
    /// Idle for a fixed duration.
    Sleep {
        /// How long to idle.
        dur: SimDuration,
    },
}

impl Op {
    /// Plain CPU work with no messages or allocation.
    pub fn compute(work: f64) -> Op {
        Op::Compute {
            work,
            max_cores: 1.0,
            alloc_per_work: 0.0,
            msgs: MsgOutput::none(),
        }
    }
}

/// A thread's whole program, bound to a machine.
#[derive(Clone, Debug)]
pub struct ThreadProgram {
    /// Machine the thread runs on.
    pub machine: MachineId,
    /// Operations, executed in order.
    pub ops: Vec<Op>,
}

impl ThreadProgram {
    /// Creates an empty program on `machine`.
    pub fn new(machine: MachineId) -> Self {
        ThreadProgram {
            machine,
            ops: Vec::new(),
        }
    }

    /// Appends an op (builder style).
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_output_remote_bytes_excludes_self() {
        let m = MsgOutput {
            per_dst: vec![(0, 100.0), (1, 50.0), (2, 25.0)],
        };
        assert_eq!(m.remote_bytes(0), 75.0);
        assert_eq!(m.remote_bytes(3), 175.0);
        assert_eq!(MsgOutput::none().remote_bytes(0), 0.0);
    }

    #[test]
    fn program_builder() {
        let mut p = ThreadProgram::new(2);
        p.push(Op::compute(1.0)).push(Op::FlushWait);
        assert_eq!(p.machine, 2);
        assert_eq!(p.ops.len(), 2);
    }
}
