//! Simulated cluster infrastructure for the Grade10 reproduction.
//!
//! The Grade10 paper characterizes graph-processing frameworks running on a
//! real cluster. This crate provides the stand-in: a deterministic,
//! fluid-flow simulation of machines (CPU cores, NIC bandwidth, managed
//! heaps with stop-the-world GC, bounded outbound message queues) on which
//! the engine models in `grade10-engines` execute their thread programs.
//!
//! What the simulation produces is exactly what a real system-under-test
//! hands to Grade10:
//!
//! * a structured [execution log](logging::LogRecord) of phase start/end and
//!   blocking start/end events, and
//! * [monitoring data](monitor::ResourceSeries): average resource utilization
//!   per interval, with a fine-grained ground-truth series that the Table II
//!   upsampling-accuracy experiment downsamples and compares against.
//!
//! See `DESIGN.md` §2 for why this substitution preserves the behaviors the
//! paper studies.

#![warn(missing_docs)]
// Library code must classify failures, not abort: unwrap/expect are only
// acceptable where an invariant makes failure impossible (and then a
// targeted allow with a reason documents why).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod alloc;
pub mod config;
pub mod faults;
pub mod logging;
pub mod monitor;
pub mod ops;
pub mod sim;
pub mod time;

pub use config::{ClusterConfig, GcConfig, MachineConfig, MachineId};
pub use faults::{FaultClass, FaultPlan};
pub use logging::{LogEvent, LogRecord, PathSeg, PhasePath};
pub use monitor::{ResourceKind, ResourceSeries, ResourceSpec};
pub use ops::{MsgOutput, Op, ThreadProgram};
pub use sim::{blocking_resources, GcPause, SimOutput, SimStats, Simulation};
pub use time::{SimDuration, SimTime};

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(n: usize) -> ClusterConfig {
        let mut cfg = ClusterConfig::homogeneous(
            n,
            MachineConfig {
                cores: 2.0,
                net_out_bps: 1000.0, // tiny numbers keep tests readable
                net_in_bps: 1000.0,
                disk_bps: 1000.0,
                gc: None,
                out_queue_bytes: None,
            },
        );
        cfg.monitor_interval = SimDuration::from_millis(10);
        cfg
    }

    fn secs(t: SimTime) -> f64 {
        t.as_secs_f64()
    }

    #[test]
    fn single_thread_compute_duration() {
        let mut sim = Simulation::new(small_cluster(1));
        let mut p = ThreadProgram::new(0);
        p.push(Op::PhaseStart(PhasePath::root().child("work", 0)))
            .push(Op::compute(2.0))
            .push(Op::PhaseEnd(PhasePath::root().child("work", 0)));
        sim.add_thread(p);
        let out = sim.run();
        // 2 core-seconds at 1 core on a 2-core machine: 2 seconds.
        assert!((secs(out.end_time) - 2.0).abs() < 0.01, "{}", out.end_time);
        let phases = out.phase_intervals();
        assert_eq!(phases.len(), 1);
        assert!((phases[0].2.since(phases[0].1).as_secs_f64() - 2.0).abs() < 0.01);
    }

    #[test]
    fn cpu_contention_fair_shares() {
        // 4 threads x 1 core-second of work on 2 cores: 2 seconds.
        let mut sim = Simulation::new(small_cluster(1));
        for _ in 0..4 {
            let mut p = ThreadProgram::new(0);
            p.push(Op::compute(1.0));
            sim.add_thread(p);
        }
        let out = sim.run();
        assert!((secs(out.end_time) - 2.0).abs() < 0.01, "{}", out.end_time);
    }

    #[test]
    fn multi_core_op_uses_machine() {
        let mut sim = Simulation::new(small_cluster(1));
        let mut p = ThreadProgram::new(0);
        p.push(Op::Compute {
            work: 2.0,
            max_cores: 2.0,
            alloc_per_work: 0.0,
            msgs: MsgOutput::none(),
        });
        sim.add_thread(p);
        let out = sim.run();
        assert!((secs(out.end_time) - 1.0).abs() < 0.01, "{}", out.end_time);
    }

    #[test]
    fn send_duration_matches_bandwidth() {
        let mut sim = Simulation::new(small_cluster(2));
        let mut p = ThreadProgram::new(0);
        p.push(Op::Send {
            dst: 1,
            bytes: 500.0,
        });
        sim.add_thread(p);
        let out = sim.run();
        // 500 bytes at 1000 B/s: 0.5 seconds.
        assert!((secs(out.end_time) - 0.5).abs() < 0.01, "{}", out.end_time);
    }

    #[test]
    fn incast_shares_receiver_bandwidth() {
        // Machines 0 and 1 both send 500 B to machine 2: the receiver's
        // 1000 B/s in-link is the bottleneck, so the pair takes ~1 s.
        let mut sim = Simulation::new(small_cluster(3));
        for src in 0..2 {
            let mut p = ThreadProgram::new(src);
            p.push(Op::Send {
                dst: 2,
                bytes: 500.0,
            });
            sim.add_thread(p);
        }
        let out = sim.run();
        assert!((secs(out.end_time) - 1.0).abs() < 0.02, "{}", out.end_time);
    }

    #[test]
    fn bounded_queue_stalls_producer() {
        let mut cfg = small_cluster(2);
        cfg.machines[0].out_queue_bytes = Some(100.0);
        let mut sim = Simulation::new(cfg);
        let mut p = ThreadProgram::new(0);
        // 0.1 core-seconds of work producing 2000 bytes: production rate
        // (20 kB/s) far exceeds the 1 kB/s NIC, so the queue bound gates
        // progress and the run is network-bound: ~2 s.
        p.push(Op::Compute {
            work: 0.1,
            max_cores: 1.0,
            alloc_per_work: 0.0,
            msgs: MsgOutput {
                per_dst: vec![(1, 2000.0)],
            },
        })
        .push(Op::FlushWait);
        sim.add_thread(p);
        let out = sim.run();
        assert!(
            (secs(out.end_time) - 2.0).abs() < 0.1,
            "network-bound run took {}",
            out.end_time
        );
        assert!(out.stats.queue_stall_time > SimDuration::from_millis(500));
        let stalls = out
            .logs
            .iter()
            .filter(|r| {
                matches!(&r.event, LogEvent::BlockStart { resource } if resource == "msgq")
            })
            .count();
        assert!(stalls >= 1, "expected msgq blocking events");
    }

    #[test]
    fn queue_stall_is_bursty() {
        // With hysteresis the producer alternates stall/run repeatedly.
        let mut cfg = small_cluster(2);
        cfg.machines[0].out_queue_bytes = Some(50.0);
        let mut sim = Simulation::new(cfg);
        let mut p = ThreadProgram::new(0);
        p.push(Op::Compute {
            work: 0.5,
            max_cores: 1.0,
            alloc_per_work: 0.0,
            msgs: MsgOutput {
                per_dst: vec![(1, 3000.0)],
            },
        })
        .push(Op::FlushWait);
        sim.add_thread(p);
        let out = sim.run();
        let stalls = out
            .logs
            .iter()
            .filter(|r| {
                matches!(&r.event, LogEvent::BlockStart { resource } if resource == "msgq")
            })
            .count();
        assert!(stalls >= 3, "expected repeated bursts, saw {stalls}");
    }

    #[test]
    fn gc_pauses_trigger_and_block() {
        let mut cfg = small_cluster(1);
        cfg.machines[0].gc = Some(GcConfig {
            heap_bytes: 1000.0,
            trigger_fraction: 0.8,
            pause_per_byte: 0.0,
            min_pause_secs: 0.1,
            live_fraction: 0.1,
        });
        let mut sim = Simulation::new(cfg);
        let mut p = ThreadProgram::new(0);
        // 2 core-seconds allocating 2000 bytes/core-second: crosses the
        // 800-byte trigger several times.
        p.push(Op::Compute {
            work: 2.0,
            max_cores: 1.0,
            alloc_per_work: 2000.0,
            msgs: MsgOutput::none(),
        });
        sim.add_thread(p);
        let out = sim.run();
        assert!(
            out.stats.gc_pauses.len() >= 2,
            "expected repeated GC, saw {:?}",
            out.stats.gc_pauses.len()
        );
        // GC time extends the run beyond the pure 2 s of compute.
        let gc_total: f64 = out
            .stats
            .gc_pauses
            .iter()
            .map(|g| g.duration.as_secs_f64())
            .sum();
        assert!((secs(out.end_time) - (2.0 + gc_total)).abs() < 0.05);
        assert!(out.logs.iter().any(|r| {
            matches!(&r.event, LogEvent::BlockStart { resource } if resource == "gc")
        }));
    }

    #[test]
    fn barrier_rendezvous() {
        let mut sim = Simulation::new(small_cluster(2));
        let mut fast = ThreadProgram::new(0);
        fast.push(Op::compute(0.5)).push(Op::Barrier {
            id: 1,
            participants: 2,
        });
        let mut slow = ThreadProgram::new(1);
        slow.push(Op::compute(1.5)).push(Op::Barrier {
            id: 1,
            participants: 2,
        });
        sim.add_thread(fast);
        sim.add_thread(slow);
        let out = sim.run();
        assert!((secs(out.end_time) - 1.5).abs() < 0.01);
        assert!(out.stats.barrier_wait_time >= SimDuration::from_millis(900));
        assert!(out.logs.iter().any(|r| {
            matches!(&r.event, LogEvent::BlockStart { resource } if resource == "barrier")
        }));
    }

    #[test]
    fn flush_wait_until_queue_drains() {
        let mut sim = Simulation::new(small_cluster(2));
        let mut p = ThreadProgram::new(0);
        p.push(Op::Compute {
            work: 0.1,
            max_cores: 1.0,
            alloc_per_work: 0.0,
            msgs: MsgOutput {
                per_dst: vec![(1, 800.0)],
            },
        })
        .push(Op::FlushWait);
        sim.add_thread(p);
        let out = sim.run();
        // 800 bytes at 1000 B/s dominate the 0.1 s of compute.
        assert!(secs(out.end_time) >= 0.79, "{}", out.end_time);
    }

    #[test]
    fn local_messages_bypass_queue_and_network() {
        let mut sim = Simulation::new(small_cluster(2));
        let mut p = ThreadProgram::new(0);
        p.push(Op::Compute {
            work: 0.2,
            max_cores: 1.0,
            alloc_per_work: 0.0,
            msgs: MsgOutput {
                per_dst: vec![(0, 1e9)], // self-destined
            },
        })
        .push(Op::FlushWait);
        sim.add_thread(p);
        let out = sim.run();
        assert!((secs(out.end_time) - 0.2).abs() < 0.01, "{}", out.end_time);
        let net: f64 = out
            .series
            .iter()
            .filter(|s| {
                matches!(s.spec.kind, ResourceKind::NetOut | ResourceKind::NetIn)
            })
            .map(|s| s.total_consumption())
            .sum();
        assert_eq!(net, 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let mut cfg = small_cluster(2);
            cfg.machines[0].out_queue_bytes = Some(100.0);
            let mut sim = Simulation::new(cfg);
            for m in 0..2u16 {
                let mut p = ThreadProgram::new(m);
                p.push(Op::Compute {
                    work: 0.3,
                    max_cores: 1.0,
                    alloc_per_work: 0.0,
                    msgs: MsgOutput {
                        per_dst: vec![(1 - m, 500.0)],
                    },
                })
                .push(Op::FlushWait)
                .push(Op::Barrier {
                    id: 9,
                    participants: 2,
                });
                sim.add_thread(p);
            }
            sim.run()
        };
        let a = build();
        let b = build();
        assert_eq!(a.logs, b.logs);
        assert_eq!(a.end_time, b.end_time);
        for (x, y) in a.series.iter().zip(&b.series) {
            assert_eq!(x.samples, y.samples);
        }
    }

    #[test]
    fn monitor_captures_cpu_usage() {
        let mut sim = Simulation::new(small_cluster(1));
        let mut p = ThreadProgram::new(0);
        p.push(Op::compute(1.0));
        sim.add_thread(p);
        let out = sim.run();
        let cpu = out
            .series
            .iter()
            .find(|s| s.spec.kind == ResourceKind::Cpu)
            .unwrap();
        // 1 core-second of total consumption.
        assert!((cpu.total_consumption() - 1.0).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "unfinished")]
    fn deadlocked_barrier_panics_at_max_time() {
        let mut cfg = small_cluster(1);
        cfg.max_sim_time = SimDuration::from_millis(100);
        let mut sim = Simulation::new(cfg);
        let mut p = ThreadProgram::new(0);
        p.push(Op::Barrier {
            id: 1,
            participants: 2, // nobody else ever arrives
        });
        sim.add_thread(p);
        sim.run();
    }

    #[test]
    fn disk_io_duration_matches_bandwidth() {
        let mut sim = Simulation::new(small_cluster(1));
        let mut p = ThreadProgram::new(0);
        p.push(Op::DiskIo { bytes: 500.0 });
        sim.add_thread(p);
        let out = sim.run();
        // 500 bytes at 1000 B/s of disk bandwidth: 0.5 seconds.
        assert!((secs(out.end_time) - 0.5).abs() < 0.01, "{}", out.end_time);
        let disk = out
            .series
            .iter()
            .find(|s| s.spec.kind == ResourceKind::Disk)
            .unwrap();
        assert!((disk.total_consumption() - 500.0).abs() < 5.0);
    }

    #[test]
    fn concurrent_disk_io_shares_bandwidth() {
        let mut sim = Simulation::new(small_cluster(1));
        for _ in 0..2 {
            let mut p = ThreadProgram::new(0);
            p.push(Op::DiskIo { bytes: 500.0 });
            sim.add_thread(p);
        }
        let out = sim.run();
        // Two 500-byte transfers sharing 1000 B/s: 1 second.
        assert!((secs(out.end_time) - 1.0).abs() < 0.02, "{}", out.end_time);
    }

    #[test]
    fn zero_byte_disk_io_is_free() {
        let mut sim = Simulation::new(small_cluster(1));
        let mut p = ThreadProgram::new(0);
        p.push(Op::DiskIo { bytes: 0.0 }).push(Op::compute(0.1));
        sim.add_thread(p);
        let out = sim.run();
        assert!((secs(out.end_time) - 0.1).abs() < 0.01, "{}", out.end_time);
    }

    #[test]
    fn max_cores_beyond_machine_is_clamped_by_capacity() {
        let mut sim = Simulation::new(small_cluster(1));
        let mut p = ThreadProgram::new(0);
        p.push(Op::Compute {
            work: 4.0,
            max_cores: 100.0, // machine has 2 cores
            alloc_per_work: 0.0,
            msgs: MsgOutput::none(),
        });
        sim.add_thread(p);
        let out = sim.run();
        assert!((secs(out.end_time) - 2.0).abs() < 0.01, "{}", out.end_time);
    }

    #[test]
    fn barrier_ids_are_reusable_sequentially() {
        // Two generations of the same barrier id, used by the same pair.
        let mut sim = Simulation::new(small_cluster(1));
        for _ in 0..2 {
            let mut p = ThreadProgram::new(0);
            p.push(Op::Barrier { id: 5, participants: 2 })
                .push(Op::compute(0.1))
                .push(Op::Barrier { id: 5, participants: 2 });
            sim.add_thread(p);
        }
        let out = sim.run();
        assert!((secs(out.end_time) - 0.1).abs() < 0.01, "{}", out.end_time);
    }

    #[test]
    fn heterogeneous_machine_capacities_respected() {
        let mut cfg = small_cluster(2);
        cfg.machines[1].cores = 4.0; // machine 1 is twice as big
        let mut sim = Simulation::new(cfg);
        for m in 0..2u16 {
            for _ in 0..4 {
                let mut p = ThreadProgram::new(m);
                p.push(Op::compute(1.0));
                sim.add_thread(p);
            }
        }
        let out = sim.run();
        // Machine 0: 4 core-s on 2 cores = 2 s; machine 1: 4 on 4 = 1 s.
        assert!((secs(out.end_time) - 2.0).abs() < 0.01, "{}", out.end_time);
        let cpu1 = out
            .series
            .iter()
            .find(|s| s.spec.kind == ResourceKind::Cpu && s.spec.machine == 1)
            .unwrap();
        assert!((cpu1.total_consumption() - 4.0).abs() < 0.05);
    }

    #[test]
    fn sleep_idles_without_resource_usage() {
        let mut sim = Simulation::new(small_cluster(1));
        let mut p = ThreadProgram::new(0);
        p.push(Op::Sleep {
            dur: SimDuration::from_millis(300),
        });
        sim.add_thread(p);
        let out = sim.run();
        assert!((secs(out.end_time) - 0.3).abs() < 0.01);
        let cpu = out
            .series
            .iter()
            .find(|s| s.spec.kind == ResourceKind::Cpu)
            .unwrap();
        assert!(cpu.total_consumption() < 1e-9);
    }
}
