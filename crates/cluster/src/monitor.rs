//! Resource-utilization monitoring.
//!
//! The monitor integrates per-quantum resource usage and emits one sample per
//! `monitor_interval`: the *average* absolute usage over the interval, which
//! is exactly the data shape a Ganglia-style cluster monitor reports. The
//! interval configured in [`crate::config::ClusterConfig`] is the *ground
//! truth* granularity (50 ms in the paper); coarser monitoring inputs for
//! Grade10 are produced by [`ResourceSeries::downsample`], mirroring how the
//! paper's Table II experiment averages up to 64 consecutive measurements.

use serde::{Deserialize, Serialize};

use crate::config::{ClusterConfig, MachineId};
use crate::time::{SimDuration, SimTime};

/// Kinds of consumable resources the cluster exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU, measured in cores.
    Cpu,
    /// Outbound NIC bandwidth, bytes/second.
    NetOut,
    /// Inbound NIC bandwidth, bytes/second.
    NetIn,
    /// Local storage bandwidth, bytes/second.
    Disk,
    /// Runnable threads wanting CPU (an *indicator*: monitored, but not a
    /// capacity to attribute — see `grade10_core::indicator`).
    RunQueue,
}

impl ResourceKind {
    /// Stable textual name, used in models and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::NetOut => "net_out",
            ResourceKind::NetIn => "net_in",
            ResourceKind::Disk => "disk",
            ResourceKind::RunQueue => "runq",
        }
    }
}

/// One monitored resource instance (a kind on a machine) and its capacity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceSpec {
    /// What is being measured.
    pub kind: ResourceKind,
    /// The machine this instance lives on.
    pub machine: MachineId,
    /// Capacity in the kind's units (cores or bytes/second).
    pub capacity: f64,
}

impl ResourceSpec {
    /// `cpu@3`-style display name.
    pub fn label(&self) -> String {
        format!("{}@{}", self.kind.name(), self.machine)
    }
}

/// A utilization time series: average absolute usage per fixed interval,
/// starting at time zero.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceSeries {
    /// The resource this series measures.
    pub spec: ResourceSpec,
    /// Length of each sample window.
    pub interval: SimDuration,
    /// Average absolute usage per window, from time zero.
    pub samples: Vec<f64>,
}

impl ResourceSeries {
    /// Averages `factor` consecutive samples into one, producing the coarse
    /// monitoring data Grade10 receives. A trailing partial window is
    /// averaged over its actual length.
    pub fn downsample(&self, factor: usize) -> ResourceSeries {
        assert!(factor >= 1);
        let samples = self
            .samples
            .chunks(factor)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        ResourceSeries {
            spec: self.spec.clone(),
            interval: self.interval * factor as u64,
            samples,
        }
    }

    /// Total consumption (usage × time) over the series, in unit-seconds.
    pub fn total_consumption(&self) -> f64 {
        self.samples.iter().sum::<f64>() * self.interval.as_secs_f64()
    }

    /// Timestamp of the start of sample `i`.
    pub fn sample_start(&self, i: usize) -> SimTime {
        SimTime::ZERO + self.interval * i as u64
    }
}

/// Accumulates quantum-level usage into interval samples.
pub struct Monitor {
    specs: Vec<ResourceSpec>,
    interval: SimDuration,
    quanta_per_interval: u64,
    quanta_in_window: u64,
    /// Usage integral (usage × seconds) accumulated in the open window,
    /// indexed like `specs`.
    window_integral: Vec<f64>,
    samples: Vec<Vec<f64>>,
}

impl Monitor {
    /// Creates a monitor for all resources of `config`.
    pub fn new(config: &ClusterConfig) -> Self {
        let mut specs = Vec::new();
        for (m, mc) in config.machines.iter().enumerate() {
            specs.push(ResourceSpec {
                kind: ResourceKind::Cpu,
                machine: m as MachineId,
                capacity: mc.cores,
            });
            specs.push(ResourceSpec {
                kind: ResourceKind::NetOut,
                machine: m as MachineId,
                capacity: mc.net_out_bps,
            });
            specs.push(ResourceSpec {
                kind: ResourceKind::NetIn,
                machine: m as MachineId,
                capacity: mc.net_in_bps,
            });
            specs.push(ResourceSpec {
                kind: ResourceKind::Disk,
                machine: m as MachineId,
                capacity: mc.disk_bps,
            });
            specs.push(ResourceSpec {
                kind: ResourceKind::RunQueue,
                machine: m as MachineId,
                // Nominal scale for plotting; a run queue has no capacity.
                capacity: mc.cores,
            });
        }
        let n = specs.len();
        Monitor {
            specs,
            interval: config.monitor_interval,
            quanta_per_interval: config.monitor_interval / config.quantum,
            quanta_in_window: 0,
            window_integral: vec![0.0; n],
            samples: vec![Vec::new(); n],
        }
    }

    /// Records one quantum's usage. Slices are indexed by machine.
    pub fn record_quantum(
        &mut self,
        cpu_used: &[f64],
        net_out_used: &[f64],
        net_in_used: &[f64],
        disk_used: &[f64],
        runnable: &[f64],
        dt: SimDuration,
    ) {
        let dt_secs = dt.as_secs_f64();
        for (i, spec) in self.specs.iter().enumerate() {
            let usage = match spec.kind {
                ResourceKind::Cpu => cpu_used[spec.machine as usize],
                ResourceKind::NetOut => net_out_used[spec.machine as usize],
                ResourceKind::NetIn => net_in_used[spec.machine as usize],
                ResourceKind::Disk => disk_used[spec.machine as usize],
                ResourceKind::RunQueue => runnable[spec.machine as usize],
            };
            self.window_integral[i] += usage * dt_secs;
        }
        self.quanta_in_window += 1;
        if self.quanta_in_window == self.quanta_per_interval {
            let window_secs = self.interval.as_secs_f64();
            for i in 0..self.specs.len() {
                self.samples[i].push(self.window_integral[i] / window_secs);
                self.window_integral[i] = 0.0;
            }
            self.quanta_in_window = 0;
        }
    }

    /// Flushes any partial window and returns the series and specs.
    pub fn finish(mut self) -> (Vec<ResourceSeries>, Vec<ResourceSpec>) {
        if self.quanta_in_window > 0 {
            // Average the partial window over the *full* interval so a quiet
            // tail does not read as artificially busy.
            let window_secs = self.interval.as_secs_f64();
            for i in 0..self.specs.len() {
                self.samples[i].push(self.window_integral[i] / window_secs);
            }
        }
        let series = self
            .specs
            .iter()
            .cloned()
            .zip(self.samples)
            .map(|(spec, samples)| ResourceSeries {
                spec,
                interval: self.interval,
                samples,
            })
            .collect();
        (series, self.specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn monitor_1machine() -> Monitor {
        let mut cfg = ClusterConfig::homogeneous(1, MachineConfig::commodity());
        cfg.quantum = SimDuration::from_millis(1);
        cfg.monitor_interval = SimDuration::from_millis(2);
        Monitor::new(&cfg)
    }

    #[test]
    fn samples_average_over_window() {
        let mut m = monitor_1machine();
        m.record_quantum(&[4.0], &[0.0], &[0.0], &[0.0], &[0.0], SimDuration::from_millis(1));
        m.record_quantum(&[8.0], &[0.0], &[0.0], &[0.0], &[0.0], SimDuration::from_millis(1));
        let (series, _) = m.finish();
        let cpu = &series[0];
        assert_eq!(cpu.samples.len(), 1);
        assert!((cpu.samples[0] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn partial_window_flushed_on_finish() {
        let mut m = monitor_1machine();
        m.record_quantum(&[4.0], &[0.0], &[0.0], &[0.0], &[0.0], SimDuration::from_millis(1));
        let (series, _) = m.finish();
        // One quantum of 4 cores over a 2 ms window averages to 2 cores.
        assert!((series[0].samples[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn downsample_averages_and_scales_interval() {
        let s = ResourceSeries {
            spec: ResourceSpec {
                kind: ResourceKind::Cpu,
                machine: 0,
                capacity: 16.0,
            },
            interval: SimDuration::from_millis(50),
            samples: vec![1.0, 3.0, 5.0, 7.0, 9.0],
        };
        let d = s.downsample(2);
        assert_eq!(d.interval, SimDuration::from_millis(100));
        assert_eq!(d.samples, vec![2.0, 6.0, 9.0]);
    }

    #[test]
    fn downsample_preserves_total_consumption_for_exact_factor() {
        let s = ResourceSeries {
            spec: ResourceSpec {
                kind: ResourceKind::NetOut,
                machine: 0,
                capacity: 1e9,
            },
            interval: SimDuration::from_millis(50),
            samples: vec![10.0, 20.0, 30.0, 40.0],
        };
        let d = s.downsample(2);
        assert!((d.total_consumption() - s.total_consumption()).abs() < 1e-9);
    }

    #[test]
    fn specs_enumerate_three_resources_per_machine() {
        let cfg = ClusterConfig::homogeneous(3, MachineConfig::commodity());
        let m = Monitor::new(&cfg);
        let (_, specs) = m.finish();
        assert_eq!(specs.len(), 15);
        assert_eq!(specs[0].label(), "cpu@0");
        assert_eq!(specs[3].label(), "disk@0");
        assert_eq!(specs[4].label(), "runq@0");
        assert_eq!(specs[6].label(), "net_out@1");
    }
}
