//! Simulated time.
//!
//! Time is kept in integer nanoseconds to make the simulation exactly
//! deterministic and free of float drift; rates and work amounts are floats,
//! but clock arithmetic never is.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// From fractional seconds (rounded to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As whole nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// As whole milliseconds (truncating).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// True if zero.
    pub const fn is_zero(&self) -> bool {
        self.0 == 0
    }

    /// From a measured wall-clock duration, saturating at `u64::MAX`
    /// nanoseconds (≈ 584 years — far beyond any recorded pipeline run).
    /// This is the bridge between real recorded time (e.g. the
    /// observability layer's span clock) and the simulated timebase, so
    /// both print and compare through one type.
    pub fn from_wall(d: std::time::Duration) -> Self {
        SimDuration(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }

    /// As a wall-clock [`std::time::Duration`].
    pub const fn as_wall(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }
}

impl From<std::time::Duration> for SimDuration {
    fn from(d: std::time::Duration) -> Self {
        SimDuration::from_wall(d)
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        d.as_wall()
    }
}

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Duration since an earlier instant. Panics if `earlier` is later.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        assert!(
            self.0 >= earlier.0,
            "since() with a later instant: {} < {}",
            self.0,
            earlier.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// As fractional seconds since simulation start.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(self.0 >= rhs.0, "duration underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// How many whole `rhs` fit in `self`.
    fn div(self, rhs: SimDuration) -> u64 {
        assert!(!rhs.is_zero(), "division by zero duration");
        self.0 / rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_millis(500));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        let t2 = t + SimDuration::from_millis(5);
        assert_eq!(t2.since(t), SimDuration::from_millis(5));
        assert_eq!(t2 - t, SimDuration::from_millis(5));
        assert_eq!(SimDuration::from_millis(10) * 3, SimDuration::from_millis(30));
        assert_eq!(SimDuration::from_millis(10) / SimDuration::from_millis(3), 3);
    }

    #[test]
    fn secs_round_trip() {
        let d = SimDuration::from_secs_f64(1.234567891);
        assert!((d.as_secs_f64() - 1.234567891).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "since")]
    fn since_checks_ordering() {
        SimTime(5).since(SimTime(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_nanos(7)), "7ns");
    }

    #[test]
    fn wall_clock_round_trip() {
        let wall = std::time::Duration::from_micros(1_234);
        let sim = SimDuration::from_wall(wall);
        assert_eq!(sim, SimDuration::from_micros(1_234));
        assert_eq!(sim.as_wall(), wall);
        let via_from: SimDuration = wall.into();
        assert_eq!(via_from, sim);
        let back: std::time::Duration = sim.into();
        assert_eq!(back, wall);
    }
}
