//! Max–min fair allocation by progressive filling.
//!
//! Used each quantum to divide machine CPU among runnable threads and network
//! link capacity among active flows. Progressive filling raises all unfrozen
//! rates uniformly, freezing a consumer when it reaches its demand and every
//! consumer on a link when the link saturates; it terminates in at most one
//! iteration per consumer and produces the exact max–min fair allocation.

/// A consumer with a demand, attached to one or more capacity-limited links.
#[derive(Clone, Debug)]
pub struct Consumer {
    /// Upper bound on the rate this consumer can use.
    pub demand: f64,
    /// Indices of the links this consumer's rate is charged against.
    pub links: Vec<usize>,
}

/// Computes the max–min fair rates for `consumers` over links with the given
/// `capacities`. Returns one rate per consumer, `0 ≤ rate ≤ demand`.
pub fn max_min_fair(consumers: &[Consumer], capacities: &[f64]) -> Vec<f64> {
    let n = consumers.len();
    let mut rate = vec![0.0f64; n];
    if n == 0 {
        return rate;
    }
    for c in consumers {
        debug_assert!(c.demand >= 0.0 && c.demand.is_finite());
        for &l in &c.links {
            debug_assert!(l < capacities.len(), "link {l} out of range");
        }
    }
    let mut remaining: Vec<f64> = capacities.to_vec();
    let mut frozen = vec![false; n];
    // Consumers with zero demand or no links are trivially frozen.
    for (i, c) in consumers.iter().enumerate() {
        if c.demand <= 0.0 || c.links.is_empty() {
            frozen[i] = true;
        }
    }

    const EPS: f64 = 1e-12;
    loop {
        // Count active consumers per link.
        let mut counts = vec![0usize; capacities.len()];
        let mut any_active = false;
        for (i, c) in consumers.iter().enumerate() {
            if !frozen[i] {
                any_active = true;
                for &l in &c.links {
                    counts[l] += 1;
                }
            }
        }
        if !any_active {
            break;
        }
        // Largest uniform increment before a demand or a link binds.
        let mut delta = f64::INFINITY;
        for (i, c) in consumers.iter().enumerate() {
            if !frozen[i] {
                delta = delta.min(c.demand - rate[i]);
            }
        }
        for (l, &cnt) in counts.iter().enumerate() {
            if cnt > 0 {
                delta = delta.min(remaining[l] / cnt as f64);
            }
        }
        let delta = delta.max(0.0);
        for (i, c) in consumers.iter().enumerate() {
            if !frozen[i] {
                rate[i] += delta;
                for &l in &c.links {
                    remaining[l] -= delta;
                }
            }
        }
        // Freeze satisfied consumers and consumers on saturated links.
        let mut progressed = false;
        for (i, c) in consumers.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let satisfied = rate[i] >= c.demand - EPS;
            let saturated = c.links.iter().any(|&l| remaining[l] <= EPS);
            if satisfied || saturated {
                frozen[i] = true;
                progressed = true;
            }
        }
        if !progressed {
            // Numerically stuck (delta ~ 0 without freezing); stop rather
            // than loop forever. Rates remain a valid (under-)allocation.
            break;
        }
    }
    rate
}

/// Convenience for the single-link case (CPU on one machine): demands share
/// one capacity.
pub fn fair_share_single(demands: &[f64], capacity: f64) -> Vec<f64> {
    let consumers: Vec<Consumer> = demands
        .iter()
        .map(|&d| Consumer {
            demand: d,
            links: vec![0],
        })
        .collect();
    max_min_fair(&consumers, &[capacity])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn under_subscribed_gets_full_demand() {
        let r = fair_share_single(&[1.0, 2.0], 8.0);
        assert!(close(r[0], 1.0) && close(r[1], 2.0));
    }

    #[test]
    fn over_subscribed_splits_evenly() {
        let r = fair_share_single(&[4.0, 4.0, 4.0], 6.0);
        for x in r {
            assert!(close(x, 2.0));
        }
    }

    #[test]
    fn small_demand_frozen_first_rest_share_leftover() {
        // Max-min: consumer 0 gets its 1.0, others split the remaining 5.0.
        let r = fair_share_single(&[1.0, 4.0, 4.0], 6.0);
        assert!(close(r[0], 1.0));
        assert!(close(r[1], 2.5) && close(r[2], 2.5));
    }

    #[test]
    fn capacity_never_exceeded() {
        let r = fair_share_single(&[3.0, 5.0, 7.0, 11.0], 10.0);
        let sum: f64 = r.iter().sum();
        assert!(sum <= 10.0 + 1e-9, "sum {sum}");
    }

    #[test]
    fn zero_demand_and_empty_input() {
        assert!(fair_share_single(&[], 10.0).is_empty());
        let r = fair_share_single(&[0.0, 5.0], 10.0);
        assert!(close(r[0], 0.0) && close(r[1], 5.0));
    }

    #[test]
    fn bipartite_flows_respect_both_links() {
        // Links: 0 = src A out (cap 10), 1 = src B out (cap 10),
        //        2 = dst C in (cap 10).
        // Flows: A->C and B->C, both with huge demand. Each is limited to 5
        // by the shared destination link.
        let consumers = vec![
            Consumer {
                demand: 100.0,
                links: vec![0, 2],
            },
            Consumer {
                demand: 100.0,
                links: vec![1, 2],
            },
        ];
        let r = max_min_fair(&consumers, &[10.0, 10.0, 10.0]);
        assert!(close(r[0], 5.0) && close(r[1], 5.0));
    }

    #[test]
    fn asymmetric_bipartite() {
        // A->C limited by A's small out link; B->C then takes the rest of C.
        let consumers = vec![
            Consumer {
                demand: 100.0,
                links: vec![0, 2],
            },
            Consumer {
                demand: 100.0,
                links: vec![1, 2],
            },
        ];
        let r = max_min_fair(&consumers, &[2.0, 50.0, 10.0]);
        assert!(close(r[0], 2.0), "r0 {}", r[0]);
        assert!(close(r[1], 8.0), "r1 {}", r[1]);
    }

    #[test]
    fn max_min_dominates_equal_split_for_unequal_demands() {
        let r = fair_share_single(&[1.0, 9.0], 8.0);
        assert!(close(r[0], 1.0));
        assert!(close(r[1], 7.0));
    }

    #[test]
    fn many_consumers_terminate() {
        let demands: Vec<f64> = (0..1000).map(|i| (i % 7) as f64 + 0.1).collect();
        let r = fair_share_single(&demands, 100.0);
        let sum: f64 = r.iter().sum();
        assert!(sum <= 100.0 + 1e-6);
    }
}
