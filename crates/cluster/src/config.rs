//! Cluster, machine, and runtime-service configuration.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Identifier of a machine in the cluster.
pub type MachineId = u16;

/// Garbage-collector model of a managed runtime (JVM-like). The collector is
/// stop-the-world: while it runs, no thread on the machine makes progress and
/// the machine's CPU is fully occupied by collection work.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GcConfig {
    /// Heap size in bytes.
    pub heap_bytes: f64,
    /// Collection starts when `used >= trigger_fraction * heap_bytes`.
    pub trigger_fraction: f64,
    /// Pause seconds per byte of used heap at collection time.
    pub pause_per_byte: f64,
    /// Minimum pause per collection, seconds.
    pub min_pause_secs: f64,
    /// Fraction of the used heap that survives collection.
    pub live_fraction: f64,
}

impl GcConfig {
    /// A JVM-flavored default: 4 GiB heap, collect at 80 % occupancy,
    /// ~45 ms + 25 ms/GiB pauses, 30 % survivors.
    pub fn jvm_default() -> Self {
        GcConfig {
            heap_bytes: 4.0 * 1024.0 * 1024.0 * 1024.0,
            trigger_fraction: 0.8,
            pause_per_byte: 25e-3 / (1024.0 * 1024.0 * 1024.0),
            min_pause_secs: 0.045,
            live_fraction: 0.3,
        }
    }
}

/// One machine: CPU cores, NIC bandwidth, optional managed heap, and an
/// optional bounded outbound message queue (Giraph-style engines).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MachineConfig {
    /// CPU capacity in cores.
    pub cores: f64,
    /// Outbound NIC bandwidth, bytes/second.
    pub net_out_bps: f64,
    /// Inbound NIC bandwidth, bytes/second.
    pub net_in_bps: f64,
    /// Local storage bandwidth (reads and writes share it), bytes/second.
    pub disk_bps: f64,
    /// Managed-runtime GC, if the engine runs on one.
    pub gc: Option<GcConfig>,
    /// Capacity of the outbound message queue in bytes; `None` means
    /// unbounded (engines that send directly never stall producers).
    pub out_queue_bytes: Option<f64>,
}

impl MachineConfig {
    /// A commodity cluster node: 16 cores, 1.25 GB/s (10 Gbit/s) NIC.
    pub fn commodity() -> Self {
        MachineConfig {
            cores: 16.0,
            net_out_bps: 1.25e9,
            net_in_bps: 1.25e9,
            disk_bps: 5.0e8,
            gc: None,
            out_queue_bytes: None,
        }
    }

    /// Adds a JVM-style GC.
    pub fn with_gc(mut self, gc: GcConfig) -> Self {
        self.gc = Some(gc);
        self
    }

    /// Bounds the outbound message queue.
    pub fn with_out_queue(mut self, bytes: f64) -> Self {
        self.out_queue_bytes = Some(bytes);
        self
    }
}

/// The whole simulated cluster.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// The machines, indexed by `MachineId`.
    pub machines: Vec<MachineConfig>,
    /// Fluid-flow time step. Phase durations and monitoring intervals should
    /// be large multiples of this.
    pub quantum: SimDuration,
    /// Interval of the ground-truth utilization series the monitor records.
    /// Must be a multiple of `quantum`.
    pub monitor_interval: SimDuration,
    /// Hard stop: the simulation fails rather than running past this point
    /// (guards against dead-locked thread programs).
    pub max_sim_time: SimDuration,
}

impl ClusterConfig {
    /// `n` identical commodity machines with 1 ms quantum and 50 ms
    /// monitoring (the paper's ground-truth interval).
    pub fn homogeneous(n: usize, machine: MachineConfig) -> Self {
        ClusterConfig {
            machines: vec![machine; n],
            quantum: SimDuration::from_millis(1),
            monitor_interval: SimDuration::from_millis(50),
            max_sim_time: SimDuration::from_secs(3600),
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.machines.is_empty() {
            return Err("cluster has no machines".into());
        }
        if self.quantum.is_zero() {
            return Err("quantum must be positive".into());
        }
        if !self.monitor_interval.as_nanos().is_multiple_of(self.quantum.as_nanos()) {
            return Err(format!(
                "monitor_interval {} is not a multiple of quantum {}",
                self.monitor_interval, self.quantum
            ));
        }
        for (i, m) in self.machines.iter().enumerate() {
            if m.cores <= 0.0 || m.net_out_bps <= 0.0 || m.net_in_bps <= 0.0
                || m.disk_bps <= 0.0
            {
                return Err(format!("machine {i} has non-positive capacities"));
            }
            if let Some(gc) = &m.gc {
                if gc.heap_bytes <= 0.0 || !(0.0..=1.0).contains(&gc.trigger_fraction) {
                    return Err(format!("machine {i} has an invalid GC config"));
                }
            }
            if let Some(q) = m.out_queue_bytes {
                if q <= 0.0 {
                    return Err(format!("machine {i} has a non-positive queue bound"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_validates() {
        let cfg = ClusterConfig::homogeneous(4, MachineConfig::commodity());
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.machines.len(), 4);
    }

    #[test]
    fn misaligned_monitor_interval_rejected() {
        let mut cfg = ClusterConfig::homogeneous(1, MachineConfig::commodity());
        cfg.monitor_interval = SimDuration::from_micros(1500);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn bad_machine_rejected() {
        let mut cfg = ClusterConfig::homogeneous(1, MachineConfig::commodity());
        cfg.machines[0].cores = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn empty_cluster_rejected() {
        let cfg = ClusterConfig {
            machines: vec![],
            quantum: SimDuration::from_millis(1),
            monitor_interval: SimDuration::from_millis(50),
            max_sim_time: SimDuration::from_secs(1),
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let m = MachineConfig::commodity()
            .with_gc(GcConfig::jvm_default())
            .with_out_queue(1e8);
        assert!(m.gc.is_some());
        assert_eq!(m.out_queue_bytes, Some(1e8));
    }
}
