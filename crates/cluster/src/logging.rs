//! Structured execution logs emitted by the simulated cluster.
//!
//! These records are the "execution logs" of the Grade10 paper (§III-C): a
//! stream of timestamped phase start/end and blocking start/end events, one
//! per performance-critical transition, from which Grade10 builds its
//! execution trace. The schema is engine-agnostic — the engines decide which
//! phases exist; the cluster just stamps the transitions it is told about
//! plus the blocking events it detects itself (GC pauses, full queues,
//! barrier waits).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// One segment of a hierarchical phase path: a phase-type name and an
/// instance key (0 when the phase occurs once within its parent).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathSeg {
    /// Phase-type name, matching the execution model.
    pub phase_type: String,
    /// Instance key (0 when the phase occurs once within its parent).
    pub instance: u32,
}

impl PathSeg {
    /// Creates a segment.
    pub fn new(phase_type: impl Into<String>, instance: u32) -> Self {
        PathSeg {
            phase_type: phase_type.into(),
            instance,
        }
    }
}

/// A hierarchical phase path, e.g. `job.execute.superstep[3].worker[2].compute.thread[5]`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PhasePath(pub Vec<PathSeg>);

impl PhasePath {
    /// The empty (root) path.
    pub fn root() -> Self {
        PhasePath(Vec::new())
    }

    /// Returns this path extended with one more segment.
    pub fn child(&self, phase_type: impl Into<String>, instance: u32) -> Self {
        let mut segs = self.0.clone();
        segs.push(PathSeg::new(phase_type, instance));
        PhasePath(segs)
    }

    /// Number of segments.
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// The path without its last segment (`None` for the root).
    pub fn parent(&self) -> Option<PhasePath> {
        if self.0.is_empty() {
            None
        } else {
            Some(PhasePath(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// The last segment's phase-type name (empty string for the root).
    pub fn leaf_type(&self) -> &str {
        self.0.last().map(|s| s.phase_type.as_str()).unwrap_or("")
    }
}

impl fmt::Display for PhasePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, seg) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            if seg.instance == 0 {
                write!(f, "{}", seg.phase_type)?;
            } else {
                write!(f, "{}[{}]", seg.phase_type, seg.instance)?;
            }
        }
        Ok(())
    }
}

/// The event kinds a log record can carry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LogEvent {
    /// A phase began on this (machine, thread).
    PhaseStart {
        /// Full instance path of the phase.
        path: PhasePath,
    },
    /// A phase ended.
    PhaseEnd {
        /// Full instance path of the phase.
        path: PhasePath,
    },
    /// The thread became blocked on a blocking resource (e.g. "gc", "msgq",
    /// "barrier").
    BlockStart {
        /// Blocking resource name.
        resource: String,
    },
    /// The thread resumed.
    BlockEnd {
        /// Blocking resource name.
        resource: String,
    },
}

/// A timestamped log record. `thread` is a machine-local thread index.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Simulated timestamp of the event.
    pub time: SimTime,
    /// Machine the event occurred on.
    pub machine: u16,
    /// Machine-local thread index.
    pub thread: u16,
    /// What happened.
    pub event: LogEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_display_elides_zero_instances() {
        let p = PhasePath::root()
            .child("job", 0)
            .child("superstep", 3)
            .child("compute", 0);
        assert_eq!(p.to_string(), "job.superstep[3].compute");
    }

    #[test]
    fn parent_and_leaf() {
        let p = PhasePath::root().child("a", 0).child("b", 2);
        assert_eq!(p.leaf_type(), "b");
        assert_eq!(p.parent().unwrap().to_string(), "a");
        assert_eq!(PhasePath::root().parent(), None);
        assert_eq!(PhasePath::root().leaf_type(), "");
    }

    #[test]
    fn records_serialize_round_trip() {
        let rec = LogRecord {
            time: SimTime(123),
            machine: 1,
            thread: 2,
            event: LogEvent::BlockStart {
                resource: "gc".into(),
            },
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: LogRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(rec, back);
    }
}
