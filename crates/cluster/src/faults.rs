//! Deterministic fault injection for the data-collection path.
//!
//! Grade10 consumes two streams from the system under test: execution logs
//! and monitoring data (§III-C). On a real cluster both are produced by
//! best-effort agents — NTP-skewed clocks, UDP log shippers, crashing
//! workers, monitoring daemons that miss windows. This module corrupts the
//! *pristine* streams leaving the simulator in exactly those ways, so the
//! ingestion layer's strict/lenient behavior can be exercised under a
//! seeded, reproducible fault model.
//!
//! Every fault class is independently toggleable via its `Option` field in
//! [`FaultPlan`], and every random choice derives from the plan's seed
//! through per-fault sub-streams: enabling one fault never changes the
//! random choices of another, and re-running with the same seed reproduces
//! the same corruption byte for byte.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::logging::LogRecord;
use crate::monitor::ResourceSeries;
use crate::time::{SimDuration, SimTime};

// Distinct stream tags so each fault draws from its own RNG stream.
const TAG_SKEW: u64 = 0x5157_4b45_0000_0001;
const TAG_REORDER: u64 = 0x5157_4b45_0000_0002;
const TAG_DROP: u64 = 0x5157_4b45_0000_0003;
const TAG_DUP: u64 = 0x5157_4b45_0000_0004;
const TAG_TRUNC: u64 = 0x5157_4b45_0000_0005;
const TAG_MON: u64 = 0x5157_4b45_0000_0006;
const TAG_MISSING: u64 = 0x5157_4b45_0000_0007;
const TAG_BOMB: u64 = 0x5157_4b45_0000_0008;

/// Per-machine constant clock offset, as if machines disagreed by up to
/// `max_skew` (NTP drift). Breaks cross-machine timestamp monotonicity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClockSkewFault {
    /// Largest offset a machine's clock can run fast by.
    pub max_skew: SimDuration,
}

/// Bounded event reordering: a fraction of records get their timestamp
/// jittered by up to `max_displacement` in either direction, as if log
/// shipping delivered them late or early.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReorderFault {
    /// Largest displacement of one record's timestamp.
    pub max_displacement: SimDuration,
    /// Probability that a given record is displaced.
    pub fraction: f64,
}

/// Random record loss (lossy log shipping).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DropFault {
    /// Probability that a given record is lost.
    pub fraction: f64,
}

/// Random record duplication (at-least-once log shipping).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DuplicateFault {
    /// Probability that a given record is delivered twice.
    pub fraction: f64,
}

/// One machine crashes mid-run: its log records and monitoring samples
/// after `keep_fraction` of its active time span are lost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TruncateFault {
    /// Fraction of the victim machine's time span that survives.
    pub keep_fraction: f64,
}

/// Corrupted monitoring samples: missing windows (NaN) and sign-flipped
/// readings from a buggy collection agent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonitoringFault {
    /// Probability that a sample is replaced by NaN (a missed window).
    pub nan_fraction: f64,
    /// Probability that a (remaining) sample is made negative.
    pub negative_fraction: f64,
}

/// One machine's log stream is lost entirely (dead log shipper) while its
/// monitoring daemon keeps reporting: the supervised ingestion path should
/// degrade that machine to monitoring-only coverage, not fail the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineMissingFault {
    /// Number of victim machines to silence (clamped to the cluster size
    /// minus one, so at least one machine keeps logging).
    pub victims: u16,
}

/// A single corrupted timestamp far in the future (a "clock bomb"): one
/// log record's time is multiplied by `factor`, and one monitoring series'
/// sampling interval is inflated the same way. Lenient ingestion survives
/// both, but the bombed timestamps would inflate the timeslice grid by
/// orders of magnitude — this is the fault the supervision budget guard
/// and monitoring quarantine exist for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimestampBombFault {
    /// Multiplier applied to the victim timestamp / interval.
    pub factor: u64,
}

/// The fault classes the harness can inject, for CLI flags and sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Per-machine clock skew.
    ClockSkew,
    /// Bounded event reordering.
    Reorder,
    /// Dropped records.
    Drop,
    /// Duplicated records.
    Duplicate,
    /// Worker crash truncating one machine's streams.
    Truncate,
    /// Missing / negative monitoring samples.
    Monitoring,
    /// One machine's log stream lost entirely (monitoring survives).
    MachineMissing,
    /// A single far-future timestamp in logs and monitoring.
    TimestampBomb,
}

impl FaultClass {
    /// All classes, in a fixed order.
    pub const ALL: [FaultClass; 8] = [
        FaultClass::ClockSkew,
        FaultClass::Reorder,
        FaultClass::Drop,
        FaultClass::Duplicate,
        FaultClass::Truncate,
        FaultClass::Monitoring,
        FaultClass::MachineMissing,
        FaultClass::TimestampBomb,
    ];

    /// The record-level stream-damage classes lenient ingestion repairs on
    /// its own: everything except [`MachineMissing`](Self::MachineMissing)
    /// and [`TimestampBomb`](Self::TimestampBomb), which need the
    /// supervision layer (coverage accounting, budget guard, quarantine)
    /// to handle gracefully.
    pub const STREAM_DAMAGE: [FaultClass; 6] = [
        FaultClass::ClockSkew,
        FaultClass::Reorder,
        FaultClass::Drop,
        FaultClass::Duplicate,
        FaultClass::Truncate,
        FaultClass::Monitoring,
    ];

    /// Stable CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultClass::ClockSkew => "clock-skew",
            FaultClass::Reorder => "reorder",
            FaultClass::Drop => "drop",
            FaultClass::Duplicate => "duplicate",
            FaultClass::Truncate => "truncate",
            FaultClass::Monitoring => "monitoring",
            FaultClass::MachineMissing => "machine-missing",
            FaultClass::TimestampBomb => "timestamp-bomb",
        }
    }

    /// Parses a CLI name ([`name`](Self::name) inverse).
    pub fn from_name(s: &str) -> Option<FaultClass> {
        FaultClass::ALL.iter().find(|c| c.name() == s).copied()
    }
}

/// A seeded, reproducible corruption plan for one run's output streams.
///
/// Each field enables one fault class with its parameters; `None` leaves
/// that class off. [`FaultPlan::single`] and [`FaultPlan::all`] build
/// presets with moderate default severities.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed all random choices derive from.
    pub seed: u64,
    /// Per-machine clock skew.
    pub clock_skew: Option<ClockSkewFault>,
    /// Bounded reordering.
    pub reorder: Option<ReorderFault>,
    /// Record loss.
    pub drop: Option<DropFault>,
    /// Record duplication.
    pub duplicate: Option<DuplicateFault>,
    /// Worker crash.
    pub truncate: Option<TruncateFault>,
    /// Monitoring corruption.
    pub monitoring: Option<MonitoringFault>,
    /// Dead log shipper on one machine.
    pub machine_missing: Option<MachineMissingFault>,
    /// Far-future timestamp bomb.
    pub timestamp_bomb: Option<TimestampBombFault>,
}

impl FaultPlan {
    /// A plan with no faults enabled (identity transform).
    pub fn clean(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Enables one fault class at its default severity.
    pub fn single(class: FaultClass, seed: u64) -> FaultPlan {
        let mut p = FaultPlan::clean(seed);
        p.enable(class);
        p
    }

    /// Enables every *stream-damage* class at its default severity (see
    /// [`FaultClass::STREAM_DAMAGE`]): the damage lenient ingestion can
    /// repair end to end. For the full hostile set including machine loss
    /// and timestamp bombs, use [`FaultPlan::hostile`].
    pub fn all(seed: u64) -> FaultPlan {
        let mut p = FaultPlan::clean(seed);
        for c in FaultClass::STREAM_DAMAGE {
            p.enable(c);
        }
        p
    }

    /// Enables every fault class, including the ones only the supervised
    /// pipeline handles gracefully (machine loss, timestamp bombs).
    pub fn hostile(seed: u64) -> FaultPlan {
        let mut p = FaultPlan::clean(seed);
        for c in FaultClass::ALL {
            p.enable(c);
        }
        p
    }

    /// Turns one class on at its default severity.
    pub fn enable(&mut self, class: FaultClass) -> &mut Self {
        match class {
            FaultClass::ClockSkew => {
                self.clock_skew = Some(ClockSkewFault {
                    max_skew: SimDuration::from_millis(50),
                })
            }
            FaultClass::Reorder => {
                self.reorder = Some(ReorderFault {
                    max_displacement: SimDuration::from_millis(5),
                    fraction: 0.25,
                })
            }
            FaultClass::Drop => self.drop = Some(DropFault { fraction: 0.05 }),
            FaultClass::Duplicate => self.duplicate = Some(DuplicateFault { fraction: 0.05 }),
            FaultClass::Truncate => {
                self.truncate = Some(TruncateFault { keep_fraction: 0.7 })
            }
            FaultClass::Monitoring => {
                self.monitoring = Some(MonitoringFault {
                    nan_fraction: 0.1,
                    negative_fraction: 0.05,
                })
            }
            FaultClass::MachineMissing => {
                self.machine_missing = Some(MachineMissingFault { victims: 1 })
            }
            FaultClass::TimestampBomb => {
                // Large enough that even a bomb landing on an early record
                // pushes the trace end orders of magnitude past the grid
                // budget — the guard, not luck, must absorb it.
                self.timestamp_bomb = Some(TimestampBombFault { factor: 100_000 })
            }
        }
        self
    }

    /// The classes this plan enables.
    pub fn enabled(&self) -> Vec<FaultClass> {
        let mut out = Vec::new();
        if self.clock_skew.is_some() {
            out.push(FaultClass::ClockSkew);
        }
        if self.reorder.is_some() {
            out.push(FaultClass::Reorder);
        }
        if self.drop.is_some() {
            out.push(FaultClass::Drop);
        }
        if self.duplicate.is_some() {
            out.push(FaultClass::Duplicate);
        }
        if self.truncate.is_some() {
            out.push(FaultClass::Truncate);
        }
        if self.monitoring.is_some() {
            out.push(FaultClass::Monitoring);
        }
        if self.machine_missing.is_some() {
            out.push(FaultClass::MachineMissing);
        }
        if self.timestamp_bomb.is_some() {
            out.push(FaultClass::TimestampBomb);
        }
        out
    }

    fn stream(&self, tag: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.seed ^ tag)
    }

    /// A machine's clock offset: order-independent (derived from the seed
    /// and the machine id, not from draw order).
    fn skew_of(&self, f: &ClockSkewFault, machine: u16) -> SimDuration {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ TAG_SKEW ^ (machine as u64) << 32);
        SimDuration(rng.gen_range(0..=f.max_skew.as_nanos()))
    }

    /// The crashing machine for a cluster of `machines` machines, and the
    /// fraction of the run it survives. Both log and monitoring truncation
    /// use this, so the "crash" is consistent across streams.
    fn crash_site(&self, f: &TruncateFault, machines: u64) -> Option<(u16, f64)> {
        if machines == 0 {
            return None;
        }
        let mut rng = self.stream(TAG_TRUNC);
        let victim = rng.gen_range(0..machines) as u16;
        Some((victim, f.keep_fraction.clamp(0.0, 1.0)))
    }

    /// Applies the enabled log faults, in order: clock skew, reordering,
    /// drops, duplication, truncation. The output preserves the input's
    /// *arrival* order — corrupted timestamps are deliberately left
    /// non-monotone, exactly as a collector would see them.
    pub fn inject_logs(&self, logs: &[LogRecord]) -> Vec<LogRecord> {
        let mut out: Vec<LogRecord> = logs.to_vec();

        if let Some(f) = &self.clock_skew {
            for rec in &mut out {
                rec.time += self.skew_of(f, rec.machine);
            }
        }

        if let Some(f) = &self.reorder {
            let mut rng = self.stream(TAG_REORDER);
            let max = f.max_displacement.as_nanos();
            for rec in &mut out {
                if rng.gen_bool(f.fraction.clamp(0.0, 1.0)) {
                    let delta = rng.gen_range(0..=2 * max);
                    rec.time = SimTime((rec.time.0 + delta).saturating_sub(max));
                }
            }
        }

        if let Some(f) = &self.drop {
            let mut rng = self.stream(TAG_DROP);
            let p = f.fraction.clamp(0.0, 1.0);
            out.retain(|_| !rng.gen_bool(p));
        }

        if let Some(f) = &self.duplicate {
            let mut rng = self.stream(TAG_DUP);
            let p = f.fraction.clamp(0.0, 1.0);
            let mut dup = Vec::with_capacity(out.len());
            for rec in out {
                let twice = rng.gen_bool(p);
                dup.push(rec.clone());
                if twice {
                    dup.push(rec);
                }
            }
            out = dup;
        }

        if let Some(f) = &self.truncate {
            let machines = out.iter().map(|r| r.machine as u64 + 1).max().unwrap_or(0);
            if let Some((victim, keep)) = self.crash_site(f, machines) {
                let span: Vec<u64> = out
                    .iter()
                    .filter(|r| r.machine == victim)
                    .map(|r| r.time.0)
                    .collect();
                if let (Some(&lo), Some(&hi)) = (span.iter().min(), span.iter().max()) {
                    let cut = lo + ((hi - lo) as f64 * keep) as u64;
                    out.retain(|r| r.machine != victim || r.time.0 <= cut);
                }
            }
        }

        if let Some(f) = &self.machine_missing {
            let machines = out.iter().map(|r| r.machine as u64 + 1).max().unwrap_or(0);
            if machines > 1 {
                let victims = (f.victims as u64).min(machines - 1);
                let mut rng = self.stream(TAG_MISSING);
                let first = rng.gen_range(0..machines);
                // Consecutive victims (mod cluster size): one draw, any count.
                let silenced: Vec<u16> =
                    (0..victims).map(|i| ((first + i) % machines) as u16).collect();
                out.retain(|r| !silenced.contains(&r.machine));
            }
        }

        if let Some(f) = &self.timestamp_bomb {
            // Bomb a *phase* record from the first half of the stream: a
            // bombed phase timestamp stretches the reconstructed trace (and
            // with it the timeslice grid) by `factor`, which is the failure
            // mode the supervision budget guard exists for. Block records
            // only stretch blocked intervals, not the makespan.
            let phase_idx: Vec<usize> = out
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    matches!(
                        r.event,
                        crate::logging::LogEvent::PhaseStart { .. }
                            | crate::logging::LogEvent::PhaseEnd { .. }
                    )
                })
                .map(|(i, _)| i)
                .collect();
            if !phase_idx.is_empty() {
                let mut rng = self.stream(TAG_BOMB);
                let pick = rng.gen_range(0..(phase_idx.len() / 2).max(1));
                let t = &mut out[phase_idx[pick]].time;
                *t = SimTime(t.0.max(1).saturating_mul(f.factor.max(2)));
            }
        }

        out
    }

    /// Applies the enabled monitoring faults: sample corruption
    /// (NaN / negative readings) and the worker crash, which truncates the
    /// victim machine's series at the same point in time as its logs.
    pub fn inject_series(&self, series: &[ResourceSeries]) -> Vec<ResourceSeries> {
        let mut out: Vec<ResourceSeries> = series.to_vec();

        if let Some(f) = &self.monitoring {
            let mut rng = self.stream(TAG_MON);
            let nan_p = f.nan_fraction.clamp(0.0, 1.0);
            let neg_p = f.negative_fraction.clamp(0.0, 1.0);
            for s in &mut out {
                for v in &mut s.samples {
                    if rng.gen_bool(nan_p) {
                        *v = f64::NAN;
                    } else if rng.gen_bool(neg_p) {
                        *v = -v.abs() - 1.0;
                    }
                }
            }
        }

        if let Some(f) = &self.truncate {
            let machines = out
                .iter()
                .map(|s| s.spec.machine as u64 + 1)
                .max()
                .unwrap_or(0);
            if let Some((victim, keep)) = self.crash_site(f, machines) {
                for s in &mut out {
                    if s.spec.machine != victim || s.samples.is_empty() {
                        continue;
                    }
                    let span = s.interval.as_nanos() * s.samples.len() as u64;
                    let cut = (span as f64 * keep) as u64;
                    let kept = (cut / s.interval.as_nanos().max(1)) as usize;
                    s.samples.truncate(kept.min(s.samples.len()));
                }
            }
        }

        // MachineMissing deliberately leaves monitoring alone: the victim's
        // monitoring daemon outlives its log shipper.

        if let Some(f) = &self.timestamp_bomb {
            if !out.is_empty() {
                let mut rng = self.stream(TAG_BOMB);
                // One series reports with a wildly inflated interval, as if
                // its collector misread its own clock: every window in the
                // series becomes implausibly long.
                let idx = rng.gen_range(0..out.len());
                let s = &mut out[idx];
                s.interval = SimDuration(s.interval.as_nanos().saturating_mul(f.factor.max(2)));
            }
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logging::{LogEvent, PhasePath};
    use crate::monitor::{ResourceKind, ResourceSpec};

    fn sample_logs() -> Vec<LogRecord> {
        let mut out = Vec::new();
        for m in 0..3u16 {
            let path = PhasePath::root().child("job", 0).child("worker", m as u32);
            out.push(LogRecord {
                time: SimTime(1_000_000 * (m as u64 + 1)),
                machine: m,
                thread: 0,
                event: LogEvent::PhaseStart { path: path.clone() },
            });
            out.push(LogRecord {
                time: SimTime(100_000_000 + 1_000_000 * (m as u64 + 1)),
                machine: m,
                thread: 0,
                event: LogEvent::PhaseEnd { path },
            });
        }
        out.sort_by_key(|r| r.time);
        out
    }

    fn sample_series() -> Vec<ResourceSeries> {
        (0..3u16)
            .map(|m| ResourceSeries {
                spec: ResourceSpec {
                    kind: ResourceKind::Cpu,
                    machine: m,
                    capacity: 4.0,
                },
                interval: SimDuration::from_millis(10),
                samples: vec![1.0; 20],
            })
            .collect()
    }

    #[test]
    fn clean_plan_is_identity() {
        let p = FaultPlan::clean(7);
        assert_eq!(p.inject_logs(&sample_logs()), sample_logs());
        assert_eq!(p.inject_series(&sample_series()), sample_series());
        assert!(p.enabled().is_empty());
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let a = FaultPlan::all(42);
        let b = FaultPlan::all(42);
        assert_eq!(a.inject_logs(&sample_logs()), b.inject_logs(&sample_logs()));
        // NaN != NaN, so compare the debug form (bit-identical streams).
        assert_eq!(
            format!("{:?}", a.inject_series(&sample_series())),
            format!("{:?}", b.inject_series(&sample_series()))
        );
    }

    #[test]
    fn different_seeds_differ() {
        let logs = sample_logs();
        let a = FaultPlan::single(FaultClass::ClockSkew, 1).inject_logs(&logs);
        let b = FaultPlan::single(FaultClass::ClockSkew, 2).inject_logs(&logs);
        assert_ne!(a, b);
    }

    #[test]
    fn clock_skew_shifts_but_keeps_count() {
        let logs = sample_logs();
        let out = FaultPlan::single(FaultClass::ClockSkew, 3).inject_logs(&logs);
        assert_eq!(out.len(), logs.len());
        // Events on the same machine shift by the same offset.
        let offsets: Vec<u64> = out
            .iter()
            .zip(&logs)
            .map(|(a, b)| a.time.0 - b.time.0)
            .collect();
        for (o, rec) in offsets.iter().zip(&logs) {
            let other = out
                .iter()
                .zip(&logs)
                .filter(|(_, b)| b.machine == rec.machine)
                .map(|(a, b)| a.time.0 - b.time.0);
            for o2 in other {
                assert_eq!(*o, o2);
            }
        }
    }

    #[test]
    fn drop_and_duplicate_change_count() {
        let logs: Vec<LogRecord> = (0..200)
            .flat_map(|_| sample_logs())
            .enumerate()
            .map(|(i, mut r)| {
                r.time = SimTime(r.time.0 + i as u64);
                r
            })
            .collect();
        let dropped = FaultPlan::single(FaultClass::Drop, 5).inject_logs(&logs);
        assert!(dropped.len() < logs.len());
        let duped = FaultPlan::single(FaultClass::Duplicate, 5).inject_logs(&logs);
        assert!(duped.len() > logs.len());
    }

    #[test]
    fn truncate_crashes_one_machine_in_both_streams() {
        let plan = FaultPlan::single(FaultClass::Truncate, 11);
        let logs = plan.inject_logs(&sample_logs());
        let series = plan.inject_series(&sample_series());
        // Exactly one machine lost log records...
        let lost_logs: Vec<u16> = (0..3u16)
            .filter(|m| {
                logs.iter().filter(|r| r.machine == *m).count()
                    < sample_logs().iter().filter(|r| r.machine == *m).count()
            })
            .collect();
        assert_eq!(lost_logs.len(), 1);
        // ...and the same machine lost monitoring samples.
        let lost_mon: Vec<u16> = series
            .iter()
            .filter(|s| s.samples.len() < 20)
            .map(|s| s.spec.machine)
            .collect();
        assert_eq!(lost_mon, lost_logs);
    }

    #[test]
    fn monitoring_fault_corrupts_samples() {
        let out = FaultPlan::single(FaultClass::Monitoring, 9).inject_series(&sample_series());
        let bad = out
            .iter()
            .flat_map(|s| &s.samples)
            .filter(|v| !v.is_finite() || **v < 0.0)
            .count();
        assert!(bad > 0, "expected corrupted samples");
        // Series structure is untouched.
        for (a, b) in out.iter().zip(sample_series()) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.samples.len(), b.samples.len());
        }
    }

    #[test]
    fn enabling_one_fault_does_not_disturb_another_stream() {
        // Drop draws must be identical whether or not duplication is on:
        // each fault has its own RNG stream.
        let logs = sample_logs();
        let only_drop = FaultPlan::single(FaultClass::Drop, 21).inject_logs(&logs);
        let mut both_plan = FaultPlan::single(FaultClass::Drop, 21);
        both_plan.enable(FaultClass::ClockSkew);
        let both = both_plan.inject_logs(&logs);
        // Strip the skew and compare survivors: the same records survived.
        let survived_only: Vec<(u16, u16)> =
            only_drop.iter().map(|r| (r.machine, r.thread)).collect();
        let survived_both: Vec<(u16, u16)> = both.iter().map(|r| (r.machine, r.thread)).collect();
        assert_eq!(survived_only.len(), survived_both.len());
        assert_eq!(survived_only, survived_both);
    }

    #[test]
    fn machine_missing_silences_logs_but_not_monitoring() {
        let plan = FaultPlan::single(FaultClass::MachineMissing, 13);
        let logs = plan.inject_logs(&sample_logs());
        let series = plan.inject_series(&sample_series());
        let silenced: Vec<u16> = (0..3u16)
            .filter(|m| !logs.iter().any(|r| r.machine == *m))
            .collect();
        assert_eq!(silenced.len(), 1, "exactly one machine loses its logs");
        // Its monitoring is untouched.
        assert_eq!(series, sample_series());
        // And the survivors' logs are untouched.
        assert_eq!(
            logs.len(),
            sample_logs()
                .iter()
                .filter(|r| r.machine != silenced[0])
                .count()
        );
    }

    #[test]
    fn timestamp_bomb_inflates_one_record_and_one_interval() {
        let plan = FaultPlan::single(FaultClass::TimestampBomb, 17);
        let logs = plan.inject_logs(&sample_logs());
        let bombed: Vec<&LogRecord> = logs
            .iter()
            .filter(|r| !sample_logs().contains(r))
            .collect();
        assert_eq!(bombed.len(), 1, "exactly one record is bombed");
        // The bombed record (time ×1000) lands far past the clean stream.
        let max_clean = sample_logs().iter().map(|r| r.time.0).max().unwrap();
        assert!(bombed[0].time.0 > max_clean);

        let series = plan.inject_series(&sample_series());
        let inflated = series
            .iter()
            .filter(|s| s.interval.as_nanos() > SimDuration::from_millis(10).as_nanos())
            .count();
        assert_eq!(inflated, 1, "exactly one series' interval is inflated");
    }

    #[test]
    fn hostile_preset_enables_every_class() {
        assert_eq!(FaultPlan::hostile(1).enabled().len(), FaultClass::ALL.len());
        // `all` stays the repairable stream-damage preset.
        assert_eq!(
            FaultPlan::all(1).enabled(),
            FaultClass::STREAM_DAMAGE.to_vec()
        );
    }

    #[test]
    fn class_names_round_trip() {
        for c in FaultClass::ALL {
            assert_eq!(FaultClass::from_name(c.name()), Some(c));
        }
        assert_eq!(FaultClass::from_name("nope"), None);
    }
}
