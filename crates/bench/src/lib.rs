//! Shared harness for the paper-reproduction benches.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the Grade10 paper (see `DESIGN.md` §4 for the index and `EXPERIMENTS.md`
//! for paper-vs-measured results). This library holds the pieces they
//! share: the evaluation workload matrix, engine configurations sized for
//! laptop-scale runs, and the error metrics.

use grade10_core::attribution::{relative_sampling_error, PerformanceProfile};
use grade10_core::issues::{IssueKind, PerformanceIssue};
use grade10_engines::gas::GasConfig;
use grade10_engines::pregel::PregelConfig;
use grade10_engines::{Algorithm, Dataset, EngineKind, WorkloadSpec};

/// Ground-truth monitoring interval (the paper's 50 ms), in nanoseconds.
pub const GROUND_TRUTH_NS: u64 = 50 * 1_000_000;

/// The downsampling factor the paper recommends (8× → 400 ms monitoring).
pub const DEFAULT_DOWNSAMPLE: usize = 8;

/// Timeslice used by the analyses that do not study upsampling accuracy.
pub const SLICE_NS: u64 = 10 * 1_000_000;

/// The two evaluation datasets, scaled to run the whole matrix in minutes.
pub fn datasets() -> Vec<Dataset> {
    vec![
        Dataset::Rmat { scale: 12, seed: 46 },
        Dataset::Social {
            vertices: 5000,
            seed: 46,
        },
    ]
}

/// The four Graphalytics algorithms of the paper.
pub fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Bfs { root: 0 },
        Algorithm::PageRank { iterations: 8 },
        Algorithm::Wcc,
        Algorithm::Cdlp { iterations: 8 },
    ]
}

/// Giraph-like engine configuration used across experiments: 4 workers,
/// 8 threads on 8 cores, a NIC slow enough that PageRank-class message
/// volumes stall the bounded queue, and a heap small enough for several GC
/// pauses per run — the bottleneck mix §IV-C reports for Giraph.
pub fn giraph_config() -> PregelConfig {
    PregelConfig::default()
}

/// Giraph configuration for Fig. 3: threads < cores so the CPU is never
/// saturated and the *exact-limit* bottleneck (one core per thread) is what
/// tuned rules reveal.
pub fn giraph_fig3_config() -> PregelConfig {
    PregelConfig {
        threads: 6,
        cores: 8.0,
        // Slower NIC than the default so message production outpaces the
        // drain and region ③ (bursty queue stalls) appears.
        net_bps: 7.0e6,
        ..PregelConfig::default()
    }
}

/// PowerGraph-like engine configuration: same cluster, no GC, no bounded
/// queue, generous NIC (network impact stays small, §IV-C).
pub fn powergraph_config() -> GasConfig {
    GasConfig::default()
}

/// The eight Giraph workloads (2 datasets × 4 algorithms).
pub fn giraph_matrix() -> Vec<WorkloadSpec> {
    matrix(|| EngineKind::Giraph(giraph_config()))
}

/// The eight PowerGraph workloads.
pub fn powergraph_matrix() -> Vec<WorkloadSpec> {
    matrix(|| EngineKind::PowerGraph(powergraph_config()))
}

fn matrix(engine: impl Fn() -> EngineKind) -> Vec<WorkloadSpec> {
    let mut specs = Vec::new();
    for dataset in datasets() {
        for algorithm in algorithms() {
            specs.push(WorkloadSpec {
                dataset,
                algorithm,
                engine: engine(),
            });
        }
    }
    specs
}

/// Table II error metric: relative sampling error of CPU usage, aggregated
/// over all machines — the sum of absolute differences between the
/// upsampled consumption and the 50 ms ground truth, as a fraction of total
/// CPU consumption. `profile` must have been built with a 50 ms slice.
/// Degenerate inputs follow `relative_sampling_error`'s convention: a
/// zero-truth, nonzero-upsample comparison scores `inf` (phantom mass is
/// not a perfect match), zero-vs-zero scores 0.
pub fn cpu_sampling_error(
    profile: &PerformanceProfile,
    ground_truth: &[grade10_cluster::ResourceSeries],
) -> f64 {
    let mut upsampled_all = Vec::new();
    let mut truth_all = Vec::new();
    for (r, res) in profile.resources.iter().enumerate() {
        if res.kind != "cpu" {
            continue;
        }
        let truth = ground_truth
            .iter()
            .find(|s| s.spec.kind.name() == "cpu" && Some(s.spec.machine) == res.machine)
            .expect("ground truth series for cpu");
        let n = profile.consumption[r].len().min(truth.samples.len());
        upsampled_all.extend_from_slice(&profile.consumption[r][..n]);
        truth_all.extend_from_slice(&truth.samples[..n]);
    }
    relative_sampling_error(&upsampled_all, &truth_all)
}

/// Looks up the reduction a sweep reported for one resource kind, 0 if
/// below threshold.
pub fn reduction_for(issues: &[PerformanceIssue], kind_name: &str) -> f64 {
    issues
        .iter()
        .find(|i| match &i.kind {
            IssueKind::ConsumableBottleneck { resource_kind }
            | IssueKind::BlockingBottleneck { resource_kind } => resource_kind == kind_name,
            IssueKind::Imbalance { .. } => false,
        })
        .map(|i| i.reduction)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_have_eight_workloads() {
        assert_eq!(giraph_matrix().len(), 8);
        assert_eq!(powergraph_matrix().len(), 8);
        let names: std::collections::BTreeSet<String> =
            giraph_matrix().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 8, "workload names must be distinct");
    }

    #[test]
    fn fig3_config_leaves_cpu_headroom() {
        let cfg = giraph_fig3_config();
        assert!((cfg.threads as f64) < cfg.cores);
    }
}
