//! Figure 6 — discovery of the PowerGraph synchronization bug (§IV-D).
//!
//! Runs CDLP on the PowerGraph-like engine with the synchronization bug
//! enabled (its default), then uses Grade10's imbalance tooling the way the
//! paper's authors did: per-worker gather-thread durations for an affected
//! Gather step, outlier detection against each worker's peers, and the
//! estimated step slowdown caused by the outliers.
//!
//! Paper shape to reproduce: per-worker medians differ (poor workload
//! distribution); occasionally one thread runs far longer than its peers on
//! the same worker (the bug; paper example 2.88× the worker mean, step
//! slowed 20.5 s → 48.7 s = 2.38×); outliers affect ~20 % of non-trivial
//! steps with slowdowns of 1.10–2.50×. As validation, the injected bug
//! schedule is compared against what the analysis recovers.

use grade10_bench::powergraph_config;
use grade10_engines::gas::{GasConfig, SyncBugConfig};
use grade10_core::issues::imbalance::{imbalance_groups, GroupDetail};
use grade10_core::report::Table;
use grade10_engines::workload::EnginePhases;
use grade10_engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadSpec};

/// Outlier threshold: a thread counts as an outlier at 2.2× its peers'
/// median, comfortably above the engine's organic per-thread jitter.
const OUTLIER_FACTOR: f64 = 2.2;

/// Steps shorter than this are "trivial" and excluded from the statistics
/// (the paper uses > 1 s at testbed scale; our simulated steps are
/// smaller).
const NON_TRIVIAL_NS: u64 = 200 * 1_000_000;

fn main() {
    let spec = WorkloadSpec {
        dataset: Dataset::Social {
            vertices: 5000,
            seed: 46,
        },
        algorithm: Algorithm::Cdlp { iterations: 15 },
        engine: EngineKind::PowerGraph(GasConfig {
            // More pronounced injections for the detailed view: the paper's
            // example outlier ran 2.88x the mean thread of its worker.
            sync_bug: Some(SyncBugConfig {
                probability: 0.2,
                extra_min: 0.5,
                extra_max: 2.2,
            }),
            ..powergraph_config()
        }),
    };
    let run = run_workload(&spec);
    let phases = match run.phases {
        EnginePhases::Gas(p) => p,
        _ => unreachable!(),
    };

    println!("=== Figure 6: gather-thread durations and the synchronization bug ===");
    println!("workload: {}\n", spec.name());

    let groups = imbalance_groups(&run.model, &run.trace, phases.gather_thread);

    // Pick the gather step with the largest outlier slowdown for the
    // detailed view (the paper shows one such step).
    let detailed = groups
        .iter()
        .max_by(|a, b| {
            a.outliers(OUTLIER_FACTOR)
                .slowdown
                .total_cmp(&b.outliers(OUTLIER_FACTOR).slowdown)
        })
        .expect("at least one gather step");
    let iter_key = run.trace.instance(detailed.scope).key;
    println!(
        "(detail) Gather step of iteration {iter_key}: thread durations per worker"
    );
    print_group(detailed);
    let rep = detailed.outliers(OUTLIER_FACTOR);
    println!(
        "outliers: {}; step duration {:.2}s vs {:.2}s without outliers -> slowdown {:.2}x",
        rep.outliers.len(),
        rep.max_duration as f64 / 1e9,
        rep.max_without_outliers as f64 / 1e9,
        rep.slowdown
    );
    if let Some(&(_, machine, dur)) = rep.outliers.first() {
        let mean_on_machine: f64 = {
            let ds: Vec<f64> = detailed
                .members
                .iter()
                .filter(|&&(_, m, _)| m == machine)
                .map(|&(_, _, d)| d as f64)
                .collect();
            ds.iter().sum::<f64>() / ds.len() as f64
        };
        println!(
            "slowest outlier on worker {:?}: {:.2}x the mean thread of that worker \
             (paper example: 2.88x)",
            machine.unwrap_or(0),
            dur as f64 / mean_on_machine
        );
    }

    // Aggregate statistics over all non-trivial gather steps.
    let mut affected = 0usize;
    let mut non_trivial = 0usize;
    let mut slowdowns = Vec::new();
    for g in &groups {
        if g.max() < NON_TRIVIAL_NS {
            continue;
        }
        non_trivial += 1;
        let rep = g.outliers(OUTLIER_FACTOR);
        // A step counts as affected only when its outliers actually extend
        // it — an outlier that is not the step's critical thread costs
        // nothing.
        if !rep.outliers.is_empty() && rep.slowdown > 1.05 {
            affected += 1;
            slowdowns.push(rep.slowdown);
        }
    }
    slowdowns.sort_by(f64::total_cmp);
    println!(
        "\n(aggregate) {affected} of {non_trivial} non-trivial gather steps show \
         outlier threads (paper: ~20% of steps)"
    );
    if !slowdowns.is_empty() {
        println!(
            "outlier-induced step slowdowns: {:.2}x - {:.2}x (paper: 1.10-2.50x)",
            slowdowns.first().unwrap(),
            slowdowns.last().unwrap()
        );
    }

    // Validation against the injected ground truth.
    println!(
        "\n(validation) engine injected {} sync-bug events; iterations: {:?}",
        run.injected_bugs.len(),
        run.injected_bugs
            .iter()
            .map(|b| b.iteration)
            .collect::<Vec<_>>()
    );
    let mut recovered = 0usize;
    for bug in &run.injected_bugs {
        let hit = groups.iter().any(|g| {
            run.trace.instance(g.scope).key == bug.iteration as u32
                && g.outliers(OUTLIER_FACTOR).outliers.iter().any(|&(_, m, _)| {
                    m == Some(bug.machine as u16)
                })
        });
        if hit {
            recovered += 1;
        }
    }
    println!(
        "imbalance analysis recovered {recovered}/{} injections at the {OUTLIER_FACTOR}x \
         threshold (large injections are found; injections within organic jitter are not)",
        run.injected_bugs.len()
    );
}

fn print_group(g: &GroupDetail) {
    let mut machines: Vec<Option<u16>> = g.members.iter().map(|&(_, m, _)| m).collect();
    machines.sort_unstable();
    machines.dedup();
    let mut table = Table::new(&["worker", "thread durations (s)", "median (s)"]);
    for m in machines {
        let mut ds: Vec<f64> = g
            .members
            .iter()
            .filter(|&&(_, mm, _)| mm == m)
            .map(|&(_, _, d)| d as f64 / 1e9)
            .collect();
        ds.sort_by(f64::total_cmp);
        let median = ds[ds.len() / 2];
        table.row(&[
            format!("{}", m.unwrap_or(0)),
            ds.iter()
                .map(|d| format!("{d:.2}"))
                .collect::<Vec<_>>()
                .join(" "),
            format!("{median:.2}"),
        ]);
    }
    println!("{}", table.render());
}
