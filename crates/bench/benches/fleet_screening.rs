//! Fleet screening — the methodology that found the bug (§IV-D).
//!
//! "Grade10 is especially useful in identifying this bug, because
//! Grade10's low overhead and automated process make it feasible to
//! characterize the performance of many jobs, and thus find performance
//! issues that occur only sporadically." This harness does exactly that:
//! it screens a fleet of CDLP jobs (different seeds — different days of
//! production), runs only the cheap imbalance/outlier analysis on each,
//! and surfaces the jobs worth a human's attention. The wall-clock cost of
//! the screening itself is printed at the end: the whole point is that
//! this is cheap enough to run on everything.

use std::time::Instant;

use grade10_bench::powergraph_config;
use grade10_core::issues::imbalance::imbalance_groups;
use grade10_core::report::Table;
use grade10_engines::gas::GasConfig;
use grade10_engines::workload::EnginePhases;
use grade10_engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadSpec};

const OUTLIER_FACTOR: f64 = 2.2;
const NON_TRIVIAL_NS: u64 = 200 * 1_000_000;

fn main() {
    println!("=== Fleet screening: 8 CDLP jobs, outlier analysis only ===\n");
    let mut table = Table::new(&[
        "job",
        "gather steps",
        "affected steps",
        "worst slowdown",
        "injected (ground truth)",
    ]);

    let mut affected_jobs = 0usize;
    let mut total_injected = 0usize;
    let screen_start = Instant::now();
    let mut sim_seconds = 0.0;
    for job in 0..8u64 {
        let seed = 100 + job * 17;
        let run = run_workload(&WorkloadSpec {
            dataset: Dataset::Social {
                vertices: 4000,
                seed,
            },
            algorithm: Algorithm::Cdlp { iterations: 10 },
            engine: EngineKind::PowerGraph(GasConfig {
                seed,
                ..powergraph_config()
            }),
        });
        sim_seconds += run.sim.end_time.as_secs_f64();
        let phases = match run.phases {
            EnginePhases::Gas(p) => p,
            _ => unreachable!(),
        };
        let groups = imbalance_groups(&run.model, &run.trace, phases.gather_thread);
        let mut affected = 0usize;
        let mut worst = 1.0f64;
        let mut steps = 0usize;
        for g in &groups {
            if g.max() < NON_TRIVIAL_NS {
                continue;
            }
            steps += 1;
            let rep = g.outliers(OUTLIER_FACTOR);
            if !rep.outliers.is_empty() && rep.slowdown > 1.05 {
                affected += 1;
                worst = worst.max(rep.slowdown);
            }
        }
        if affected > 0 {
            affected_jobs += 1;
        }
        total_injected += run.injected_bugs.len();
        table.row(&[
            format!("cdlp-{seed}"),
            format!("{steps}"),
            format!("{affected}"),
            if affected > 0 {
                format!("{worst:.2}x")
            } else {
                "-".to_string()
            },
            format!("{}", run.injected_bugs.len()),
        ]);
    }
    let wall = screen_start.elapsed().as_secs_f64();
    println!("{}", table.render());
    println!(
        "{affected_jobs} of 8 jobs show sporadic gather stragglers ({total_injected} \
         sync-bug events injected across the fleet)."
    );
    println!(
        "Screening cost: {wall:.1}s of analysis for {sim_seconds:.0}s of simulated \
         execution — cheap enough to run on every production job, which is how the \
         paper's authors caught a bug that any single run could miss."
    );
}
