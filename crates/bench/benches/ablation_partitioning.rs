//! Ablation: how the partitioning strategy shapes the bottleneck and
//! imbalance profile.
//!
//! Not a paper figure — this isolates one design choice per engine that the
//! paper's evaluation holds fixed:
//!
//! * Giraph-like: hash partitioning (balances vertices, not edges) vs
//!   range-by-edges partitioning (balances edges). The compute-thread
//!   imbalance Grade10 estimates should shrink under the edge-balanced
//!   partitioner.
//! * PowerGraph-like: greedy vertex-cut vs random edge placement. Random
//!   placement inflates the replication factor and hence replica-sync
//!   traffic and runtime.
//! * Giraph-like: message combiners on/off. Combiners shrink the remote
//!   message volume, which empties the bounded queues — the lever the
//!   paper's conclusion points at for Giraph's communication subsystem.

use grade10_core::issues::imbalance::imbalance_issue;
use grade10_core::parse::build_execution_trace;
use grade10_core::replay::ReplayConfig;
use grade10_core::report::Table;
use grade10_engines::bridge::to_raw_events;
use grade10_engines::gas::run_gas;
use grade10_engines::models::{gas_model, pregel_model};
use grade10_engines::pregel::run_pregel;
use grade10_engines::{Algorithm, Dataset};
use grade10_graph::partition::{EdgeCutPartition, VertexCutPartition};

fn main() {
    let dataset = Dataset::Rmat { scale: 12, seed: 46 };
    let graph = dataset.generate();
    let algorithm = Algorithm::PageRank { iterations: 6 };

    println!("=== Ablation: partitioning strategies ({}) ===\n", dataset.name());

    // ---- Giraph-like: hash vs range-by-edges ----
    let pcfg = grade10_engines::pregel::PregelConfig::default();
    let (model, phases) = pregel_model();
    let mut table = Table::new(&[
        "edge-cut strategy",
        "edge balance (max/mean)",
        "thread imbalance impact",
        "runtime",
    ]);
    for (name, part) in [
        ("hash (Giraph default)", EdgeCutPartition::hash(&graph, pcfg.num_parts())),
        (
            "range-by-edges",
            EdgeCutPartition::range_by_edges(&graph, pcfg.num_parts()),
        ),
    ] {
        let work = algorithm.run(&graph, &part);
        let sim = run_pregel(&work, graph.num_vertices(), graph.num_edges(), &pcfg);
        let trace = build_execution_trace(&model, &to_raw_events(&sim.logs)).unwrap();
        let imb = imbalance_issue(&model, &trace, phases.thread, &ReplayConfig::default());
        table.row(&[
            name.to_string(),
            format!("{:.2}", part.edge_balance(&graph)),
            format!("{:.1}%", 100.0 * imb.reduction),
            format!("{:.2}s", sim.end_time.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());

    // ---- PowerGraph-like: greedy vs random vertex-cut ----
    let gcfg = grade10_engines::gas::GasConfig {
        sync_bug: None, // isolate the partitioning effect
        ..Default::default()
    };
    let (gmodel, gphases) = gas_model();
    let mut table = Table::new(&[
        "vertex-cut strategy",
        "replication factor",
        "gather imbalance impact",
        "runtime",
    ]);
    for (name, part) in [
        ("greedy (PowerGraph)", VertexCutPartition::greedy(&graph, gcfg.num_parts())),
        (
            "random placement",
            VertexCutPartition::random(&graph, gcfg.num_parts(), 99),
        ),
    ] {
        let work = algorithm.run(&graph, &part);
        let run = run_gas(&work, graph.num_edges(), &gcfg);
        let trace = build_execution_trace(&gmodel, &to_raw_events(&run.sim.logs)).unwrap();
        let imb = imbalance_issue(
            &gmodel,
            &trace,
            gphases.gather_thread,
            &ReplayConfig::default(),
        );
        table.row(&[
            name.to_string(),
            format!("{:.2}", part.replication_factor()),
            format!("{:.1}%", 100.0 * imb.reduction),
            format!("{:.2}s", run.sim.end_time.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected: range-by-edges improves the Giraph edge balance and lowers the \
         thread-imbalance impact; random vertex cuts raise the replication factor \
         (more sync traffic) versus greedy."
    );

    // ---- Giraph-like: message combiners on/off ----
    let mut table = Table::new(&[
        "combiners",
        "remote volume",
        "queue stall time",
        "runtime",
    ]);
    for (name, ratio) in [("off (Giraph default)", 1.0), ("on (0.3x volume)", 0.3)] {
        let cfg = grade10_engines::pregel::PregelConfig {
            combiner_ratio: ratio,
            ..Default::default()
        };
        let part = EdgeCutPartition::hash(&graph, cfg.num_parts());
        let work = algorithm.run(&graph, &part);
        let sim = run_pregel(&work, graph.num_vertices(), graph.num_edges(), &cfg);
        table.row(&[
            name.to_string(),
            format!("{:.0}%", 100.0 * ratio),
            format!("{}", sim.stats.queue_stall_time),
            format!("{:.2}s", sim.end_time.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected: combiners drain the bounded queues (stall time collapses) and \
         shorten the run — quantifying the communication-subsystem improvement the \
         paper's Giraph findings motivate."
    );
}
