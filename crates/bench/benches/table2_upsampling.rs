//! Table II — accuracy of the upsampling process.
//!
//! Runs PageRank on both simulated engines with 50 ms ground-truth
//! monitoring, downsamples the monitoring data by factors 2×–64×
//! (100 ms – 3200 ms), upsamples it back to 50 ms timeslices with three
//! configurations — the constant strawman, Grade10 with untuned rules, and
//! Grade10 with tuned rules — and reports the relative sampling error of
//! CPU usage against the ground truth, exactly the paper's Table II metric.
//!
//! Paper shape to reproduce: the strawman degrades to ~83–99 % error at
//! 64×; Giraph untuned is comparably poor at 64× (91 %) and tuned improves
//! markedly (57 % at 64×, ≤ ~19 % at 8×); the fully tuned PowerGraph model
//! stays lowest (≤ ~15 % even at 64×).
//!
//! Error convention: a zero-truth, nonzero-upsample comparison renders as
//! `inf` rather than a flattering 0 (phantom mass is unboundedly wrong) —
//! it cannot occur here because PageRank burns CPU in every window, but a
//! workload with genuinely idle ground truth would now show it honestly.

use grade10_bench::{cpu_sampling_error, giraph_config, powergraph_config, GROUND_TRUTH_NS};
use grade10_core::attribution::UpsampleMode;
use grade10_core::report::Table;
use grade10_engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadSpec};

fn main() {
    let dataset = Dataset::Rmat { scale: 12, seed: 46 };
    let algorithm = Algorithm::PageRank { iterations: 8 };

    println!("=== Table II: relative sampling error of CPU usage (%) ===");
    println!("(PageRank on {}; ground truth at 50 ms)\n", dataset.name());

    let giraph = run_workload(&WorkloadSpec {
        dataset,
        algorithm,
        engine: EngineKind::Giraph(giraph_config()),
    });
    let powergraph = run_workload(&WorkloadSpec {
        dataset,
        algorithm,
        engine: EngineKind::PowerGraph(powergraph_config()),
    });

    let mut table = Table::new(&[
        "granularity",
        "ratio",
        "samples/s/resource",
        "constant (strawman)",
        "Giraph untuned",
        "Giraph tuned",
        "PowerGraph tuned",
    ]);

    for factor in [2usize, 4, 8, 16, 32, 64] {
        let err = |run: &grade10_engines::WorkloadRun,
                   rules: &grade10_core::model::RuleSet,
                   mode: UpsampleMode| {
            let profile = run.build_profile(rules, factor, GROUND_TRUTH_NS, mode);
            100.0 * cpu_sampling_error(&profile, run.ground_truth())
        };
        let strawman = err(&giraph, &giraph.rules_tuned, UpsampleMode::Constant);
        let untuned = err(&giraph, &giraph.rules_untuned, UpsampleMode::DemandGuided);
        let tuned = err(&giraph, &giraph.rules_tuned, UpsampleMode::DemandGuided);
        let pg = err(
            &powergraph,
            &powergraph.rules_tuned,
            UpsampleMode::DemandGuided,
        );
        table.row(&[
            format!("{} ms", 50 * factor),
            format!("{factor}x"),
            format!("{:.1}", 1000.0 / (50.0 * factor as f64)),
            format!("{strawman:.2}"),
            format!("{untuned:.2}"),
            format!("{tuned:.2}"),
            format!("{pg:.2}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape (paper): errors grow with the ratio; tuned models beat the \
         strawman and untuned rules at every ratio; the PowerGraph model stays lowest; \
         the paper recommends <= 8x for a good accuracy/overhead balance. The samples/s \
         column is the monitoring-overhead side of that trade-off (R4): 8x coarser \
         monitoring is 8x less data per resource for, with tuned models, a modest \
         accuracy loss."
    );
}
