//! Scaling sweep: how the bottleneck profile shifts as the cluster grows.
//!
//! Not a paper figure — it extends §IV-C along the cluster-size axis. With
//! a fixed input graph, adding machines shrinks each worker's compute share
//! while the *fraction* of messages that must cross the network grows
//! (under hash partitioning, `(M−1)/M` of cross-partition traffic is
//! machine-remote). Grade10's what-if estimates should show the CPU impact
//! falling while communication-side impacts (message-queue stalls) emerge —
//! the classic compute→communication crossover of scaling out a fixed-size
//! problem.

use grade10_bench::{reduction_for, DEFAULT_DOWNSAMPLE, SLICE_NS};
use grade10_core::attribution::UpsampleMode;
use grade10_core::bottleneck::{BottleneckConfig, BottleneckReport};
use grade10_core::issues::{detect_bottleneck_issues, IssueConfig};
use grade10_core::replay::ReplayConfig;
use grade10_core::report::Table;
use grade10_engines::pregel::PregelConfig;
use grade10_engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadSpec};

fn main() {
    println!("=== Scaling sweep: PageRank on the Giraph-like engine, fixed input ===\n");
    let mut table = Table::new(&[
        "machines",
        "runtime",
        "cpu impact",
        "msgq impact",
        "queue stall (thread-s)",
        "remote msg fraction",
    ]);

    for machines in [2usize, 4, 8] {
        let cfg = PregelConfig {
            machines,
            ..Default::default()
        };
        let remote_frac = cfg.machine_remote_fraction();
        let spec = WorkloadSpec {
            dataset: Dataset::Rmat { scale: 12, seed: 46 },
            algorithm: Algorithm::PageRank { iterations: 8 },
            engine: EngineKind::Giraph(cfg),
        };
        let run = run_workload(&spec);
        let profile = run.build_profile(
            &run.rules_tuned,
            DEFAULT_DOWNSAMPLE,
            SLICE_NS,
            UpsampleMode::DemandGuided,
        );
        let report = BottleneckReport::build(&run.trace, &profile, &BottleneckConfig::default());
        let issues = detect_bottleneck_issues(
            &run.model,
            &run.trace,
            &profile,
            &report,
            &ReplayConfig::default(),
            &IssueConfig {
                floor_factor: 0.25,
                min_reduction: 0.0,
            },
        );
        table.row(&[
            format!("{machines}"),
            format!("{:.2}s", run.sim.end_time.as_secs_f64()),
            format!("{:.1}%", 100.0 * reduction_for(&issues, "cpu")),
            format!("{:.1}%", 100.0 * reduction_for(&issues, "msgq")),
            format!("{:.1}", run.sim.stats.queue_stall_time.as_secs_f64()),
            format!("{:.0}%", 100.0 * remote_frac),
        ]);
        println!("finished {machines} machines");
    }
    println!("\n{}", table.render());
    println!(
        "Expected crossover: scaling out a fixed input shifts the limiter from \
         compute toward communication — CPU impact falls monotonically with machine \
         count, and message-queue bottlenecks appear once per-worker message \
         production outruns the fixed per-machine NIC (here between 2 and 4 \
         machines). At still larger clusters both shares shrink in absolute terms \
         as the fixed input is spread ever thinner."
    );
}
