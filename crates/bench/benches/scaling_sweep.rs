//! Scaling sweep: how the bottleneck profile shifts as the cluster grows.
//!
//! Not a paper figure — it extends §IV-C along the cluster-size axis. With
//! a fixed input graph, adding machines shrinks each worker's compute share
//! while the *fraction* of messages that must cross the network grows
//! (under hash partitioning, `(M−1)/M` of cross-partition traffic is
//! machine-remote). Grade10's what-if estimates should show the CPU impact
//! falling while communication-side impacts (message-queue stalls) emerge —
//! the classic compute→communication crossover of scaling out a fixed-size
//! problem.

use std::time::{Duration, Instant};

use grade10_bench::{reduction_for, DEFAULT_DOWNSAMPLE, SLICE_NS};
use grade10_core::attribution::UpsampleMode;
use grade10_core::bottleneck::{BottleneckConfig, BottleneckReport};
use grade10_core::config::Parallelism;
use grade10_core::issues::{detect_bottleneck_issues, IssueConfig};
use grade10_core::pipeline::CharacterizationConfig;
use grade10_core::replay::ReplayConfig;
use grade10_core::report::Table;
use grade10_core::supervise::{characterize_events_supervised, ChaosMode, ChaosPoint};
use grade10_core::trace::{IngestConfig, MILLIS};
use grade10_engines::bridge::{to_raw_events, to_raw_series};
use grade10_engines::pregel::PregelConfig;
use grade10_engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadSpec};

fn main() {
    supervised_pool_sweep();
    println!("=== Scaling sweep: PageRank on the Giraph-like engine, fixed input ===\n");
    let mut table = Table::new(&[
        "machines",
        "runtime",
        "cpu impact",
        "msgq impact",
        "queue stall (thread-s)",
        "remote msg fraction",
    ]);

    for machines in [2usize, 4, 8] {
        let cfg = PregelConfig {
            machines,
            ..Default::default()
        };
        let remote_frac = cfg.machine_remote_fraction();
        let spec = WorkloadSpec {
            dataset: Dataset::Rmat { scale: 12, seed: 46 },
            algorithm: Algorithm::PageRank { iterations: 8 },
            engine: EngineKind::Giraph(cfg),
        };
        let run = run_workload(&spec);
        let profile = run.build_profile(
            &run.rules_tuned,
            DEFAULT_DOWNSAMPLE,
            SLICE_NS,
            UpsampleMode::DemandGuided,
        );
        let report = BottleneckReport::build(&run.trace, &profile, &BottleneckConfig::default());
        let issues = detect_bottleneck_issues(
            &run.model,
            &run.trace,
            &profile,
            &report,
            &ReplayConfig::default(),
            &IssueConfig {
                floor_factor: 0.25,
                min_reduction: 0.0,
            },
        );
        table.row(&[
            format!("{machines}"),
            format!("{:.2}s", run.sim.end_time.as_secs_f64()),
            format!("{:.1}%", 100.0 * reduction_for(&issues, "cpu")),
            format!("{:.1}%", 100.0 * reduction_for(&issues, "msgq")),
            format!("{:.1}", run.sim.stats.queue_stall_time.as_secs_f64()),
            format!("{:.0}%", 100.0 * remote_frac),
        ]);
        println!("finished {machines} machines");
    }
    println!("\n{}", table.render());
    println!(
        "Expected crossover: scaling out a fixed input shifts the limiter from \
         compute toward communication — CPU impact falls monotonically with machine \
         count, and message-queue bottlenecks appear once per-worker message \
         production outruns the fixed per-machine NIC (here between 2 and 4 \
         machines). At still larger clusters both shares shrink in absolute terms \
         as the fixed input is spread ever thinner."
    );
}

/// Supervised pool scaling: an 8-machine run whose per-machine attribution
/// units each stall 60 ms (chaos injection standing in for the slow,
/// latency-bound units real degraded collections produce — exactly what
/// per-unit deadlines exist for). Sequential supervision pays the stalls
/// end to end; the worker pool overlaps them, so wall-clock falls roughly
/// as `ceil(units / width) × stall` even on a single core. Acceptance:
/// ≥ 1.5× at 4 threads.
fn supervised_pool_sweep() {
    println!("=== Supervised pool scaling: 8 machines, 60 ms per-unit stalls ===\n");
    let machines = 8usize;
    let spec = WorkloadSpec {
        dataset: Dataset::Rmat { scale: 9, seed: 46 },
        algorithm: Algorithm::PageRank { iterations: 2 },
        engine: EngineKind::Giraph(PregelConfig {
            machines,
            threads: 2,
            cores: 2.0,
            ..Default::default()
        }),
    };
    let run = run_workload(&spec);
    let events = to_raw_events(&run.sim.logs);
    let monitoring = to_raw_series(&run.sim.series, 8);

    let mut base = CharacterizationConfig::default();
    base.profile.slice = 10 * MILLIS;
    base.ingest = IngestConfig::lenient();
    base.supervise.parallelism = Parallelism::Always;
    for m in 0..machines as u16 {
        base.supervise.chaos.push(ChaosPoint {
            unit: format!("attribute/machine {m}"),
            mode: ChaosMode::Stall(Duration::from_millis(60)),
        });
    }

    let mut table = Table::new(&["pool width", "wall clock", "speedup vs 1", "incidents"]);
    let mut baseline = None;
    let mut speedup_at_4 = 0.0;
    for width in [1usize, 2, 4, 8] {
        let mut cfg = base.clone();
        cfg.supervise.threads = Some(width);
        cfg.profile.threads = Some(width);
        let t0 = Instant::now();
        let p = characterize_events_supervised(
            &run.model,
            &run.rules_tuned,
            &events,
            &monitoring,
            &cfg,
        )
        .expect("supervised run");
        let dt = t0.elapsed().as_secs_f64();
        let base_dt = *baseline.get_or_insert(dt);
        let speedup = base_dt / dt;
        if width == 4 {
            speedup_at_4 = speedup;
        }
        table.row(&[
            format!("{width}"),
            format!("{:.0} ms", dt * 1e3),
            format!("{speedup:.2}x"),
            format!("{}", p.incidents.len()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Stalled units overlap on the pool instead of serializing the supervisor: \
         at width 4 the 8 × 60 ms of injected latency costs ~2 rounds, not 8. \
         Speedup at 4 threads: {speedup_at_4:.2}x (acceptance floor 1.5x). \
         Output is byte-identical at every width (merge order is unit-key order; \
         see tests/supervision_determinism.rs).\n"
    );
}
