//! Overhead of the observability layer (`grade10_core::obs`).
//!
//! Acceptance criteria for the self-characterization feature: the span
//! recorder must cost ≤ 5% on the pipeline benchmarks when a session is
//! recording, and ~0 when disabled (the instrumented functions only pay a
//! thread-local read). This bench measures both the raw per-span cost and
//! the end-to-end `build_profile` delta, and exits non-zero if the
//! recorded pipeline run exceeds the 5% budget so CI can catch a
//! regression in the hot path.

use std::hint::black_box;
use std::time::Instant;

use grade10_cluster::SimDuration;
use grade10_core::attribution::{build_profile, ProfileConfig};
use grade10_core::model::{
    AttributionRule, ExecutionModel, ExecutionModelBuilder, Repeat, RuleSet,
};
use grade10_core::obs;
use grade10_core::report::Table;
use grade10_core::trace::{ExecutionTrace, ResourceInstance, ResourceTrace, TraceBuilder, MILLIS};

/// A compact BSP trace: enough rows and slices that `build_profile` does
/// real work, small enough that the median over many runs is quick.
fn synthetic(steps: usize) -> (ExecutionModel, RuleSet, ExecutionTrace, ResourceTrace) {
    let machines = 4usize;
    let threads = 8usize;
    let mut b = ExecutionModelBuilder::new("job");
    let root = b.root();
    let step = b.child(root, "step", Repeat::Sequential);
    let task = b.child(step, "task", Repeat::Parallel);
    let model = b.build();
    let rules = RuleSet::new().rule(task, "cpu", AttributionRule::Variable(1.0));

    let mut tb = TraceBuilder::new(&model);
    let step_ms = 100u64;
    let total = steps as u64 * step_ms;
    tb.add_phase(&[("job", 0)], 0, total * MILLIS, None, None).unwrap();
    for s in 0..steps {
        let t0 = s as u64 * step_ms;
        tb.add_phase(
            &[("job", 0), ("step", s as u32)],
            t0 * MILLIS,
            (t0 + step_ms) * MILLIS,
            None,
            None,
        )
        .unwrap();
        for t in 0..machines * threads {
            let d = step_ms - (t as u64 % 7) * 5;
            tb.add_phase(
                &[("job", 0), ("step", s as u32), ("task", t as u32)],
                t0 * MILLIS,
                (t0 + d) * MILLIS,
                Some((t / threads) as u16),
                Some((t % threads) as u16),
            )
            .unwrap();
        }
    }
    let trace = tb.build().unwrap();

    let mut rt = ResourceTrace::new();
    for m in 0..machines {
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(m as u16),
            capacity: 8.0,
        });
        let samples: Vec<f64> = (0..total / 400).map(|i| 4.0 + (i % 4) as f64).collect();
        rt.add_series(cpu, 0, 400 * MILLIS, &samples);
    }
    (model, rules, trace, rt)
}

fn time_median_us<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    println!("=== Observability overhead ===\n");

    // 1. Raw span cost, no session: the no-op path every normal run pays.
    // Kept small enough that the recording passes below don't accumulate
    // hundreds of MB of span records in the thread buffer.
    const SPANS: usize = 200_000;
    let disabled_us = time_median_us(5, || {
        for _ in 0..SPANS {
            black_box(obs::span(obs::Stage::Demand));
        }
    });
    // 2. Raw span cost while recording (buffer push per span). Sessions
    // are per-thread; keep one open across the timed runs and discard it.
    let recording = obs::start();
    let enabled_us = time_median_us(5, || {
        for _ in 0..SPANS {
            black_box(obs::span(obs::Stage::Demand));
        }
    });
    let captured = recording.finish();
    assert!(captured.spans.len() >= SPANS, "spans were recorded");

    let mut table = Table::new(&["measurement", "per span"]);
    table.row(&[
        "span, no session (no-op path)".to_string(),
        format!("{:.1}ns", disabled_us * 1e3 / SPANS as f64),
    ]);
    table.row(&[
        "span, recording".to_string(),
        format!("{:.1}ns", enabled_us * 1e3 / SPANS as f64),
    ]);
    println!("{}", table.render());

    // 3. End-to-end: build_profile with and without an active session.
    let (model, rules, trace, rt) = synthetic(50);
    let cfg = ProfileConfig::default();
    let plain_us = time_median_us(20, || build_profile(&model, &rules, &trace, &rt, &cfg));
    let recording = obs::start();
    let recorded_us = time_median_us(20, || build_profile(&model, &rules, &trace, &rt, &cfg));
    let meta = recording.finish();
    assert!(!meta.spans.is_empty(), "pipeline spans were recorded");

    let overhead = recorded_us / plain_us - 1.0;
    let mut table = Table::new(&["build_profile (50 steps)", "median", "overhead"]);
    table.row(&[
        "no session".to_string(),
        format!("{}", SimDuration::from_nanos((plain_us * 1e3) as u64)),
        "-".to_string(),
    ]);
    table.row(&[
        "recording".to_string(),
        format!("{}", SimDuration::from_nanos((recorded_us * 1e3) as u64)),
        format!("{:+.2}%", overhead * 100.0),
    ]);
    println!("{}", table.render());

    // The acceptance budget, with headroom for machine noise: the recorder
    // adds a handful of spans per build, so anything above 5% means the
    // hot path regressed (a lock, an allocation, a syscall per span).
    if overhead > 0.05 {
        eprintln!(
            "FAIL: recording overhead {:.2}% exceeds the 5% budget",
            overhead * 100.0
        );
        std::process::exit(1);
    }
    println!("OK: recording overhead within the 5% budget");
}
