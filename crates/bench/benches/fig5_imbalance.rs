//! Figure 5 — estimated impact of workload imbalance in PowerGraph
//! (§IV-D, first half).
//!
//! Runs the eight PowerGraph workloads and, for each, simulates perfectly
//! balancing the concurrent phases of five key phase types — gather, apply
//! and scatter worker threads, the exchange step, and graph loading —
//! reporting the optimistic makespan reduction per type.
//!
//! Paper shape to reproduce: imbalance accounts for a significant share of
//! execution time (up to 43.7 %), and the Gather step of CDLP is the most
//! affected phase type (38.3–42.7 %).

use grade10_bench::powergraph_matrix;
use grade10_core::issues::imbalance::imbalance_issue;
use grade10_core::replay::ReplayConfig;
use grade10_core::report::Table;
use grade10_engines::workload::EnginePhases;
use grade10_engines::run_workload;

fn main() {
    println!("=== Figure 5: optimistic makespan reduction from perfect balance (%) ===\n");
    let mut table = Table::new(&[
        "workload",
        "gather",
        "apply",
        "scatter",
        "exchange",
        "load",
        "total runtime",
    ]);

    let mut cdlp_gather = Vec::new();
    let mut best_overall: f64 = 0.0;
    for spec in powergraph_matrix() {
        let run = run_workload(&spec);
        let phases = match run.phases {
            EnginePhases::Gas(p) => p,
            _ => unreachable!("matrix is PowerGraph-only"),
        };
        let cfg = ReplayConfig::default();
        let typed = [
            ("gather", phases.gather_thread),
            ("apply", phases.apply_thread),
            ("scatter", phases.scatter_thread),
            ("exchange", phases.exchange),
            ("load", phases.load),
        ];
        let mut row = vec![spec.name()];
        for (name, ty) in typed {
            let issue = imbalance_issue(&run.model, &run.trace, ty, &cfg);
            row.push(format!("{:.1}", 100.0 * issue.reduction));
            best_overall = best_overall.max(issue.reduction);
            if name == "gather" && spec.name().starts_with("cdlp") {
                cdlp_gather.push(issue.reduction);
            }
        }
        row.push(format!("{:.1}s", run.sim.end_time.as_secs_f64()));
        table.row(&row);
        println!("finished {}", spec.name());
    }
    println!("\n{}", table.render());
    println!(
        "Largest single imbalance impact observed: {:.1}% (paper: up to 43.7%)",
        100.0 * best_overall
    );
    println!(
        "CDLP Gather imbalance: {} (paper: 38.3-42.7%, the most affected phase type)",
        cdlp_gather
            .iter()
            .map(|r| format!("{:.1}%", 100.0 * r))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
