//! Figure 3 — impact of attribution rules on resource attribution.
//!
//! Runs PageRank on the Giraph-like engine and analyzes one worker's
//! Compute phase (the sum over its compute threads), with and without
//! tuned attribution rules, reproducing the paper's three observations:
//!
//! * region ① (steady compute): with *no* rules Grade10 overestimates CPU
//!   demand far above the thread count and rarely flags a CPU bottleneck;
//!   with tuned rules (one core per active thread, `Exact`) demand never
//!   exceeds the thread count and threads are CPU-bottlenecked whenever
//!   not blocked;
//! * region ② (GC pause): demand collapses while the collector runs;
//! * region ③ (full message queues): short bursts of compute activity as
//!   the queue drains.

use grade10_bench::{giraph_fig3_config, DEFAULT_DOWNSAMPLE, SLICE_NS};
use grade10_core::attribution::{PerformanceProfile, UpsampleMode};
use grade10_core::bottleneck::{consumable_bottlenecks, BottleneckConfig};
use grade10_core::model::RuleSet;
use grade10_core::report::{render_presence, render_series};
use grade10_core::trace::ResourceIdx;
use grade10_engines::models::PregelPhases;
use grade10_engines::workload::EnginePhases;
use grade10_engines::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};

const MACHINE: u16 = 0;
const CHART_WIDTH: usize = 100;

struct Analysis {
    usage: Vec<f64>,
    demand: Vec<f64>,
    bottleneck: Vec<bool>,
    active: Vec<bool>,
}

/// Aggregates the Compute phase of `MACHINE` over all supersteps.
fn analyze(run: &WorkloadRun, phases: &PregelPhases, rules: &RuleSet) -> Analysis {
    let profile: PerformanceProfile =
        run.build_profile(rules, DEFAULT_DOWNSAMPLE, SLICE_NS, UpsampleMode::DemandGuided);
    let cpu = profile
        .resources
        .iter()
        .position(|r| r.kind == "cpu" && r.machine == Some(MACHINE))
        .map(|i| ResourceIdx(i as u32))
        .expect("cpu resource");
    let capacity = profile.resources[cpu.0 as usize].capacity;
    let ns = profile.grid.num_slices();
    let (mut usage, mut demand, mut active) = (vec![0.0; ns], vec![0.0; ns], vec![false; ns]);

    // All compute containers on the chosen machine.
    let computes: Vec<_> = run
        .trace
        .instances_of_type(phases.compute)
        .filter(|i| i.machine == Some(MACHINE))
        .map(|i| i.id)
        .collect();
    for &c in &computes {
        let u = profile.aggregate_usage(&run.trace, c, cpu);
        let (exact, var) = profile.aggregate_demand(&run.trace, c, cpu);
        for s in 0..ns {
            usage[s] += u[s];
            // A Variable phase demands "as much as possible": its nominal
            // demand is the full capacity, weighted.
            demand[s] += exact[s] + var[s] * capacity;
            if exact[s] + var[s] > 0.0 {
                active[s] = true;
            }
        }
    }

    // Bottleneck presence: any compute thread of this machine bottlenecked
    // on its CPU in the slice.
    let bns = consumable_bottlenecks(&profile, &BottleneckConfig::default());
    let thread_ids: std::collections::HashSet<_> = computes
        .iter()
        .flat_map(|&c| run.trace.children_of(c).iter().copied())
        .collect();
    let mut bottleneck = vec![false; ns];
    for b in &bns {
        if b.resource == cpu && thread_ids.contains(&b.instance) {
            for &s in &b.slices {
                bottleneck[s] = true;
            }
        }
    }
    Analysis {
        usage,
        demand,
        bottleneck,
        active,
    }
}

fn report(label: &str, a: &Analysis, threads: usize, cores: f64) {
    let peak_demand = a.demand.iter().cloned().fold(0.0, f64::max);
    let active_slices = a.active.iter().filter(|&&x| x).count().max(1);
    let bottlenecked = a.bottleneck.iter().filter(|&&x| x).count();
    println!("--- {label} ---");
    println!(
        "peak estimated CPU demand: {peak_demand:.1} cores \
         (threads: {threads}, machine capacity: {cores} cores)"
    );
    println!(
        "CPU-bottlenecked during {:.1}% of the Compute phase's active slices",
        100.0 * bottlenecked as f64 / active_slices as f64
    );
    println!(
        "{}",
        render_series(
            &["usage (cores)", "demand (cores)"],
            &[&a.usage, &a.demand],
            (threads as f64).max(peak_demand.min(4.0 * cores)),
            CHART_WIDTH,
        )
    );
    println!("{}", render_presence("cpu-bottlenecked", &a.bottleneck, CHART_WIDTH));
}

fn main() {
    let cfg = giraph_fig3_config();
    let threads = cfg.threads;
    let cores = cfg.cores;
    let run = run_workload(&WorkloadSpec {
        dataset: Dataset::Rmat { scale: 12, seed: 46 },
        algorithm: Algorithm::PageRank { iterations: 8 },
        engine: EngineKind::Giraph(cfg),
    });
    let phases = match run.phases {
        EnginePhases::Pregel(p) => p,
        _ => unreachable!(),
    };

    println!(
        "=== Figure 3: attributed CPU usage and demand of worker {MACHINE}'s \
         Compute phase ===\n"
    );
    println!(
        "GC pauses: {}; message-queue stall time: {}\n",
        run.sim.stats.gc_pauses.len(),
        run.sim.stats.queue_stall_time
    );

    let untuned = analyze(&run, &phases, &run.rules_untuned.clone());
    report("(a) no attribution rules (implicit Variable 1x)", &untuned, threads, cores);
    let tuned = analyze(&run, &phases, &run.rules_tuned.clone());
    report("(b) tuned attribution rules (Exact: one core per thread)", &tuned, threads, cores);

    let peak_untuned = untuned.demand.iter().cloned().fold(0.0, f64::max);
    let peak_tuned = tuned.demand.iter().cloned().fold(0.0, f64::max);
    println!("Conclusions (paper shape):");
    println!(
        "  untuned demand overestimates: peak {peak_untuned:.1} cores > {threads} threads: {}",
        peak_untuned > threads as f64
    );
    println!(
        "  tuned demand bounded by thread count: peak {peak_tuned:.1} <= {threads}: {}",
        peak_tuned <= threads as f64 + 1e-6
    );
    let frac = |a: &Analysis| {
        let act = a.active.iter().filter(|&&x| x).count().max(1);
        a.bottleneck.iter().filter(|&&x| x).count() as f64 / act as f64
    };
    println!(
        "  tuned finds CPU bottlenecks where untuned misses them: {:.1}% vs {:.1}% of \
         active slices",
        100.0 * frac(&tuned),
        100.0 * frac(&untuned)
    );
}
