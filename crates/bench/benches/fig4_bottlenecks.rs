//! Figure 4 — estimated impact of resource bottlenecks across the
//! evaluation matrix (§IV-C).
//!
//! For each of the 16 workloads (2 datasets × 4 algorithms × 2 systems)
//! this harness runs the full Grade10 pipeline — tuned profile, bottleneck
//! report, what-if replay — and prints the optimistic makespan reduction
//! from removing all bottlenecks on each resource kind.
//!
//! Paper shape to reproduce: Giraph shows substantial CPU impact plus GC
//! and message-queue (blocking) bottlenecks; PowerGraph shows moderate CPU
//! impact, *small* network impact (≤ ~5.5 %), and — by architecture — no
//! GC or message-queue bottlenecks at all.

use grade10_bench::{
    giraph_matrix, powergraph_matrix, reduction_for, DEFAULT_DOWNSAMPLE, SLICE_NS,
};
use grade10_core::attribution::UpsampleMode;
use grade10_core::bottleneck::{BottleneckConfig, BottleneckReport};
use grade10_core::issues::{detect_bottleneck_issues, IssueConfig};
use grade10_core::replay::ReplayConfig;
use grade10_core::report::Table;
use grade10_engines::{run_workload, WorkloadSpec};

fn main() {
    println!("=== Figure 4: optimistic makespan reduction from removing bottlenecks (%) ===\n");
    let mut table = Table::new(&[
        "workload",
        "cpu",
        "network",
        "disk",
        "gc",
        "msg queues",
        "makespan",
    ]);

    let specs: Vec<WorkloadSpec> = giraph_matrix()
        .into_iter()
        .chain(powergraph_matrix())
        .collect();
    for spec in specs {
        let run = run_workload(&spec);
        let profile = run.build_profile(
            &run.rules_tuned,
            DEFAULT_DOWNSAMPLE,
            SLICE_NS,
            UpsampleMode::DemandGuided,
        );
        let report = BottleneckReport::build(&run.trace, &profile, &BottleneckConfig::default());
        // A slice never shrinks below 4× its speed: removing one resource's
        // bottleneck exposes unmodeled limits (memory bandwidth, scheduling
        // overheads) long before a 20× speedup — this caps the optimism of
        // the what-if, like the paper's "until another resource becomes
        // bottlenecked".
        let issue_cfg = IssueConfig {
            floor_factor: 0.25,
            // Report everything; the figure itself shows which impacts are
            // insignificant.
            min_reduction: 0.0,
        };
        let issues = detect_bottleneck_issues(
            &run.model,
            &run.trace,
            &profile,
            &report,
            &ReplayConfig::default(),
            &issue_cfg,
        );
        let network =
            reduction_for(&issues, "net_out").max(reduction_for(&issues, "net_in"));
        table.row(&[
            spec.name(),
            format!("{:.1}", 100.0 * reduction_for(&issues, "cpu")),
            format!("{:.1}", 100.0 * network),
            format!("{:.1}", 100.0 * reduction_for(&issues, "disk")),
            format!("{:.1}", 100.0 * reduction_for(&issues, "gc")),
            format!("{:.1}", 100.0 * reduction_for(&issues, "msgq")),
            format!("{:.1}s", run.sim.end_time.as_secs_f64()),
        ]);
        println!("finished {}", spec.name());
    }
    println!("\n{}", table.render());
    println!(
        "Expected shape (paper): Giraph rows show large CPU impact (paper: 20.0-69.9%) \
         plus GC and message-queue bottlenecks; PowerGraph rows show no GC/queue \
         bottlenecks (no GC, different communication design) and small network impact \
         (paper: <= 5.5%)."
    );
}
