//! Micro-benchmarks of Grade10's own analysis cost.
//!
//! The paper's R4 requires the *monitoring* to be lightweight; these
//! benches additionally quantify that the offline analysis scales well:
//! demand estimation, upsampling + attribution (the full profile build),
//! bottleneck scanning, and replay simulation, as a function of trace size.
//!
//! Uses a self-contained timing harness (median of repeated timed runs
//! after a warmup pass) instead of an external benchmark framework, so the
//! workspace builds with no registry access.

use std::hint::black_box;
use std::time::Instant;

use grade10_core::attribution::{build_profile, ProfileConfig};
use grade10_core::bottleneck::{BottleneckConfig, BottleneckReport};
use grade10_core::model::{
    AttributionRule, ExecutionModel, ExecutionModelBuilder, Repeat, RuleSet,
};
use grade10_core::replay::{replay_original, ReplayConfig};
use grade10_core::report::Table;
use grade10_core::trace::{ExecutionTrace, ResourceInstance, ResourceTrace, TraceBuilder, MILLIS};

/// Builds a synthetic BSP-shaped trace: `steps` sequential steps × 4
/// machines × `threads` parallel tasks, 100 ms each, with one 8-core CPU
/// per machine measured every 400 ms.
fn synthetic(
    steps: usize,
    threads: usize,
) -> (ExecutionModel, RuleSet, ExecutionTrace, ResourceTrace) {
    let machines = 4usize;
    let mut b = ExecutionModelBuilder::new("job");
    let root = b.root();
    let step = b.child(root, "step", Repeat::Sequential);
    let worker = b.child(step, "worker", Repeat::Parallel);
    let task = b.child(worker, "task", Repeat::Parallel);
    let model = b.build();
    let rules = RuleSet::new().rule(task, "cpu", AttributionRule::Exact(1.0 / 8.0));

    let mut tb = TraceBuilder::new(&model);
    let step_ms = 100u64;
    let total = steps as u64 * step_ms;
    tb.add_phase(&[("job", 0)], 0, total * MILLIS, None, None).unwrap();
    for s in 0..steps {
        let t0 = s as u64 * step_ms;
        tb.add_phase(
            &[("job", 0), ("step", s as u32)],
            t0 * MILLIS,
            (t0 + step_ms) * MILLIS,
            None,
            None,
        )
        .unwrap();
        for m in 0..machines {
            tb.add_phase(
                &[("job", 0), ("step", s as u32), ("worker", m as u32)],
                t0 * MILLIS,
                (t0 + step_ms) * MILLIS,
                Some(m as u16),
                None,
            )
            .unwrap();
            for t in 0..threads {
                // Slightly varied durations so the analyses do real work.
                let d = step_ms - (t as u64 % 7) * 5;
                tb.add_phase(
                    &[
                        ("job", 0),
                        ("step", s as u32),
                        ("worker", m as u32),
                        ("task", t as u32),
                    ],
                    t0 * MILLIS,
                    (t0 + d) * MILLIS,
                    Some(m as u16),
                    Some(t as u16),
                )
                .unwrap();
            }
        }
    }
    let trace = tb.build().unwrap();

    let mut rt = ResourceTrace::new();
    for m in 0..machines {
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(m as u16),
            capacity: 8.0,
        });
        let samples: Vec<f64> = (0..total / 400).map(|i| 4.0 + (i % 4) as f64).collect();
        rt.add_series(cpu, 0, 400 * MILLIS, &samples);
    }
    (model, rules, trace, rt)
}

/// Times `f` with one warmup pass, returning the median over `iters` timed
/// runs, in microseconds.
fn time_median_us<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    println!("=== Analysis-cost micro-benchmarks (median of 10 runs) ===\n");
    let mut table = Table::new(&["benchmark", "steps", "median (us)"]);

    for steps in [10usize, 50, 100] {
        let (model, rules, trace, rt) = synthetic(steps, 8);
        let us = time_median_us(10, || {
            build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default())
        });
        table.row(&[
            "profile_build".to_string(),
            steps.to_string(),
            format!("{us:.1}"),
        ]);
    }

    // Same build with the self-characterization recorder active, for a
    // direct view of the observability overhead (see also obs_overhead).
    {
        let (model, rules, trace, rt) = synthetic(50, 8);
        let recording = grade10_core::obs::start();
        let us = time_median_us(10, || {
            build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default())
        });
        drop(recording.finish());
        table.row(&[
            "profile_build (recorded)".to_string(),
            "50".to_string(),
            format!("{us:.1}"),
        ]);
    }

    let (model, rules, trace, rt) = synthetic(50, 8);
    let profile = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
    let us = time_median_us(10, || {
        BottleneckReport::build(&trace, &profile, &BottleneckConfig::default())
    });
    table.row(&[
        "bottleneck_scan".to_string(),
        "50".to_string(),
        format!("{us:.1}"),
    ]);

    for steps in [10usize, 50, 100] {
        let (model, _, trace, _) = synthetic(steps, 8);
        let us = time_median_us(10, || {
            replay_original(&model, &trace, &ReplayConfig::default())
        });
        table.row(&[
            "replay".to_string(),
            steps.to_string(),
            format!("{us:.1}"),
        ]);
    }

    println!("{}", table.render());
}
