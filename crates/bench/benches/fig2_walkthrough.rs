//! Figure 2 — the paper's constructed resource-attribution example.
//!
//! Rebuilds the scenario of Figure 2 (four phases P1–P4, three resources
//! R1–R3, the rule matrix of Fig. 2b, the monitoring data of Fig. 2d) and
//! prints every intermediate matrix of the attribution process: the
//! execution trace (a), the rules (b), the timeslice-granular demand (c),
//! the raw measurements (d), the upsampled consumption (e), and the final
//! per-phase attribution (f). The printed values include the numbers the
//! paper's §III-D walks through: R2 upsampled to 15 % / 65 %, and the
//! 50 / 15 split between P3 and P2.

use grade10_core::attribution::{build_profile, ProfileConfig};
use grade10_core::model::{
    AttributionRule, ExecutionModel, ExecutionModelBuilder, Repeat, RuleSet,
};
use grade10_core::report::Table;
use grade10_core::trace::{
    ExecutionTrace, ResourceInstance, ResourceTrace, TraceBuilder, MILLIS,
};

struct Scenario {
    model: ExecutionModel,
    rules: RuleSet,
    trace: ExecutionTrace,
    resources: ResourceTrace,
}

fn scenario() -> Scenario {
    let mut b = ExecutionModelBuilder::new("job");
    let r = b.root();
    let p1 = b.child(r, "P1", Repeat::Once);
    let p2 = b.child(r, "P2", Repeat::Once);
    let p3 = b.child(r, "P3", Repeat::Once);
    let p4 = b.child(r, "P4", Repeat::Once);
    let model = b.build();

    let rules = RuleSet::new()
        .with_default(AttributionRule::None)
        .rule(p1, "R1", AttributionRule::Variable(1.0))
        .rule(p2, "R1", AttributionRule::Variable(2.0))
        .rule(p2, "R2", AttributionRule::Variable(1.0))
        .rule(p3, "R2", AttributionRule::Exact(0.5))
        .rule(p2, "R3", AttributionRule::Exact(0.8))
        .rule(p3, "R3", AttributionRule::Variable(1.0))
        .rule(p4, "R3", AttributionRule::Variable(1.0));

    let ms = MILLIS;
    let mut tb = TraceBuilder::new(&model);
    tb.add_phase(&[("job", 0)], 0, 60 * ms, None, None).unwrap();
    tb.add_phase(&[("job", 0), ("P1", 0)], 0, 20 * ms, Some(0), Some(0))
        .unwrap();
    tb.add_phase(&[("job", 0), ("P2", 0)], 20 * ms, 40 * ms, Some(0), Some(1))
        .unwrap();
    tb.add_phase(&[("job", 0), ("P3", 0)], 30 * ms, 50 * ms, Some(0), Some(2))
        .unwrap();
    tb.add_phase(&[("job", 0), ("P4", 0)], 40 * ms, 60 * ms, Some(0), Some(3))
        .unwrap();
    let trace = tb.build().unwrap();

    let mut rt = ResourceTrace::new();
    for kind in ["R1", "R2", "R3"] {
        rt.add_resource(ResourceInstance {
            kind: kind.into(),
            machine: Some(0),
            capacity: 100.0,
        });
    }
    let (r1, r2, r3) = (
        rt.find("R1", Some(0)).unwrap(),
        rt.find("R2", Some(0)).unwrap(),
        rt.find("R3", Some(0)).unwrap(),
    );
    rt.add_series(r1, 0, 20 * ms, &[60.0, 85.0, 30.0]);
    rt.add_series(r2, 0, 20 * ms, &[0.0, 40.0, 20.0]);
    rt.add_series(r3, 0, 20 * ms, &[40.0, 90.0, 50.0]);
    Scenario {
        model,
        rules,
        trace,
        resources: rt,
    }
}

fn main() {
    let s = scenario();
    println!("=== Figure 2 walkthrough: Grade10 resource attribution ===\n");

    println!("(a) Execution trace (timeslices of 10 ms)");
    let mut t = Table::new(&["phase", "start", "end", "slices"]);
    for inst in s.trace.instances().iter().skip(1) {
        t.row(&[
            s.model.name(inst.type_id).to_string(),
            format!("{} ms", inst.start / MILLIS),
            format!("{} ms", inst.end / MILLIS),
            format!(
                "{}..{}",
                inst.start / (10 * MILLIS),
                inst.end / (10 * MILLIS)
            ),
        ]);
    }
    println!("{}", t.render());

    println!("(b) Attribution rules (phase x resource)");
    let mut t = Table::new(&["phase", "R1", "R2", "R3"]);
    for name in ["P1", "P2", "P3", "P4"] {
        let ty = s.model.find_by_name(name).unwrap();
        let cell = |res: &str| match s.rules.get(ty, res) {
            AttributionRule::None => "-".to_string(),
            AttributionRule::Exact(p) => format!("{:.0}%", p * 100.0),
            AttributionRule::Variable(w) => format!("{w:.0}x"),
        };
        t.row(&[name.to_string(), cell("R1"), cell("R2"), cell("R3")]);
    }
    println!("{}", t.render());

    let profile = build_profile(
        &s.model,
        &s.rules,
        &s.trace,
        &s.resources,
        &ProfileConfig::default(),
    );
    let ns = profile.grid.num_slices();
    let slice_headers: Vec<String> = (0..ns).map(|i| format!("t{}", i + 1)).collect();
    let headers: Vec<&str> = std::iter::once("resource")
        .chain(slice_headers.iter().map(|s| s.as_str()))
        .collect();

    println!("(c) Estimated demand per timeslice (exact% + variable weight)");
    let mut t = Table::new(&headers);
    for (r, res) in profile.resources.iter().enumerate() {
        let mut row = vec![res.kind.clone()];
        for sl in 0..ns {
            row.push(format!(
                "{:.0}+{:.0}v",
                profile.demand_exact[r][sl], profile.demand_variable[r][sl]
            ));
        }
        t.row(&row);
    }
    println!("{}", t.render());

    println!("(d) Monitoring data (average % per 2-slice measurement)");
    let mut t = Table::new(&["resource", "t1-2", "t3-4", "t5-6"]);
    for (r, res) in s.resources.instances().iter().enumerate() {
        let mut row = vec![res.kind.clone()];
        for m in s
            .resources
            .measurements(grade10_core::trace::ResourceIdx(r as u32))
        {
            row.push(format!("{:.0}%", m.avg));
        }
        t.row(&row);
    }
    println!("{}", t.render());

    println!("(e) Upsampled consumption per timeslice");
    let mut t = Table::new(&headers);
    for (r, res) in profile.resources.iter().enumerate() {
        let mut row = vec![res.kind.clone()];
        for sl in 0..ns {
            row.push(format!("{:.0}%", profile.consumption[r][sl]));
        }
        t.row(&row);
    }
    println!("{}", t.render());

    println!("(f) Attribution to phases (usage % per timeslice)");
    let mut t = Table::new(&{
        let mut h = vec!["phase", "resource"];
        h.extend(slice_headers.iter().map(|s| s.as_str()));
        h
    });
    for u in &profile.usages {
        let inst = s.trace.instance(u.instance);
        let mut row = vec![
            s.model.name(inst.type_id).to_string(),
            profile.resources[u.resource.0 as usize].kind.clone(),
        ];
        for sl in 0..ns {
            row.push(format!("{:.0}%", u.usage_at(sl)));
        }
        t.row(&row);
    }
    println!("{}", t.render());

    // The two headline numbers of the §III-D text.
    let r2 = s.resources.find("R2", Some(0)).unwrap();
    println!(
        "Check: R2 measurement of 40% over t3-4 upsampled to {:.0}% / {:.0}% \
         (paper: 15% / 65%)",
        profile.consumption[r2.0 as usize][2], profile.consumption[r2.0 as usize][3]
    );
    let p2 = s.trace.instances()[2].id;
    let p3 = s.trace.instances()[3].id;
    println!(
        "Check: at t4, P3 (Exact 50%) receives {:.0}%, P2 (Variable) receives {:.0}% \
         (paper: 50% / 15%)",
        profile.usage_of(p3, r2).unwrap().usage_at(3),
        profile.usage_of(p2, r2).unwrap().usage_at(3),
    );
}
