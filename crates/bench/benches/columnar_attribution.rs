//! Columnar vs legacy attribution backend on `build_profile`.
//!
//! Acceptance gate for the columnar attribution core: on an
//! attribution-heavy grid — many short-window participants per resource
//! row, fine timeslices — the columnar backend must be at least 5× faster
//! than the legacy cell-major backend end to end. The asymptotic gap is in
//! the attribution sweep: legacy scans every participant of a resource for
//! every `(resource, slice)` cell, O(resources × slices ×
//! participants-per-resource), while columnar walks each participant's own
//! demand window once, O(cells + demand entries). The two are
//! bit-identical (`tests/columnar_equivalence.rs`); this bench pins the
//! *reason* the columnar path exists.
//!
//! `--smoke` runs a small fixture once with no gate, for CI. The full run
//! prints a JSON trajectory record for `BENCH_columnar_attribution.json`
//! and exits non-zero below 5×.

use std::hint::black_box;
use std::time::Instant;

use grade10_cluster::SimDuration;
use grade10_core::attribution::{build_profile, AttributionBackend, ProfileConfig};
use grade10_core::config::Parallelism;
use grade10_core::model::{
    AttributionRule, ExecutionModel, ExecutionModelBuilder, Repeat, RuleSet,
};
use grade10_core::report::Table;
use grade10_core::trace::{ExecutionTrace, ResourceInstance, ResourceTrace, TraceBuilder, MILLIS};

/// A BSP trace shaped to stress attribution: `steps × threads` task
/// instances per machine, each active for only one step's window, over a
/// grid of `steps × step_ms` one-millisecond slices. Every task is a
/// participant of its machine's cpu row, so the legacy backend's per-cell
/// participant scan does `slices × steps × threads` window checks per row
/// while the columnar backend touches each task's ~`step_ms` slices once.
fn synthetic(steps: usize) -> (ExecutionModel, RuleSet, ExecutionTrace, ResourceTrace) {
    let machines = 2usize;
    let threads = 16usize;
    let mut b = ExecutionModelBuilder::new("job");
    let root = b.root();
    let step = b.child(root, "step", Repeat::Sequential);
    let task = b.child(step, "task", Repeat::Parallel);
    let model = b.build();
    let rules = RuleSet::new().rule(task, "cpu", AttributionRule::Variable(1.0));

    let mut tb = TraceBuilder::new(&model);
    let step_ms = 100u64;
    let total = steps as u64 * step_ms;
    tb.add_phase(&[("job", 0)], 0, total * MILLIS, None, None).unwrap();
    for s in 0..steps {
        let t0 = s as u64 * step_ms;
        tb.add_phase(
            &[("job", 0), ("step", s as u32)],
            t0 * MILLIS,
            (t0 + step_ms) * MILLIS,
            None,
            None,
        )
        .unwrap();
        for t in 0..machines * threads {
            // Stagger durations so demand is ragged, not uniform.
            let d = step_ms - (t as u64 % 7) * 5;
            tb.add_phase(
                &[("job", 0), ("step", s as u32), ("task", t as u32)],
                t0 * MILLIS,
                (t0 + d) * MILLIS,
                Some((t / threads) as u16),
                Some((t % threads) as u16),
            )
            .unwrap();
        }
    }
    let trace = tb.build().unwrap();

    let mut rt = ResourceTrace::new();
    for m in 0..machines {
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(m as u16),
            capacity: threads as f64,
        });
        let samples: Vec<f64> = (0..total / 400)
            .map(|i| 6.0 + (i % 5) as f64)
            .collect();
        rt.add_series(cpu, 0, 400 * MILLIS, &samples);
    }
    (model, rules, trace, rt)
}

fn time_median_us<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (steps, iters) = if smoke { (12, 1) } else { (160, 5) };
    println!("=== Columnar attribution: build_profile backend comparison ===\n");

    let (model, rules, trace, rt) = synthetic(steps);
    let cfg_for = |backend| ProfileConfig {
        slice: MILLIS,
        // Single-threaded upsampling so the measurement isolates the
        // attribution core rather than pool scheduling.
        parallelism: Parallelism::Never,
        backend,
        ..ProfileConfig::default()
    };

    let legacy_cfg = cfg_for(AttributionBackend::Legacy);
    let columnar_cfg = cfg_for(AttributionBackend::Columnar);
    let legacy_us =
        time_median_us(iters, || build_profile(&model, &rules, &trace, &rt, &legacy_cfg));
    let columnar_us =
        time_median_us(iters, || build_profile(&model, &rules, &trace, &rt, &columnar_cfg));
    let speedup = legacy_us / columnar_us;

    let profile = build_profile(&model, &rules, &trace, &rt, &columnar_cfg);
    let slices = profile.grid.num_slices();
    let participants = profile.usages.len();

    let mut table = Table::new(&["backend", "median build_profile", "speedup"]);
    table.row(&[
        "legacy (cell-major)".to_string(),
        format!("{}", SimDuration::from_nanos((legacy_us * 1e3) as u64)),
        "1.00x".to_string(),
    ]);
    table.row(&[
        "columnar".to_string(),
        format!("{}", SimDuration::from_nanos((columnar_us * 1e3) as u64)),
        format!("{speedup:.2}x"),
    ]);
    println!("{}", table.render());
    println!(
        "fixture: {steps} steps, {slices} slices, {participants} phase instances\n"
    );

    // One trajectory record per line, appendable to
    // BENCH_columnar_attribution.json's `history` array.
    println!(
        "{{\"fixture\":\"steps={steps},slices={slices},participants={participants}\",\
\"legacy_us\":{legacy_us:.0},\"columnar_us\":{columnar_us:.0},\"speedup\":{speedup:.2}}}"
    );

    if smoke {
        println!("\nOK: smoke run complete (no gate)");
        return;
    }
    // The acceptance bar from the columnar-core issue: ≥5× on large grids.
    // The asymptotic gap on this fixture is ~100×, so 5× leaves ample
    // headroom for machine noise before CI goes red.
    if speedup < 5.0 {
        eprintln!("FAIL: columnar speedup {speedup:.2}x is below the 5x acceptance bar");
        std::process::exit(1);
    }
    println!("\nOK: columnar backend is {speedup:.2}x faster (bar: 5x)");
}
