//! Absolute timing of the columnar attribution core on `build_profile`.
//!
//! The legacy cell-major backend this bench originally gated against is
//! retired (the ≥5× acceptance bar passed with ~100× to spare, and the
//! selectable backend was scheduled to live for exactly one PR), so the
//! comparison is gone with it. What remains is the trajectory: an
//! attribution-heavy grid — many short-window participants per resource
//! row, fine timeslices — timed end to end through `build_profile`, so a
//! regression in the participant-major sweep, the scratch-buffer
//! upsampling, or demand estimation shows up as a jump in the recorded
//! median. Correctness is pinned separately by the committed goldens in
//! `tests/columnar_equivalence.rs`.
//!
//! `--smoke` runs a small fixture once, for CI. The full run prints a JSON
//! trajectory record for `BENCH_columnar_attribution.json`.

use std::hint::black_box;
use std::time::Instant;

use grade10_cluster::SimDuration;
use grade10_core::attribution::{build_profile, ProfileConfig};
use grade10_core::config::Parallelism;
use grade10_core::model::{
    AttributionRule, ExecutionModel, ExecutionModelBuilder, Repeat, RuleSet,
};
use grade10_core::report::Table;
use grade10_core::trace::{ExecutionTrace, ResourceInstance, ResourceTrace, TraceBuilder, MILLIS};

/// A BSP trace shaped to stress attribution: `steps × threads` task
/// instances per machine, each active for only one step's window, over a
/// grid of `steps × step_ms` one-millisecond slices. Every task is a
/// participant of its machine's cpu row, so the attribution sweep handles
/// `slices × steps × threads` potential window checks' worth of work in
/// one pass that touches each task's ~`step_ms` slices once.
fn synthetic(steps: usize) -> (ExecutionModel, RuleSet, ExecutionTrace, ResourceTrace) {
    let machines = 2usize;
    let threads = 16usize;
    let mut b = ExecutionModelBuilder::new("job");
    let root = b.root();
    let step = b.child(root, "step", Repeat::Sequential);
    let task = b.child(step, "task", Repeat::Parallel);
    let model = b.build();
    let rules = RuleSet::new().rule(task, "cpu", AttributionRule::Variable(1.0));

    let mut tb = TraceBuilder::new(&model);
    let step_ms = 100u64;
    let total = steps as u64 * step_ms;
    tb.add_phase(&[("job", 0)], 0, total * MILLIS, None, None).unwrap();
    for s in 0..steps {
        let t0 = s as u64 * step_ms;
        tb.add_phase(
            &[("job", 0), ("step", s as u32)],
            t0 * MILLIS,
            (t0 + step_ms) * MILLIS,
            None,
            None,
        )
        .unwrap();
        for t in 0..machines * threads {
            // Stagger durations so demand is ragged, not uniform.
            let d = step_ms - (t as u64 % 7) * 5;
            tb.add_phase(
                &[("job", 0), ("step", s as u32), ("task", t as u32)],
                t0 * MILLIS,
                (t0 + d) * MILLIS,
                Some((t / threads) as u16),
                Some((t % threads) as u16),
            )
            .unwrap();
        }
    }
    let trace = tb.build().unwrap();

    let mut rt = ResourceTrace::new();
    for m in 0..machines {
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(m as u16),
            capacity: threads as f64,
        });
        let samples: Vec<f64> = (0..total / 400)
            .map(|i| 6.0 + (i % 5) as f64)
            .collect();
        rt.add_series(cpu, 0, 400 * MILLIS, &samples);
    }
    (model, rules, trace, rt)
}

fn time_median_us<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (steps, iters) = if smoke { (12, 1) } else { (160, 7) };
    println!("=== Columnar attribution: build_profile absolute timing ===\n");

    let (model, rules, trace, rt) = synthetic(steps);
    let cfg = ProfileConfig {
        slice: MILLIS,
        // Single-threaded upsampling so the measurement isolates the
        // attribution core rather than pool scheduling.
        parallelism: Parallelism::Never,
        ..ProfileConfig::default()
    };

    let median_us = time_median_us(iters, || build_profile(&model, &rules, &trace, &rt, &cfg));

    let profile = build_profile(&model, &rules, &trace, &rt, &cfg);
    let slices = profile.grid.num_slices();
    let participants = profile.usages.len();

    let mut table = Table::new(&["stage", "median"]);
    table.row(&[
        "build_profile (columnar)".to_string(),
        format!("{}", SimDuration::from_nanos((median_us * 1e3) as u64)),
    ]);
    println!("{}", table.render());
    println!(
        "fixture: {steps} steps, {slices} slices, {participants} phase instances\n"
    );

    // One trajectory record per line, appendable to
    // BENCH_columnar_attribution.json's `history` array.
    println!(
        "{{\"fixture\":\"steps={steps},slices={slices},participants={participants}\",\
\"columnar_us\":{median_us:.0}}}"
    );

    if smoke {
        println!("\nOK: smoke run complete");
        return;
    }
    println!("\nOK: {iters}-iteration median recorded");
}
