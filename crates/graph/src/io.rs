//! Edge-list I/O in the whitespace-separated format used by Graphalytics
//! (`.e` files): one `src dst` pair per line, `#`-prefixed comments allowed.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::CsrGraph;
use crate::{Edge, VertexId};

/// Parses an edge list from a reader. Vertex count is `max id + 1` unless a
/// larger `min_vertices` is given.
pub fn read_edge_list<R: Read>(reader: R, min_vertices: usize) -> io::Result<CsrGraph> {
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_id: u64 = 0;
    let mut line = String::new();
    let mut buf = BufReader::new(reader);
    let mut lineno = 0usize;
    while buf.read_line(&mut line)? != 0 {
        lineno += 1;
        let trimmed = line.trim();
        if !trimmed.is_empty() && !trimmed.starts_with('#') {
            let mut it = trimmed.split_whitespace();
            let parse = |tok: Option<&str>| -> io::Result<VertexId> {
                tok.ok_or_else(|| bad_line(lineno))?
                    .parse::<VertexId>()
                    .map_err(|_| bad_line(lineno))
            };
            let src = parse(it.next())?;
            let dst = parse(it.next())?;
            max_id = max_id.max(src as u64).max(dst as u64);
            edges.push((src, dst));
        }
        line.clear();
    }
    let n = if edges.is_empty() {
        min_vertices
    } else {
        min_vertices.max(max_id as usize + 1)
    };
    Ok(CsrGraph::from_edges(n, &edges))
}

fn bad_line(lineno: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed edge list at line {lineno}"),
    )
}

/// Writes the graph as an edge list.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    for (src, dst) in graph.edges() {
        writeln!(out, "{src} {dst}")?;
    }
    out.flush()
}

/// Reads an edge-list file from disk.
pub fn load_edge_list_file(path: &Path) -> io::Result<CsrGraph> {
    read_edge_list(std::fs::File::open(path)?, 0)
}

/// Writes an edge-list file to disk.
pub fn save_edge_list_file(graph: &CsrGraph, path: &Path) -> io::Result<()> {
    write_edge_list(graph, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::simple;

    #[test]
    fn round_trip() {
        let g = simple::grid(4, 4);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), 0).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\n0 1\n # another\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn min_vertices_respected() {
        let g = read_edge_list("0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = read_edge_list("0 1\nnope\n".as_bytes(), 0).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("".as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
