//! Structural graph statistics used by workload reports and DESIGN-level
//! sanity checks (degree distribution moments, approximate diameter).

use crate::algorithms::bfs;
use crate::partition::EdgeCutPartition;
use crate::{CsrGraph, VertexId};

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub num_vertices: usize,
    /// Directed edge count.
    pub num_edges: usize,
    /// Largest out-degree.
    pub max_out_degree: u64,
    /// Average out-degree.
    pub mean_out_degree: f64,
    /// Gini coefficient of the out-degree distribution (0 = uniform,
    /// → 1 = maximally skewed). Quantifies workload irregularity.
    pub degree_gini: f64,
    /// Vertices with no out-edges.
    pub isolated_vertices: usize,
}

/// Computes summary statistics.
pub fn stats(graph: &CsrGraph) -> GraphStats {
    let n = graph.num_vertices();
    let mut degs: Vec<u64> = graph.vertices().map(|v| graph.out_degree(v)).collect();
    degs.sort_unstable();
    let total: u64 = degs.iter().sum();
    let mean = if n == 0 { 0.0 } else { total as f64 / n as f64 };
    // Gini from the sorted degree sequence.
    let gini = if total == 0 || n == 0 {
        0.0
    } else {
        let weighted: f64 = degs
            .iter()
            .enumerate()
            .map(|(i, &d)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * d as f64)
            .sum();
        weighted / (n as f64 * total as f64)
    };
    GraphStats {
        num_vertices: n,
        num_edges: graph.num_edges(),
        max_out_degree: degs.last().copied().unwrap_or(0),
        mean_out_degree: mean,
        degree_gini: gini,
        isolated_vertices: degs.iter().filter(|&&d| d == 0).count(),
    }
}

/// Log2-bucketed out-degree histogram: `hist[k]` counts vertices with
/// out-degree in `[2^k, 2^(k+1))`; `hist[0]` additionally includes degree-0
/// and degree-1 vertices. Power-law graphs show a straight-ish decay over
/// many buckets; uniform graphs collapse into one or two.
pub fn degree_histogram(graph: &CsrGraph) -> Vec<u64> {
    let mut hist: Vec<u64> = Vec::new();
    for v in graph.vertices() {
        let d = graph.out_degree(v);
        let bucket = if d <= 1 { 0 } else { 63 - d.leading_zeros() as usize };
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

/// Lower bound on the diameter: the eccentricity of `start` (longest finite
/// BFS distance). Exact on trees; a useful bound elsewhere.
pub fn eccentricity(graph: &CsrGraph, start: VertexId) -> u64 {
    let part = EdgeCutPartition::hash(graph, 1);
    let r = bfs(graph, &part, start);
    r.distance
        .iter()
        .filter(|&&d| d != crate::algorithms::bfs::UNREACHED)
        .copied()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{rmat::RmatConfig, simple};

    #[test]
    fn stats_of_cycle() {
        let s = stats(&simple::cycle(10));
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.max_out_degree, 1);
        assert!((s.mean_out_degree - 1.0).abs() < 1e-12);
        assert!(s.degree_gini.abs() < 1e-12, "uniform degrees → zero Gini");
        assert_eq!(s.isolated_vertices, 0);
    }

    #[test]
    fn star_is_highly_skewed() {
        let s = stats(&simple::star(100));
        assert!(s.degree_gini > 0.45, "gini {}", s.degree_gini);
        assert_eq!(s.max_out_degree, 99);
    }

    #[test]
    fn rmat_more_skewed_than_grid() {
        let rmat = stats(&RmatConfig::graph500(10, 3).generate());
        let grid = stats(&simple::grid(32, 32));
        assert!(rmat.degree_gini > grid.degree_gini);
    }

    #[test]
    fn eccentricity_of_path() {
        let g = simple::path(10);
        assert_eq!(eccentricity(&g, 0), 9);
        assert_eq!(eccentricity(&g, 9), 0);
    }

    #[test]
    fn histogram_buckets_by_log_degree() {
        // Star of 9: hub degree 8 (bucket 3), 8 spokes of degree 1 (bucket 0).
        let h = degree_histogram(&simple::star(9));
        assert_eq!(h, vec![8, 0, 0, 1]);
        // Regular graph: everything in one bucket.
        let h = degree_histogram(&simple::cycle(10));
        assert_eq!(h, vec![10]);
        // Histogram covers every vertex exactly once.
        let g = RmatConfig::graph500(9, 4).generate();
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<u64>() as usize, g.num_vertices());
        // Power law: many occupied buckets.
        assert!(h.iter().filter(|&&c| c > 0).count() >= 5);
    }

    #[test]
    fn isolated_vertices_counted() {
        let g = CsrGraph::from_edges(5, &[(0, 1)]);
        let s = stats(&g);
        // Vertices 2, 3, 4 have no out-edges; vertex 1 also has none.
        assert_eq!(s.isolated_vertices, 4);
    }
}
