//! Level-synchronous breadth-first search (Graphalytics BFS).
//!
//! Each iteration corresponds to one BFS level: the frontier's out-edges are
//! scanned and a message is sent along each (Pregel semantics — a frontier
//! vertex cannot know which neighbors are already visited). This gives the
//! classic irregular work pattern: work per iteration is proportional to the
//! frontier's total out-degree, which grows explosively and then collapses.

use crate::algorithms::{WorkCollector, WorkProfile};
use crate::partition::WorkMapper;
use crate::{CsrGraph, VertexId};

/// Distance of unreached vertices in the output.
pub const UNREACHED: u64 = u64::MAX;

/// Result of a BFS execution.
pub struct BfsResult {
    /// Hop count from the root (`UNREACHED` if not reachable).
    pub distance: Vec<u64>,
    /// Per-iteration, per-partition work record.
    pub profile: WorkProfile,
}

/// Runs BFS from `root`, recording work against `mapper`'s partitions.
pub fn bfs<M: WorkMapper>(graph: &CsrGraph, mapper: &M, root: VertexId) -> BfsResult {
    let n = graph.num_vertices();
    assert!((root as usize) < n, "root {root} out of range");
    let mut distance = vec![UNREACHED; n];
    distance[root as usize] = 0;
    let mut frontier = vec![root];
    let mut collector = WorkCollector::new(graph, mapper);
    let mut level = 0u64;

    while !frontier.is_empty() {
        collector.begin_iteration();
        let mut next = Vec::new();
        for &v in &frontier {
            collector.vertex_active(v);
            for (i, &w) in graph.neighbors(v).iter().enumerate() {
                collector.edge_scan(v, i as u64, w, true);
                if distance[w as usize] == UNREACHED {
                    distance[w as usize] = level + 1;
                    collector.vertex_updated(w);
                    next.push(w);
                }
            }
        }
        collector.end_iteration();
        frontier = next;
        level += 1;
    }

    BfsResult {
        distance,
        profile: collector.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{rmat::RmatConfig, simple};
    use crate::partition::EdgeCutPartition;

    fn one_part(g: &CsrGraph) -> EdgeCutPartition {
        EdgeCutPartition::hash(g, 1)
    }

    #[test]
    fn path_distances() {
        let g = simple::path(5);
        let r = bfs(&g, &one_part(&g), 0);
        assert_eq!(r.distance, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.profile.num_iterations(), 5);
    }

    #[test]
    fn unreachable_vertices_marked() {
        let g = simple::path(4);
        let r = bfs(&g, &one_part(&g), 2);
        assert_eq!(r.distance, vec![UNREACHED, UNREACHED, 0, 1]);
    }

    #[test]
    fn star_reaches_everything_in_one_hop() {
        let g = simple::star(10);
        let r = bfs(&g, &one_part(&g), 0);
        assert!(r.distance[1..].iter().all(|&d| d == 1));
        // Level 0 scans the hub's 9 edges; level 1 scans 9 spokes' edges.
        assert_eq!(r.profile.iterations[0].total().edges_scanned, 9);
        assert_eq!(r.profile.iterations[1].total().edges_scanned, 9);
    }

    #[test]
    fn frontier_work_grows_then_shrinks() {
        let g = simple::binary_tree(6);
        let r = bfs(&g, &one_part(&g), 0);
        let work: Vec<u64> = r
            .profile
            .iterations
            .iter()
            .map(|it| it.total().edges_scanned)
            .collect();
        let peak = work.iter().copied().max().unwrap();
        assert!(work[0] < peak, "work should ramp up: {work:?}");
        assert!(*work.last().unwrap() < peak, "work should tail off: {work:?}");
    }

    #[test]
    fn distances_match_reference_on_random_graph() {
        let g = RmatConfig::graph500(8, 77).generate();
        let r = bfs(&g, &one_part(&g), 0);
        // Reference: plain queue BFS.
        let mut expect = vec![UNREACHED; g.num_vertices()];
        expect[0] = 0;
        let mut queue = std::collections::VecDeque::from([0 as VertexId]);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if expect[w as usize] == UNREACHED {
                    expect[w as usize] = expect[v as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        assert_eq!(r.distance, expect);
    }

    #[test]
    fn work_profile_partition_split_covers_all_edges_scanned() {
        let g = RmatConfig::graph500(8, 13).generate();
        let p = EdgeCutPartition::hash(&g, 4);
        let r = bfs(&g, &p, 0);
        // Every scanned edge belongs to exactly one partition, and the sum of
        // active vertices equals the number of reached vertices... each
        // reached vertex is active exactly once (the iteration it is in the
        // frontier).
        let reached = r.distance.iter().filter(|&&d| d != UNREACHED).count() as u64;
        assert_eq!(r.profile.grand_total().active_vertices, reached);
    }
}
