//! Local clustering coefficient (Graphalytics LCC).
//!
//! For each vertex, the fraction of its neighbor pairs that are themselves
//! connected. Unlike the iterative algorithms, LCC is a single heavy pass
//! whose per-vertex cost is roughly the sum of its neighbors' degrees —
//! the most skew-amplifying workload in the Graphalytics suite (hub cost
//! grows quadratically with degree), which makes it a stress test for the
//! imbalance analyses.

use crate::algorithms::{WorkCollector, WorkProfile};
use crate::partition::WorkMapper;
use crate::CsrGraph;

/// Result of an LCC execution.
pub struct LccResult {
    /// Clustering coefficient per vertex (0.0 for degree < 2).
    pub coefficient: Vec<f64>,
    /// Work profile; LCC is a single iteration.
    pub profile: WorkProfile,
}

/// Computes the local clustering coefficient of every vertex, treating the
/// graph as undirected (callers pass symmetric graphs, as Graphalytics
/// preprocessing produces).
pub fn lcc<M: WorkMapper>(graph: &CsrGraph, mapper: &M) -> LccResult {
    let n = graph.num_vertices();
    let mut coefficient = vec![0.0f64; n];
    let mut collector = WorkCollector::new(graph, mapper);
    collector.begin_iteration();

    for v in graph.vertices() {
        collector.vertex_active(v);
        let neigh = graph.neighbors(v);
        let deg = neigh.len();
        if deg < 2 {
            continue;
        }
        // Count closed wedges: for each neighbor u, |N(v) ∩ N(u)| by
        // sorted-merge intersection. Every comparison is work a real engine
        // would perform; every neighbor list fetched from another partition
        // is a message.
        let mut closed = 0u64;
        for (i, &u) in neigh.iter().enumerate() {
            collector.edge_scan(v, i as u64, u, true);
            let nu = graph.neighbors(u);
            let (mut a, mut b) = (0usize, 0usize);
            while a < neigh.len() && b < nu.len() {
                // Each merge step scans one edge-table entry.
                match neigh[a].cmp(&nu[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        if neigh[a] != v && neigh[a] != u {
                            closed += 1;
                        }
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
        // Each unordered neighbor pair is counted once per direction.
        let pairs = (deg * (deg - 1)) as f64;
        coefficient[v as usize] = closed as f64 / pairs;
        collector.vertex_updated(v);
    }
    collector.end_iteration();

    LccResult {
        coefficient,
        profile: collector.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::simple;
    use crate::partition::EdgeCutPartition;
    use crate::CsrGraph;

    fn one_part(g: &CsrGraph) -> EdgeCutPartition {
        EdgeCutPartition::hash(g, 1)
    }

    #[test]
    fn complete_graph_is_fully_clustered() {
        let g = simple::complete(5);
        let r = lcc(&g, &one_part(&g));
        for &c in &r.coefficient {
            assert!((c - 1.0).abs() < 1e-12, "clique coefficient {c}");
        }
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = simple::star(6);
        let r = lcc(&g, &one_part(&g));
        // The hub's neighbors are never connected to each other.
        assert_eq!(r.coefficient[0], 0.0);
        // Spokes have degree 1.
        assert!(r.coefficient[1..].iter().all(|&c| c == 0.0));
    }

    #[test]
    fn triangle_with_tail() {
        // 0-1-2 triangle, 2-3 tail (symmetric).
        let g = CsrGraph::with_transpose(
            4,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (0, 2),
                (2, 0),
                (2, 3),
                (3, 2),
            ],
        );
        let r = lcc(&g, &one_part(&g));
        assert!((r.coefficient[0] - 1.0).abs() < 1e-12);
        assert!((r.coefficient[1] - 1.0).abs() < 1e-12);
        // Vertex 2 has neighbors {0, 1, 3}: of 6 ordered pairs, (0,1) and
        // (1,0) are connected.
        assert!((r.coefficient[2] - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(r.coefficient[3], 0.0);
    }

    #[test]
    fn single_iteration_profile_with_quadratic_hub_cost() {
        let g = simple::star(50);
        let p = one_part(&g);
        let r = lcc(&g, &p);
        assert_eq!(r.profile.num_iterations(), 1);
        let total = r.profile.iterations[0].total();
        assert_eq!(total.active_vertices, 50);
        // Only the hub has degree >= 2; spokes skip the pair scan, so the
        // hub's 49 edges are the only ones scanned — all of the work lands
        // on one vertex, the skew LCC is known for.
        assert_eq!(total.edges_scanned, 49);
    }

    #[test]
    fn grid_coefficients_are_zero() {
        // 4-cycles only: no triangles anywhere.
        let g = simple::grid(4, 4);
        let r = lcc(&g, &one_part(&g));
        assert!(r.coefficient.iter().all(|&c| c == 0.0));
    }
}
