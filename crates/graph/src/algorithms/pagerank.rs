//! PageRank with a fixed iteration count (Graphalytics semantics).
//!
//! Push-style Pregel formulation: every iteration, every vertex scans its
//! out-edges and sends `rank / out_degree` along each, then sums incoming
//! contributions. Work per iteration is constant and edge-proportional — the
//! steady, CPU- and message-heavy workload that drives the Giraph analyses in
//! the paper (Fig. 3 and the CPU/queue bottlenecks of Fig. 4).

use crate::algorithms::{WorkCollector, WorkProfile};
use crate::partition::WorkMapper;
use crate::CsrGraph;

/// Result of a PageRank execution.
pub struct PageRankResult {
    /// Final rank per vertex (sums to ~1 over all vertices).
    pub rank: Vec<f64>,
    /// Per-iteration, per-partition work record.
    pub profile: WorkProfile,
}

/// Runs `iterations` of PageRank with damping factor `damping`.
pub fn pagerank<M: WorkMapper>(
    graph: &CsrGraph,
    mapper: &M,
    iterations: usize,
    damping: f64,
) -> PageRankResult {
    let n = graph.num_vertices();
    assert!(n > 0, "PageRank needs at least one vertex");
    let mut rank = vec![1.0 / n as f64; n];
    let mut incoming = vec![0.0f64; n];
    let mut collector = WorkCollector::new(graph, mapper);

    for _ in 0..iterations {
        collector.begin_iteration();
        incoming.iter_mut().for_each(|x| *x = 0.0);
        // Dangling mass is redistributed uniformly (Graphalytics rule).
        let mut dangling = 0.0f64;
        for v in graph.vertices() {
            collector.vertex_active(v);
            let deg = graph.out_degree(v);
            if deg == 0 {
                dangling += rank[v as usize];
                continue;
            }
            let share = rank[v as usize] / deg as f64;
            for (i, &w) in graph.neighbors(v).iter().enumerate() {
                collector.edge_scan(v, i as u64, w, true);
                incoming[w as usize] += share;
            }
        }
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        for v in graph.vertices() {
            rank[v as usize] = base + damping * incoming[v as usize];
            collector.vertex_updated(v);
        }
        collector.end_iteration();
    }

    PageRankResult {
        rank,
        profile: collector.finish(),
    }
}

/// Runs PageRank until the L1 change of the rank vector drops below
/// `epsilon` (or `max_iterations` is hit). This is the dynamically
/// converging formulation the paper's introduction calls out: "the number
/// of steps in the algorithm typically depends on the graph structure and
/// per vertex values" — unlike the fixed-iteration Graphalytics variant,
/// the iteration count here is a property of the input.
pub fn pagerank_until<M: WorkMapper>(
    graph: &CsrGraph,
    mapper: &M,
    epsilon: f64,
    max_iterations: usize,
    damping: f64,
) -> PageRankResult {
    let n = graph.num_vertices();
    assert!(n > 0, "PageRank needs at least one vertex");
    assert!(epsilon > 0.0, "epsilon must be positive");
    let mut rank = vec![1.0 / n as f64; n];
    let mut incoming = vec![0.0f64; n];
    let mut collector = WorkCollector::new(graph, mapper);

    for _ in 0..max_iterations {
        collector.begin_iteration();
        incoming.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0f64;
        for v in graph.vertices() {
            collector.vertex_active(v);
            let deg = graph.out_degree(v);
            if deg == 0 {
                dangling += rank[v as usize];
                continue;
            }
            let share = rank[v as usize] / deg as f64;
            for (i, &w) in graph.neighbors(v).iter().enumerate() {
                collector.edge_scan(v, i as u64, w, true);
                incoming[w as usize] += share;
            }
        }
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        let mut delta = 0.0f64;
        for v in graph.vertices() {
            let new = base + damping * incoming[v as usize];
            delta += (new - rank[v as usize]).abs();
            rank[v as usize] = new;
            collector.vertex_updated(v);
        }
        collector.end_iteration();
        if delta < epsilon {
            break;
        }
    }

    PageRankResult {
        rank,
        profile: collector.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{rmat::RmatConfig, simple};
    use crate::partition::EdgeCutPartition;

    fn one_part(g: &CsrGraph) -> EdgeCutPartition {
        EdgeCutPartition::hash(g, 1)
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = RmatConfig::graph500(8, 3).generate();
        let r = pagerank(&g, &one_part(&g), 10, 0.85);
        let sum: f64 = r.rank.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "rank sum {sum}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = simple::cycle(8);
        let r = pagerank(&g, &one_part(&g), 20, 0.85);
        for &x in &r.rank {
            assert!((x - 1.0 / 8.0).abs() < 1e-12, "rank {x}");
        }
    }

    #[test]
    fn hub_outranks_spokes() {
        let g = simple::star(20);
        let r = pagerank(&g, &one_part(&g), 30, 0.85);
        for v in 1..20 {
            assert!(r.rank[0] > r.rank[v]);
        }
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // Path end vertex is dangling; total rank must still sum to 1.
        let g = simple::path(5);
        let r = pagerank(&g, &one_part(&g), 15, 0.85);
        let sum: f64 = r.rank.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn work_is_constant_per_iteration() {
        let g = RmatConfig::graph500(8, 5).generate();
        let p = EdgeCutPartition::hash(&g, 4);
        let r = pagerank(&g, &p, 5, 0.85);
        assert_eq!(r.profile.num_iterations(), 5);
        let first = r.profile.iterations[0].total();
        for it in &r.profile.iterations {
            assert_eq!(it.total().edges_scanned, first.edges_scanned);
            assert_eq!(it.total().active_vertices, g.num_vertices() as u64);
        }
        assert_eq!(first.edges_scanned, g.num_edges() as u64);
    }

    #[test]
    fn convergent_variant_matches_fixed_iterations() {
        let g = RmatConfig::graph500(8, 3).generate();
        let p = one_part(&g);
        let converged = pagerank_until(&g, &p, 1e-10, 200, 0.85);
        let fixed = pagerank(&g, &p, 200, 0.85);
        for (a, b) in converged.rank.iter().zip(&fixed.rank) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        // Convergence stops well before the cap.
        assert!(converged.profile.num_iterations() < 200);
        assert!(converged.profile.num_iterations() > 5);
    }

    #[test]
    fn iteration_count_depends_on_the_graph() {
        // On a regular graph the uniform start is already stationary, so
        // convergence is immediate; a skewed star keeps oscillating between
        // hub and spokes and needs many damped iterations.
        let regular = {
            let g = simple::complete(16);
            pagerank_until(&g, &one_part(&g), 1e-9, 500, 0.85)
                .profile
                .num_iterations()
        };
        let skewed = {
            let g = simple::star(16);
            pagerank_until(&g, &one_part(&g), 1e-9, 500, 0.85)
                .profile
                .num_iterations()
        };
        assert_eq!(regular, 1, "uniform start is stationary on a clique");
        assert!(
            skewed > 20,
            "the star should need many iterations, got {skewed}"
        );
    }

    #[test]
    fn remote_messages_only_with_multiple_parts() {
        let g = RmatConfig::graph500(8, 5).generate();
        let single = pagerank(&g, &one_part(&g), 2, 0.85);
        assert_eq!(single.profile.grand_total().msgs_remote, 0);
        let p4 = EdgeCutPartition::hash(&g, 4);
        let multi = pagerank(&g, &p4, 2, 0.85);
        assert!(multi.profile.grand_total().msgs_remote > 0);
    }
}
