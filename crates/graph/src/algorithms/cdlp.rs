//! Community detection by synchronous label propagation (Graphalytics CDLP).
//!
//! Every iteration, every vertex gathers the labels of all its in-neighbors
//! and adopts the most frequent one (smallest label on ties). Work is heavy
//! and gather-dominated — which is why the Grade10 paper finds PowerGraph's
//! Gather imbalance most pronounced for CDLP (Fig. 5) and uses a CDLP Gather
//! step to expose the synchronization bug (Fig. 6).

use std::collections::HashMap;

use crate::algorithms::{WorkCollector, WorkProfile};
use crate::partition::WorkMapper;
use crate::{CsrGraph, VertexId};

/// Result of a CDLP execution.
pub struct CdlpResult {
    /// Final community label per vertex.
    pub label: Vec<VertexId>,
    /// Per-iteration, per-partition work record.
    pub profile: WorkProfile,
}

/// Runs `iterations` rounds of synchronous label propagation.
///
/// Labels propagate along in-edges (requires the transpose; on the symmetric
/// Graphalytics-style inputs used here, in- and out-neighborhoods coincide).
pub fn cdlp<M: WorkMapper>(graph: &CsrGraph, mapper: &M, iterations: usize) -> CdlpResult {
    assert!(
        graph.has_transpose(),
        "CDLP requires the graph transpose (build_transpose)"
    );
    let n = graph.num_vertices();
    let mut label: Vec<VertexId> = (0..n as VertexId).collect();
    let mut next = label.clone();
    let mut collector = WorkCollector::new(graph, mapper);
    let mut counts: HashMap<VertexId, u32> = HashMap::new();

    for _ in 0..iterations {
        collector.begin_iteration();
        // Every vertex broadcasts its label along its out-edges, so the
        // message for in-edge (u, v) is scanned where that edge lives.
        for v in graph.vertices() {
            collector.vertex_active(v);
            collector.scan_all_out_edges(v, true);
        }
        for v in graph.vertices() {
            counts.clear();
            let mut best = label[v as usize];
            let mut best_count = 0u32;
            for &u in graph.in_neighbors(v) {
                let l = label[u as usize];
                let c = counts.entry(l).or_insert(0);
                *c += 1;
                if *c > best_count || (*c == best_count && l < best) {
                    best = l;
                    best_count = *c;
                }
            }
            if graph.in_degree(v) > 0 {
                next[v as usize] = best;
            }
            if next[v as usize] != label[v as usize] {
                collector.vertex_updated(v);
            }
        }
        std::mem::swap(&mut label, &mut next);
        collector.end_iteration();
    }

    CdlpResult {
        label,
        profile: collector.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{simple, social::SocialConfig};
    use crate::partition::EdgeCutPartition;

    fn one_part(g: &CsrGraph) -> EdgeCutPartition {
        EdgeCutPartition::hash(g, 1)
    }

    #[test]
    fn clique_converges_to_minimum_label() {
        let g = simple::complete(5);
        let r = cdlp(&g, &one_part(&g), 10);
        assert!(r.label.iter().all(|&l| l == 0), "labels {:?}", r.label);
    }

    #[test]
    fn two_cliques_two_communities() {
        let g = simple::two_cliques(5);
        let r = cdlp(&g, &one_part(&g), 10);
        for v in 0..5 {
            assert_eq!(r.label[v], 0);
        }
        for v in 5..10 {
            assert_eq!(r.label[v], 5);
        }
    }

    #[test]
    fn isolated_vertex_keeps_label() {
        let g = CsrGraph::with_transpose(3, &[(0, 1), (1, 0)]);
        let r = cdlp(&g, &one_part(&g), 5);
        assert_eq!(r.label[2], 2);
    }

    #[test]
    fn work_is_edge_proportional_every_iteration() {
        let g = SocialConfig::with_size(1000, 4).generate();
        let p = EdgeCutPartition::hash(&g, 4);
        let r = cdlp(&g, &p, 4);
        for it in &r.profile.iterations {
            assert_eq!(it.total().edges_scanned, g.num_edges() as u64);
            assert_eq!(it.total().active_vertices, g.num_vertices() as u64);
        }
    }

    #[test]
    fn community_graph_finds_few_communities() {
        let g = SocialConfig::with_size(2000, 8).generate();
        let r = cdlp(&g, &one_part(&g), 10);
        let mut labels = r.label.clone();
        labels.sort_unstable();
        labels.dedup();
        // Far fewer communities than vertices.
        assert!(
            labels.len() < g.num_vertices() / 4,
            "{} communities out of {} vertices",
            labels.len(),
            g.num_vertices()
        );
    }

    #[test]
    fn label_updates_decline_as_communities_stabilize() {
        let g = SocialConfig::with_size(2000, 8).generate();
        let p = EdgeCutPartition::hash(&g, 2);
        let r = cdlp(&g, &p, 8);
        let first = r.profile.iterations.first().unwrap().total().sync_messages;
        let last = r.profile.iterations.last().unwrap().total().sync_messages;
        // sync_messages is 0 under edge-cut; use vertex_updated via a
        // vertex-cut mapper instead.
        let vc = crate::partition::VertexCutPartition::greedy(&g, 2);
        let r2 = cdlp(&g, &vc, 8);
        let f2 = r2.profile.iterations.first().unwrap().total().sync_messages;
        let l2 = r2.profile.iterations.last().unwrap().total().sync_messages;
        assert_eq!(first, 0);
        assert_eq!(last, 0);
        assert!(f2 > l2, "label churn should decline: first {f2}, last {l2}");
    }
}
