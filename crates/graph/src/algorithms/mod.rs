//! Instrumented graph algorithms.
//!
//! Each algorithm here is a real, correct implementation (validated by unit
//! tests against known answers) that *additionally* records a
//! [`WorkProfile`]: for every iteration and every partition, how many
//! vertices were active, how many edges were scanned, how many messages were
//! produced (split into partition-local and remote), and how much replica
//! synchronization a vertex-cut engine would perform.
//!
//! The simulated engines in `grade10-engines` consume these profiles to
//! derive phase durations and communication volumes, so all the workload
//! irregularity the Grade10 paper studies — frontier growth and collapse in
//! BFS, convergence tails in WCC, the constant heavy load of PageRank and
//! CDLP — flows from genuine executions rather than synthetic schedules.

pub mod bfs;
pub mod cdlp;
pub mod lcc;
pub mod pagerank;
pub mod sssp;
pub mod wcc;

pub use bfs::bfs;
pub use cdlp::cdlp;
pub use lcc::lcc;
pub use pagerank::{pagerank, pagerank_until};
pub use sssp::sssp;
pub use wcc::wcc;

use crate::partition::WorkMapper;
use crate::{CsrGraph, VertexId};

/// Work performed by one partition during one iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PartitionWork {
    /// Vertices that executed their compute function on this partition.
    pub active_vertices: u64,
    /// Edges scanned by compute on this partition.
    pub edges_scanned: u64,
    /// Messages delivered to a vertex on the same partition.
    pub msgs_local: u64,
    /// Messages that must cross the network to another partition.
    pub msgs_remote: u64,
    /// Replica-synchronization messages originating from masters on this
    /// partition (vertex-cut engines only; zero under edge-cut).
    pub sync_messages: u64,
}

impl PartitionWork {
    /// Sum of both message classes.
    pub fn msgs_total(&self) -> u64 {
        self.msgs_local + self.msgs_remote
    }
}

/// Work performed during one iteration, broken down by partition.
#[derive(Clone, Debug, Default)]
pub struct IterationWork {
    /// Work per partition, indexed by partition id.
    pub per_part: Vec<PartitionWork>,
}

impl IterationWork {
    /// Aggregate over all partitions.
    pub fn total(&self) -> PartitionWork {
        let mut t = PartitionWork::default();
        for p in &self.per_part {
            t.active_vertices += p.active_vertices;
            t.edges_scanned += p.edges_scanned;
            t.msgs_local += p.msgs_local;
            t.msgs_remote += p.msgs_remote;
            t.sync_messages += p.sync_messages;
        }
        t
    }

    /// Max/mean balance of edges scanned across partitions.
    pub fn edge_balance(&self) -> f64 {
        let loads: Vec<u64> = self.per_part.iter().map(|p| p.edges_scanned).collect();
        crate::partition::balance(&loads)
    }
}

/// Per-iteration, per-partition work record of a full algorithm execution.
#[derive(Clone, Debug, Default)]
pub struct WorkProfile {
    /// One entry per algorithm iteration, in order.
    pub iterations: Vec<IterationWork>,
    /// Number of partitions every iteration is broken into.
    pub num_parts: usize,
}

impl WorkProfile {
    /// Number of iterations the algorithm ran.
    pub fn num_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// Per-iteration rows `(iteration, active, edges, msgs local, msgs
    /// remote, balance)` for workload reports: the frontier curve of BFS,
    /// the flat heavy line of PageRank, the convergence tail of WCC.
    pub fn iteration_rows(&self) -> Vec<(usize, u64, u64, u64, u64, f64)> {
        self.iterations
            .iter()
            .enumerate()
            .map(|(i, it)| {
                let t = it.total();
                (
                    i,
                    t.active_vertices,
                    t.edges_scanned,
                    t.msgs_local,
                    t.msgs_remote,
                    it.edge_balance(),
                )
            })
            .collect()
    }

    /// Total work across the whole execution.
    pub fn grand_total(&self) -> PartitionWork {
        let mut t = PartitionWork::default();
        for it in &self.iterations {
            let s = it.total();
            t.active_vertices += s.active_vertices;
            t.edges_scanned += s.edges_scanned;
            t.msgs_local += s.msgs_local;
            t.msgs_remote += s.msgs_remote;
            t.sync_messages += s.sync_messages;
        }
        t
    }
}

/// Accumulates work events into a [`WorkProfile`] using a [`WorkMapper`] to
/// route each event to the partition that would perform it.
pub struct WorkCollector<'a, M: WorkMapper> {
    mapper: &'a M,
    graph: &'a CsrGraph,
    profile: WorkProfile,
    current: Vec<PartitionWork>,
    in_iteration: bool,
}

impl<'a, M: WorkMapper> WorkCollector<'a, M> {
    /// Creates a collector for `graph` partitioned by `mapper`.
    pub fn new(graph: &'a CsrGraph, mapper: &'a M) -> Self {
        let n = mapper.num_parts();
        WorkCollector {
            mapper,
            graph,
            profile: WorkProfile {
                iterations: Vec::new(),
                num_parts: n,
            },
            current: vec![PartitionWork::default(); n],
            in_iteration: false,
        }
    }

    /// Starts a new iteration.
    pub fn begin_iteration(&mut self) {
        assert!(!self.in_iteration, "begin_iteration while one is open");
        for w in &mut self.current {
            *w = PartitionWork::default();
        }
        self.in_iteration = true;
    }

    /// Records that `v` ran its compute function this iteration.
    #[inline]
    pub fn vertex_active(&mut self, v: VertexId) {
        self.current[self.mapper.vertex_part(v) as usize].active_vertices += 1;
    }

    /// Records that `v`'s value changed; in vertex-cut engines the master
    /// must push the new value to every mirror.
    #[inline]
    pub fn vertex_updated(&mut self, v: VertexId) {
        let part = self.mapper.vertex_part(v) as usize;
        self.current[part].sync_messages += self.mapper.sync_fanout(v) as u64;
    }

    /// Records a scan of edge `(src, dst)` (the `local_idx`-th out-edge of
    /// `src`). If `message` is true, a message travels to `dst`'s owner and
    /// is counted local or remote depending on where the scan executed.
    #[inline]
    pub fn edge_scan(&mut self, src: VertexId, local_idx: u64, dst: VertexId, message: bool) {
        let at = self.mapper.edge_part(self.graph, src, local_idx, dst);
        let w = &mut self.current[at as usize];
        w.edges_scanned += 1;
        if message {
            if self.mapper.vertex_part(dst) == at {
                w.msgs_local += 1;
            } else {
                w.msgs_remote += 1;
            }
        }
    }

    /// Scans all out-edges of `src`, sending a message along each.
    #[inline]
    pub fn scan_all_out_edges(&mut self, src: VertexId, message: bool) {
        for (i, &dst) in self.graph.neighbors(src).iter().enumerate() {
            self.edge_scan(src, i as u64, dst, message);
        }
    }

    /// Finishes the current iteration.
    pub fn end_iteration(&mut self) {
        assert!(self.in_iteration, "end_iteration without begin_iteration");
        self.profile.iterations.push(IterationWork {
            per_part: self.current.clone(),
        });
        self.in_iteration = false;
    }

    /// Consumes the collector, returning the finished profile.
    pub fn finish(self) -> WorkProfile {
        assert!(!self.in_iteration, "finish with an open iteration");
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::simple;
    use crate::partition::EdgeCutPartition;

    #[test]
    fn collector_routes_work_to_owner() {
        let g = simple::path(4); // 0->1->2->3
        let p = EdgeCutPartition::from_assignment(vec![0, 0, 1, 1], 2);
        let mut c = WorkCollector::new(&g, &p);
        c.begin_iteration();
        c.vertex_active(0);
        c.vertex_active(2);
        c.edge_scan(0, 0, 1, true); // local: 0 and 1 both on part 0
        c.edge_scan(1, 0, 2, true); // remote: scan on part 0, dst on part 1
        c.end_iteration();
        let prof = c.finish();
        let it = &prof.iterations[0];
        assert_eq!(it.per_part[0].active_vertices, 1);
        assert_eq!(it.per_part[1].active_vertices, 1);
        assert_eq!(it.per_part[0].edges_scanned, 2);
        assert_eq!(it.per_part[0].msgs_local, 1);
        assert_eq!(it.per_part[0].msgs_remote, 1);
        assert_eq!(it.total().msgs_total(), 2);
    }

    #[test]
    #[should_panic(expected = "begin_iteration")]
    fn double_begin_panics() {
        let g = simple::path(2);
        let p = EdgeCutPartition::hash(&g, 1);
        let mut c = WorkCollector::new(&g, &p);
        c.begin_iteration();
        c.begin_iteration();
    }

    #[test]
    fn iteration_rows_reflect_frontier_shape() {
        use crate::algorithms::bfs::bfs;
        let g = simple::binary_tree(5);
        let p = EdgeCutPartition::hash(&g, 2);
        let r = bfs(&g, &p, 0);
        let rows = r.profile.iteration_rows();
        assert_eq!(rows.len(), r.profile.num_iterations());
        // Frontier grows from the root: actives double level by level.
        assert_eq!(rows[0].1, 1);
        assert_eq!(rows[1].1, 2);
        assert_eq!(rows[2].1, 4);
        // Balance is max/mean, always >= 1.
        assert!(rows.iter().all(|r| r.5 >= 1.0));
    }

    #[test]
    fn grand_total_sums_iterations() {
        let g = simple::cycle(3);
        let p = EdgeCutPartition::hash(&g, 1);
        let mut c = WorkCollector::new(&g, &p);
        for _ in 0..3 {
            c.begin_iteration();
            c.scan_all_out_edges(0, true);
            c.end_iteration();
        }
        let prof = c.finish();
        assert_eq!(prof.num_iterations(), 3);
        assert_eq!(prof.grand_total().edges_scanned, 3);
    }
}
