//! Weakly connected components via HashMin label propagation (Graphalytics
//! WCC).
//!
//! Every vertex starts with its own id as label; each iteration, vertices
//! whose label changed broadcast it and neighbors keep the minimum. The
//! number of iterations depends on the graph diameter, and the active set
//! shrinks as components converge — a convergence-tail workload where late
//! iterations do almost no work, stressing per-iteration overheads.

use crate::algorithms::{WorkCollector, WorkProfile};
use crate::partition::WorkMapper;
use crate::{CsrGraph, VertexId};

/// Result of a WCC execution.
pub struct WccResult {
    /// Component label per vertex (the smallest vertex id in the component,
    /// for symmetric graphs).
    pub component: Vec<VertexId>,
    /// Per-iteration, per-partition work record.
    pub profile: WorkProfile,
}

/// Runs HashMin WCC until convergence. On directed graphs labels propagate
/// along out-edges only, matching the Pregel formulation on a symmetrized
/// input (Graphalytics preprocesses WCC inputs to be undirected).
pub fn wcc<M: WorkMapper>(graph: &CsrGraph, mapper: &M) -> WccResult {
    let n = graph.num_vertices();
    let mut component: Vec<VertexId> = (0..n as VertexId).collect();
    let mut next = component.clone();
    let mut active: Vec<VertexId> = (0..n as VertexId).collect();
    let mut collector = WorkCollector::new(graph, mapper);

    while !active.is_empty() {
        collector.begin_iteration();
        let mut changed: Vec<VertexId> = Vec::new();
        let mut newly = vec![false; n];
        // Synchronous (Pregel) semantics: messages carry this iteration's
        // labels and take effect next iteration, so the iteration count
        // reflects the graph diameter as it would in a BSP engine.
        for &v in &active {
            collector.vertex_active(v);
            let label = component[v as usize];
            for (i, &w) in graph.neighbors(v).iter().enumerate() {
                collector.edge_scan(v, i as u64, w, true);
                if label < next[w as usize] {
                    next[w as usize] = label;
                    if !newly[w as usize] {
                        newly[w as usize] = true;
                        changed.push(w);
                        collector.vertex_updated(w);
                    }
                }
            }
        }
        component.copy_from_slice(&next);
        collector.end_iteration();
        active = changed;
    }

    WccResult {
        component,
        profile: collector.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{rmat::RmatConfig, simple};
    use crate::partition::EdgeCutPartition;

    fn one_part(g: &CsrGraph) -> EdgeCutPartition {
        EdgeCutPartition::hash(g, 1)
    }

    #[test]
    fn two_cliques_get_two_components() {
        let g = simple::two_cliques(4);
        let r = wcc(&g, &one_part(&g));
        for v in 0..4 {
            assert_eq!(r.component[v], 0);
        }
        for v in 4..8 {
            assert_eq!(r.component[v], 4);
        }
    }

    #[test]
    fn connected_graph_single_component() {
        let g = simple::grid(5, 5);
        let r = wcc(&g, &one_part(&g));
        assert!(r.component.iter().all(|&c| c == 0));
    }

    #[test]
    fn isolated_vertices_keep_their_own_label() {
        let g = crate::CsrGraph::with_transpose(5, &[(0, 1), (1, 0)]);
        let r = wcc(&g, &one_part(&g));
        assert_eq!(r.component, vec![0, 0, 2, 3, 4]);
    }

    #[test]
    fn active_set_shrinks_over_time() {
        let g = simple::path(64); // long diameter: many iterations
        // Make it symmetric so labels flow both ways.
        let edges: Vec<_> = g.edges().flat_map(|(u, v)| [(u, v), (v, u)]).collect();
        let g = crate::CsrGraph::with_transpose(64, &edges);
        let r = wcc(&g, &one_part(&g));
        let acts: Vec<u64> = r
            .profile
            .iterations
            .iter()
            .map(|it| it.total().active_vertices)
            .collect();
        assert!(acts.len() > 10, "long path should need many iterations");
        assert!(acts.first().unwrap() > acts.last().unwrap());
    }

    #[test]
    fn matches_union_find_reference() {
        let g = RmatConfig::graph500(9, 21).generate();
        let r = wcc(&g, &one_part(&g));
        // Reference: union-find.
        let n = g.num_vertices();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut [usize], x: usize) -> usize {
            let mut r = x;
            while p[r] != r {
                r = p[r];
            }
            let mut c = x;
            while p[c] != r {
                let next = p[c];
                p[c] = r;
                c = next;
            }
            r
        }
        for (u, v) in g.edges() {
            let (ru, rv) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
            if ru != rv {
                parent[ru.max(rv)] = ru.min(rv);
            }
        }
        for v in 0..n {
            let expect = find(&mut parent, v);
            assert_eq!(
                r.component[v] as usize, expect,
                "component mismatch at vertex {v}"
            );
        }
    }
}
