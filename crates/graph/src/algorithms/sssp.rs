//! Single-source shortest paths (Bellman-Ford style frontier relaxation).
//!
//! The graphs in this repository are unweighted, so weights are synthesized
//! deterministically from the edge endpoints — the Graphalytics SSSP workload
//! shape (frontier-driven, more iterations than BFS, partial re-activation)
//! is what matters for performance characterization, not the actual weights.

use crate::algorithms::{WorkCollector, WorkProfile};
use crate::partition::WorkMapper;
use crate::{CsrGraph, VertexId};

/// Distance of unreachable vertices.
pub const UNREACHED: f64 = f64::INFINITY;

/// Deterministic synthetic weight for edge `(u, v)`: in `[1.0, 2.0)`.
#[inline]
pub fn edge_weight(u: VertexId, v: VertexId) -> f64 {
    let h = (u as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((v as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
    1.0 + (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Result of an SSSP execution.
pub struct SsspResult {
    /// Shortest distance from the root (infinity if unreachable).
    pub distance: Vec<f64>,
    /// Per-iteration, per-partition work record.
    pub profile: WorkProfile,
}

/// Runs frontier-based Bellman-Ford from `root`.
pub fn sssp<M: WorkMapper>(graph: &CsrGraph, mapper: &M, root: VertexId) -> SsspResult {
    let n = graph.num_vertices();
    assert!((root as usize) < n);
    let mut distance = vec![UNREACHED; n];
    distance[root as usize] = 0.0;
    let mut frontier = vec![root];
    let mut collector = WorkCollector::new(graph, mapper);

    while !frontier.is_empty() {
        collector.begin_iteration();
        let mut improved = vec![false; n];
        let mut next = Vec::new();
        for &v in &frontier {
            collector.vertex_active(v);
            let dv = distance[v as usize];
            for (i, &w) in graph.neighbors(v).iter().enumerate() {
                collector.edge_scan(v, i as u64, w, true);
                let cand = dv + edge_weight(v, w);
                if cand < distance[w as usize] {
                    distance[w as usize] = cand;
                    if !improved[w as usize] {
                        improved[w as usize] = true;
                        next.push(w);
                        collector.vertex_updated(w);
                    }
                }
            }
        }
        collector.end_iteration();
        frontier = next;
    }

    SsspResult {
        distance,
        profile: collector.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{rmat::RmatConfig, simple};
    use crate::partition::EdgeCutPartition;

    fn one_part(g: &CsrGraph) -> EdgeCutPartition {
        EdgeCutPartition::hash(g, 1)
    }

    #[test]
    fn root_distance_zero() {
        let g = simple::path(4);
        let r = sssp(&g, &one_part(&g), 0);
        assert_eq!(r.distance[0], 0.0);
        assert!(r.distance[3] > 0.0 && r.distance[3].is_finite());
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = simple::path(4);
        let r = sssp(&g, &one_part(&g), 3);
        assert!(r.distance[0].is_infinite());
    }

    #[test]
    fn path_distance_is_sum_of_weights() {
        let g = simple::path(4);
        let r = sssp(&g, &one_part(&g), 0);
        let expect = edge_weight(0, 1) + edge_weight(1, 2) + edge_weight(2, 3);
        assert!((r.distance[3] - expect).abs() < 1e-12);
    }

    #[test]
    fn weights_are_deterministic_and_bounded() {
        for (u, v) in [(0, 1), (5, 9), (1000, 3)] {
            let w = edge_weight(u, v);
            assert_eq!(w, edge_weight(u, v));
            assert!((1.0..2.0).contains(&w), "weight {w}");
        }
    }

    #[test]
    fn matches_dijkstra_reference() {
        let g = RmatConfig::graph500(8, 31).generate();
        let r = sssp(&g, &one_part(&g), 0);
        // Reference: Dijkstra with a binary heap.
        let n = g.num_vertices();
        let mut dist = vec![UNREACHED; n];
        dist[0] = 0.0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push((std::cmp::Reverse(ordered_float(0.0)), 0 as VertexId));
        while let Some((std::cmp::Reverse(d), v)) = heap.pop() {
            let d = f64::from_bits(d);
            if d > dist[v as usize] {
                continue;
            }
            for &w in g.neighbors(v) {
                let cand = d + edge_weight(v, w);
                if cand < dist[w as usize] {
                    dist[w as usize] = cand;
                    heap.push((std::cmp::Reverse(ordered_float(cand)), w));
                }
            }
        }
        for v in 0..n {
            if dist[v].is_infinite() {
                assert!(r.distance[v].is_infinite());
            } else {
                assert!(
                    (r.distance[v] - dist[v]).abs() < 1e-9,
                    "vertex {v}: {} vs {}",
                    r.distance[v],
                    dist[v]
                );
            }
        }
    }

    /// Non-negative floats order correctly by their bit patterns.
    fn ordered_float(x: f64) -> u64 {
        x.to_bits()
    }

    #[test]
    fn takes_at_least_as_many_iterations_as_bfs() {
        let g = RmatConfig::graph500(8, 31).generate();
        let s = sssp(&g, &one_part(&g), 0);
        let b = crate::algorithms::bfs(&g, &one_part(&g), 0);
        assert!(s.profile.num_iterations() >= b.profile.num_iterations());
    }
}
