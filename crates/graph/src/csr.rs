//! Compressed sparse row (CSR) graph representation.
//!
//! All algorithms in this crate operate on [`CsrGraph`]. The representation
//! stores out-edges in a single contiguous `targets` array indexed by a
//! per-vertex `offsets` array, which keeps neighbor iteration sequential in
//! memory — the dominant access pattern of every graph algorithm here.

use crate::{Edge, VertexId};

/// A directed graph in CSR form. Vertices are dense integers `0..n`.
///
/// The graph may optionally carry its transpose (in-edges), which algorithms
/// that pull along incoming edges (PageRank, CDLP gather) require. Build it
/// once with [`CsrGraph::with_transpose`] and share it.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    /// Transposed adjacency (in-edges), present if requested.
    in_offsets: Option<Vec<u64>>,
    in_sources: Option<Vec<VertexId>>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list. Self-loops are kept; parallel
    /// edges are kept (generators deduplicate where the dataset calls for it).
    ///
    /// `num_vertices` must be at least `max vertex id + 1`; passing a larger
    /// value creates isolated vertices, which is valid.
    pub fn from_edges(num_vertices: usize, edges: &[Edge]) -> Self {
        let mut degrees = vec![0u64; num_vertices];
        for &(src, dst) in edges {
            assert!(
                (src as usize) < num_vertices && (dst as usize) < num_vertices,
                "edge ({src}, {dst}) out of range for {num_vertices} vertices"
            );
            degrees[src as usize] += 1;
        }
        let mut offsets = vec![0u64; num_vertices + 1];
        for v in 0..num_vertices {
            offsets[v + 1] = offsets[v] + degrees[v];
        }
        let mut targets = vec![0 as VertexId; edges.len()];
        let mut cursor = offsets.clone();
        for &(src, dst) in edges {
            let slot = cursor[src as usize];
            targets[slot as usize] = dst;
            cursor[src as usize] += 1;
        }
        // Sorted adjacency makes neighbor scans cache-friendly and output
        // deterministic regardless of the input edge order.
        for v in 0..num_vertices {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[lo..hi].sort_unstable();
        }
        CsrGraph {
            offsets,
            targets,
            in_offsets: None,
            in_sources: None,
        }
    }

    /// Builds the graph and precomputes its transpose.
    pub fn with_transpose(num_vertices: usize, edges: &[Edge]) -> Self {
        let mut g = Self::from_edges(num_vertices, edges);
        g.build_transpose();
        g
    }

    /// Computes and stores the in-edge adjacency. Idempotent.
    pub fn build_transpose(&mut self) {
        if self.in_offsets.is_some() {
            return;
        }
        let n = self.num_vertices();
        let mut in_deg = vec![0u64; n];
        for &t in &self.targets {
            in_deg[t as usize] += 1;
        }
        let mut in_offsets = vec![0u64; n + 1];
        for v in 0..n {
            in_offsets[v + 1] = in_offsets[v] + in_deg[v];
        }
        let mut in_sources = vec![0 as VertexId; self.targets.len()];
        let mut cursor = in_offsets.clone();
        for src in 0..n {
            for &dst in self.neighbors(src as VertexId) {
                let slot = cursor[dst as usize];
                in_sources[slot as usize] = src as VertexId;
                cursor[dst as usize] += 1;
            }
        }
        self.in_offsets = Some(in_offsets);
        self.in_sources = Some(in_sources);
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// In-degree of `v`. Panics unless the transpose was built.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> u64 {
        let Some(off) = self.in_offsets.as_ref() else {
            panic!("in_degree requires build_transpose()");
        };
        off[v as usize + 1] - off[v as usize]
    }

    /// Out-neighbors of `v` (sorted ascending).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (lo, hi) = (self.offsets[v as usize], self.offsets[v as usize + 1]);
        &self.targets[lo as usize..hi as usize]
    }

    /// In-neighbors of `v`. Panics unless the transpose was built.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let Some(off) = self.in_offsets.as_ref() else {
            panic!("in_neighbors requires build_transpose()");
        };
        let Some(src) = self.in_sources.as_ref() else {
            unreachable!("in_sources is set whenever in_offsets is");
        };
        let (lo, hi) = (off[v as usize], off[v as usize + 1]);
        &src[lo as usize..hi as usize]
    }

    /// Whether the transpose has been built.
    pub fn has_transpose(&self) -> bool {
        self.in_offsets.is_some()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all `(src, dst)` edges in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&t| (v, t)))
    }

    /// The global CSR index of the first out-edge of `v`. Useful for mapping
    /// `(vertex, local edge index)` to a global edge id.
    #[inline]
    pub fn edge_offset(&self, v: VertexId) -> u64 {
        self.offsets[v as usize]
    }

    /// True if for every edge `(u, v)` the reverse edge `(v, u)` exists.
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| self.neighbors(v).binary_search(&u).is_ok())
    }
}

/// Incremental builder that accumulates edges before freezing into a
/// [`CsrGraph`]. Supports optional deduplication and symmetrization, which
/// the dataset generators use to emulate the Graphalytics preprocessing.
#[derive(Default, Clone, Debug)]
pub struct GraphBuilder {
    edges: Vec<Edge>,
    num_vertices: usize,
    dedup: bool,
    symmetric: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            ..Default::default()
        }
    }

    /// Removes duplicate edges when building.
    pub fn dedup(mut self) -> Self {
        self.dedup = true;
        self
    }

    /// Adds the reverse of every edge when building (undirected semantics).
    pub fn symmetric(mut self) -> Self {
        self.symmetric = true;
        self
    }

    /// Removes self-loops when building.
    pub fn drop_self_loops(mut self) -> Self {
        self.drop_self_loops = true;
        self
    }

    /// Appends one edge.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        self.edges.push((src, dst));
    }

    /// Appends many edges.
    pub fn extend(&mut self, edges: impl IntoIterator<Item = Edge>) {
        self.edges.extend(edges);
    }

    /// Number of edges currently staged (before dedup/symmetrization).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Freezes into a CSR graph, applying the configured transforms.
    pub fn build(mut self) -> CsrGraph {
        if self.drop_self_loops {
            self.edges.retain(|&(s, t)| s != t);
        }
        if self.symmetric {
            let rev: Vec<Edge> = self.edges.iter().map(|&(s, t)| (t, s)).collect();
            self.edges.extend(rev);
        }
        if self.dedup {
            self.edges.sort_unstable();
            self.edges.dedup();
        }
        CsrGraph::from_edges(self.num_vertices, &self.edges)
    }

    /// Freezes into a CSR graph with its transpose.
    pub fn build_with_transpose(self) -> CsrGraph {
        let mut g = self.build();
        g.build_transpose();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        CsrGraph::with_transpose(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = CsrGraph::from_edges(3, &[(0, 2), (0, 1)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn transpose_matches_forward() {
        let g = diamond();
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(1), &[0]);
        assert!(g.in_neighbors(0).is_empty());
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = CsrGraph::from_edges(10, &[(0, 1)]);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.out_degree(9), 0);
        assert!(g.neighbors(9).is_empty());
    }

    #[test]
    fn edges_iterator_round_trips() {
        let edges = vec![(0, 1), (0, 2), (1, 3), (2, 3)];
        let g = CsrGraph::from_edges(4, &edges);
        let mut collected: Vec<Edge> = g.edges().collect();
        collected.sort_unstable();
        assert_eq!(collected, edges);
    }

    #[test]
    fn builder_dedup_and_self_loops() {
        let mut b = GraphBuilder::new(3).dedup().drop_self_loops();
        b.extend([(0, 1), (0, 1), (1, 1), (1, 2)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[2]);
    }

    #[test]
    fn builder_symmetric_makes_symmetric_graph() {
        let mut b = GraphBuilder::new(3).symmetric().dedup();
        b.extend([(0, 1), (1, 2)]);
        let g = b.build();
        assert!(g.is_symmetric());
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn symmetry_check_detects_asymmetry() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        assert!(!g.is_symmetric());
    }

    #[test]
    fn edge_offset_maps_to_global_index() {
        let g = diamond();
        assert_eq!(g.edge_offset(0), 0);
        assert_eq!(g.edge_offset(1), 2);
        assert_eq!(g.edge_offset(2), 3);
        assert_eq!(g.edge_offset(3), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        CsrGraph::from_edges(2, &[(0, 5)]);
    }
}
