//! Graph substrate for the Grade10 reproduction.
//!
//! This crate provides everything the simulated graph-processing engines need
//! to execute realistic, irregular workloads:
//!
//! * a compact [CSR graph representation](csr::CsrGraph) with builders and
//!   transposition,
//! * [synthetic graph generators](generators) standing in for the LDBC
//!   Graphalytics datasets (Graph500 R-MAT and a Datagen-like social network),
//! * [partitioners](partition) for both edge-cut (Giraph-style) and
//!   vertex-cut (PowerGraph-style) distribution,
//! * [instrumented algorithm implementations](algorithms) (BFS, PageRank,
//!   WCC, CDLP, SSSP) that execute for real and record, per iteration and per
//!   partition, how much work was performed and how many messages crossed
//!   partition boundaries. These [`WorkProfile`](algorithms::WorkProfile)s
//!   drive the engine simulations in `grade10-engines`.
//!
//! The irregularity that makes graph processing hard to characterize —
//! frontier-dependent work, convergence-dependent iteration counts, skewed
//! partitions — is preserved because the algorithms really run on real
//! (synthetic) graphs; only the *cluster* they notionally run on is simulated.

#![warn(missing_docs)]
// Library code must classify failures, not abort: unwrap/expect are only
// acceptable where an invariant makes failure impossible (and then a
// targeted allow with a reason documents why).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod algorithms;
pub mod csr;
pub mod generators;
pub mod io;
pub mod partition;
pub mod properties;

pub use csr::{CsrGraph, GraphBuilder};

/// Identifier of a vertex. Kept at 32 bits: every graph in this repository is
/// laptop-scale, and halving index size roughly halves cache traffic in the
/// hot algorithm loops.
pub type VertexId = u32;

/// Identifier of a partition (worker-local graph shard).
pub type PartId = u32;

/// An edge as a `(source, target)` pair, used by builders and generators.
pub type Edge = (VertexId, VertexId);
