//! Graph partitioning for distributed execution.
//!
//! Giraph-style engines distribute *vertices* across workers (edge-cut:
//! [`EdgeCutPartition`]); PowerGraph-style engines distribute *edges* and
//! replicate vertices across the machines that hold their edges (vertex-cut:
//! [`VertexCutPartition`]). The quality of either partitioning — balance and
//! cut/replication — directly shapes the workload imbalance that Grade10's
//! analyses detect, so both partitioners report those metrics.

pub mod edge_cut;
pub mod vertex_cut;

pub use edge_cut::EdgeCutPartition;
pub use vertex_cut::VertexCutPartition;

use crate::{CsrGraph, PartId, VertexId};

/// How work units map onto partitions; implemented by both partition kinds so
/// the instrumented algorithms can aggregate work per partition without
/// knowing the engine style.
pub trait WorkMapper {
    /// Number of partitions.
    fn num_parts(&self) -> usize;

    /// Partition that performs `v`'s vertex-level work (its owner/master).
    fn vertex_part(&self, v: VertexId) -> PartId;

    /// Partition that performs the work of scanning edge `(src, dst)`.
    /// `local_idx` is the index of the edge within `src`'s adjacency list.
    fn edge_part(&self, graph: &CsrGraph, src: VertexId, local_idx: u64, dst: VertexId) -> PartId;

    /// Number of remote copies that must be synchronized when `v`'s value
    /// changes (0 for edge-cut; replicas − 1 for vertex-cut).
    fn sync_fanout(&self, v: VertexId) -> u32;
}

/// Balance metric: max partition load divided by mean load. 1.0 is perfect.
pub fn balance(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let Some(&max) = loads.iter().max() else {
        unreachable!("emptiness was handled above");
    };
    let max = max as f64;
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_of_equal_loads_is_one() {
        assert!((balance(&[5, 5, 5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balance_detects_skew() {
        assert!((balance(&[9, 1, 2]) - 9.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn balance_of_empty_or_zero_is_one() {
        assert_eq!(balance(&[]), 1.0);
        assert_eq!(balance(&[0, 0]), 1.0);
    }
}
