//! Vertex-cut (edge-assignment) partitioning, as used by PowerGraph.
//!
//! Every *edge* is owned by exactly one partition; a vertex is replicated on
//! every partition that owns one of its edges, with one replica designated
//! master. Synchronizing masters and mirrors after Apply is the dominant
//! communication of GAS engines, so the partitioner tracks the replication
//! factor explicitly.

use crate::partition::{balance, WorkMapper};
use crate::{CsrGraph, PartId, VertexId};

/// An edge-to-partition assignment with derived vertex replication data.
#[derive(Clone, Debug)]
pub struct VertexCutPartition {
    /// Owner of each edge, indexed by global CSR edge index.
    edge_owner: Vec<PartId>,
    /// Master partition of each vertex.
    master: Vec<PartId>,
    /// Bitset per vertex of partitions holding a replica, packed as u64
    /// (supports up to 64 partitions, far beyond our simulated clusters).
    replica_sets: Vec<u64>,
    num_parts: usize,
}

impl VertexCutPartition {
    /// PowerGraph's greedy heuristic: place each edge on a partition already
    /// holding one of its endpoints (preferring one holding both, then the
    /// less loaded of the two), falling back to the least-loaded partition.
    pub fn greedy(graph: &CsrGraph, num_parts: usize) -> Self {
        assert!(num_parts > 0 && num_parts <= 64, "1..=64 partitions supported");
        let n = graph.num_vertices();
        let mut replica_sets = vec![0u64; n];
        let mut loads = vec![0u64; num_parts];
        let mut edge_owner = vec![0 as PartId; graph.num_edges()];

        // PowerGraph-style greedy scoring with a hard capacity bound: each
        // partition scores one point per endpoint replica it already holds,
        // plus a balance term in [0, 1); partitions at capacity are excluded
        // outright. The capacity bound is what prevents the heavy hubs of
        // power-law graphs from snowballing all edges onto one partition —
        // a soft balance term alone can never outbid an affinity point.
        let capacity =
            ((graph.num_edges() as f64 * 1.05 / num_parts as f64).ceil() as u64).max(1);
        let mut eidx = 0usize;
        for u in graph.vertices() {
            for &v in graph.neighbors(u) {
                let su = replica_sets[u as usize];
                let sv = replica_sets[v as usize];
                let (Some(&min_load), Some(&max_load)) =
                    (loads.iter().min(), loads.iter().max())
                else {
                    unreachable!("one load entry exists per partition, and num_parts >= 1");
                };
                let spread = (max_load - min_load) as f64 + 1.0;
                let mut best = 0 as PartId;
                let mut best_score = f64::NEG_INFINITY;
                let mut best_load = u64::MAX;
                for p in 0..num_parts {
                    if loads[p] >= capacity {
                        continue;
                    }
                    let bit = 1u64 << p;
                    let affinity =
                        (su & bit != 0) as u32 as f64 + (sv & bit != 0) as u32 as f64;
                    let balance_term = (max_load - loads[p]) as f64 / spread;
                    let score = affinity + balance_term;
                    if score > best_score + 1e-12
                        || (score > best_score - 1e-12 && loads[p] < best_load)
                    {
                        best = p as PartId;
                        best_score = score;
                        best_load = loads[p];
                    }
                }
                edge_owner[eidx] = best;
                loads[best as usize] += 1;
                replica_sets[u as usize] |= 1u64 << best;
                replica_sets[v as usize] |= 1u64 << best;
                eidx += 1;
            }
        }

        // Master = first replica; isolated vertices get a hash-based master.
        let master = (0..n as VertexId)
            .map(|v| {
                let set = replica_sets[v as usize];
                if set == 0 {
                    (v as usize % num_parts) as PartId
                } else {
                    set.trailing_zeros() as PartId
                }
            })
            .collect();
        VertexCutPartition {
            edge_owner,
            master,
            replica_sets,
            num_parts,
        }
    }

    /// Random edge placement — PowerGraph's baseline strategy; higher
    /// replication factor, used in ablation benches.
    pub fn random(graph: &CsrGraph, num_parts: usize, seed: u64) -> Self {
        use rand::Rng;
        use rand::SeedableRng;
        assert!(num_parts > 0 && num_parts <= 64);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n = graph.num_vertices();
        let mut replica_sets = vec![0u64; n];
        let mut edge_owner = vec![0 as PartId; graph.num_edges()];
        let mut eidx = 0usize;
        for u in graph.vertices() {
            for &v in graph.neighbors(u) {
                let p = rng.gen_range(0..num_parts) as PartId;
                edge_owner[eidx] = p;
                replica_sets[u as usize] |= 1u64 << p;
                replica_sets[v as usize] |= 1u64 << p;
                eidx += 1;
            }
        }
        let master = (0..n as VertexId)
            .map(|v| {
                let set = replica_sets[v as usize];
                if set == 0 {
                    (v as usize % num_parts) as PartId
                } else {
                    set.trailing_zeros() as PartId
                }
            })
            .collect();
        VertexCutPartition {
            edge_owner,
            master,
            replica_sets,
            num_parts,
        }
    }

    /// Owner of the edge with global CSR index `eidx`.
    #[inline]
    pub fn edge_owner(&self, eidx: u64) -> PartId {
        self.edge_owner[eidx as usize]
    }

    /// Master partition of vertex `v`.
    #[inline]
    pub fn master(&self, v: VertexId) -> PartId {
        self.master[v as usize]
    }

    /// Number of replicas of `v` (0 for isolated vertices).
    #[inline]
    pub fn replicas(&self, v: VertexId) -> u32 {
        self.replica_sets[v as usize].count_ones()
    }

    /// Whether partition `p` holds a replica of `v`.
    #[inline]
    pub fn has_replica(&self, v: VertexId, p: PartId) -> bool {
        self.replica_sets[v as usize] & (1u64 << p) != 0
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Edges per partition.
    pub fn edge_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_parts];
        for &p in &self.edge_owner {
            loads[p as usize] += 1;
        }
        loads
    }

    /// Average replicas per non-isolated vertex — PowerGraph's key
    /// communication-volume metric.
    pub fn replication_factor(&self) -> f64 {
        let (mut total, mut count) = (0u64, 0u64);
        for &set in &self.replica_sets {
            if set != 0 {
                total += set.count_ones() as u64;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Edge-load balance (max/mean).
    pub fn edge_balance(&self) -> f64 {
        balance(&self.edge_loads())
    }
}

impl WorkMapper for VertexCutPartition {
    fn num_parts(&self) -> usize {
        self.num_parts
    }

    fn vertex_part(&self, v: VertexId) -> PartId {
        self.master(v)
    }

    fn edge_part(
        &self,
        graph: &CsrGraph,
        src: VertexId,
        local_idx: u64,
        _dst: VertexId,
    ) -> PartId {
        self.edge_owner(graph.edge_offset(src) + local_idx)
    }

    fn sync_fanout(&self, v: VertexId) -> u32 {
        self.replicas(v).saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::rmat::RmatConfig;
    use crate::generators::simple;

    #[test]
    fn every_edge_owned_once() {
        let g = simple::grid(8, 8);
        let p = VertexCutPartition::greedy(&g, 4);
        assert_eq!(p.edge_loads().iter().sum::<u64>(), g.num_edges() as u64);
    }

    #[test]
    fn master_holds_a_replica() {
        let g = RmatConfig::graph500(9, 2).generate();
        let p = VertexCutPartition::greedy(&g, 8);
        for v in g.vertices() {
            if p.replicas(v) > 0 {
                assert!(p.has_replica(v, p.master(v)));
            }
        }
    }

    #[test]
    fn greedy_beats_random_on_replication_factor() {
        let g = RmatConfig::graph500(10, 4).generate();
        let greedy = VertexCutPartition::greedy(&g, 8);
        let random = VertexCutPartition::random(&g, 8, 99);
        assert!(
            greedy.replication_factor() < random.replication_factor(),
            "greedy {} !< random {}",
            greedy.replication_factor(),
            random.replication_factor()
        );
    }

    #[test]
    fn replication_factor_bounds() {
        let g = simple::star(50);
        let p = VertexCutPartition::greedy(&g, 4);
        let rf = p.replication_factor();
        assert!((1.0..=4.0).contains(&rf), "replication factor {rf}");
    }

    #[test]
    fn single_partition_has_no_sync() {
        let g = simple::cycle(10);
        let p = VertexCutPartition::greedy(&g, 1);
        for v in g.vertices() {
            assert_eq!(p.sync_fanout(v), 0);
        }
        assert!((p.replication_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_part_agrees_with_edge_owner() {
        let g = simple::path(5);
        let p = VertexCutPartition::greedy(&g, 2);
        let mut eidx = 0u64;
        for u in g.vertices() {
            for (i, &v) in g.neighbors(u).iter().enumerate() {
                assert_eq!(p.edge_part(&g, u, i as u64, v), p.edge_owner(eidx));
                eidx += 1;
            }
        }
    }

    #[test]
    fn greedy_loads_reasonably_balanced() {
        let g = RmatConfig::graph500(10, 4).generate();
        let p = VertexCutPartition::greedy(&g, 8);
        assert!(p.edge_balance() < 1.6, "balance {}", p.edge_balance());
    }
}
