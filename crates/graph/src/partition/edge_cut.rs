//! Edge-cut (vertex-assignment) partitioning, as used by Pregel/Giraph.
//!
//! Every vertex is owned by exactly one partition; an edge whose endpoints
//! live on different partitions is "cut" and its message must cross the
//! network. Giraph's default is hash partitioning, which balances vertices
//! but not edges — a major source of the compute imbalance the paper
//! observes. A range partitioner balanced by edge count is provided as the
//! tuned alternative.

use crate::partition::{balance, WorkMapper};
use crate::{CsrGraph, PartId, VertexId};

/// A vertex-to-partition assignment.
#[derive(Clone, Debug)]
pub struct EdgeCutPartition {
    owner: Vec<PartId>,
    num_parts: usize,
}

impl EdgeCutPartition {
    /// Giraph-style hash partitioning: `v mod p` after integer mixing.
    pub fn hash(graph: &CsrGraph, num_parts: usize) -> Self {
        assert!(num_parts > 0);
        let owner = graph
            .vertices()
            .map(|v| {
                // Fibonacci hashing spreads consecutive ids across parts.
                let h = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h >> 32) % num_parts as u64) as PartId
            })
            .collect();
        EdgeCutPartition { owner, num_parts }
    }

    /// Contiguous ranges of vertices with approximately equal *edge* counts.
    pub fn range_by_edges(graph: &CsrGraph, num_parts: usize) -> Self {
        assert!(num_parts > 0);
        let total_edges = graph.num_edges() as u64;
        let target = total_edges / num_parts as u64 + 1;
        let mut owner = vec![0 as PartId; graph.num_vertices()];
        let mut part = 0 as PartId;
        let mut acc = 0u64;
        for v in graph.vertices() {
            owner[v as usize] = part;
            acc += graph.out_degree(v);
            if acc >= target && (part as usize) < num_parts - 1 {
                part += 1;
                acc = 0;
            }
        }
        EdgeCutPartition { owner, num_parts }
    }

    /// Builds a partition from an explicit assignment (used in tests and by
    /// engines that re-balance).
    pub fn from_assignment(owner: Vec<PartId>, num_parts: usize) -> Self {
        assert!(owner.iter().all(|&p| (p as usize) < num_parts));
        EdgeCutPartition { owner, num_parts }
    }

    /// Partition owning vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> PartId {
        self.owner[v as usize]
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Vertices per partition.
    pub fn vertex_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_parts];
        for &p in &self.owner {
            loads[p as usize] += 1;
        }
        loads
    }

    /// Out-edges per partition (work proxy for compute phases).
    pub fn edge_loads(&self, graph: &CsrGraph) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_parts];
        for v in graph.vertices() {
            loads[self.owner(v) as usize] += graph.out_degree(v);
        }
        loads
    }

    /// Number of edges whose endpoints live on different partitions.
    pub fn cut_edges(&self, graph: &CsrGraph) -> u64 {
        graph
            .edges()
            .filter(|&(u, v)| self.owner(u) != self.owner(v))
            .count() as u64
    }

    /// Edge-load balance (max/mean).
    pub fn edge_balance(&self, graph: &CsrGraph) -> f64 {
        balance(&self.edge_loads(graph))
    }
}

impl WorkMapper for EdgeCutPartition {
    fn num_parts(&self) -> usize {
        self.num_parts
    }

    fn vertex_part(&self, v: VertexId) -> PartId {
        self.owner(v)
    }

    fn edge_part(
        &self,
        _graph: &CsrGraph,
        src: VertexId,
        _local_idx: u64,
        _dst: VertexId,
    ) -> PartId {
        // In vertex-centric engines the edge scan happens where the source
        // vertex computes.
        self.owner(src)
    }

    fn sync_fanout(&self, _v: VertexId) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::rmat::RmatConfig;
    use crate::generators::simple;

    #[test]
    fn hash_covers_every_vertex_once() {
        let g = simple::grid(10, 10);
        let p = EdgeCutPartition::hash(&g, 4);
        assert_eq!(p.vertex_loads().iter().sum::<u64>(), 100);
    }

    #[test]
    fn hash_balances_vertices() {
        let g = RmatConfig::graph500(10, 5).generate();
        let p = EdgeCutPartition::hash(&g, 8);
        assert!(balance(&p.vertex_loads()) < 1.2);
    }

    #[test]
    fn range_by_edges_balances_edges_better_than_worst_case() {
        let g = RmatConfig::graph500(10, 5).generate();
        let p = EdgeCutPartition::range_by_edges(&g, 8);
        let b = p.edge_balance(&g);
        assert!(b < 2.5, "edge balance {b} too poor for range partitioner");
        assert_eq!(p.edge_loads(&g).iter().sum::<u64>(), g.num_edges() as u64);
    }

    #[test]
    fn hash_partition_has_skewed_edges_on_powerlaw_graph() {
        // The key phenomenon: hash partitioning balances vertices but leaves
        // edge counts (≈ work) skewed on heavy-tailed graphs.
        let g = RmatConfig::graph500(10, 5).generate();
        let p = EdgeCutPartition::hash(&g, 8);
        assert!(p.edge_balance(&g) > 1.02);
    }

    #[test]
    fn cut_edges_zero_for_single_part() {
        let g = simple::cycle(10);
        let p = EdgeCutPartition::hash(&g, 1);
        assert_eq!(p.cut_edges(&g), 0);
    }

    #[test]
    fn cut_edges_counts_cross_partition_edges() {
        let g = simple::path(4);
        let p = EdgeCutPartition::from_assignment(vec![0, 0, 1, 1], 2);
        assert_eq!(p.cut_edges(&g), 1);
    }

    #[test]
    fn work_mapper_routes_edge_to_source_owner() {
        let g = simple::path(4);
        let p = EdgeCutPartition::from_assignment(vec![0, 1, 0, 1], 2);
        assert_eq!(p.edge_part(&g, 1, 0, 2), 1);
        assert_eq!(p.sync_fanout(0), 0);
    }
}
