//! Synthetic graph generators.
//!
//! The Grade10 paper evaluates on two LDBC Graphalytics datasets: a Datagen
//! social network and a Graph500 (R-MAT) graph. Neither dataset can be
//! redistributed here, so we generate structurally similar graphs:
//!
//! * [`rmat::RmatConfig`] — recursive-matrix (Kronecker) generation with the
//!   Graph500 parameters, yielding the heavy-tailed degree distribution that
//!   causes per-partition work skew;
//! * [`social::SocialConfig`] — a community-structured generator in the
//!   spirit of LDBC Datagen: power-law community sizes, dense intra-community
//!   and sparse inter-community edges, preferential attachment inside
//!   communities.
//!
//! [`simple`] provides tiny deterministic graphs (path, cycle, star, grid,
//! complete, binary tree) used throughout unit tests.

pub mod rmat;
pub mod simple;
pub mod social;

pub use rmat::RmatConfig;
pub use social::SocialConfig;
