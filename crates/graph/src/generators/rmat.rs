//! R-MAT (recursive matrix) graph generator, standing in for the Graph500
//! datasets used by the Grade10 paper.
//!
//! R-MAT recursively subdivides the adjacency matrix into quadrants with
//! probabilities `(a, b, c, d)` and drops each edge into a leaf cell. With the
//! Graph500 parameters `(0.57, 0.19, 0.19, 0.05)` this produces the skewed,
//! heavy-tailed degree distributions that make distributed graph processing
//! irregular — the property the Grade10 evaluation depends on.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::csr::{CsrGraph, GraphBuilder};
use crate::{Edge, VertexId};

/// Configuration for the R-MAT generator.
#[derive(Clone, Debug)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average edges per vertex (before dedup).
    pub edge_factor: u32,
    /// Quadrant probabilities; must sum to 1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Random seed — generation is fully deterministic given the seed.
    pub seed: u64,
    /// Remove duplicate edges and self-loops, and add reverse edges
    /// (Graphalytics preprocesses Graph500 graphs into undirected form).
    pub clean: bool,
}

impl RmatConfig {
    /// Graph500 reference parameters at the given scale.
    pub fn graph500(scale: u32, seed: u64) -> Self {
        RmatConfig {
            scale,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
            clean: true,
        }
    }

    /// Number of vertices this configuration generates.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Number of raw edge samples (before cleaning).
    pub fn num_edge_samples(&self) -> usize {
        self.num_vertices() * self.edge_factor as usize
    }

    /// Generates the raw edge list (with duplicates, without symmetrization).
    pub fn generate_edges(&self) -> Vec<Edge> {
        let d = 1.0 - self.a - self.b - self.c;
        assert!(
            d >= -1e-9,
            "R-MAT probabilities exceed 1: a+b+c = {}",
            self.a + self.b + self.c
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut edges = Vec::with_capacity(self.num_edge_samples());
        for _ in 0..self.num_edge_samples() {
            let (mut src, mut dst) = (0u64, 0u64);
            for _ in 0..self.scale {
                src <<= 1;
                dst <<= 1;
                let r: f64 = rng.gen();
                if r < self.a {
                    // top-left: neither bit set
                } else if r < self.a + self.b {
                    dst |= 1;
                } else if r < self.a + self.b + self.c {
                    src |= 1;
                } else {
                    src |= 1;
                    dst |= 1;
                }
            }
            edges.push((src as VertexId, dst as VertexId));
        }
        edges
    }

    /// Generates the graph (with transpose built).
    pub fn generate(&self) -> CsrGraph {
        let edges = self.generate_edges();
        let mut b = GraphBuilder::new(self.num_vertices());
        if self.clean {
            b = b.dedup().symmetric().drop_self_loops();
        }
        b.extend(edges);
        b.build_with_transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = RmatConfig::graph500(8, 42);
        let e1 = cfg.generate_edges();
        let e2 = cfg.generate_edges();
        assert_eq!(e1, e2);
    }

    #[test]
    fn different_seeds_differ() {
        let e1 = RmatConfig::graph500(8, 1).generate_edges();
        let e2 = RmatConfig::graph500(8, 2).generate_edges();
        assert_ne!(e1, e2);
    }

    #[test]
    fn sample_count_matches_config() {
        let cfg = RmatConfig::graph500(7, 3);
        assert_eq!(cfg.generate_edges().len(), 128 * 16);
    }

    #[test]
    fn clean_graph_is_symmetric_without_self_loops() {
        let g = RmatConfig::graph500(8, 7).generate();
        assert!(g.is_symmetric());
        for (u, v) in g.edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // The hallmark of R-MAT: a small set of vertices concentrates a large
        // share of the edges. Check that the top 1% of vertices holds at
        // least 10% of all edges (for uniform graphs it would hold ~1%).
        let g = RmatConfig::graph500(10, 11).generate();
        let mut degs: Vec<u64> = g.vertices().map(|v| g.out_degree(v)).collect();
        degs.sort_unstable_by(|x, y| y.cmp(x));
        let top = degs.len() / 100 + 1;
        let top_sum: u64 = degs[..top].iter().sum();
        let total: u64 = degs.iter().sum();
        assert!(
            top_sum * 10 >= total,
            "top 1% holds only {top_sum}/{total} edges"
        );
    }

    #[test]
    fn vertices_in_range() {
        let cfg = RmatConfig::graph500(6, 5);
        for (s, t) in cfg.generate_edges() {
            assert!((s as usize) < cfg.num_vertices());
            assert!((t as usize) < cfg.num_vertices());
        }
    }
}
