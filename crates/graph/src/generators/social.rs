//! Community-structured social-network generator, standing in for the LDBC
//! Datagen graphs used by the Grade10 paper.
//!
//! The generator creates communities with power-law sizes, wires vertices
//! inside each community by preferential attachment (so hubs emerge), and
//! adds a configurable fraction of inter-community edges. The result has the
//! two properties the paper's workloads exercise:
//!
//! * strong community structure, so label-propagation algorithms (CDLP, WCC)
//!   perform highly iteration-dependent work;
//! * skewed degrees, so partitions receive unequal work and the imbalance
//!   analyses (Fig. 5 and 6) have something real to find.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::csr::GraphBuilder;
use crate::{CsrGraph, VertexId};

/// Configuration for the social-network generator.
#[derive(Clone, Debug)]
pub struct SocialConfig {
    /// Total number of vertices.
    pub num_vertices: usize,
    /// Average degree (undirected; each edge is stored in both directions).
    pub avg_degree: u32,
    /// Power-law exponent for community sizes (2.0–3.0 is realistic).
    pub community_exponent: f64,
    /// Smallest community size.
    pub min_community: usize,
    /// Fraction of edges that leave the community (0.0–1.0).
    pub inter_community_fraction: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig {
            num_vertices: 10_000,
            avg_degree: 16,
            community_exponent: 2.5,
            min_community: 8,
            inter_community_fraction: 0.1,
            seed: 1,
        }
    }
}

impl SocialConfig {
    /// Convenience constructor fixing size and seed, keeping realistic shape
    /// parameters.
    pub fn with_size(num_vertices: usize, seed: u64) -> Self {
        SocialConfig {
            num_vertices,
            seed,
            ..Default::default()
        }
    }

    /// Draws community sizes from a bounded power law until all vertices are
    /// assigned. Returns the start offset of each community plus a final
    /// sentinel, i.e. community `c` covers `starts[c]..starts[c + 1]`.
    fn community_starts(&self, rng: &mut ChaCha8Rng) -> Vec<usize> {
        let max_community = (self.num_vertices / 4).max(self.min_community + 1);
        let mut starts = vec![0usize];
        let mut assigned = 0usize;
        while assigned < self.num_vertices {
            // Inverse-transform sampling of a discrete power law on
            // [min_community, max_community].
            let u: f64 = rng.gen_range(0.0..1.0);
            let alpha = 1.0 - self.community_exponent;
            let lo = (self.min_community as f64).powf(alpha);
            let hi = (max_community as f64).powf(alpha);
            let size = (lo + u * (hi - lo)).powf(1.0 / alpha).round() as usize;
            let size = size.clamp(self.min_community, max_community);
            let size = size.min(self.num_vertices - assigned);
            assigned += size;
            starts.push(assigned);
        }
        starts
    }

    /// Generates the graph (undirected, deduplicated, with transpose).
    pub fn generate(&self) -> CsrGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let starts = self.community_starts(&mut rng);
        let num_edges = self.num_vertices * self.avg_degree as usize / 2;

        let mut builder = GraphBuilder::new(self.num_vertices)
            .dedup()
            .symmetric()
            .drop_self_loops();

        // Endpoint sampling mixes three mechanisms:
        //  * preferential attachment by edge-copying (sampling an endpoint of
        //    a previously placed edge is degree-proportional sampling), which
        //    produces the heavy-tailed "celebrity" degrees of real social
        //    networks;
        //  * uniform choice within the community, which keeps communities
        //    dense;
        //  * uniform global choice for the configured inter-community
        //    fraction.
        let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * num_edges);
        for _ in 0..num_edges {
            let u = rng.gen_range(0..self.num_vertices);
            // Community of u, by binary search over the start offsets.
            let c = match starts.binary_search(&u) {
                Ok(i) => i.min(starts.len() - 2),
                Err(i) => i - 1,
            };
            let (lo, hi) = (starts[c], starts[c + 1]);
            let u = u as VertexId;
            let v = if rng.gen_bool(self.inter_community_fraction) {
                rng.gen_range(0..self.num_vertices) as VertexId
            } else if !endpoints.is_empty() && rng.gen_bool(0.6) {
                endpoints[rng.gen_range(0..endpoints.len())]
            } else {
                rng.gen_range(lo..hi) as VertexId
            };
            if u != v {
                endpoints.push(u);
                endpoints.push(v);
                builder.add_edge(u, v);
            }
        }
        builder.build_with_transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = SocialConfig::with_size(2000, 9);
        let g1 = cfg.generate();
        let g2 = cfg.generate();
        assert_eq!(g1.num_edges(), g2.num_edges());
        for v in g1.vertices() {
            assert_eq!(g1.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn is_symmetric_and_loop_free() {
        let g = SocialConfig::with_size(1000, 3).generate();
        assert!(g.is_symmetric());
        for (u, v) in g.edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn average_degree_in_expected_range() {
        let cfg = SocialConfig::with_size(5000, 17);
        let g = cfg.generate();
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        // Each undirected edge appears twice; dedup removes some samples, so
        // the realized average sits below the configured target but must be
        // in the right ballpark.
        assert!(
            avg > cfg.avg_degree as f64 * 0.4 && avg < cfg.avg_degree as f64 * 1.2,
            "average degree {avg} out of range"
        );
    }

    #[test]
    fn community_starts_cover_all_vertices() {
        let cfg = SocialConfig::with_size(3456, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let starts = cfg.community_starts(&mut rng);
        assert_eq!(*starts.first().unwrap(), 0);
        assert_eq!(*starts.last().unwrap(), 3456);
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn degrees_are_skewed() {
        let g = SocialConfig::with_size(5000, 23).generate();
        let mut degs: Vec<u64> = g.vertices().map(|v| g.out_degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let max = degs[0];
        let median = degs[degs.len() / 2];
        assert!(
            max >= median * 4,
            "expected skew: max {max} vs median {median}"
        );
    }
}
