//! Tiny deterministic graphs for tests and documentation examples.

use crate::csr::CsrGraph;
use crate::VertexId;

/// Directed path `0 -> 1 -> ... -> n-1`.
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<_> = (0..n.saturating_sub(1))
        .map(|v| (v as VertexId, (v + 1) as VertexId))
        .collect();
    CsrGraph::with_transpose(n, &edges)
}

/// Directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 1);
    let edges: Vec<_> = (0..n)
        .map(|v| (v as VertexId, ((v + 1) % n) as VertexId))
        .collect();
    CsrGraph::with_transpose(n, &edges)
}

/// Star with hub 0 and `n - 1` spokes, edges in both directions.
pub fn star(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(2 * n.saturating_sub(1));
    for v in 1..n {
        edges.push((0, v as VertexId));
        edges.push((v as VertexId, 0));
    }
    CsrGraph::with_transpose(n, &edges)
}

/// Complete directed graph on `n` vertices (no self-loops).
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1));
    for u in 0..n {
        for v in 0..n {
            if u != v {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    CsrGraph::with_transpose(n, &edges)
}

/// `rows x cols` grid with undirected (two-way) edges between 4-neighbors.
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let idx = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
                edges.push((idx(r, c + 1), idx(r, c)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
                edges.push((idx(r + 1, c), idx(r, c)));
            }
        }
    }
    CsrGraph::with_transpose(rows * cols, &edges)
}

/// Complete binary tree with `levels` levels, edges pointing from parent to
/// child and back (undirected semantics).
pub fn binary_tree(levels: u32) -> CsrGraph {
    let n = (1usize << levels) - 1;
    let mut edges = Vec::new();
    for v in 0..n {
        for child in [2 * v + 1, 2 * v + 2] {
            if child < n {
                edges.push((v as VertexId, child as VertexId));
                edges.push((child as VertexId, v as VertexId));
            }
        }
    }
    CsrGraph::with_transpose(n, &edges)
}

/// Two disconnected cliques of size `k` each — handy for WCC/CDLP tests.
pub fn two_cliques(k: usize) -> CsrGraph {
    let mut edges = Vec::new();
    for base in [0, k] {
        for u in 0..k {
            for v in 0..k {
                if u != v {
                    edges.push(((base + u) as VertexId, (base + v) as VertexId));
                }
            }
        }
    }
    CsrGraph::with_transpose(2 * k, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(4), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(4);
        assert_eq!(g.num_edges(), 4);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
    }

    #[test]
    fn star_is_symmetric() {
        let g = star(6);
        assert!(g.is_symmetric());
        assert_eq!(g.out_degree(0), 5);
        assert_eq!(g.out_degree(3), 1);
    }

    #[test]
    fn complete_degrees() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 20);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 4);
        }
    }

    #[test]
    fn grid_edge_count() {
        let g = grid(3, 4);
        // horizontal: 3 rows * 3 = 9, vertical: 2 * 4 = 8, both directions.
        assert_eq!(g.num_edges(), 2 * (9 + 8));
        assert!(g.is_symmetric());
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(3);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(6), 1);
    }

    #[test]
    fn two_cliques_disconnected() {
        let g = two_cliques(3);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 12);
        // No edge crosses between the cliques.
        for (u, v) in g.edges() {
            assert_eq!((u < 3), (v < 3));
        }
    }
}
