//! Adapters from `grade10-cluster` simulator output to `grade10-core`
//! inputs — the role framework-specific log parsers play for a real SUT.

use grade10_cluster::{LogEvent, LogRecord, ResourceSeries};
use grade10_core::parse::{RawEvent, RawEventKind, RawPath};
use grade10_core::trace::{Measurement, RawSeries, ResourceInstance, ResourceTrace};

/// Converts simulator log records into Grade10 raw events.
pub fn to_raw_events(logs: &[LogRecord]) -> Vec<RawEvent> {
    logs.iter()
        .map(|rec| {
            let kind = match &rec.event {
                LogEvent::PhaseStart { path } => RawEventKind::PhaseStart {
                    path: convert_path(path),
                },
                LogEvent::PhaseEnd { path } => RawEventKind::PhaseEnd {
                    path: convert_path(path),
                },
                LogEvent::BlockStart { resource } => RawEventKind::BlockStart {
                    resource: resource.clone(),
                },
                LogEvent::BlockEnd { resource } => RawEventKind::BlockEnd {
                    resource: resource.clone(),
                },
            };
            RawEvent {
                time: rec.time.0,
                machine: rec.machine,
                thread: rec.thread,
                kind,
            }
        })
        .collect()
}

fn convert_path(path: &grade10_cluster::PhasePath) -> RawPath {
    path.0
        .iter()
        .map(|seg| (seg.phase_type.clone(), seg.instance))
        .collect()
}

/// Converts monitor series into a Grade10 resource trace, averaging every
/// `downsample` ground-truth samples into one coarse measurement — the
/// knob the Table II experiment sweeps.
pub fn to_resource_trace(series: &[ResourceSeries], downsample: usize) -> ResourceTrace {
    let mut rt = ResourceTrace::new();
    for s in series {
        let coarse = s.downsample(downsample);
        let idx = rt.add_resource(ResourceInstance {
            kind: coarse.spec.kind.name().to_string(),
            machine: Some(coarse.spec.machine),
            capacity: coarse.spec.capacity,
        });
        rt.add_series(
            idx,
            0,
            coarse.interval.as_nanos(),
            &coarse.samples,
        );
    }
    rt
}

/// Converts monitor series into *unvalidated* raw series for the ingestion
/// layer. Unlike [`to_resource_trace`] this performs no validation and
/// preserves whatever the (possibly fault-injected) monitoring stream
/// contains — NaN samples, negative readings, truncated series — exactly as
/// a parser of real monitoring dumps would. Coarse windows that average over
/// a NaN sample become NaN themselves (a missed window).
pub fn to_raw_series(series: &[ResourceSeries], downsample: usize) -> Vec<RawSeries> {
    series
        .iter()
        .map(|s| {
            let coarse = s.downsample(downsample);
            let step = coarse.interval.as_nanos();
            RawSeries {
                instance: ResourceInstance {
                    kind: coarse.spec.kind.name().to_string(),
                    machine: Some(coarse.spec.machine),
                    capacity: coarse.spec.capacity,
                },
                measurements: coarse
                    .samples
                    .iter()
                    .enumerate()
                    .map(|(i, &avg)| Measurement {
                        start: step * i as u64,
                        end: step * (i as u64 + 1),
                        avg,
                    })
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grade10_cluster::monitor::{ResourceKind, ResourceSpec};
    use grade10_cluster::{PhasePath, SimDuration, SimTime};

    #[test]
    fn events_convert_with_paths() {
        let logs = vec![
            LogRecord {
                time: SimTime(5),
                machine: 1,
                thread: 2,
                event: LogEvent::PhaseStart {
                    path: PhasePath::root().child("job", 0).child("superstep", 3),
                },
            },
            LogRecord {
                time: SimTime(9),
                machine: 1,
                thread: 2,
                event: LogEvent::BlockStart {
                    resource: "gc".into(),
                },
            },
        ];
        let raw = to_raw_events(&logs);
        assert_eq!(raw.len(), 2);
        assert_eq!(raw[0].time, 5);
        match &raw[0].kind {
            RawEventKind::PhaseStart { path } => {
                assert_eq!(path, &vec![("job".to_string(), 0), ("superstep".to_string(), 3)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&raw[1].kind, RawEventKind::BlockStart { resource } if resource == "gc"));
    }

    #[test]
    fn resource_trace_downsamples() {
        let series = vec![ResourceSeries {
            spec: ResourceSpec {
                kind: ResourceKind::Cpu,
                machine: 0,
                capacity: 8.0,
            },
            interval: SimDuration::from_millis(50),
            samples: vec![2.0, 4.0, 6.0, 8.0],
        }];
        let rt = to_resource_trace(&series, 2);
        let cpu = rt.find("cpu", Some(0)).unwrap();
        let ms = rt.measurements(cpu);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].avg, 3.0);
        assert_eq!(ms[1].avg, 7.0);
        assert_eq!(ms[0].end - ms[0].start, 100_000_000);
        assert_eq!(rt.instance(cpu).capacity, 8.0);
    }

    #[test]
    fn raw_series_preserves_corruption() {
        let series = vec![ResourceSeries {
            spec: ResourceSpec {
                kind: ResourceKind::Cpu,
                machine: 1,
                capacity: 8.0,
            },
            interval: SimDuration::from_millis(50),
            samples: vec![2.0, f64::NAN, -3.0, 8.0],
        }];
        let raw = to_raw_series(&series, 1);
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].instance.kind, "cpu");
        assert_eq!(raw[0].measurements.len(), 4);
        assert!(raw[0].measurements[1].avg.is_nan());
        assert_eq!(raw[0].measurements[2].avg, -3.0);
        // Downsampling over a NaN poisons the coarse window.
        let coarse = to_raw_series(&series, 2);
        assert!(coarse[0].measurements[0].avg.is_nan());
        assert_eq!(coarse[0].measurements[1].avg, 2.5);
    }
}
