//! Simulated distributed graph-processing engines for the Grade10
//! reproduction.
//!
//! The paper evaluates Grade10 against Apache Giraph and PowerGraph running
//! real workloads on a real cluster. This crate provides behaviorally
//! faithful stand-ins that run on the `grade10-cluster` simulator:
//!
//! * [`pregel`] — a Giraph-like BSP engine: per-worker compute threads over
//!   edge-cut partitions, bounded outbound message queues that stall
//!   producers, a JVM-style stop-the-world garbage collector, supersteps
//!   separated by global barriers;
//! * [`gas`] — a PowerGraph-like Gather/Apply/Scatter engine: vertex-cut
//!   partitions, per-thread interleaved compute and communication, replica
//!   synchronization, no GC and no producer stalls — and an optional
//!   reproduction of the cross-thread **synchronization bug** the paper
//!   discovers (§IV-D), where one thread occasionally keeps draining a late
//!   message stream while its peers idle at the barrier.
//!
//! [`dataflow`] additionally provides the Spark-like stage/task engine the
//! paper's §V sketches as ongoing work, demonstrating that Grade10's models
//! generalize beyond graph frameworks.
//!
//! Both engines execute *real* algorithm work profiles (from
//! `grade10-graph`) and emit exactly what a real SUT gives Grade10: phase
//! and blocking logs plus coarse monitoring data. [`models`] contains the
//! corresponding "expert input" — execution models, resource models, and
//! tuned/untuned attribution rules. [`bridge`] converts simulator output
//! into `grade10-core` inputs. [`workload`] wires datasets × algorithms ×
//! engines into one-call experiment runs.

#![warn(missing_docs)]
// Library code must classify failures, not abort: unwrap/expect are only
// acceptable where an invariant makes failure impossible (and then a
// targeted allow with a reason documents why).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod bridge;
pub mod dataflow;
pub mod gas;
pub mod models;
pub mod pregel;
pub mod workload;

pub use workload::{run_workload, Algorithm, Dataset, EngineKind, WorkloadRun, WorkloadSpec};
