//! Workload orchestration: dataset × algorithm × engine, one call.
//!
//! The paper's evaluation matrix is eight workloads — two Graphalytics
//! datasets × four algorithms — on each of two systems. [`WorkloadSpec`]
//! names one cell of that matrix; [`run_workload`] generates the graph,
//! runs the real algorithm to obtain its work profile, executes the profile
//! on the corresponding simulated engine, and parses the logs into Grade10
//! inputs, returning everything an experiment needs.

use grade10_cluster::{ResourceSeries, SimOutput};
use grade10_core::attribution::{build_profile, PerformanceProfile, ProfileConfig, UpsampleMode};
use grade10_core::model::{ExecutionModel, RuleSet};
use grade10_core::parse::build_execution_trace;
use grade10_core::trace::{ExecutionTrace, Nanos, ResourceTrace};
use grade10_graph::algorithms::{bfs, cdlp, lcc, pagerank, pagerank_until, sssp, wcc, WorkProfile};
use grade10_graph::partition::{EdgeCutPartition, VertexCutPartition, WorkMapper};
use grade10_graph::CsrGraph;

use crate::bridge::{to_raw_events, to_resource_trace};
use crate::gas::{run_gas, GasConfig, InjectedBug};
use crate::models::{
    gas_model, gas_rules_tuned, gas_rules_untuned, pregel_model, pregel_rules_tuned,
    pregel_rules_untuned, GasPhases, PregelPhases,
};
use crate::pregel::{run_pregel, PregelConfig};

/// The two datasets of the evaluation (synthetic stand-ins for the
/// Graphalytics Graph500 and Datagen graphs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// Graph500-like R-MAT graph: `2^scale` vertices.
    /// Graph500-like R-MAT graph: `2^scale` vertices.
    Rmat {
        /// log2 of the vertex count.
        scale: u32,
        /// Generator seed.
        seed: u64,
    },
    /// Datagen-like social network.
    /// Datagen-like social network.
    Social {
        /// Vertex count.
        vertices: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl Dataset {
    /// Short name used in tables ("g500", "dg").
    pub fn name(&self) -> String {
        match self {
            Dataset::Rmat { scale, .. } => format!("g500-{scale}"),
            Dataset::Social { vertices, .. } => format!("dg-{}k", vertices / 1000),
        }
    }

    /// Generates the graph (with transpose).
    pub fn generate(&self) -> CsrGraph {
        match *self {
            Dataset::Rmat { scale, seed } => {
                grade10_graph::generators::rmat::RmatConfig::graph500(scale, seed).generate()
            }
            Dataset::Social { vertices, seed } => {
                grade10_graph::generators::social::SocialConfig::with_size(vertices, seed)
                    .generate()
            }
        }
    }
}

/// The four Graphalytics algorithms of the paper, plus SSSP and LCC to
/// complete the Graphalytics suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Breadth-first search from `root`.
    Bfs {
        /// Source vertex.
        root: u32,
    },
    /// PageRank with a fixed iteration count.
    PageRank {
        /// Fixed iteration count (Graphalytics semantics).
        iterations: usize,
    },
    /// Weakly connected components (runs to convergence).
    Wcc,
    /// Community detection by label propagation.
    Cdlp {
        /// Fixed iteration count.
        iterations: usize,
    },
    /// Single-source shortest paths from `root`.
    Sssp {
        /// Source vertex.
        root: u32,
    },
    /// Local clustering coefficient (single pass).
    Lcc,
    /// PageRank iterated until the rank vector's L1 change drops below the
    /// threshold — the dynamically converging workload of the paper's §I.
    PageRankConverge {
        /// Convergence threshold on the L1 delta, in millionths.
        epsilon_millionths: u32,
    },
}

impl Algorithm {
    /// Short name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Bfs { .. } => "bfs",
            Algorithm::PageRank { .. } => "pr",
            Algorithm::Wcc => "wcc",
            Algorithm::Cdlp { .. } => "cdlp",
            Algorithm::Sssp { .. } => "sssp",
            Algorithm::Lcc => "lcc",
            Algorithm::PageRankConverge { .. } => "prc",
        }
    }

    /// Executes the algorithm, returning its work profile.
    pub fn run<M: WorkMapper>(&self, graph: &CsrGraph, mapper: &M) -> WorkProfile {
        match *self {
            Algorithm::Bfs { root } => bfs(graph, mapper, root).profile,
            Algorithm::PageRank { iterations } => {
                pagerank(graph, mapper, iterations, 0.85).profile
            }
            Algorithm::Wcc => wcc(graph, mapper).profile,
            Algorithm::Cdlp { iterations } => cdlp(graph, mapper, iterations).profile,
            Algorithm::Sssp { root } => sssp(graph, mapper, root).profile,
            Algorithm::Lcc => lcc(graph, mapper).profile,
            Algorithm::PageRankConverge { epsilon_millionths } => pagerank_until(
                graph,
                mapper,
                epsilon_millionths as f64 / 1e6,
                100,
                0.85,
            )
            .profile,
        }
    }
}

/// Which simulated engine runs the workload.
#[derive(Clone, Debug)]
pub enum EngineKind {
    /// The Giraph-like BSP engine.
    Giraph(PregelConfig),
    /// The PowerGraph-like GAS engine.
    PowerGraph(GasConfig),
}

impl EngineKind {
    /// Short name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Giraph(_) => "giraph",
            EngineKind::PowerGraph(_) => "powergraph",
        }
    }
}

/// One cell of the evaluation matrix.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Input graph.
    pub dataset: Dataset,
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// System under test.
    pub engine: EngineKind,
}

impl WorkloadSpec {
    /// "pr-g500-14-giraph"-style identifier.
    pub fn name(&self) -> String {
        format!(
            "{}-{}-{}",
            self.algorithm.name(),
            self.dataset.name(),
            self.engine.name()
        )
    }
}

/// Phase-type handles of whichever engine ran.
#[derive(Clone, Copy, Debug)]
pub enum EnginePhases {
    /// Handles for a Giraph-like run.
    Pregel(PregelPhases),
    /// Handles for a PowerGraph-like run.
    Gas(GasPhases),
}

/// Everything one workload execution produced, ready for Grade10 analysis.
pub struct WorkloadRun {
    /// The workload that ran.
    pub spec: WorkloadSpec,
    /// The engine's execution model.
    pub model: ExecutionModel,
    /// Phase-type handles of the engine that ran.
    pub phases: EnginePhases,
    /// Tuned attribution rules (the expert input).
    pub rules_tuned: RuleSet,
    /// The paper's untuned default rules.
    pub rules_untuned: RuleSet,
    /// Raw simulator output (logs, ground-truth utilization, stats).
    pub sim: SimOutput,
    /// Sync-bug injections (PowerGraph with the bug enabled only).
    pub injected_bugs: Vec<InjectedBug>,
    /// Parsed execution trace.
    pub trace: ExecutionTrace,
    /// The algorithm's work profile (for workload-level statistics).
    pub work: WorkProfile,
}

impl WorkloadRun {
    /// Coarse resource trace at `downsample` × the ground-truth interval.
    pub fn resource_trace(&self, downsample: usize) -> ResourceTrace {
        to_resource_trace(&self.sim.series, downsample)
    }

    /// Ground-truth utilization series.
    pub fn ground_truth(&self) -> &[ResourceSeries] {
        &self.sim.series
    }

    /// Runs the attribution pipeline with the given rules and settings.
    pub fn build_profile(
        &self,
        rules: &RuleSet,
        downsample: usize,
        slice: Nanos,
        mode: UpsampleMode,
    ) -> PerformanceProfile {
        let rt = self.resource_trace(downsample);
        build_profile(
            &self.model,
            rules,
            &self.trace,
            &rt,
            &ProfileConfig {
                slice,
                upsample: mode,
                ..Default::default()
            },
        )
    }
}

/// Runs one workload end to end.
pub fn run_workload(spec: &WorkloadSpec) -> WorkloadRun {
    let graph = spec.dataset.generate();
    match &spec.engine {
        EngineKind::Giraph(cfg) => {
            let part = EdgeCutPartition::hash(&graph, cfg.num_parts());
            let work = spec.algorithm.run(&graph, &part);
            let sim = run_pregel(&work, graph.num_vertices(), graph.num_edges(), cfg);
            let (model, phases) = pregel_model();
            let rules_tuned = pregel_rules_tuned(&phases, cfg.cores);
            let trace = build_execution_trace(&model, &to_raw_events(&sim.logs))
                .unwrap_or_else(|e| panic!("simulator-emitted logs always parse: {e}"));
            WorkloadRun {
                spec: spec.clone(),
                model,
                phases: EnginePhases::Pregel(phases),
                rules_tuned,
                rules_untuned: pregel_rules_untuned(),
                sim,
                injected_bugs: Vec::new(),
                trace,
                work,
            }
        }
        EngineKind::PowerGraph(cfg) => {
            let part = VertexCutPartition::greedy(&graph, cfg.num_parts());
            let work = spec.algorithm.run(&graph, &part);
            let run = run_gas(&work, graph.num_edges(), cfg);
            let (model, phases) = gas_model();
            let rules_tuned = gas_rules_tuned(&phases, cfg.cores);
            let trace = build_execution_trace(&model, &to_raw_events(&run.sim.logs))
                .unwrap_or_else(|e| panic!("simulator-emitted logs always parse: {e}"));
            WorkloadRun {
                spec: spec.clone(),
                model,
                phases: EnginePhases::Gas(phases),
                rules_tuned,
                rules_untuned: gas_rules_untuned(),
                sim: run.sim,
                injected_bugs: run.injected_bugs,
                trace,
                work,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grade10_core::trace::MILLIS;

    fn tiny_giraph() -> WorkloadSpec {
        WorkloadSpec {
            dataset: Dataset::Rmat { scale: 9, seed: 3 },
            algorithm: Algorithm::PageRank { iterations: 2 },
            engine: EngineKind::Giraph(PregelConfig {
                machines: 2,
                threads: 2,
                cores: 2.0,
                ..Default::default()
            }),
        }
    }

    fn tiny_powergraph() -> WorkloadSpec {
        WorkloadSpec {
            dataset: Dataset::Social {
                vertices: 2000,
                seed: 5,
            },
            algorithm: Algorithm::Cdlp { iterations: 2 },
            engine: EngineKind::PowerGraph(GasConfig {
                machines: 2,
                threads: 2,
                cores: 2.0,
                ..Default::default()
            }),
        }
    }

    #[test]
    fn giraph_end_to_end_parses_and_profiles() {
        let run = run_workload(&tiny_giraph());
        assert!(run.trace.instances().len() > 10);
        let prof = run.build_profile(&run.rules_tuned, 8, 10 * MILLIS, UpsampleMode::DemandGuided);
        assert!(prof.grid.num_slices() > 10);
        // Some CPU usage must be attributed to compute threads.
        let total: f64 = prof.usages.iter().flat_map(|u| u.usage.iter()).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn powergraph_end_to_end_parses() {
        let run = run_workload(&tiny_powergraph());
        assert!(run.trace.instances().len() > 10);
        assert_eq!(run.spec.name(), "cdlp-dg-2k-powergraph");
        // PowerGraph runs carry injected bug metadata (possibly empty).
        let _ = run.injected_bugs.len();
    }

    #[test]
    fn names_compose() {
        assert_eq!(tiny_giraph().spec_name_check(), "pr-g500-9-giraph");
    }

    impl WorkloadSpec {
        fn spec_name_check(&self) -> String {
            self.name()
        }
    }
}
