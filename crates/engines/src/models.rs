//! The "expert input" of the paper (§III-B, §V): execution models, resource
//! models, and attribution rules for the two simulated engines.
//!
//! The paper reports that fully modeling PowerGraph took a week, and Giraph
//! a second week because of its software resources (message queues, GC).
//! These functions are that distilled knowledge for our simulated engines.
//! Each engine comes in a *tuned* variant (Exact CPU rules for compute
//! threads, None rules for phases that cannot use a resource) and an
//! *untuned* variant (the implicit `Variable(1.0)` default everywhere) —
//! the two configurations Fig. 3 and Table II contrast.

use grade10_core::model::{
    AttributionRule, ExecutionModel, ExecutionModelBuilder, Repeat, ResourceModel, RuleSet,
};

/// Phase-type handles of the Giraph-like model, for rule construction and
/// analysis lookups.
#[derive(Clone, Copy, Debug)]
pub struct PregelPhases {
    /// Per-worker graph loading.
    pub load: grade10_core::model::PhaseTypeId,
    /// Reading the input split from storage (leaf under load).
    pub load_read: grade10_core::model::PhaseTypeId,
    /// Parsing and shuffling the split (leaf under load).
    pub load_parse: grade10_core::model::PhaseTypeId,
    /// The algorithm-execution container.
    pub execute: grade10_core::model::PhaseTypeId,
    /// One BSP superstep (sequential).
    pub superstep: grade10_core::model::PhaseTypeId,
    /// One worker's share of a superstep/iteration.
    pub worker: grade10_core::model::PhaseTypeId,
    /// Per-superstep worker preparation (the paper's P2.x.1).
    pub prepare: grade10_core::model::PhaseTypeId,
    /// The worker's compute container.
    pub compute: grade10_core::model::PhaseTypeId,
    /// A compute thread (leaf).
    pub thread: grade10_core::model::PhaseTypeId,
    /// The residual message drain after compute (leaf).
    pub communicate: grade10_core::model::PhaseTypeId,
    /// Per-worker result writing.
    pub output: grade10_core::model::PhaseTypeId,
}

/// Builds the Giraph-like execution model:
///
/// ```text
/// giraph_job
/// ├── load (per worker): read → parse    load → execute → output
/// ├── execute
/// │   └── superstep (sequential)
/// │       └── worker (per machine)
/// │           ├── prepare
/// │           ├── compute ── thread (per compute thread)
/// │           └── communicate    prepare → compute → communicate
/// └── output (per worker)
/// ```
///
/// Messages are sent while compute runs (their production is part of the
/// thread phases); `communicate` is the *tail* after the last thread
/// finishes, while the residual queue drains. The end-of-superstep barrier
/// wait is not a phase — it appears as a `barrier` blocking event on the
/// worker — so that the replay simulator, which treats phase durations as
/// fixed, does not freeze straggler wait into the schedule and mask
/// improvements.
pub fn pregel_model() -> (ExecutionModel, PregelPhases) {
    let mut b = ExecutionModelBuilder::new("giraph_job");
    let root = b.root();
    let load = b.child(root, "load", Repeat::Parallel);
    let load_read = b.child(load, "read", Repeat::Once);
    let load_parse = b.child(load, "parse", Repeat::Once);
    b.edge(load_read, load_parse);
    let execute = b.child(root, "execute", Repeat::Once);
    let output = b.child(root, "output", Repeat::Parallel);
    b.edge(load, execute);
    b.edge(execute, output);
    let superstep = b.child(execute, "superstep", Repeat::Sequential);
    let worker = b.child(superstep, "worker", Repeat::Parallel);
    let prepare = b.child(worker, "prepare", Repeat::Once);
    let compute = b.child(worker, "compute", Repeat::Once);
    let thread = b.child(compute, "thread", Repeat::Parallel);
    let communicate = b.child(worker, "communicate", Repeat::Once);
    b.edge(prepare, compute);
    b.edge(compute, communicate);
    let model = b.build();
    (
        model,
        PregelPhases {
            load,
            load_read,
            load_parse,
            execute,
            superstep,
            worker,
            prepare,
            compute,
            thread,
            communicate,
            output,
        },
    )
}

/// Resource model shared by both engines' infrastructures, plus the
/// Giraph-specific software resources.
pub fn pregel_resource_model() -> ResourceModel {
    ResourceModel::new()
        .consumable("cpu")
        .consumable("net_out")
        .consumable("net_in")
        .consumable("disk")
        .blocking("gc")
        .blocking("msgq")
        .blocking("barrier")
        .blocking("flush")
}

/// Tuned attribution rules for the Giraph-like engine. `cores` is the CPU
/// capacity per machine — an active compute thread demands exactly one core
/// (`Exact(1/cores)`), the insight Fig. 3b demonstrates.
pub fn pregel_rules_tuned(phases: &PregelPhases, cores: f64) -> RuleSet {
    let one_core = AttributionRule::Exact((1.0 / cores).min(1.0));
    RuleSet::new()
        .with_default(AttributionRule::None)
        // Compute threads: exactly one core; they also produce and consume
        // the message traffic that flows while compute runs.
        .rule(phases.thread, "cpu", one_core)
        .rule(phases.thread, "net_out", AttributionRule::Variable(1.0))
        .rule(phases.thread, "net_in", AttributionRule::Variable(1.0))
        // Prepare: bookkeeping CPU before the threads start.
        .rule(phases.prepare, "cpu", AttributionRule::Variable(0.5))
        // Communicate (residual queue drain): network-dominated, light CPU.
        .rule(phases.communicate, "net_out", AttributionRule::Variable(2.0))
        .rule(phases.communicate, "net_in", AttributionRule::Variable(2.0))
        .rule(phases.communicate, "cpu", AttributionRule::Variable(0.25))
        // Load: the read leaf hits storage; the parse leaf burns CPU and
        // shuffles the split across the cluster.
        .rule(phases.load_read, "disk", AttributionRule::Variable(1.0))
        .rule(phases.load_parse, "cpu", AttributionRule::Variable(1.0))
        .rule(phases.load_parse, "net_out", AttributionRule::Variable(1.0))
        .rule(phases.load_parse, "net_in", AttributionRule::Variable(1.0))
        // Output: write-side CPU and the result write.
        .rule(phases.output, "cpu", AttributionRule::Variable(1.0))
        .rule(phases.output, "disk", AttributionRule::Variable(1.0))
}

/// Untuned rules: the paper's implicit default — every phase `Variable(1.0)`
/// on every resource.
pub fn pregel_rules_untuned() -> RuleSet {
    RuleSet::new()
}

/// Phase-type handles of the PowerGraph-like model.
#[derive(Clone, Copy, Debug)]
pub struct GasPhases {
    /// Per-worker graph loading.
    pub load: grade10_core::model::PhaseTypeId,
    /// Reading the input split from storage (leaf under load).
    pub load_read: grade10_core::model::PhaseTypeId,
    /// Parsing and shuffling the split (leaf under load).
    pub load_parse: grade10_core::model::PhaseTypeId,
    /// The algorithm-execution container.
    pub execute: grade10_core::model::PhaseTypeId,
    /// One GAS iteration (sequential).
    pub iteration: grade10_core::model::PhaseTypeId,
    /// One worker's share of a superstep/iteration.
    pub worker: grade10_core::model::PhaseTypeId,
    /// The Gather minor step container.
    pub gather: grade10_core::model::PhaseTypeId,
    /// A gather worker thread (leaf).
    pub gather_thread: grade10_core::model::PhaseTypeId,
    /// The Apply minor step container.
    pub apply: grade10_core::model::PhaseTypeId,
    /// An apply worker thread (leaf).
    pub apply_thread: grade10_core::model::PhaseTypeId,
    /// The Scatter minor step container.
    pub scatter: grade10_core::model::PhaseTypeId,
    /// A scatter worker thread (leaf).
    pub scatter_thread: grade10_core::model::PhaseTypeId,
    /// The replica-exchange drain (leaf).
    pub exchange: grade10_core::model::PhaseTypeId,
}

/// Builds the PowerGraph-like execution model:
///
/// ```text
/// powergraph_job
/// ├── load (per worker)
/// └── execute
///     └── iteration (sequential)
///         └── worker (per machine)
///             ├── gather  ── gather_thread (per thread)
///             ├── apply   ── apply_thread
///             ├── scatter ── scatter_thread
///             └── exchange            gather → apply → scatter → exchange
/// ```
pub fn gas_model() -> (ExecutionModel, GasPhases) {
    let mut b = ExecutionModelBuilder::new("powergraph_job");
    let root = b.root();
    let load = b.child(root, "load", Repeat::Parallel);
    let load_read = b.child(load, "read", Repeat::Once);
    let load_parse = b.child(load, "parse", Repeat::Once);
    b.edge(load_read, load_parse);
    let execute = b.child(root, "execute", Repeat::Once);
    b.edge(load, execute);
    let iteration = b.child(execute, "iteration", Repeat::Sequential);
    let worker = b.child(iteration, "worker", Repeat::Parallel);
    let gather = b.child(worker, "gather", Repeat::Once);
    let gather_thread = b.child(gather, "thread", Repeat::Parallel);
    let apply = b.child(worker, "apply", Repeat::Once);
    let apply_thread = b.child(apply, "thread", Repeat::Parallel);
    let scatter = b.child(worker, "scatter", Repeat::Once);
    let scatter_thread = b.child(scatter, "thread", Repeat::Parallel);
    let exchange = b.child(worker, "exchange", Repeat::Once);
    b.edge(gather, apply);
    b.edge(apply, scatter);
    b.edge(scatter, exchange);
    let model = b.build();
    (
        model,
        GasPhases {
            load,
            load_read,
            load_parse,
            execute,
            iteration,
            worker,
            gather,
            gather_thread,
            apply,
            apply_thread,
            scatter,
            scatter_thread,
            exchange,
        },
    )
}

/// PowerGraph resource model: no GC and no producer-stalling queues — the
/// architectural difference the paper highlights in §IV-C.
pub fn gas_resource_model() -> ResourceModel {
    ResourceModel::new()
        .consumable("cpu")
        .consumable("net_out")
        .consumable("net_in")
        .consumable("disk")
        .blocking("barrier")
        .blocking("flush")
}

/// Tuned attribution rules for the PowerGraph-like engine ("comprehensive
/// and tuned" per Table II).
pub fn gas_rules_tuned(phases: &GasPhases, cores: f64) -> RuleSet {
    let one_core = AttributionRule::Exact((1.0 / cores).min(1.0));
    RuleSet::new()
        .with_default(AttributionRule::None)
        .rule(phases.gather_thread, "cpu", one_core)
        .rule(phases.apply_thread, "cpu", one_core)
        .rule(phases.scatter_thread, "cpu", one_core)
        // Gather and apply interleave communication on their own threads.
        .rule(phases.gather_thread, "net_out", AttributionRule::Variable(1.0))
        .rule(phases.gather_thread, "net_in", AttributionRule::Variable(1.0))
        .rule(phases.apply_thread, "net_out", AttributionRule::Variable(1.0))
        .rule(phases.apply_thread, "net_in", AttributionRule::Variable(1.0))
        .rule(phases.exchange, "net_out", AttributionRule::Variable(2.0))
        .rule(phases.exchange, "net_in", AttributionRule::Variable(2.0))
        .rule(phases.load_read, "disk", AttributionRule::Variable(1.0))
        .rule(phases.load_parse, "cpu", AttributionRule::Variable(1.0))
        .rule(phases.load_parse, "net_out", AttributionRule::Variable(1.0))
        .rule(phases.load_parse, "net_in", AttributionRule::Variable(1.0))
}

/// Untuned rules for the GAS engine.
pub fn gas_rules_untuned() -> RuleSet {
    RuleSet::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pregel_model_shape() {
        let (m, p) = pregel_model();
        assert_eq!(m.name(m.root()), "giraph_job");
        assert_eq!(m.repeat(p.superstep), Repeat::Sequential);
        assert!(m.is_leaf(p.thread));
        assert!(m.is_leaf(p.communicate));
        assert!(!m.is_leaf(p.compute));
        // prepare -> compute -> communicate within a worker.
        assert_eq!(
            m.edges(p.worker),
            &[(p.prepare, p.compute), (p.compute, p.communicate)]
        );
        // Imbalance grouping of compute threads scopes to the superstep.
        assert_eq!(m.grouping_scope(p.thread), p.superstep);
    }

    #[test]
    fn gas_model_shape() {
        let (m, p) = gas_model();
        assert_eq!(
            m.type_path(p.gather_thread),
            "powergraph_job.execute.iteration.worker.gather.thread"
        );
        assert_eq!(m.grouping_scope(p.gather_thread), p.iteration);
        assert_eq!(m.edges(p.worker).len(), 3);
    }

    #[test]
    fn tuned_rules_give_exact_cpu_to_threads() {
        let (_, p) = pregel_model();
        let rules = pregel_rules_tuned(&p, 8.0);
        assert_eq!(
            rules.get(p.thread, "cpu"),
            AttributionRule::Exact(0.125)
        );
        // Containers carry no demand of their own.
        assert!(rules.get(p.worker, "cpu").is_none());
        // Threads produce the in-compute message traffic.
        assert_eq!(
            rules.get(p.thread, "net_out"),
            AttributionRule::Variable(1.0)
        );
    }

    #[test]
    fn untuned_rules_are_variable_everywhere() {
        let (_, p) = pregel_model();
        let rules = pregel_rules_untuned();
        assert_eq!(rules.get(p.worker, "cpu"), AttributionRule::Variable(1.0));
        assert_eq!(rules.get(p.thread, "net_in"), AttributionRule::Variable(1.0));
    }

    #[test]
    fn resource_models_differ_in_software_resources() {
        let giraph = pregel_resource_model();
        let pg = gas_resource_model();
        assert!(giraph.find("gc").is_some());
        assert!(giraph.find("msgq").is_some());
        assert!(pg.find("gc").is_none());
        assert!(pg.find("msgq").is_none());
    }
}
