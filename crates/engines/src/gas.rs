//! The PowerGraph-like Gather/Apply/Scatter engine simulation.
//!
//! Architectural contrasts with the Giraph-like engine, mirroring §IV-C of
//! the paper: vertex-cut partitioning (one partition per worker thread),
//! no garbage collector (native runtime), and no bounded producer queue —
//! each thread interleaves computation with communication, so messages
//! drain concurrently and compute never stalls on a full queue.
//!
//! The engine optionally reproduces the **synchronization bug** of §IV-D:
//! occasionally, after all threads find no pending messages and head to the
//! cross-thread barrier, a late message stream arrives and the last thread
//! drains it alone — its gather phase stretches by 1.1–2.9× while its peers
//! idle at the barrier. [`GasRun::injected_bugs`] records every injection
//! so experiments can validate that Grade10's imbalance analysis finds
//! them.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use grade10_cluster::{
    ClusterConfig, MachineConfig, MsgOutput, Op, PhasePath, SimDuration, SimOutput, Simulation,
    ThreadProgram,
};
use grade10_graph::algorithms::WorkProfile;

mod barrier {
    pub const LOAD_DONE: u32 = 1;
    pub const END: u32 = 2;

    pub fn iter_start(i: usize) -> u32 {
        10 + i as u32 * 1000
    }
    pub fn gather_global(i: usize) -> u32 {
        11 + i as u32 * 1000
    }
    pub fn apply_global(i: usize) -> u32 {
        12 + i as u32 * 1000
    }
    pub fn iter_end(i: usize) -> u32 {
        13 + i as u32 * 1000
    }
    pub fn gather_local(i: usize, m: usize) -> u32 {
        100 + i as u32 * 1000 + m as u32
    }
    pub fn apply_local(i: usize, m: usize) -> u32 {
        300 + i as u32 * 1000 + m as u32
    }
    pub fn scatter_local(i: usize, m: usize) -> u32 {
        500 + i as u32 * 1000 + m as u32
    }
}

/// The synchronization-bug injector.
#[derive(Clone, Debug)]
pub struct SyncBugConfig {
    /// Per-iteration probability that one gather thread is hit.
    pub probability: f64,
    /// The victim's gather work is multiplied by `1 + U(extra_min, extra_max)`.
    pub extra_min: f64,
    /// Upper bound of the injected extra-work fraction.
    pub extra_max: f64,
}

impl Default for SyncBugConfig {
    fn default() -> Self {
        SyncBugConfig {
            probability: 0.25,
            extra_min: 0.2,
            extra_max: 2.2,
        }
    }
}

/// One injected sync-bug occurrence (for experiment validation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InjectedBug {
    /// Iteration the injection hit.
    pub iteration: usize,
    /// Machine of the victim thread.
    pub machine: usize,
    /// Machine-local index of the victim thread.
    pub thread: usize,
    /// Work multiplier applied to the victim's gather (> 1).
    pub factor: f64,
}

/// Configuration and calibration of the PowerGraph-like engine.
#[derive(Clone, Debug)]
pub struct GasConfig {
    /// Number of worker machines.
    pub machines: usize,
    /// Worker threads per machine.
    pub threads: usize,
    /// CPU cores per machine.
    pub cores: f64,
    /// NIC bandwidth per direction, bytes/second.
    pub net_bps: f64,
    /// Local storage bandwidth, bytes/second.
    pub disk_bps: f64,
    /// On-disk bytes per edge read during load.
    pub disk_bytes_per_edge: f64,
    /// CPU core-seconds per edge gathered.
    pub gather_secs_per_edge: f64,
    /// CPU core-seconds per vertex applied.
    pub apply_secs_per_vertex: f64,
    /// CPU core-seconds per edge scattered.
    pub scatter_secs_per_edge: f64,
    /// Wire bytes per remote gather aggregate.
    pub bytes_per_gather_msg: f64,
    /// Wire bytes per replica-synchronization message.
    pub bytes_per_sync_msg: f64,
    /// Load phase: core-seconds per edge parsed.
    pub load_secs_per_edge: f64,
    /// Load phase: shuffle bytes per edge.
    pub load_bytes_per_edge: f64,
    /// Log-normal σ of per-thread work jitter, modeling cache locality and
    /// histogram-cost variation the edge counts alone cannot capture.
    pub jitter_sigma: f64,
    /// Per-machine work multiplier (empty = all 1.0); models degraded
    /// nodes, see the Giraph-like engine's field of the same name.
    pub machine_work_factor: Vec<f64>,
    /// The §IV-D bug; `None` runs the fixed engine.
    pub sync_bug: Option<SyncBugConfig>,
    /// Seed for jitter and bug injection.
    pub seed: u64,
    /// Simulation quantum.
    pub quantum: SimDuration,
    /// Ground-truth monitoring interval.
    pub monitor_interval: SimDuration,
}

impl Default for GasConfig {
    fn default() -> Self {
        GasConfig {
            machines: 4,
            threads: 8,
            cores: 8.0,
            net_bps: 7.0e6,
            disk_bps: 6.0e6,
            disk_bytes_per_edge: 60.0,
            gather_secs_per_edge: 1.0e-4,
            apply_secs_per_vertex: 4.0e-5,
            scatter_secs_per_edge: 2.5e-5,
            bytes_per_gather_msg: 120.0,
            bytes_per_sync_msg: 150.0,
            load_secs_per_edge: 2.0e-5,
            load_bytes_per_edge: 40.0,
            jitter_sigma: 0.22,
            machine_work_factor: Vec::new(),
            sync_bug: Some(SyncBugConfig::default()),
            seed: 7,
            quantum: SimDuration::from_millis(1),
            monitor_interval: SimDuration::from_millis(50),
        }
    }
}

impl GasConfig {
    /// Number of vertex-cut partitions (one per thread cluster-wide).
    pub fn num_parts(&self) -> usize {
        self.machines * self.threads
    }

    /// Work multiplier of machine `m` (1.0 unless configured).
    pub fn work_factor(&self, m: usize) -> f64 {
        self.machine_work_factor.get(m).copied().unwrap_or(1.0)
    }

    /// Fraction of cross-partition messages that cross machines.
    pub fn machine_remote_fraction(&self) -> f64 {
        let parts = self.num_parts() as f64;
        if parts <= 1.0 {
            return 0.0;
        }
        (self.machines as f64 - 1.0) * self.threads as f64 / (parts - 1.0)
    }

    fn cluster_config(&self) -> ClusterConfig {
        let machine = MachineConfig {
            cores: self.cores,
            net_out_bps: self.net_bps,
            net_in_bps: self.net_bps,
            disk_bps: self.disk_bps,
            gc: None,             // native C++ runtime
            out_queue_bytes: None, // interleaved comm never stalls producers
        };
        let mut cfg = ClusterConfig::homogeneous(self.machines, machine);
        cfg.quantum = self.quantum;
        cfg.monitor_interval = self.monitor_interval;
        cfg
    }
}

/// Output of a GAS engine run.
pub struct GasRun {
    /// Raw simulator output (logs, monitoring, stats).
    pub sim: SimOutput,
    /// Sync-bug injections that occurred, for validation.
    pub injected_bugs: Vec<InjectedBug>,
}

/// Standard-normal sample via Box–Muller (avoids a rand_distr dependency).
fn normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Runs `work` (produced against a `machines × threads`-way vertex-cut
/// partition) on the simulated engine.
pub fn run_gas(
    work: &WorkProfile,
    num_edges: usize,
    cfg: &GasConfig,
) -> GasRun {
    assert_eq!(
        work.num_parts,
        cfg.num_parts(),
        "work profile has {} partitions, engine expects {}",
        work.num_parts,
        cfg.num_parts()
    );
    let m_count = cfg.machines;
    let iters = work.num_iterations();
    let remote_frac = cfg.machine_remote_fraction();
    let total = (m_count * (cfg.threads + 1) + 1) as u32;
    // The job coordinator only joins iteration boundaries, not the minor
    // GAS-step barriers.
    let workers_only = (m_count * (cfg.threads + 1)) as u32;
    let local = cfg.threads as u32 + 1;

    // Deterministic jitter and bug schedule, drawn up front in a fixed
    // order so thread-program construction order cannot perturb it.
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut jitter = vec![vec![[1.0f64; 3]; cfg.num_parts()]; iters];
    for it in jitter.iter_mut() {
        for part in it.iter_mut() {
            for (k, stage) in part.iter_mut().enumerate() {
                // Gather cost per edge varies more than apply/scatter: it
                // depends on the neighbor-value distribution (e.g. CDLP's
                // label histograms) on top of cache locality.
                let sigma = if k == 0 {
                    cfg.jitter_sigma * 1.4
                } else {
                    cfg.jitter_sigma
                };
                *stage = (sigma * normal(&mut rng)).exp();
            }
        }
    }
    let mut injected = Vec::new();
    if let Some(bug) = &cfg.sync_bug {
        for i in 0..iters {
            if rng.gen_bool(bug.probability) {
                let victim = rng.gen_range(0..cfg.num_parts());
                let factor = 1.0 + rng.gen_range(bug.extra_min..bug.extra_max);
                injected.push(InjectedBug {
                    iteration: i,
                    machine: victim / cfg.threads,
                    thread: victim % cfg.threads,
                    factor,
                });
            }
        }
    }

    let job = PhasePath::root().child("powergraph_job", 0);
    let execute = job.child("execute", 0);
    let mut sim = Simulation::new(cfg.cluster_config());

    // --- Coordinator ---
    {
        let mut p = ThreadProgram::new(0);
        p.push(Op::PhaseStart(job.clone()));
        p.push(Op::Barrier {
            id: barrier::LOAD_DONE,
            participants: total,
        });
        p.push(Op::PhaseStart(execute.clone()));
        for i in 0..iters {
            let it = execute.child("iteration", i as u32);
            p.push(Op::Barrier {
                id: barrier::iter_start(i),
                participants: total,
            });
            p.push(Op::PhaseStart(it.clone()));
            p.push(Op::Barrier {
                id: barrier::iter_end(i),
                participants: total,
            });
            p.push(Op::PhaseEnd(it));
        }
        p.push(Op::PhaseEnd(execute.clone()));
        p.push(Op::Barrier {
            id: barrier::END,
            participants: total,
        });
        p.push(Op::PhaseEnd(job.clone()));
        sim.add_thread(p);
    }

    // --- Per-machine coordinator thread: load, worker/stage containers,
    //     exchange ---
    for m in 0..m_count {
        let mut p = ThreadProgram::new(m as u16);
        let load = job.child("load", m as u32);
        let edges_here = num_edges as f64 / m_count as f64;
        p.push(Op::PhaseStart(load.clone()));
        // Read this machine's input split from local storage...
        let read = load.child("read", 0);
        p.push(Op::PhaseStart(read.clone()));
        p.push(Op::DiskIo {
            bytes: edges_here * cfg.disk_bytes_per_edge,
        });
        p.push(Op::PhaseEnd(read));
        // ...then parse it and shuffle edges to their owners.
        let parse = load.child("parse", 0);
        p.push(Op::PhaseStart(parse.clone()));
        p.push(Op::Compute {
            work: edges_here * cfg.load_secs_per_edge * cfg.work_factor(m),
            max_cores: cfg.threads as f64,
            alloc_per_work: 0.0,
            msgs: uniform_msgs(m, m_count, edges_here * cfg.load_bytes_per_edge * remote_frac),
        });
        p.push(Op::FlushWait);
        p.push(Op::PhaseEnd(parse));
        p.push(Op::PhaseEnd(load.clone()));
        p.push(Op::Barrier {
            id: barrier::LOAD_DONE,
            participants: total,
        });
        for i in 0..iters {
            let worker = execute.child("iteration", i as u32).child("worker", m as u32);
            p.push(Op::Barrier {
                id: barrier::iter_start(i),
                participants: total,
            });
            p.push(Op::PhaseStart(worker.clone()));
            for (stage, local_b, global_b) in [
                ("gather", barrier::gather_local(i, m), Some(barrier::gather_global(i))),
                ("apply", barrier::apply_local(i, m), Some(barrier::apply_global(i))),
                ("scatter", barrier::scatter_local(i, m), None),
            ] {
                let container = worker.child(stage, 0);
                p.push(Op::PhaseStart(container.clone()));
                p.push(Op::Barrier {
                    id: local_b,
                    participants: local,
                });
                p.push(Op::PhaseEnd(container));
                if let Some(g) = global_b {
                    p.push(Op::Barrier {
                        id: g,
                        participants: workers_only,
                    });
                }
            }
            let exchange = worker.child("exchange", 0);
            p.push(Op::PhaseStart(exchange.clone()));
            p.push(Op::FlushWait);
            p.push(Op::PhaseEnd(exchange));
            // The iteration barrier wait lands on the worker as a blocking
            // event rather than inflating the exchange phase.
            p.push(Op::Barrier {
                id: barrier::iter_end(i),
                participants: total,
            });
            p.push(Op::PhaseEnd(worker));
        }
        p.push(Op::Barrier {
            id: barrier::END,
            participants: total,
        });
        sim.add_thread(p);
    }

    // --- Worker threads ---
    for m in 0..m_count {
        for t in 0..cfg.threads {
            let part = m * cfg.threads + t;
            let mut p = ThreadProgram::new(m as u16);
            p.push(Op::Barrier {
                id: barrier::LOAD_DONE,
                participants: total,
            });
            for i in 0..iters {
                let w = &work.iterations[i].per_part[part];
                let worker = execute.child("iteration", i as u32).child("worker", m as u32);
                p.push(Op::Barrier {
                    id: barrier::iter_start(i),
                    participants: total,
                });

                // Gather: scan in-edges, push partial aggregates to remote
                // masters (interleaved with compute via the shared queue).
                let bug_factor = injected
                    .iter()
                    .find(|b| b.iteration == i && b.machine == m && b.thread == t)
                    .map(|b| b.factor)
                    .unwrap_or(1.0);
                let gwork = w.edges_scanned as f64
                    * cfg.gather_secs_per_edge
                    * jitter[i][part][0]
                    * bug_factor
                    * cfg.work_factor(m);
                let gbytes = w.msgs_remote as f64 * cfg.bytes_per_gather_msg * remote_frac;
                stage_ops(
                    &mut p,
                    &worker.child("gather", 0).child("thread", t as u32),
                    gwork,
                    uniform_msgs(m, m_count, gbytes),
                );
                p.push(Op::Barrier {
                    id: barrier::gather_local(i, m),
                    participants: local,
                });
                p.push(Op::Barrier {
                    id: barrier::gather_global(i),
                    participants: workers_only,
                });

                // Apply: update masters, emit replica sync traffic.
                let awork = w.active_vertices as f64
                    * cfg.apply_secs_per_vertex
                    * jitter[i][part][1]
                    * cfg.work_factor(m);
                let abytes = w.sync_messages as f64 * cfg.bytes_per_sync_msg * remote_frac;
                stage_ops(
                    &mut p,
                    &worker.child("apply", 0).child("thread", t as u32),
                    awork,
                    uniform_msgs(m, m_count, abytes),
                );
                p.push(Op::Barrier {
                    id: barrier::apply_local(i, m),
                    participants: local,
                });
                p.push(Op::Barrier {
                    id: barrier::apply_global(i),
                    participants: workers_only,
                });

                // Scatter: signal neighbors along out-edges.
                let swork = w.edges_scanned as f64
                    * cfg.scatter_secs_per_edge
                    * jitter[i][part][2]
                    * cfg.work_factor(m);
                stage_ops(
                    &mut p,
                    &worker.child("scatter", 0).child("thread", t as u32),
                    swork,
                    MsgOutput::none(),
                );
                p.push(Op::Barrier {
                    id: barrier::scatter_local(i, m),
                    participants: local,
                });
                p.push(Op::Barrier {
                    id: barrier::iter_end(i),
                    participants: total,
                });
            }
            p.push(Op::Barrier {
                id: barrier::END,
                participants: total,
            });
            sim.add_thread(p);
        }
    }

    GasRun {
        sim: sim.run(),
        injected_bugs: injected,
    }
}

fn stage_ops(p: &mut ThreadProgram, path: &PhasePath, work: f64, msgs: MsgOutput) {
    if work <= 0.0 {
        return;
    }
    p.push(Op::PhaseStart(path.clone()));
    p.push(Op::Compute {
        work,
        max_cores: 1.0,
        alloc_per_work: 0.0,
        msgs,
    });
    p.push(Op::PhaseEnd(path.clone()));
}

fn uniform_msgs(src: usize, machines: usize, total_bytes: f64) -> MsgOutput {
    if machines <= 1 || total_bytes <= 0.0 {
        return MsgOutput::none();
    }
    let per = total_bytes / (machines - 1) as f64;
    MsgOutput {
        per_dst: (0..machines)
            .filter(|&d| d != src)
            .map(|d| (d as u16, per))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grade10_graph::algorithms::cdlp;
    use grade10_graph::generators::social::SocialConfig;
    use grade10_graph::partition::VertexCutPartition;

    fn small_cfg() -> GasConfig {
        GasConfig {
            machines: 2,
            threads: 2,
            cores: 2.0,
            ..Default::default()
        }
    }

    fn small_run(cfg: &GasConfig) -> GasRun {
        let g = SocialConfig::with_size(2000, 5).generate();
        let part = VertexCutPartition::greedy(&g, cfg.num_parts());
        let r = cdlp(&g, &part, 3, );
        run_gas(&r.profile, g.num_edges(), cfg)
    }

    #[test]
    fn emits_gas_phase_hierarchy() {
        let cfg = small_cfg();
        let run = small_run(&cfg);
        let phases = run.sim.phase_intervals();
        let names: Vec<String> = phases.iter().map(|(p, _, _)| p.to_string()).collect();
        assert!(names.iter().any(|n| n.contains("gather.thread")));
        assert!(names.iter().any(|n| n.contains("apply.thread")));
        assert!(names.iter().any(|n| n.contains("scatter.thread")));
        assert!(names.iter().any(|n| n.contains("exchange")));
        assert!(names.iter().any(|n| n == "powergraph_job"));
    }

    #[test]
    fn no_gc_and_no_queue_stalls() {
        let cfg = small_cfg();
        let run = small_run(&cfg);
        assert!(run.sim.stats.gc_pauses.is_empty());
        assert_eq!(run.sim.stats.queue_stall_time, SimDuration::ZERO);
    }

    #[test]
    fn sync_bug_injections_are_recorded_and_deterministic() {
        let mut cfg = small_cfg();
        cfg.sync_bug = Some(SyncBugConfig {
            probability: 1.0,
            ..Default::default()
        });
        let a = small_run(&cfg);
        let b = small_run(&cfg);
        assert!(!a.injected_bugs.is_empty());
        assert_eq!(a.injected_bugs, b.injected_bugs);
        assert_eq!(a.sim.end_time, b.sim.end_time);
    }

    #[test]
    fn disabling_bug_removes_injections_and_speeds_up() {
        let mut buggy = small_cfg();
        buggy.sync_bug = Some(SyncBugConfig {
            probability: 1.0,
            extra_min: 1.0,
            extra_max: 1.5,
        });
        let mut fixed = small_cfg();
        fixed.sync_bug = None;
        let b = small_run(&buggy);
        let f = small_run(&fixed);
        assert!(f.injected_bugs.is_empty());
        assert!(
            f.sim.end_time < b.sim.end_time,
            "fixed {} !< buggy {}",
            f.sim.end_time,
            b.sim.end_time
        );
    }

    #[test]
    fn victim_thread_is_visibly_slower() {
        let mut cfg = small_cfg();
        cfg.jitter_sigma = 0.0;
        cfg.sync_bug = Some(SyncBugConfig {
            probability: 1.0,
            extra_min: 1.5,
            extra_max: 1.6,
        });
        let run = small_run(&cfg);
        let bug = run.injected_bugs[0];
        let phases = run.sim.phase_intervals();
        // Gather-thread durations of the bug iteration.
        let durs: Vec<(u32, u32, u64)> = phases
            .iter()
            .filter(|(p, _, _)| {
                p.depth() == 6
                    && p.0[2].instance == bug.iteration as u32
                    && p.0[4].phase_type == "gather"
            })
            .map(|(p, s, e)| (p.0[3].instance, p.0[5].instance, e.since(*s).as_nanos()))
            .collect();
        let victim = durs
            .iter()
            .find(|&&(m, t, _)| m == bug.machine as u32 && t == bug.thread as u32)
            .unwrap();
        let other_max = durs
            .iter()
            .filter(|&&(m, t, _)| !(m == bug.machine as u32 && t == bug.thread as u32))
            .map(|&(_, _, d)| d)
            .max()
            .unwrap();
        assert!(
            victim.2 as f64 > 1.3 * other_max as f64,
            "victim {} vs other max {other_max}",
            victim.2
        );
    }
}
