//! The Giraph-like BSP engine simulation.
//!
//! Executes a [`WorkProfile`] (per-superstep, per-partition work counts from
//! a real algorithm run) as thread programs on the cluster simulator. Each
//! machine hosts one worker with `threads` compute threads plus a
//! communication thread; supersteps are separated by global barriers.
//! Compute threads burn CPU proportional to the edges/vertices their
//! partition processed, allocate heap (driving the stop-the-world GC), and
//! produce message bytes into the machine's *bounded* outbound queue — when
//! the network cannot drain it fast enough, producers stall in bursts,
//! exactly the Giraph behavior Grade10's Fig. 3 region ③ dissects.

use grade10_cluster::{
    ClusterConfig, GcConfig, MachineConfig, MsgOutput, Op, PhasePath, SimDuration, SimOutput,
    Simulation, ThreadProgram,
};
use grade10_graph::algorithms::WorkProfile;

/// Barrier-id layout. Barrier ids must be globally unique per rendezvous.
mod barrier {
    pub const LOAD_DONE: u32 = 1;
    pub const OUTPUT_DONE: u32 = 2;

    /// Superstep-start barrier (global).
    pub fn superstep_start(s: usize) -> u32 {
        10 + s as u32 * 1000
    }
    /// Superstep-end barrier (global).
    pub fn superstep_end(s: usize) -> u32 {
        11 + s as u32 * 1000
    }
    /// Machine-local compute-done barrier.
    pub fn compute_done(s: usize, machine: usize) -> u32 {
        100 + s as u32 * 1000 + machine as u32
    }
    /// Machine-local prepare-done barrier.
    pub fn prepare_done(s: usize, machine: usize) -> u32 {
        300 + s as u32 * 1000 + machine as u32
    }
}

/// Configuration and calibration of the Giraph-like engine.
#[derive(Clone, Debug)]
pub struct PregelConfig {
    /// Number of worker machines.
    pub machines: usize,
    /// Compute threads per worker.
    pub threads: usize,
    /// CPU cores per machine.
    pub cores: f64,
    /// NIC bandwidth per direction, bytes/second.
    pub net_bps: f64,
    /// Local storage bandwidth, bytes/second.
    pub disk_bps: f64,
    /// On-disk bytes per edge read during load.
    pub disk_bytes_per_edge: f64,
    /// On-disk bytes per vertex written during output.
    pub disk_bytes_per_vertex: f64,
    /// Outbound message queue bound, bytes.
    pub queue_bytes: f64,
    /// JVM garbage collector model (`None` disables GC).
    pub gc: Option<GcConfig>,
    /// CPU core-seconds per edge scanned.
    pub secs_per_edge: f64,
    /// CPU core-seconds per active vertex.
    pub secs_per_vertex: f64,
    /// Wire bytes per remote message.
    pub bytes_per_msg: f64,
    /// Remote-volume multiplier modeling message combiners (Giraph's
    /// classic optimization: pre-aggregating messages per destination
    /// vertex before they hit the wire). 1.0 = no combiner; 0.3 means
    /// combiners shrink remote traffic to 30 %.
    pub combiner_ratio: f64,
    /// Heap bytes allocated per core-second of compute.
    pub alloc_per_work: f64,
    /// Load phase: core-seconds per edge parsed.
    pub load_secs_per_edge: f64,
    /// Load phase: shuffle bytes per edge.
    pub load_bytes_per_edge: f64,
    /// Output phase: core-seconds per vertex written.
    pub output_secs_per_vertex: f64,
    /// Per-superstep worker preparation cost, core-seconds (the paper's
    /// P2.x.1 phase: registering partitions, rotating message stores).
    pub prepare_secs: f64,
    /// Per-machine work multiplier (empty = all 1.0). A factor above 1.0
    /// models a degraded node — older CPU, thermal throttling, a noisy
    /// neighbor — whose compute takes proportionally longer. Classic
    /// straggler scenarios for the imbalance analysis.
    pub machine_work_factor: Vec<f64>,
    /// Simulation quantum.
    pub quantum: SimDuration,
    /// Ground-truth monitoring interval (the paper's 50 ms).
    pub monitor_interval: SimDuration,
}

impl Default for PregelConfig {
    fn default() -> Self {
        PregelConfig {
            machines: 4,
            threads: 8,
            cores: 8.0,
            net_bps: 1.2e7,
            disk_bps: 6.0e6,
            disk_bytes_per_edge: 60.0,
            disk_bytes_per_vertex: 40.0,
            queue_bytes: 1.0e6,
            gc: Some(GcConfig {
                heap_bytes: 6.0e8,
                trigger_fraction: 0.8,
                pause_per_byte: 0.3 / 1e9,
                min_pause_secs: 0.045,
                live_fraction: 0.25,
            }),
            secs_per_edge: 1.0e-4,
            secs_per_vertex: 2.0e-5,
            bytes_per_msg: 300.0,
            combiner_ratio: 1.0,
            alloc_per_work: 6.0e7,
            load_secs_per_edge: 2.0e-5,
            load_bytes_per_edge: 40.0,
            output_secs_per_vertex: 1.0e-5,
            prepare_secs: 0.02,
            machine_work_factor: Vec::new(),
            quantum: SimDuration::from_millis(1),
            monitor_interval: SimDuration::from_millis(50),
        }
    }
}

impl PregelConfig {
    /// Number of graph partitions (one per compute thread cluster-wide).
    pub fn num_parts(&self) -> usize {
        self.machines * self.threads
    }

    /// Machine hosting partition `p`.
    pub fn machine_of_part(&self, p: usize) -> usize {
        p / self.threads
    }

    /// Work multiplier of machine `m` (1.0 unless configured).
    pub fn work_factor(&self, m: usize) -> f64 {
        self.machine_work_factor.get(m).copied().unwrap_or(1.0)
    }

    /// Fraction of cross-partition messages that cross *machines* under
    /// hash partitioning (the rest land on sibling partitions of the same
    /// worker and never touch the network).
    pub fn machine_remote_fraction(&self) -> f64 {
        let parts = self.num_parts() as f64;
        if parts <= 1.0 {
            return 0.0;
        }
        (self.machines as f64 - 1.0) * self.threads as f64 / (parts - 1.0)
    }

    fn cluster_config(&self) -> ClusterConfig {
        let machine = MachineConfig {
            cores: self.cores,
            net_out_bps: self.net_bps,
            net_in_bps: self.net_bps,
            disk_bps: self.disk_bps,
            gc: self.gc.clone(),
            out_queue_bytes: Some(self.queue_bytes),
        };
        let mut cfg = ClusterConfig::homogeneous(self.machines, machine);
        cfg.quantum = self.quantum;
        cfg.monitor_interval = self.monitor_interval;
        cfg
    }
}

/// Runs `work` (produced against a `machines × threads`-way edge-cut
/// partition) on the simulated engine. `num_vertices`/`num_edges` size the
/// load and output phases.
pub fn run_pregel(
    work: &WorkProfile,
    num_vertices: usize,
    num_edges: usize,
    cfg: &PregelConfig,
) -> SimOutput {
    assert_eq!(
        work.num_parts,
        cfg.num_parts(),
        "work profile has {} partitions, engine expects {}",
        work.num_parts,
        cfg.num_parts()
    );
    let m_count = cfg.machines;
    let supersteps = work.num_iterations();
    let remote_frac = cfg.machine_remote_fraction();

    let job = PhasePath::root().child("giraph_job", 0);
    let execute = job.child("execute", 0);

    let mut sim = Simulation::new(cfg.cluster_config());

    // --- Coordinator (machine 0): job / execute / superstep containers ---
    {
        let mut p = ThreadProgram::new(0);
        p.push(Op::PhaseStart(job.clone()));
        p.push(Op::Barrier {
            id: barrier::LOAD_DONE,
            participants: total_participants(cfg),
        });
        p.push(Op::PhaseStart(execute.clone()));
        for s in 0..supersteps {
            let ss = execute.child("superstep", s as u32);
            p.push(Op::Barrier {
                id: barrier::superstep_start(s),
                participants: total_participants(cfg),
            });
            p.push(Op::PhaseStart(ss.clone()));
            p.push(Op::Barrier {
                id: barrier::superstep_end(s),
                participants: total_participants(cfg),
            });
            p.push(Op::PhaseEnd(ss));
        }
        p.push(Op::PhaseEnd(execute.clone()));
        p.push(Op::Barrier {
            id: barrier::OUTPUT_DONE,
            participants: total_participants(cfg),
        });
        p.push(Op::PhaseEnd(job.clone()));
        sim.add_thread(p);
    }

    // --- Communication thread per machine: load, worker containers,
    //     communicate, sync, output ---
    for m in 0..m_count {
        let mut p = ThreadProgram::new(m as u16);
        // Load: parse this machine's share and shuffle it out.
        let load = job.child("load", m as u32);
        let edges_here = num_edges as f64 / m_count as f64;
        p.push(Op::PhaseStart(load.clone()));
        // Read this machine's input split from local storage...
        let read = load.child("read", 0);
        p.push(Op::PhaseStart(read.clone()));
        p.push(Op::DiskIo {
            bytes: edges_here * cfg.disk_bytes_per_edge,
        });
        p.push(Op::PhaseEnd(read));
        // ...then parse it and shuffle vertices to their owners.
        let parse = load.child("parse", 0);
        p.push(Op::PhaseStart(parse.clone()));
        p.push(Op::Compute {
            work: edges_here * cfg.load_secs_per_edge * cfg.work_factor(m),
            max_cores: cfg.threads as f64, // parallel parse
            alloc_per_work: cfg.alloc_per_work,
            msgs: uniform_msgs(
                m,
                m_count,
                edges_here * cfg.load_bytes_per_edge * remote_frac,
            ),
        });
        p.push(Op::FlushWait);
        p.push(Op::PhaseEnd(parse));
        p.push(Op::PhaseEnd(load.clone()));
        p.push(Op::Barrier {
            id: barrier::LOAD_DONE,
            participants: total_participants(cfg),
        });
        for s in 0..supersteps {
            let worker = execute
                .child("superstep", s as u32)
                .child("worker", m as u32);
            let compute = worker.child("compute", 0);
            let communicate = worker.child("communicate", 0);
            p.push(Op::Barrier {
                id: barrier::superstep_start(s),
                participants: total_participants(cfg),
            });
            p.push(Op::PhaseStart(worker.clone()));
            // Prepare the worker before its threads compute.
            let prepare = worker.child("prepare", 0);
            p.push(Op::PhaseStart(prepare.clone()));
            p.push(Op::Compute {
                work: cfg.prepare_secs * cfg.work_factor(m),
                max_cores: 1.0,
                alloc_per_work: 0.0,
                msgs: MsgOutput::none(),
            });
            p.push(Op::PhaseEnd(prepare));
            p.push(Op::Barrier {
                id: barrier::prepare_done(s, m),
                participants: cfg.threads as u32 + 1,
            });
            p.push(Op::PhaseStart(compute.clone()));
            p.push(Op::Barrier {
                id: barrier::compute_done(s, m),
                participants: cfg.threads as u32 + 1,
            });
            p.push(Op::PhaseEnd(compute));
            // Residual queue drain after the last thread finishes; messages
            // sent during compute already drained concurrently.
            p.push(Op::PhaseStart(communicate.clone()));
            p.push(Op::FlushWait);
            p.push(Op::PhaseEnd(communicate));
            // The end-of-superstep barrier wait lands on the worker as a
            // blocking event, not as a phase.
            p.push(Op::Barrier {
                id: barrier::superstep_end(s),
                participants: total_participants(cfg),
            });
            p.push(Op::PhaseEnd(worker));
        }
        // Output: write this machine's share of the result.
        let output = job.child("output", m as u32);
        p.push(Op::PhaseStart(output.clone()));
        p.push(Op::Compute {
            work: num_vertices as f64 / m_count as f64 * cfg.output_secs_per_vertex
                * cfg.work_factor(m),
            max_cores: cfg.threads as f64,
            alloc_per_work: 0.0,
            msgs: MsgOutput::none(),
        });
        // Write this machine's result partition to local storage.
        p.push(Op::DiskIo {
            bytes: num_vertices as f64 / m_count as f64 * cfg.disk_bytes_per_vertex,
        });
        p.push(Op::PhaseEnd(output));
        p.push(Op::Barrier {
            id: barrier::OUTPUT_DONE,
            participants: total_participants(cfg),
        });
        sim.add_thread(p);
    }

    // --- Compute threads ---
    for m in 0..m_count {
        for t in 0..cfg.threads {
            let part = m * cfg.threads + t;
            let mut p = ThreadProgram::new(m as u16);
            p.push(Op::Barrier {
                id: barrier::LOAD_DONE,
                participants: total_participants(cfg),
            });
            for s in 0..supersteps {
                let w = &work.iterations[s].per_part[part];
                let thread_phase = execute
                    .child("superstep", s as u32)
                    .child("worker", m as u32)
                    .child("compute", 0)
                    .child("thread", t as u32);
                p.push(Op::Barrier {
                    id: barrier::superstep_start(s),
                    participants: total_participants(cfg),
                });
                p.push(Op::Barrier {
                    id: barrier::prepare_done(s, m),
                    participants: cfg.threads as u32 + 1,
                });
                let cpu_work = (w.edges_scanned as f64 * cfg.secs_per_edge
                    + w.active_vertices as f64 * cfg.secs_per_vertex)
                    * cfg.work_factor(m);
                if cpu_work > 0.0 {
                    let remote_bytes = w.msgs_remote as f64
                        * cfg.bytes_per_msg
                        * remote_frac
                        * cfg.combiner_ratio;
                    p.push(Op::PhaseStart(thread_phase.clone()));
                    p.push(Op::Compute {
                        work: cpu_work,
                        max_cores: 1.0,
                        alloc_per_work: cfg.alloc_per_work,
                        msgs: uniform_msgs(m, m_count, remote_bytes),
                    });
                    p.push(Op::PhaseEnd(thread_phase));
                }
                p.push(Op::Barrier {
                    id: barrier::compute_done(s, m),
                    participants: cfg.threads as u32 + 1,
                });
                p.push(Op::Barrier {
                    id: barrier::superstep_end(s),
                    participants: total_participants(cfg),
                });
            }
            p.push(Op::Barrier {
                id: barrier::OUTPUT_DONE,
                participants: total_participants(cfg),
            });
            sim.add_thread(p);
        }
    }

    sim.run()
}

fn total_participants(cfg: &PregelConfig) -> u32 {
    (cfg.machines * (cfg.threads + 1) + 1) as u32
}

/// Message bytes spread uniformly over all machines but `src`.
fn uniform_msgs(src: usize, machines: usize, total_bytes: f64) -> MsgOutput {
    if machines <= 1 || total_bytes <= 0.0 {
        return MsgOutput::none();
    }
    let per = total_bytes / (machines - 1) as f64;
    MsgOutput {
        per_dst: (0..machines)
            .filter(|&d| d != src)
            .map(|d| (d as u16, per))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grade10_cluster::LogEvent;
    use grade10_graph::algorithms::pagerank;
    use grade10_graph::generators::rmat::RmatConfig;
    use grade10_graph::partition::EdgeCutPartition;

    fn small_run() -> (SimOutput, PregelConfig, usize) {
        // Scaled-down cluster with a slow NIC, a small queue, and a small
        // heap so the small test graph still produces queue stalls and GC.
        let cfg = PregelConfig {
            machines: 2,
            threads: 2,
            cores: 2.0,
            net_bps: 2.0e6,
            queue_bytes: 2.0e5,
            gc: Some(GcConfig {
                heap_bytes: 1.2e8,
                trigger_fraction: 0.8,
                pause_per_byte: 0.3 / 1e9,
                min_pause_secs: 0.045,
                live_fraction: 0.25,
            }),
            ..Default::default()
        };
        let g = RmatConfig::graph500(9, 42).generate();
        let part = EdgeCutPartition::hash(&g, cfg.num_parts());
        let pr = pagerank(&g, &part, 3, 0.85);
        let out = run_pregel(&pr.profile, g.num_vertices(), g.num_edges(), &cfg);
        (out, cfg, 3)
    }

    #[test]
    fn emits_complete_phase_hierarchy() {
        let (out, cfg, supersteps) = small_run();
        let phases = out.phase_intervals();
        let count = |prefix: &str| {
            phases
                .iter()
                .filter(|(p, _, _)| p.to_string().contains(prefix))
                .count()
        };
        // Per superstep: the container itself plus, per machine, worker /
        // prepare / compute / communicate containers and the thread leaves.
        assert_eq!(count("superstep"), supersteps * (1 + cfg.machines * (4 + cfg.threads)));
        // load container + read + parse leaves per machine.
        assert_eq!(count("load"), 3 * cfg.machines);
        assert_eq!(count("output"), cfg.machines);
        // job + execute present exactly once.
        assert_eq!(
            phases
                .iter()
                .filter(|(p, _, _)| p.to_string() == "giraph_job")
                .count(),
            1
        );
    }

    #[test]
    fn queue_stalls_and_gc_occur() {
        let (out, _, _) = small_run();
        assert!(
            out.stats.queue_stall_time > SimDuration::ZERO,
            "expected message-queue stalls"
        );
        assert!(!out.stats.gc_pauses.is_empty(), "expected GC pauses");
        assert!(out.logs.iter().any(
            |r| matches!(&r.event, LogEvent::BlockStart { resource } if resource == "msgq")
        ));
    }

    #[test]
    fn deterministic() {
        let (a, _, _) = small_run();
        let (b, _, _) = small_run();
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.logs.len(), b.logs.len());
    }

    #[test]
    fn remote_fraction_formula() {
        let cfg = PregelConfig {
            machines: 4,
            threads: 8,
            ..Default::default()
        };
        let f = cfg.machine_remote_fraction();
        assert!((f - 24.0 / 31.0).abs() < 1e-12);
        let single = PregelConfig {
            machines: 1,
            threads: 8,
            ..Default::default()
        };
        assert_eq!(single.machine_remote_fraction(), 0.0);
    }

    #[test]
    fn phases_nest_within_parents() {
        let (out, _, _) = small_run();
        let phases = out.phase_intervals();
        // Every thread phase lies within its superstep's span.
        for (p, start, end) in &phases {
            if p.leaf_type() == "thread" {
                let ss_key = p.0[2].instance; // giraph_job.execute.superstep[k]...
                let ss = phases
                    .iter()
                    .find(|(q, _, _)| {
                        q.depth() == 3
                            && q.0[2].phase_type == "superstep"
                            && q.0[2].instance == ss_key
                    })
                    .unwrap();
                assert!(*start >= ss.1 && *end <= ss.2);
            }
        }
    }
}
