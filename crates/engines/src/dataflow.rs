//! A Spark-like dataflow engine — the paper's §V extension, implemented.
//!
//! The paper reports ongoing work "characterizing Spark workloads by
//! extending Grade10's methods". This module provides the corresponding
//! simulated SUT: a job is a sequence of *stages* separated by shuffles;
//! each stage consists of independent *tasks* scheduled onto per-machine
//! executor slots (longest-processing-time packing, Spark's effective
//! behavior under its default scheduler); after its tasks finish, each
//! machine writes its shuffle output to every other machine.
//!
//! Architecturally this differs from both graph engines: no GC pauses are
//! modeled by default (configurable), there are no bounded queues, and —
//! most importantly — work is *task-granular*, so a straggler task delays
//! only its stage boundary, not a thread-long phase. Grade10 needs nothing
//! new to characterize it: a model, rules, and the same pipeline.

use grade10_cluster::{
    ClusterConfig, GcConfig, MachineConfig, MsgOutput, Op, PhasePath, SimDuration, SimOutput,
    Simulation, ThreadProgram,
};
use grade10_core::model::{
    AttributionRule, ExecutionModel, ExecutionModelBuilder, Repeat, ResourceModel, RuleSet,
};
use grade10_graph::algorithms::WorkProfile;

/// One stage: per-task CPU work (core-seconds) and the shuffle volume each
/// machine writes afterwards (bytes).
#[derive(Clone, Debug)]
pub struct StageSpec {
    /// CPU work per task, core-seconds.
    pub task_work: Vec<f64>,
    /// Shuffle output each machine writes after its tasks, bytes.
    pub shuffle_bytes_per_machine: f64,
}

/// A whole dataflow job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The stages, executed in order with a shuffle between them.
    pub stages: Vec<StageSpec>,
}

impl JobSpec {
    /// Derives a GraphX-flavored job from a graph-algorithm work profile:
    /// one stage per iteration, one task per partition (task work from
    /// edges scanned), shuffle volume from remote messages.
    pub fn from_work_profile(
        work: &WorkProfile,
        secs_per_edge: f64,
        bytes_per_msg: f64,
        machines: usize,
    ) -> JobSpec {
        let stages = work
            .iterations
            .iter()
            .map(|it| {
                let task_work = it
                    .per_part
                    .iter()
                    .map(|p| p.edges_scanned as f64 * secs_per_edge)
                    .collect();
                let remote: u64 = it.per_part.iter().map(|p| p.msgs_remote).sum();
                StageSpec {
                    task_work,
                    shuffle_bytes_per_machine: remote as f64 * bytes_per_msg
                        / machines as f64,
                }
            })
            .collect();
        JobSpec { stages }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct DataflowConfig {
    /// Number of worker machines.
    pub machines: usize,
    /// Executor slots (threads) per machine.
    pub executors: usize,
    /// CPU cores per machine.
    pub cores: f64,
    /// NIC bandwidth per direction, bytes/second.
    pub net_bps: f64,
    /// Optional JVM GC (Spark runs on the JVM; enable to study GC impact).
    pub gc: Option<GcConfig>,
    /// Heap bytes allocated per core-second of task work (only meaningful
    /// with `gc` enabled).
    pub alloc_per_work: f64,
    /// Simulation quantum.
    pub quantum: SimDuration,
    /// Ground-truth monitoring interval.
    pub monitor_interval: SimDuration,
}

impl Default for DataflowConfig {
    fn default() -> Self {
        DataflowConfig {
            machines: 4,
            executors: 8,
            cores: 8.0,
            net_bps: 2.0e7,
            gc: None,
            alloc_per_work: 0.0,
            quantum: SimDuration::from_millis(1),
            monitor_interval: SimDuration::from_millis(50),
        }
    }
}

/// Phase-type handles of the dataflow model.
#[derive(Clone, Copy, Debug)]
pub struct DataflowPhases {
    /// The stage container (sequential).
    pub stage: grade10_core::model::PhaseTypeId,
    /// One executor slot's work within a stage.
    pub executor: grade10_core::model::PhaseTypeId,
    /// A single task (leaf).
    pub task: grade10_core::model::PhaseTypeId,
    /// The per-machine shuffle write (leaf).
    pub shuffle: grade10_core::model::PhaseTypeId,
}

/// Execution model:
///
/// ```text
/// dataflow_job
/// └── stage (sequential)
///     ├── executor (per machine × slot) ── task (the tasks it ran)
///     └── shuffle (per machine)              executor → shuffle
/// ```
pub fn dataflow_model() -> (ExecutionModel, DataflowPhases) {
    let mut b = ExecutionModelBuilder::new("dataflow_job");
    let root = b.root();
    let stage = b.child(root, "stage", Repeat::Sequential);
    let executor = b.child(stage, "executor", Repeat::Parallel);
    let task = b.child(executor, "task", Repeat::Parallel);
    let shuffle = b.child(stage, "shuffle", Repeat::Parallel);
    b.edge(executor, shuffle);
    let model = b.build();
    (
        model,
        DataflowPhases {
            stage,
            executor,
            task,
            shuffle,
        },
    )
}

/// Resource model for the dataflow engine.
pub fn dataflow_resource_model() -> ResourceModel {
    ResourceModel::new()
        .consumable("cpu")
        .consumable("net_out")
        .consumable("net_in")
        .blocking("gc")
        .blocking("barrier")
        .blocking("flush")
}

/// Tuned rules: a task uses exactly one core; shuffle is network-bound.
pub fn dataflow_rules_tuned(phases: &DataflowPhases, cores: f64) -> RuleSet {
    RuleSet::new()
        .with_default(AttributionRule::None)
        .rule(phases.task, "cpu", AttributionRule::Exact((1.0 / cores).min(1.0)))
        .rule(phases.shuffle, "net_out", AttributionRule::Variable(1.0))
        .rule(phases.shuffle, "net_in", AttributionRule::Variable(1.0))
        .rule(phases.shuffle, "cpu", AttributionRule::Variable(0.25))
}

mod barrier {
    pub fn stage_start(s: usize) -> u32 {
        10 + s as u32 * 100
    }
    pub fn tasks_done(s: usize) -> u32 {
        11 + s as u32 * 100
    }
    pub fn stage_end(s: usize) -> u32 {
        12 + s as u32 * 100
    }
}

/// Runs a dataflow job on the simulated cluster.
///
/// Tasks are packed onto executor slots with the longest-processing-time
/// heuristic (sort descending, always give the next task to the least
/// loaded slot), machine by machine round-robin — deterministic and close
/// to what a work-stealing scheduler achieves.
pub fn run_dataflow(job: &JobSpec, cfg: &DataflowConfig) -> SimOutput {
    let machine = MachineConfig {
        cores: cfg.cores,
        net_out_bps: cfg.net_bps,
        net_in_bps: cfg.net_bps,
        disk_bps: 5.0e8, // ample; this engine models no disk I/O
        gc: cfg.gc.clone(),
        out_queue_bytes: None,
    };
    let mut ccfg = ClusterConfig::homogeneous(cfg.machines, machine);
    ccfg.quantum = cfg.quantum;
    ccfg.monitor_interval = cfg.monitor_interval;
    let mut sim = Simulation::new(ccfg);

    let slots = cfg.machines * cfg.executors;
    let total = (slots + cfg.machines + 1) as u32; // executors + shufflers + driver

    let jobp = PhasePath::root().child("dataflow_job", 0);

    // Assign tasks to slots per stage (LPT).
    // assignment[stage][slot] = list of (task key, work).
    let mut assignment: Vec<Vec<Vec<(u32, f64)>>> = Vec::new();
    for spec in &job.stages {
        let mut tasks: Vec<(u32, f64)> = spec
            .task_work
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as u32, w))
            .collect();
        tasks.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut per_slot: Vec<Vec<(u32, f64)>> = vec![Vec::new(); slots];
        let mut loads = vec![0.0f64; slots];
        for (key, w) in tasks {
            let Some(slot) =
                (0..slots).min_by(|&a, &b| loads[a].total_cmp(&loads[b]).then(a.cmp(&b)))
            else {
                unreachable!("slots >= 1, so the range is never empty");
            };
            per_slot[slot].push((key, w));
            loads[slot] += w;
        }
        assignment.push(per_slot);
    }

    // Driver: job and stage containers.
    {
        let mut p = ThreadProgram::new(0);
        p.push(Op::PhaseStart(jobp.clone()));
        for s in 0..job.stages.len() {
            let stage = jobp.child("stage", s as u32);
            p.push(Op::Barrier {
                id: barrier::stage_start(s),
                participants: total,
            });
            p.push(Op::PhaseStart(stage.clone()));
            p.push(Op::Barrier {
                id: barrier::stage_end(s),
                participants: total,
            });
            p.push(Op::PhaseEnd(stage));
        }
        p.push(Op::PhaseEnd(jobp.clone()));
        sim.add_thread(p);
    }

    // Executor slots.
    for slot in 0..slots {
        let m = slot / cfg.executors;
        let mut p = ThreadProgram::new(m as u16);
        for (s, _) in job.stages.iter().enumerate() {
            let stage = jobp.child("stage", s as u32);
            let exec = stage.child("executor", slot as u32);
            p.push(Op::Barrier {
                id: barrier::stage_start(s),
                participants: total,
            });
            p.push(Op::PhaseStart(exec.clone()));
            for &(key, work) in &assignment[s][slot] {
                if work <= 0.0 {
                    continue;
                }
                let task = exec.child("task", key);
                p.push(Op::PhaseStart(task.clone()));
                p.push(Op::Compute {
                    work,
                    max_cores: 1.0,
                    alloc_per_work: cfg.alloc_per_work,
                    msgs: MsgOutput::none(),
                });
                p.push(Op::PhaseEnd(task));
            }
            p.push(Op::PhaseEnd(exec));
            p.push(Op::Barrier {
                id: barrier::tasks_done(s),
                participants: total - 1, // shufflers wait too; driver does not
            });
            p.push(Op::Barrier {
                id: barrier::stage_end(s),
                participants: total,
            });
        }
        sim.add_thread(p);
    }

    // Shuffle writers, one per machine.
    for m in 0..cfg.machines {
        let mut p = ThreadProgram::new(m as u16);
        for (s, spec) in job.stages.iter().enumerate() {
            let stage = jobp.child("stage", s as u32);
            let shuffle = stage.child("shuffle", m as u32);
            p.push(Op::Barrier {
                id: barrier::stage_start(s),
                participants: total,
            });
            p.push(Op::Barrier {
                id: barrier::tasks_done(s),
                participants: total - 1,
            });
            p.push(Op::PhaseStart(shuffle.clone()));
            if cfg.machines > 1 && spec.shuffle_bytes_per_machine > 0.0 {
                let per = spec.shuffle_bytes_per_machine / (cfg.machines - 1) as f64;
                for dst in 0..cfg.machines {
                    if dst != m {
                        p.push(Op::Send {
                            dst: dst as u16,
                            bytes: per,
                        });
                    }
                }
            }
            p.push(Op::PhaseEnd(shuffle));
            p.push(Op::Barrier {
                id: barrier::stage_end(s),
                participants: total,
            });
        }
        sim.add_thread(p);
    }

    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grade10_core::parse::build_execution_trace;

    use crate::bridge::to_raw_events;

    fn two_stage_job() -> JobSpec {
        JobSpec {
            stages: vec![
                StageSpec {
                    task_work: vec![0.2, 0.2, 0.2, 0.2, 0.8], // one straggler
                    shuffle_bytes_per_machine: 2.0e6,
                },
                StageSpec {
                    task_work: vec![0.3; 8],
                    shuffle_bytes_per_machine: 0.0,
                },
            ],
        }
    }

    fn small_cfg() -> DataflowConfig {
        DataflowConfig {
            machines: 2,
            executors: 2,
            cores: 2.0,
            net_bps: 4.0e6,
            ..Default::default()
        }
    }

    #[test]
    fn stages_run_sequentially_and_parse() {
        let out = run_dataflow(&two_stage_job(), &small_cfg());
        let (model, _) = dataflow_model();
        let trace = build_execution_trace(&model, &to_raw_events(&out.logs)).unwrap();
        let stage_ty = model.find_by_name("stage").unwrap();
        let stages: Vec<_> = trace.instances_of_type(stage_ty).collect();
        assert_eq!(stages.len(), 2);
        assert!(stages[0].end <= stages[1].start || stages[1].end <= stages[0].start);
        let task_ty = model.find_by_name("task").unwrap();
        assert_eq!(trace.instances_of_type(task_ty).count(), 13);
    }

    #[test]
    fn lpt_packing_bounds_stage_length() {
        // 5 tasks (0.2 x4 + 0.8) on 4 slots: the straggler dominates, so
        // stage 0 compute is ~0.8 s; shuffle adds 2 MB / 4 MB/s = 0.5 s.
        let out = run_dataflow(&two_stage_job(), &small_cfg());
        // Stage 1: 8 x 0.3 on 4 slots = 0.6 s. Total ~ 0.8 + 0.5 + 0.6.
        let t = out.end_time.as_secs_f64();
        assert!((1.8..2.2).contains(&t), "runtime {t}");
    }

    #[test]
    fn grade10_finds_the_straggler_task_imbalance() {
        let out = run_dataflow(&two_stage_job(), &small_cfg());
        let (model, phases) = dataflow_model();
        let trace = build_execution_trace(&model, &to_raw_events(&out.logs)).unwrap();
        let issue = grade10_core::issues::imbalance::imbalance_issue(
            &model,
            &trace,
            phases.task,
            &grade10_core::replay::ReplayConfig::default(),
        );
        // Balancing the stage-0 tasks (0.2 x4 + 0.8 → five x 0.32) trims
        // the straggler's tail: the stage shrinks from 0.8 to 2 x 0.32 on
        // the shared slot, roughly 8 % of the whole job.
        assert!(
            issue.reduction > 0.05,
            "task imbalance should be visible: {}",
            issue.reduction
        );
    }

    #[test]
    fn from_work_profile_maps_iterations_to_stages() {
        use grade10_graph::algorithms::pagerank;
        use grade10_graph::generators::rmat::RmatConfig;
        use grade10_graph::partition::EdgeCutPartition;
        let g = RmatConfig::graph500(8, 3).generate();
        let part = EdgeCutPartition::hash(&g, 8);
        let pr = pagerank(&g, &part, 3, 0.85);
        let job = JobSpec::from_work_profile(&pr.profile, 1e-4, 100.0, 2);
        assert_eq!(job.stages.len(), 3);
        assert_eq!(job.stages[0].task_work.len(), 8);
        assert!(job.stages[0].shuffle_bytes_per_machine > 0.0);
    }

    #[test]
    fn rules_and_model_cover_the_phases() {
        let (model, phases) = dataflow_model();
        let rules = dataflow_rules_tuned(&phases, 8.0);
        assert_eq!(
            rules.get(phases.task, "cpu"),
            AttributionRule::Exact(0.125)
        );
        assert!(model.is_leaf(phases.task));
        assert!(model.is_leaf(phases.shuffle));
        assert_eq!(model.grouping_scope(phases.task), phases.stage);
    }
}
