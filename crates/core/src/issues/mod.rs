//! Performance-issue detection (§III-F).
//!
//! For each candidate issue Grade10 computes how fixing it would change
//! specific phase durations, replays the trace with the adjusted durations,
//! and reports the reduction in makespan if it clears a threshold. Two issue
//! classes are implemented, matching the paper:
//!
//! * [`bottleneck_impact`] — *extensive resource bottlenecks*: remove all
//!   bottlenecks on one resource kind (consumable or blocking) and see how
//!   much faster the application could run before the next resource binds;
//! * [`imbalance`] — *imbalanced execution*: give every group of concurrent
//!   same-type phases its mean duration (work is interchangeable within one
//!   iteration, never across iterations) and re-simulate.

pub mod bottleneck_impact;
pub mod imbalance;

pub use bottleneck_impact::{
    blocking_issue, consumable_issue, detect_bottleneck_issues,
};
pub use imbalance::{detect_imbalance_issues, imbalance_groups, GroupDetail, OutlierReport};

use crate::model::execution::PhaseTypeId;
use crate::trace::timeslice::Nanos;

/// Thresholds and knobs for issue detection.
#[derive(Clone, Debug)]
pub struct IssueConfig {
    /// Minimum makespan reduction (fraction of baseline) to report an issue.
    pub min_reduction: f64,
    /// Lower bound on the per-slice shrink factor when simulating a removed
    /// consumable bottleneck: a slice never shrinks below this fraction of
    /// itself (prevents unbounded speedups when no other resource is
    /// visible).
    pub floor_factor: f64,
}

impl Default for IssueConfig {
    fn default() -> Self {
        IssueConfig {
            min_reduction: 0.01,
            floor_factor: 0.05,
        }
    }
}

/// What kind of issue a report describes.
#[derive(Clone, Debug, PartialEq)]
pub enum IssueKind {
    /// Removing all bottlenecks on a consumable resource kind.
    /// Removing all bottlenecks on a consumable resource kind.
    ConsumableBottleneck {
        /// The consumable resource kind whose bottlenecks are removed.
        resource_kind: String,
    },
    /// Removing all blocking on a blocking resource kind.
    /// Removing all blocking on a blocking resource kind.
    BlockingBottleneck {
        /// The blocking resource kind whose events are removed.
        resource_kind: String,
    },
    /// Perfectly balancing concurrent same-type phases of one type.
    /// Perfectly balancing concurrent same-type phases of one type.
    Imbalance {
        /// The phase type whose concurrent groups are evened out.
        phase_type: PhaseTypeId,
    },
}

/// One detected performance issue with its estimated maximal impact.
#[derive(Clone, Debug)]
pub struct PerformanceIssue {
    /// What fixing this issue means.
    pub kind: IssueKind,
    /// Baseline makespan (replay of the original durations), ns.
    pub base_makespan: Nanos,
    /// Optimistic makespan with the issue fixed, ns.
    pub optimistic_makespan: Nanos,
    /// `1 − optimistic / base`: upper bound on the achievable reduction.
    pub reduction: f64,
    /// Number of phase instances whose duration the fix changed.
    pub affected_instances: usize,
}

impl PerformanceIssue {
    pub(crate) fn from_makespans(
        kind: IssueKind,
        base: Nanos,
        optimistic: Nanos,
        affected: usize,
    ) -> Self {
        let reduction = if base == 0 {
            0.0
        } else {
            1.0 - optimistic as f64 / base as f64
        };
        PerformanceIssue {
            kind,
            base_makespan: base,
            optimistic_makespan: optimistic,
            reduction,
            affected_instances: affected,
        }
    }
}
