//! Impact estimation of extensive resource bottlenecks (§III-F).
//!
//! To simulate removing a bottleneck on resource kind `K`, every slice in
//! which a phase was bottlenecked on `K` shrinks until the *next* resource
//! binds: the shrink factor is the highest utilization fraction the phase
//! shows on any other resource in that slice (its usage relative to its own
//! Exact limit, or to the resource's capacity for Variable rules). Blocking
//! bottlenecks are simpler — the blocked time just disappears.

use std::collections::{BTreeSet, HashMap};

use crate::attribution::PerformanceProfile;
use crate::bottleneck::{BottleneckReport, ConsumableBottleneck};
use crate::issues::{IssueConfig, IssueKind, PerformanceIssue};
use crate::model::execution::ExecutionModel;
use crate::model::rules::AttributionRule;
use crate::replay::{replay, replay_original, ReplayConfig};
use crate::trace::execution::{ExecutionTrace, InstanceId};
use crate::trace::timeslice::Nanos;

/// Simulates removing all bottlenecks on the consumable resource kind
/// `resource_kind`.
pub fn consumable_issue(
    model: &ExecutionModel,
    trace: &ExecutionTrace,
    profile: &PerformanceProfile,
    report: &BottleneckReport,
    resource_kind: &str,
    replay_cfg: &ReplayConfig,
    cfg: &IssueConfig,
) -> PerformanceIssue {
    // Bottlenecked slices per instance, restricted to the target kind.
    let mut slices_per_instance: HashMap<InstanceId, BTreeSet<usize>> = HashMap::new();
    for b in &report.consumable {
        if profile.resources[b.resource.0 as usize].kind == resource_kind {
            slices_per_instance
                .entry(b.instance)
                .or_default()
                .extend(b.slices.iter().copied());
        }
    }
    let affected = slices_per_instance.len();

    let slice_ns = profile.grid.slice_nanos();
    let adjusted: HashMap<InstanceId, Nanos> = slices_per_instance
        .iter()
        .map(|(&id, slices)| {
            let orig = trace.instance(id).duration();
            let mut saved = 0.0f64;
            for &s in slices {
                let factor = next_limit_fraction(profile, id, resource_kind, s)
                    .max(cfg.floor_factor);
                saved += (1.0 - factor.min(1.0)) * slice_ns as f64;
            }
            let new = (orig as f64 - saved).max(0.0) as Nanos;
            (id, new)
        })
        .collect();

    let base = replay_original(model, trace, replay_cfg);
    let optimistic = replay(
        model,
        trace,
        &|id| {
            adjusted
                .get(&id)
                .copied()
                .unwrap_or_else(|| trace.instance(id).duration())
        },
        replay_cfg,
    );
    PerformanceIssue::from_makespans(
        IssueKind::ConsumableBottleneck {
            resource_kind: resource_kind.to_string(),
        },
        base.makespan,
        optimistic.makespan,
        affected,
    )
}

/// The highest utilization fraction `id` shows on any resource other than
/// `removed_kind` in slice `s` — the point at which the next resource
/// becomes the bottleneck.
fn next_limit_fraction(
    profile: &PerformanceProfile,
    id: InstanceId,
    removed_kind: &str,
    s: usize,
) -> f64 {
    let mut max_frac = 0.0f64;
    for u in &profile.usages {
        if u.instance != id {
            continue;
        }
        let res = &profile.resources[u.resource.0 as usize];
        if res.kind == removed_kind {
            continue;
        }
        let usage = u.usage_at(s);
        let limit = match u.rule {
            AttributionRule::Exact(_) => u.demand_at(s).max(1e-12),
            _ => res.capacity,
        };
        max_frac = max_frac.max(usage / limit);
    }
    max_frac
}

/// Simulates removing all blocking on the blocking resource kind
/// `resource_kind` (e.g. "gc", "msgq"): each affected phase shortens by its
/// blocked time.
pub fn blocking_issue(
    model: &ExecutionModel,
    trace: &ExecutionTrace,
    report: &BottleneckReport,
    resource_kind: &str,
    replay_cfg: &ReplayConfig,
) -> PerformanceIssue {
    let mut saved: HashMap<InstanceId, Nanos> = HashMap::new();
    for b in &report.blocking {
        if b.resource == resource_kind {
            *saved.entry(b.instance).or_insert(0) += (b.blocked_secs * 1e9) as Nanos;
        }
    }
    let affected = saved.len();
    let base = replay_original(model, trace, replay_cfg);
    let optimistic = replay(
        model,
        trace,
        &|id| {
            let orig = trace.instance(id).duration();
            orig.saturating_sub(saved.get(&id).copied().unwrap_or(0))
        },
        replay_cfg,
    );
    PerformanceIssue::from_makespans(
        IssueKind::BlockingBottleneck {
            resource_kind: resource_kind.to_string(),
        },
        base.makespan,
        optimistic.makespan,
        affected,
    )
}

/// Runs the full sweep the paper describes: one what-if per resource kind
/// seen in the bottleneck report, returning issues above the reporting
/// threshold, most impactful first.
pub fn detect_bottleneck_issues(
    model: &ExecutionModel,
    trace: &ExecutionTrace,
    profile: &PerformanceProfile,
    report: &BottleneckReport,
    replay_cfg: &ReplayConfig,
    cfg: &IssueConfig,
) -> Vec<PerformanceIssue> {
    let mut issues = Vec::new();

    let consumable_kinds: BTreeSet<String> = report
        .consumable
        .iter()
        .map(|b: &ConsumableBottleneck| {
            profile.resources[b.resource.0 as usize].kind.clone()
        })
        .collect();
    for kind in consumable_kinds {
        issues.push(consumable_issue(
            model, trace, profile, report, &kind, replay_cfg, cfg,
        ));
    }

    let blocking_kinds: BTreeSet<String> =
        report.blocking.iter().map(|b| b.resource.clone()).collect();
    for kind in blocking_kinds {
        issues.push(blocking_issue(model, trace, report, &kind, replay_cfg));
    }

    issues.retain(|i| i.reduction >= cfg.min_reduction);
    issues.sort_by(|a, b| b.reduction.total_cmp(&a.reduction));
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::{build_profile, ProfileConfig};
    use crate::bottleneck::BottleneckConfig;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::model::rules::RuleSet;
    use crate::trace::execution::TraceBuilder;
    use crate::trace::resource::{ResourceInstance, ResourceTrace};
    use crate::trace::timeslice::MILLIS;

    /// One long CPU-saturated phase plus GC blocking on a second phase.
    fn setup() -> (
        ExecutionModel,
        ExecutionTrace,
        ResourceTrace,
    ) {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let a = b.child(r, "a", Repeat::Once);
        let c = b.child(r, "b", Repeat::Once);
        b.edge(a, c);
        let model = b.build();
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, 200 * MILLIS, None, None).unwrap();
        tb.add_phase(&[("job", 0), ("a", 0)], 0, 100 * MILLIS, Some(0), Some(0))
            .unwrap();
        let bb = tb
            .add_phase(
                &[("job", 0), ("b", 0)],
                100 * MILLIS,
                200 * MILLIS,
                Some(0),
                Some(0),
            )
            .unwrap();
        // b is GC-blocked for 40 of its 100 ms.
        tb.add_blocking(bb, "gc", 120 * MILLIS, 160 * MILLIS);
        let trace = tb.build().unwrap();
        let mut rt = ResourceTrace::new();
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 4.0,
        });
        // a saturates the CPU; b uses little.
        let mut samples = vec![4.0; 10];
        samples.extend(vec![0.4; 10]);
        rt.add_series(cpu, 0, 10 * MILLIS, &samples);
        (model, trace, rt)
    }

    #[test]
    fn cpu_bottleneck_issue_reports_reduction() {
        let (model, trace, rt) = setup();
        let prof = build_profile(&model, &RuleSet::new(), &trace, &rt, &ProfileConfig::default());
        let report = BottleneckReport::build(&trace, &prof, &BottleneckConfig::default());
        let issues = detect_bottleneck_issues(
            &model,
            &trace,
            &prof,
            &report,
            &ReplayConfig::default(),
            &IssueConfig::default(),
        );
        let cpu_issue = issues
            .iter()
            .find(|i| {
                matches!(&i.kind, IssueKind::ConsumableBottleneck { resource_kind } if resource_kind == "cpu")
            })
            .expect("cpu issue expected");
        // Phase a (100 ms, fully saturated) shrinks dramatically; the job is
        // 200 ms total, so reduction should be large but below 50 %+.
        assert!(
            cpu_issue.reduction > 0.3,
            "reduction {}",
            cpu_issue.reduction
        );
        assert!(cpu_issue.base_makespan == 200 * MILLIS);
        assert_eq!(cpu_issue.affected_instances, 1);
    }

    #[test]
    fn gc_blocking_issue_saves_blocked_time() {
        let (model, trace, rt) = setup();
        let prof = build_profile(&model, &RuleSet::new(), &trace, &rt, &ProfileConfig::default());
        let report = BottleneckReport::build(&trace, &prof, &BottleneckConfig::default());
        let issue = blocking_issue(&model, &trace, &report, "gc", &ReplayConfig::default());
        // Removing 40 ms of GC from a 200 ms job: exactly 20 %.
        assert!(
            (issue.reduction - 0.2).abs() < 0.01,
            "reduction {}",
            issue.reduction
        );
        assert_eq!(issue.optimistic_makespan, 160 * MILLIS);
    }

    #[test]
    fn threshold_filters_small_issues() {
        let (model, trace, rt) = setup();
        let prof = build_profile(&model, &RuleSet::new(), &trace, &rt, &ProfileConfig::default());
        let report = BottleneckReport::build(&trace, &prof, &BottleneckConfig::default());
        let strict = IssueConfig {
            min_reduction: 0.99,
            ..Default::default()
        };
        let issues = detect_bottleneck_issues(
            &model,
            &trace,
            &prof,
            &report,
            &ReplayConfig::default(),
            &strict,
        );
        assert!(issues.is_empty());
    }

    #[test]
    fn floor_factor_bounds_speedup() {
        let (model, trace, rt) = setup();
        let prof = build_profile(&model, &RuleSet::new(), &trace, &rt, &ProfileConfig::default());
        let report = BottleneckReport::build(&trace, &prof, &BottleneckConfig::default());
        let gentle = IssueConfig {
            floor_factor: 0.9, // slices shrink at most 10 %
            ..Default::default()
        };
        let issue = consumable_issue(
            &model,
            &trace,
            &prof,
            &report,
            "cpu",
            &ReplayConfig::default(),
            &gentle,
        );
        // Phase a is 100 of 200 ms; 10 % of it is 5 % of the makespan.
        assert!(issue.reduction <= 0.051, "reduction {}", issue.reduction);
    }
}
