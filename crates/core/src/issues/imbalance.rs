//! Impact estimation of imbalanced execution (§III-F, Figures 5 and 6).
//!
//! Concurrent phases of the same type within one iteration are assumed to
//! carry interchangeable work: absent the imbalance each would take the
//! group's mean duration and the total work is preserved. The replay of the
//! evened-out durations bounds the gain from perfect load balancing.
//!
//! [`imbalance_groups`] additionally exposes the per-group durations and an
//! outlier analysis — the tooling that surfaced the PowerGraph
//! synchronization bug in §IV-D.

use std::collections::{BTreeMap, HashMap};

use crate::issues::{IssueConfig, IssueKind, PerformanceIssue};
use crate::model::execution::{ExecutionModel, PhaseTypeId};
use crate::replay::{replay, replay_original, ReplayConfig};
use crate::trace::execution::{ExecutionTrace, InstanceId};
use crate::trace::timeslice::Nanos;

/// One group of interchangeable concurrent phases.
#[derive(Clone, Debug)]
pub struct GroupDetail {
    /// The phase type the group members share.
    pub phase_type: PhaseTypeId,
    /// The iteration-scope ancestor instance the group belongs to.
    pub scope: InstanceId,
    /// `(instance, machine, duration)` per member.
    pub members: Vec<(InstanceId, Option<u16>, Nanos)>,
}

impl GroupDetail {
    /// Mean member duration.
    pub fn mean(&self) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        self.members.iter().map(|&(_, _, d)| d as f64).sum::<f64>() / self.members.len() as f64
    }

    /// Longest member duration.
    pub fn max(&self) -> Nanos {
        self.members.iter().map(|&(_, _, d)| d).max().unwrap_or(0)
    }

    /// Median duration of the members on one machine.
    pub fn machine_median(&self, machine: Option<u16>) -> Option<Nanos> {
        let mut ds: Vec<Nanos> = self
            .members
            .iter()
            .filter(|&&(_, m, _)| m == machine)
            .map(|&(_, _, d)| d)
            .collect();
        if ds.is_empty() {
            return None;
        }
        ds.sort_unstable();
        Some(ds[ds.len() / 2])
    }

    /// Outlier analysis: members slower than `factor` × the median of their
    /// *peers* — the other members on the same machine (falling back to the
    /// rest of the group for machines with a single member). The
    /// leave-one-out median keeps a straggler from masking itself on
    /// machines with few threads. This is the signature of the PowerGraph
    /// sync bug — one thread left draining messages while its peers idle at
    /// the barrier.
    pub fn outliers(&self, factor: f64) -> OutlierReport {
        let mut outliers = Vec::new();
        let mut max_without = 0u64;
        for &(id, machine, d) in &self.members {
            let mut peers: Vec<Nanos> = self
                .members
                .iter()
                .filter(|&&(pid, m, _)| pid != id && m == machine)
                .map(|&(_, _, pd)| pd)
                .collect();
            if peers.is_empty() {
                peers = self
                    .members
                    .iter()
                    .filter(|&&(pid, _, _)| pid != id)
                    .map(|&(_, _, pd)| pd)
                    .collect();
            }
            peers.sort_unstable();
            let median = peers.get(peers.len() / 2).copied().unwrap_or(0);
            if median > 0 && d as f64 > factor * median as f64 {
                outliers.push((id, machine, d));
            } else {
                max_without = max_without.max(d);
            }
        }
        let max_with = self.max();
        let slowdown = if max_without > 0 && !outliers.is_empty() {
            max_with as f64 / max_without as f64
        } else {
            1.0
        };
        OutlierReport {
            outliers,
            max_duration: max_with,
            max_without_outliers: max_without,
            slowdown,
        }
    }
}

/// Result of [`GroupDetail::outliers`].
#[derive(Clone, Debug)]
pub struct OutlierReport {
    /// `(instance, machine, duration)` of each outlier.
    pub outliers: Vec<(InstanceId, Option<u16>, Nanos)>,
    /// Group duration as executed (slowest member).
    pub max_duration: Nanos,
    /// Group duration had the outliers matched their peers.
    pub max_without_outliers: Nanos,
    /// `max_duration / max_without_outliers` — the step slowdown the
    /// outliers caused (1.0 when there are none).
    pub slowdown: f64,
}

/// Collects the groups of concurrent same-type leaf phases for `phase_type`,
/// scoped to its nearest Sequential ancestor (iteration).
pub fn imbalance_groups(
    model: &ExecutionModel,
    trace: &ExecutionTrace,
    phase_type: PhaseTypeId,
) -> Vec<GroupDetail> {
    let scope_type = model.grouping_scope(phase_type);
    let mut groups: BTreeMap<InstanceId, Vec<(InstanceId, Option<u16>, Nanos)>> = BTreeMap::new();
    for inst in trace.instances_of_type(phase_type) {
        let scope = trace
            .ancestor_of_type(inst.id, scope_type)
            .unwrap_or(InstanceId(0));
        groups
            .entry(scope)
            .or_default()
            .push((inst.id, inst.machine, inst.duration()));
    }
    groups
        .into_iter()
        .map(|(scope, members)| GroupDetail {
            phase_type,
            scope,
            members,
        })
        .collect()
}

/// Simulates perfectly balancing all groups of `phase_type`.
pub fn imbalance_issue(
    model: &ExecutionModel,
    trace: &ExecutionTrace,
    phase_type: PhaseTypeId,
    replay_cfg: &ReplayConfig,
) -> PerformanceIssue {
    let groups = imbalance_groups(model, trace, phase_type);
    let mut adjusted: HashMap<InstanceId, Nanos> = HashMap::new();
    let mut affected = 0usize;
    for g in &groups {
        if g.members.len() < 2 {
            continue;
        }
        let mean = g.mean() as Nanos;
        for &(id, _, d) in &g.members {
            if d != mean {
                affected += 1;
            }
            adjusted.insert(id, mean);
        }
    }
    let base = replay_original(model, trace, replay_cfg);
    let optimistic = replay(
        model,
        trace,
        &|id| {
            adjusted
                .get(&id)
                .copied()
                .unwrap_or_else(|| trace.instance(id).duration())
        },
        replay_cfg,
    );
    PerformanceIssue::from_makespans(
        IssueKind::Imbalance { phase_type },
        base.makespan,
        optimistic.makespan,
        affected,
    )
}

/// Sweeps every leaf phase type that shows concurrency and reports the
/// imbalance issues above threshold, most impactful first.
pub fn detect_imbalance_issues(
    model: &ExecutionModel,
    trace: &ExecutionTrace,
    replay_cfg: &ReplayConfig,
    cfg: &IssueConfig,
) -> Vec<PerformanceIssue> {
    let mut types: Vec<PhaseTypeId> = Vec::new();
    for ty in (0..model.num_types() as u32).map(PhaseTypeId) {
        if !model.is_leaf(ty) {
            continue;
        }
        let has_group = imbalance_groups(model, trace, ty)
            .iter()
            .any(|g| g.members.len() >= 2);
        if has_group {
            types.push(ty);
        }
    }
    let mut issues: Vec<PerformanceIssue> = types
        .into_iter()
        .map(|ty| imbalance_issue(model, trace, ty, replay_cfg))
        .filter(|i| i.reduction >= cfg.min_reduction)
        .collect();
    issues.sort_by(|a, b| b.reduction.total_cmp(&a.reduction));
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::trace::execution::TraceBuilder;
    use crate::trace::timeslice::MILLIS;

    /// job -> iteration(seq) -> worker(par) -> gather(once, leaf)
    fn model() -> ExecutionModel {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let it = b.child(r, "iteration", Repeat::Sequential);
        let w = b.child(it, "worker", Repeat::Parallel);
        let _g = b.child(w, "gather", Repeat::Parallel);
        b.build()
    }

    /// Two iterations, two workers, two gather threads each; durations in
    /// ms given per iteration/worker/thread.
    fn build(durs: [[[u64; 2]; 2]; 2]) -> (ExecutionModel, ExecutionTrace) {
        let m = model();
        let trace = build_trace(&m, durs);
        (m, trace)
    }

    fn build_trace(m: &ExecutionModel, durs: [[[u64; 2]; 2]; 2]) -> ExecutionTrace {
        let mut tb = TraceBuilder::new(m);
        let mut t0 = 0u64;
        let iter_lens: Vec<u64> = durs
            .iter()
            .map(|it| it.iter().flatten().copied().max().unwrap())
            .collect();
        let total: u64 = iter_lens.iter().sum();
        tb.add_phase(&[("job", 0)], 0, total * MILLIS, None, None).unwrap();
        for (i, it) in durs.iter().enumerate() {
            let ilen = iter_lens[i];
            tb.add_phase(
                &[("job", 0), ("iteration", i as u32)],
                t0 * MILLIS,
                (t0 + ilen) * MILLIS,
                None,
                None,
            )
            .unwrap();
            for (w, threads) in it.iter().enumerate() {
                let wlen = *threads.iter().max().unwrap();
                tb.add_phase(
                    &[("job", 0), ("iteration", i as u32), ("worker", w as u32)],
                    t0 * MILLIS,
                    (t0 + wlen) * MILLIS,
                    Some(w as u16),
                    None,
                )
                .unwrap();
                for (k, &d) in threads.iter().enumerate() {
                    tb.add_phase(
                        &[
                            ("job", 0),
                            ("iteration", i as u32),
                            ("worker", w as u32),
                            ("gather", k as u32),
                        ],
                        t0 * MILLIS,
                        (t0 + d) * MILLIS,
                        Some(w as u16),
                        Some(k as u16),
                    )
                    .unwrap();
                }
            }
            t0 += ilen;
        }
        tb.build().unwrap()
    }

    #[test]
    fn groups_scope_to_iterations_across_workers() {
        let (m, trace) = build([[[10, 20], [30, 40]], [[50, 60], [70, 80]]]);
        let g_ty = m.find_by_name("gather").unwrap();
        let groups = imbalance_groups(&m, &trace, g_ty);
        assert_eq!(groups.len(), 2, "one group per iteration");
        assert!(groups.iter().all(|g| g.members.len() == 4));
    }

    #[test]
    fn balancing_reduces_makespan() {
        // Iteration 0: durations 10,20,30,40 (max 40, mean 25).
        // Iteration 1: 50,60,70,80 (max 80, mean 65).
        let (m, trace) = build([[[10, 20], [30, 40]], [[50, 60], [70, 80]]]);
        let g_ty = m.find_by_name("gather").unwrap();
        let issue = imbalance_issue(&m, &trace, g_ty, &ReplayConfig::default());
        assert_eq!(issue.base_makespan, 120 * MILLIS);
        assert_eq!(issue.optimistic_makespan, 90 * MILLIS);
        assert!((issue.reduction - 0.25).abs() < 1e-9);
        assert_eq!(issue.affected_instances, 8);
    }

    #[test]
    fn balanced_trace_reports_no_issue() {
        let (m, trace) = build([[[30, 30], [30, 30]], [[40, 40], [40, 40]]]);
        let issues =
            detect_imbalance_issues(&m, &trace, &ReplayConfig::default(), &IssueConfig::default());
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn outlier_detection_finds_straggler() {
        // Worker 0 threads: 20, 21; worker 1: 20, 58 (the straggler).
        let (m, trace) = build([[[20, 21], [20, 58]], [[10, 10], [10, 10]]]);
        let g_ty = m.find_by_name("gather").unwrap();
        let groups = imbalance_groups(&m, &trace, g_ty);
        let rep = groups[0].outliers(2.0);
        assert_eq!(rep.outliers.len(), 1);
        assert_eq!(rep.outliers[0].1, Some(1));
        assert_eq!(rep.max_duration, 58 * MILLIS);
        assert_eq!(rep.max_without_outliers, 21 * MILLIS);
        assert!((rep.slowdown - 58.0 / 21.0).abs() < 1e-9);
    }

    #[test]
    fn no_outliers_in_tight_group() {
        let (m, trace) = build([[[20, 21], [22, 23]], [[10, 10], [10, 10]]]);
        let g_ty = m.find_by_name("gather").unwrap();
        let groups = imbalance_groups(&m, &trace, g_ty);
        let rep = groups[0].outliers(2.0);
        assert!(rep.outliers.is_empty());
        assert_eq!(rep.slowdown, 1.0);
    }

    #[test]
    fn detect_sweep_finds_gather_imbalance() {
        let (m, trace) = build([[[10, 20], [30, 40]], [[50, 60], [70, 80]]]);
        let issues =
            detect_imbalance_issues(&m, &trace, &ReplayConfig::default(), &IssueConfig::default());
        assert_eq!(issues.len(), 1);
        let g_ty = m.find_by_name("gather").unwrap();
        assert_eq!(issues[0].kind, IssueKind::Imbalance { phase_type: g_ty });
    }
}
