//! Content hashing for durable artifacts.
//!
//! Everything durable that Grade10 writes and later re-trusts — campaign
//! store filenames, journal record integrity, retry jitter, binary-trace
//! section checksums — keys off one hash function: FNV-1a over 64 bits.
//! It is not cryptographic and does not need to be; the adversary is a
//! crashed process and a half-written file, not a forger. What matters is
//! that the hash is cheap, dependency-free, and stable across platforms
//! and releases, so a file written yesterday still resolves today.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, from the standard offset basis.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a hash from state `h` over more bytes. Feeding two
/// slices through `fnv1a_extend` equals hashing their concatenation.
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn extend_equals_concatenation() {
        let whole = fnv1a(b"hello world");
        let split = fnv1a_extend(fnv1a(b"hello "), b"world");
        assert_eq!(whole, split);
    }
}
