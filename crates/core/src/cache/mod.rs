//! Stage-level content-hash cache for incremental recharacterization.
//!
//! Campaigns and repeated CLI runs re-characterize near-identical inputs
//! constantly: editing one fault seed leaves every other machine's event
//! substream byte-identical, yet the pipeline used to re-execute every
//! stage for every machine. This module persists the outputs of the two
//! expensive per-unit stages — per-machine ingestion and per-machine
//! attribution — keyed by a *content hash of everything that can change
//! the unit's output*:
//!
//! * the unit's own input substream (events and/or monitoring series),
//! * the execution model and rule matrix (hashed via their canonical JSON),
//! * the grid configuration (timeslice, grid end, upsampling mode),
//! * the ingestion mode and retry budget, and
//! * [`CODE_VERSION`](crate::campaign::CODE_VERSION) plus a per-record
//!   schema version, so a build whose attribution semantics drifted can
//!   never resurrect a stale artifact.
//!
//! A re-run therefore reuses cached results for every unit whose inputs
//! hash the same and re-executes only the affected units before the
//! supervisor re-merges in unit-key order — the same delta discipline the
//! campaign layer applies at mix granularity, pushed down a level.
//!
//! # Record format and identity
//!
//! Records ride on the same section-table container as the binary trace
//! format ([`crate::trace::binary`]): an eight-byte magic (`G10CACHE`), a
//! format version, a checksummed section table, and per-section FNV-1a
//! checksums, so every truncation or bit flip is detected on read. File
//! names carry only a 64-bit FNV-1a of the key, which can collide; the
//! full canonical key string is therefore stored inside the record
//! ([`SECTION_KEY`]) and compared byte-for-byte on every lookup — a
//! collision or a tampered record is a miss (and is quarantined), never a
//! silently wrong answer.
//!
//! Writes reuse the atomic pid+seq-qualified temp-file discipline of the
//! campaign store ([`crate::campaign::store`]): concurrent workers sharing
//! a cache directory can race on the same record and the loser simply
//! overwrites the winner with identical bytes.
//!
//! All counters on a [`StageCache`] are monotonic and thread-safe; the
//! CLI surfaces them after each run and the CI cache-effectiveness smoke
//! leg asserts on them.

pub mod codec;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::campaign::{atomic_write, quarantine};
use crate::error::Grade10Error;
use crate::hash::{fnv1a, fnv1a_extend};
use crate::parse::{RawEvent, RawEventKind};
use crate::trace::binary::{build_container, parse_container, ContainerSpec, Section};
use crate::trace::repair::RawSeries;

/// Magic prefix of a stage-cache record file.
pub const CACHE_MAGIC: [u8; 8] = *b"G10CACHE";

/// Stage-cache record format version. Bump on any layout change; readers
/// accept exactly their own version and treat everything else as a miss.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Section id: the full canonical key string, verified byte-for-byte on
/// every hit (the file name carries only a 64-bit hash of it).
pub(crate) const SECTION_KEY: u32 = 1;
/// Section id: the fixed-layout record body (status, incidents, report or
/// profile), see [`codec`].
pub(crate) const SECTION_META: u32 = 2;
/// Section id: deduplicated string pool (same layout as the binary trace).
pub(crate) const SECTION_STRINGS: u32 = 3;
/// Section id: deduplicated path pool (same layout as the binary trace).
pub(crate) const SECTION_PATHS: u32 = 4;
/// Section id: repaired per-unit event stream (binary-trace `EVENTS`
/// layout).
pub(crate) const SECTION_EVENTS: u32 = 5;
/// Section id: repaired per-unit monitoring series (binary-trace
/// `RESOURCES` layout).
pub(crate) const SECTION_SERIES: u32 = 6;

/// The stage-cache dialect of the section-table container.
pub(crate) const CACHE_CONTAINER: ContainerSpec = ContainerSpec {
    magic: &CACHE_MAGIC,
    version: CACHE_FORMAT_VERSION,
    label: "stage-cache record",
};

/// Monotonic counters of one cache's activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageCacheStats {
    /// Lookups that returned a verified, decodable record.
    pub hits: u64,
    /// Lookups that found nothing usable (absent, corrupt, colliding, or
    /// written by a different schema).
    pub misses: u64,
    /// Records written.
    pub stores: u64,
}

impl StageCacheStats {
    /// Hit rate in percent, `0.0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }
}

/// A directory of content-addressed stage records. Cheap to clone behind
/// an `Arc`; safe to share across pool workers and campaign peers.
#[derive(Debug)]
pub struct StageCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl StageCache {
    /// Opens (creating if necessary) a stage cache rooted at `dir`.
    pub fn open(dir: &Path) -> Result<StageCache, Grade10Error> {
        std::fs::create_dir_all(dir).map_err(|e| {
            Grade10Error::Io(format!("create stage cache dir {}: {e}", dir.display()))
        })?;
        Ok(StageCache {
            dir: dir.to_path_buf(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        })
    }

    /// Where the cache lives.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, stage: &str, key: &str) -> PathBuf {
        self.dir
            .join(format!("{stage}-{:016x}.g10c", fnv1a(key.as_bytes())))
    }

    /// Looks up one record. `decode` receives the verified sections (key
    /// already matched byte-for-byte); any decode failure — like any
    /// container damage or key mismatch — counts as a miss, and damaged or
    /// colliding files are quarantined aside so they cannot shadow a
    /// future store.
    pub(crate) fn lookup<T>(
        &self,
        stage: &str,
        key: &str,
        decode: impl FnOnce(&[Section<'_>]) -> Result<T, Grade10Error>,
    ) -> Option<T> {
        let path = self.path_for(stage, key);
        let Ok(bytes) = std::fs::read(&path) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let decoded = parse_container(&bytes, &CACHE_CONTAINER).and_then(|sections| {
            let stored_key = sections
                .iter()
                .find(|s| s.id == SECTION_KEY)
                .map(|s| s.payload)
                .ok_or_else(|| {
                    Grade10Error::Serialization("stage-cache record: missing key section".into())
                })?;
            if stored_key != key.as_bytes() {
                // A 64-bit file-name collision, or a record for a
                // different schema generation: identity mismatch is a
                // miss, never a silently wrong artifact.
                return Err(Grade10Error::Serialization(
                    "stage-cache record: key mismatch (hash collision)".into(),
                ));
            }
            decode(&sections)
        });
        match decoded {
            Ok(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            Err(_) => {
                quarantine(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists one record: the key section plus the caller's payload
    /// sections, atomically. Failures are swallowed — a cache that cannot
    /// write degrades to a cache that never hits, it must never fail the
    /// computation whose result it was storing.
    pub(crate) fn store(&self, stage: &str, key: &str, mut sections: Vec<(u32, Vec<u8>)>) {
        sections.insert(0, (SECTION_KEY, key.as_bytes().to_vec()));
        let bytes = build_container(&CACHE_MAGIC, CACHE_FORMAT_VERSION, &sections);
        if atomic_write(&self.path_for(stage, key), &bytes).is_ok() {
            self.stores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of the hit/miss/store counters.
    pub fn stats(&self) -> StageCacheStats {
        StageCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Input hashing
// ---------------------------------------------------------------------------

fn hash_str(h: u64, s: &str) -> u64 {
    let h = fnv1a_extend(h, &(s.len() as u64).to_le_bytes());
    fnv1a_extend(h, s.as_bytes())
}

/// Content hash of a raw event stream: every field of every event, with
/// strings length-prefixed so adjacent fields cannot alias.
pub(crate) fn hash_events(events: &[RawEvent]) -> u64 {
    let mut h = fnv1a(&(events.len() as u64).to_le_bytes());
    for ev in events {
        h = fnv1a_extend(h, &ev.time.to_le_bytes());
        h = fnv1a_extend(h, &ev.machine.to_le_bytes());
        h = fnv1a_extend(h, &ev.thread.to_le_bytes());
        match &ev.kind {
            RawEventKind::PhaseStart { path } | RawEventKind::PhaseEnd { path } => {
                let tag: u8 = if matches!(ev.kind, RawEventKind::PhaseStart { .. }) {
                    0
                } else {
                    1
                };
                h = fnv1a_extend(h, &[tag]);
                h = fnv1a_extend(h, &(path.len() as u64).to_le_bytes());
                for (name, key) in path {
                    h = hash_str(h, name);
                    h = fnv1a_extend(h, &key.to_le_bytes());
                }
            }
            RawEventKind::BlockStart { resource } => {
                h = fnv1a_extend(h, &[2u8]);
                h = hash_str(h, resource);
            }
            RawEventKind::BlockEnd { resource } => {
                h = fnv1a_extend(h, &[3u8]);
                h = hash_str(h, resource);
            }
        }
    }
    h
}

/// Content hash of monitoring series: instance identity (kind, machine,
/// exact capacity bits) and every measurement window.
pub(crate) fn hash_series(series: &[RawSeries]) -> u64 {
    let mut h = fnv1a(&(series.len() as u64).to_le_bytes());
    for s in series {
        h = hash_str(h, &s.instance.kind);
        match s.instance.machine {
            Some(m) => {
                h = fnv1a_extend(h, &[1u8]);
                h = fnv1a_extend(h, &m.to_le_bytes());
            }
            None => h = fnv1a_extend(h, &[0u8]),
        }
        h = fnv1a_extend(h, &s.instance.capacity.to_bits().to_le_bytes());
        h = fnv1a_extend(h, &(s.measurements.len() as u64).to_le_bytes());
        for m in &s.measurements {
            h = fnv1a_extend(h, &m.start.to_le_bytes());
            h = fnv1a_extend(h, &m.end.to_le_bytes());
            h = fnv1a_extend(h, &m.avg.to_bits().to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::resource::{Measurement, ResourceInstance};

    fn tdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "g10-cache-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn series(kind: &str, machine: Option<u16>, avg: f64) -> RawSeries {
        RawSeries {
            instance: ResourceInstance {
                kind: kind.to_string(),
                machine,
                capacity: 4.0,
            },
            measurements: vec![Measurement {
                start: 0,
                end: 100,
                avg,
            }],
        }
    }

    #[test]
    fn lookup_roundtrips_and_counts() {
        let cache = StageCache::open(&tdir("rt")).unwrap();
        assert!(cache
            .lookup("ingest", "k1", |_| Ok::<(), Grade10Error>(()))
            .is_none());
        cache.store("ingest", "k1", vec![(SECTION_META, vec![7u8])]);
        let got = cache.lookup("ingest", "k1", |sections| {
            Ok::<Vec<u8>, Grade10Error>(
                sections
                    .iter()
                    .find(|s| s.id == SECTION_META)
                    .map(|s| s.payload.to_vec())
                    .unwrap_or_default(),
            )
        });
        assert_eq!(got, Some(vec![7u8]));
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.stores), (1, 1, 1));
    }

    #[test]
    fn key_mismatch_is_a_quarantined_miss() {
        let cache = StageCache::open(&tdir("collide")).unwrap();
        cache.store("attr", "real-key", vec![(SECTION_META, vec![1u8])]);
        // Simulate a 64-bit file-name collision: another key whose record
        // lands on the same path.
        let path = cache.path_for("attr", "real-key");
        let forged = cache.path_for("attr", "other-key");
        std::fs::rename(&path, &forged).unwrap();
        assert!(cache
            .lookup("attr", "other-key", |_| Ok::<(), Grade10Error>(()))
            .is_none());
        assert!(!forged.exists(), "colliding record must be quarantined");
    }

    #[test]
    fn corrupt_records_are_quarantined_misses() {
        let cache = StageCache::open(&tdir("corrupt")).unwrap();
        cache.store("ingest", "k", vec![(SECTION_META, vec![1, 2, 3])]);
        let path = cache.path_for("ingest", "k");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache
            .lookup("ingest", "k", |_| Ok::<(), Grade10Error>(()))
            .is_none());
        assert!(!path.exists());
        // The miss does not poison the slot: a re-store works again.
        cache.store("ingest", "k", vec![(SECTION_META, vec![1, 2, 3])]);
        assert!(cache
            .lookup("ingest", "k", |_| Ok::<(), Grade10Error>(()))
            .is_some());
    }

    #[test]
    fn input_hashes_are_field_sensitive() {
        let base = vec![series("cpu", Some(0), 1.0), series("net", None, 2.0)];
        let h0 = hash_series(&base);
        let mut kind = base.clone();
        kind[0].instance.kind = "gpu".to_string();
        let mut avg = base.clone();
        avg[1].measurements[0].avg = 2.5;
        let mut machine = base.clone();
        machine[0].instance.machine = Some(1);
        assert_ne!(h0, hash_series(&kind));
        assert_ne!(h0, hash_series(&avg));
        assert_ne!(h0, hash_series(&machine));
        assert_eq!(h0, hash_series(&base.clone()));
    }
}
