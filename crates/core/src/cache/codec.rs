//! Versioned binary round-trips for the pipeline's stage boundaries.
//!
//! Two record types cover the cacheable stage outputs:
//!
//! * **Ingest unit** — everything one per-machine ingest unit produces:
//!   its coverage status, incident records, repaired event substream,
//!   repaired monitoring series, and [`IngestReport`] counters. Events and
//!   series reuse the binary trace format's pooled `EVENTS`/`RESOURCES`
//!   layouts verbatim ([`crate::trace::binary`]), so the offline container
//!   and the cache records cannot drift apart.
//! * **Attribute unit** — one per-machine attribution result: the
//!   [`PerformanceProfile`] fragment (grid, resources, metric matrices,
//!   per-instance usages — every `f64` round-tripped via its exact bit
//!   pattern), the degraded flag, and incident records.
//!
//! Every record body starts with a one-byte codec version; decoders accept
//! exactly their own version and report anything else as
//! [`Grade10Error::Serialization`], which the cache layer treats as a miss.
//! Decoding never panics on damaged input: all sizes are re-derived from
//! the payload via the bounds-checked [`Cursor`], and semantic range checks
//! (unknown tags, dangling pool references, non-boolean flag bytes) fail
//! with a classified error.

use crate::attribution::profile::{InstanceUsage, PerformanceProfile};
use crate::error::Grade10Error;
use crate::model::rules::AttributionRule;
use crate::parse::RawEvent;
use crate::supervise::{Incident, IncidentKind, IncidentOutcome, UnitStatus};
use crate::trace::binary::{
    decode_events, decode_paths, decode_series, decode_strings, push_u32, push_u64, Cursor,
    PoolEncoder, Section, MACHINE_NONE,
};
use crate::trace::execution::InstanceId;
use crate::trace::repair::{IngestReport, RawSeries};
use crate::trace::resource::{Measurement, ResourceIdx, ResourceInstance};
use crate::trace::timeslice::{BoolGrid, MetricGrid, TimesliceGrid};

use super::{SECTION_EVENTS, SECTION_META, SECTION_PATHS, SECTION_SERIES, SECTION_STRINGS};

/// Version byte leading every record body. Bump on any layout change.
const CODEC_VERSION: u8 = 1;

fn corrupt(msg: impl Into<String>) -> Grade10Error {
    Grade10Error::Serialization(format!("stage-cache record: {}", msg.into()))
}

/// Incident stages are `&'static str` in [`Incident`]; decoding maps the
/// stored name back onto the one static instance per stage. An unknown
/// stage name means the record was written by a different build — a miss.
const STAGES: &[&str] = &[
    "ingest",
    "attribute",
    "bottleneck",
    "replay",
    "issues",
    "campaign",
];

fn static_stage(name: &str) -> Result<&'static str, Grade10Error> {
    STAGES
        .iter()
        .find(|s| **s == name)
        .copied()
        .ok_or_else(|| corrupt(format!("unknown incident stage {name:?}")))
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    push_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn read_str(c: &mut Cursor<'_>) -> Result<String, Grade10Error> {
    let len = c.u32()? as usize;
    let bytes = c.take(len)?;
    std::str::from_utf8(bytes)
        .map(str::to_string)
        .map_err(|_| corrupt("string is not valid UTF-8"))
}

fn section<'a>(
    sections: &[Section<'a>],
    id: u32,
    what: &str,
) -> Result<&'a [u8], Grade10Error> {
    sections
        .iter()
        .find(|s| s.id == id)
        .map(|s| s.payload)
        .ok_or_else(|| corrupt(format!("missing {what} section")))
}

// ---------------------------------------------------------------------------
// Incidents
// ---------------------------------------------------------------------------

fn encode_incidents(buf: &mut Vec<u8>, incidents: &[Incident]) {
    push_u32(buf, incidents.len() as u32);
    for inc in incidents {
        push_str(buf, inc.stage);
        push_str(buf, &inc.unit);
        push_str(buf, inc.kind.name());
        push_str(buf, &inc.detail);
        push_u32(buf, inc.attempts);
        match &inc.outcome {
            IncidentOutcome::Dropped => buf.push(0),
            IncidentOutcome::Recovered { degradation } => {
                buf.push(1);
                push_str(buf, degradation);
            }
        }
    }
}

fn decode_incidents(c: &mut Cursor<'_>) -> Result<Vec<Incident>, Grade10Error> {
    let count = c.u32()? as usize;
    let mut out = Vec::new();
    for _ in 0..count {
        let stage = static_stage(&read_str(c)?)?;
        let unit = read_str(c)?;
        let kind_name = read_str(c)?;
        let kind = IncidentKind::from_name(&kind_name)
            .ok_or_else(|| corrupt(format!("unknown incident kind {kind_name:?}")))?;
        let detail = read_str(c)?;
        let attempts = c.u32()?;
        let outcome = match c.u8()? {
            0 => IncidentOutcome::Dropped,
            1 => IncidentOutcome::Recovered {
                degradation: read_str(c)?,
            },
            t => return Err(corrupt(format!("unknown incident outcome tag {t}"))),
        };
        out.push(Incident {
            stage,
            unit,
            kind,
            detail,
            attempts,
            outcome,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// IngestReport
// ---------------------------------------------------------------------------

/// The report's counters in declared field order. A fixed-order list (not
/// struct serialization) keeps the layout explicit and versioned: adding a
/// field to [`IngestReport`] forces a conscious [`CODEC_VERSION`] bump here.
fn report_fields(r: &IngestReport) -> [usize; 16] {
    [
        r.events_total,
        r.out_of_order_fixed,
        r.duplicates_dropped,
        r.duplicate_starts_dropped,
        r.missing_ends_synthesized,
        r.unmatched_ends_dropped,
        r.negative_durations_clamped,
        r.ancestors_synthesized,
        r.monitoring_windows_total,
        r.monitoring_invalid,
        r.monitoring_negatives_clamped,
        r.monitoring_out_of_order,
        r.monitoring_quarantined,
        r.monitoring_gaps_interpolated,
        r.slices_estimated,
        r.slices_total,
    ]
}

fn encode_report(buf: &mut Vec<u8>, r: &IngestReport) {
    for v in report_fields(r) {
        push_u64(buf, v as u64);
    }
}

fn decode_report(c: &mut Cursor<'_>) -> Result<IngestReport, Grade10Error> {
    let mut vals = [0usize; 16];
    for v in &mut vals {
        *v = usize::try_from(c.u64()?)
            .map_err(|_| corrupt("ingest report counter out of range"))?;
    }
    let [events_total, out_of_order_fixed, duplicates_dropped, duplicate_starts_dropped, missing_ends_synthesized, unmatched_ends_dropped, negative_durations_clamped, ancestors_synthesized, monitoring_windows_total, monitoring_invalid, monitoring_negatives_clamped, monitoring_out_of_order, monitoring_quarantined, monitoring_gaps_interpolated, slices_estimated, slices_total] =
        vals;
    Ok(IngestReport {
        events_total,
        out_of_order_fixed,
        duplicates_dropped,
        duplicate_starts_dropped,
        missing_ends_synthesized,
        unmatched_ends_dropped,
        negative_durations_clamped,
        ancestors_synthesized,
        monitoring_windows_total,
        monitoring_invalid,
        monitoring_negatives_clamped,
        monitoring_out_of_order,
        monitoring_quarantined,
        monitoring_gaps_interpolated,
        slices_estimated,
        slices_total,
    })
}

// ---------------------------------------------------------------------------
// Ingest unit records
// ---------------------------------------------------------------------------

/// A decoded per-unit ingest record. The plain (unsupervised) pipeline
/// stores whole-stream ingest results through the same record with
/// [`UnitStatus::Full`] and no incidents.
pub(crate) struct IngestUnitRecord {
    pub(crate) status: UnitStatus,
    pub(crate) incidents: Vec<Incident>,
    pub(crate) events: Vec<RawEvent>,
    pub(crate) series: Vec<RawSeries>,
    pub(crate) report: IngestReport,
}

/// Encodes one ingest unit's outputs into cache-record sections.
pub(crate) fn encode_ingest_unit(
    status: UnitStatus,
    incidents: &[Incident],
    events: &[RawEvent],
    series: &[RawSeries],
    report: &IngestReport,
) -> Vec<(u32, Vec<u8>)> {
    let mut enc = PoolEncoder::default();
    let events_payload = enc.encode_events(events);
    let series_refs: Vec<(&ResourceInstance, &[Measurement])> = series
        .iter()
        .map(|s| (&s.instance, s.measurements.as_slice()))
        .collect();
    let series_payload = enc.encode_series(series_refs.into_iter());
    let mut meta = Vec::new();
    meta.push(CODEC_VERSION);
    meta.push(match status {
        UnitStatus::Full => 0,
        UnitStatus::Degraded => 1,
        UnitStatus::Dropped => 2,
    });
    encode_incidents(&mut meta, incidents);
    encode_report(&mut meta, report);
    vec![
        (SECTION_META, meta),
        (SECTION_STRINGS, enc.strings_payload()),
        (SECTION_PATHS, enc.paths_payload()),
        (SECTION_EVENTS, events_payload),
        (SECTION_SERIES, series_payload),
    ]
}

/// Decodes an ingest unit record from verified cache sections.
pub(crate) fn decode_ingest_unit(
    sections: &[Section<'_>],
) -> Result<IngestUnitRecord, Grade10Error> {
    let strings = decode_strings(section(sections, SECTION_STRINGS, "strings")?)?;
    let paths = decode_paths(section(sections, SECTION_PATHS, "paths")?, &strings)?;
    let events = decode_events(section(sections, SECTION_EVENTS, "events")?, &strings, &paths)?;
    let series = decode_series(section(sections, SECTION_SERIES, "series")?, &strings)?;
    let mut c = Cursor::new(section(sections, SECTION_META, "meta")?, "stage-cache meta");
    let ver = c.u8()?;
    if ver != CODEC_VERSION {
        return Err(corrupt(format!(
            "codec version {ver} (this build reads {CODEC_VERSION})"
        )));
    }
    let status = match c.u8()? {
        0 => UnitStatus::Full,
        1 => UnitStatus::Degraded,
        2 => UnitStatus::Dropped,
        t => return Err(corrupt(format!("unknown unit status tag {t}"))),
    };
    let incidents = decode_incidents(&mut c)?;
    let report = decode_report(&mut c)?;
    c.finish()?;
    Ok(IngestUnitRecord {
        status,
        incidents,
        events,
        series,
        report,
    })
}

// ---------------------------------------------------------------------------
// Profile fragments / attribute unit records
// ---------------------------------------------------------------------------

fn encode_metric_grid(buf: &mut Vec<u8>, g: &MetricGrid) {
    push_u32(buf, g.num_rows() as u32);
    push_u32(buf, g.num_slices() as u32);
    for &v in g.as_flat() {
        push_u64(buf, v.to_bits());
    }
}

fn decode_metric_grid(c: &mut Cursor<'_>) -> Result<MetricGrid, Grade10Error> {
    let rows = c.u32()? as usize;
    let ns = c.u32()? as usize;
    if rows > 0 && ns == 0 {
        return Err(corrupt("metric grid with rows but no slices"));
    }
    let mut data = Vec::new();
    for _ in 0..rows.saturating_mul(ns) {
        data.push(f64::from_bits(c.u64()?));
    }
    Ok(MetricGrid::from_flat(data, ns))
}

fn encode_bool_grid(buf: &mut Vec<u8>, g: &BoolGrid) {
    push_u32(buf, g.num_rows() as u32);
    push_u32(buf, g.num_slices() as u32);
    buf.extend(g.as_flat().iter().map(|&b| b as u8));
}

fn decode_bool_grid(c: &mut Cursor<'_>) -> Result<BoolGrid, Grade10Error> {
    let rows = c.u32()? as usize;
    let ns = c.u32()? as usize;
    if rows > 0 && ns == 0 {
        return Err(corrupt("flag grid with rows but no slices"));
    }
    let bytes = c.take(rows.saturating_mul(ns))?;
    let mut data = Vec::with_capacity(bytes.len());
    for &b in bytes {
        data.push(match b {
            0 => false,
            1 => true,
            _ => return Err(corrupt(format!("non-boolean flag byte {b}"))),
        });
    }
    Ok(BoolGrid::from_flat(data, ns))
}

fn encode_f64s(buf: &mut Vec<u8>, vals: &[f64]) {
    push_u32(buf, vals.len() as u32);
    for &v in vals {
        push_u64(buf, v.to_bits());
    }
}

fn decode_f64s(c: &mut Cursor<'_>) -> Result<Vec<f64>, Grade10Error> {
    let count = c.u32()? as usize;
    let mut out = Vec::new();
    for _ in 0..count {
        out.push(f64::from_bits(c.u64()?));
    }
    Ok(out)
}

fn encode_profile(buf: &mut Vec<u8>, p: &PerformanceProfile) {
    push_u64(buf, p.grid.origin());
    push_u64(buf, p.grid.slice_nanos());
    push_u64(buf, p.grid.num_slices() as u64);
    push_u32(buf, p.resources.len() as u32);
    for r in &p.resources {
        push_str(buf, &r.kind);
        push_u32(buf, r.machine.map_or(MACHINE_NONE, |m| m as u32));
        push_u64(buf, r.capacity.to_bits());
    }
    encode_metric_grid(buf, &p.consumption);
    encode_metric_grid(buf, &p.demand_exact);
    encode_metric_grid(buf, &p.demand_variable);
    encode_metric_grid(buf, &p.unattributed);
    encode_f64s(buf, &p.overflow);
    encode_bool_grid(buf, &p.estimated);
    push_u32(buf, p.usages.len() as u32);
    for u in &p.usages {
        push_u32(buf, u.instance.0);
        push_u32(buf, u.resource.0);
        match u.rule {
            AttributionRule::None => buf.push(0),
            AttributionRule::Exact(v) => {
                buf.push(1);
                push_u64(buf, v.to_bits());
            }
            AttributionRule::Variable(v) => {
                buf.push(2);
                push_u64(buf, v.to_bits());
            }
        }
        push_u64(buf, u.first_slice as u64);
        encode_f64s(buf, &u.demand);
        encode_f64s(buf, &u.usage);
    }
}

fn decode_profile(c: &mut Cursor<'_>) -> Result<PerformanceProfile, Grade10Error> {
    let origin = c.u64()?;
    let slice = c.u64()?;
    let num_slices = c.u64()?;
    if slice == 0 || num_slices == 0 {
        return Err(corrupt("degenerate timeslice grid"));
    }
    let end = slice
        .checked_mul(num_slices)
        .and_then(|span| origin.checked_add(span))
        .ok_or_else(|| corrupt("timeslice grid extent overflows"))?;
    let grid = TimesliceGrid::covering(origin, end, slice);
    let rcount = c.u32()? as usize;
    let mut resources = Vec::new();
    for i in 0..rcount {
        let kind = read_str(c)?;
        let machine_raw = c.u32()?;
        let capacity = f64::from_bits(c.u64()?);
        let machine = if machine_raw == MACHINE_NONE {
            None
        } else {
            u16::try_from(machine_raw)
                .map(Some)
                .map_err(|_| corrupt(format!("resource {i} has machine {machine_raw} out of range")))?
        };
        resources.push(ResourceInstance {
            kind,
            machine,
            capacity,
        });
    }
    let consumption = decode_metric_grid(c)?;
    let demand_exact = decode_metric_grid(c)?;
    let demand_variable = decode_metric_grid(c)?;
    let unattributed = decode_metric_grid(c)?;
    let overflow = decode_f64s(c)?;
    let estimated = decode_bool_grid(c)?;
    let ucount = c.u32()? as usize;
    let mut usages = Vec::new();
    for _ in 0..ucount {
        let instance = InstanceId(c.u32()?);
        let resource = ResourceIdx(c.u32()?);
        let rule = match c.u8()? {
            0 => AttributionRule::None,
            1 => AttributionRule::Exact(f64::from_bits(c.u64()?)),
            2 => AttributionRule::Variable(f64::from_bits(c.u64()?)),
            t => return Err(corrupt(format!("unknown attribution rule tag {t}"))),
        };
        let first_slice = usize::try_from(c.u64()?)
            .map_err(|_| corrupt("usage first_slice out of range"))?;
        let demand = decode_f64s(c)?;
        let usage = decode_f64s(c)?;
        usages.push(InstanceUsage {
            instance,
            resource,
            rule,
            first_slice,
            demand,
            usage,
        });
    }
    Ok(PerformanceProfile::from_parts(
        grid,
        resources,
        consumption,
        demand_exact,
        demand_variable,
        unattributed,
        overflow,
        estimated,
        usages,
    ))
}

/// A decoded per-unit attribution record. The plain pipeline stores its
/// whole-profile result through the same record with `degraded: false` and
/// no incidents.
pub(crate) struct AttributeUnitRecord {
    pub(crate) profile: Option<PerformanceProfile>,
    pub(crate) degraded: bool,
    pub(crate) incidents: Vec<Incident>,
}

/// Encodes one attribution unit's outputs into cache-record sections.
pub(crate) fn encode_attribute_unit(
    profile: Option<&PerformanceProfile>,
    degraded: bool,
    incidents: &[Incident],
) -> Vec<(u32, Vec<u8>)> {
    let mut meta = Vec::new();
    meta.push(CODEC_VERSION);
    meta.push(degraded as u8);
    encode_incidents(&mut meta, incidents);
    match profile {
        None => meta.push(0),
        Some(p) => {
            meta.push(1);
            encode_profile(&mut meta, p);
        }
    }
    vec![(SECTION_META, meta)]
}

/// Decodes an attribution unit record from verified cache sections.
pub(crate) fn decode_attribute_unit(
    sections: &[Section<'_>],
) -> Result<AttributeUnitRecord, Grade10Error> {
    let mut c = Cursor::new(section(sections, SECTION_META, "meta")?, "stage-cache meta");
    let ver = c.u8()?;
    if ver != CODEC_VERSION {
        return Err(corrupt(format!(
            "codec version {ver} (this build reads {CODEC_VERSION})"
        )));
    }
    let degraded = match c.u8()? {
        0 => false,
        1 => true,
        t => return Err(corrupt(format!("non-boolean degraded byte {t}"))),
    };
    let incidents = decode_incidents(&mut c)?;
    let profile = match c.u8()? {
        0 => None,
        1 => Some(decode_profile(&mut c)?),
        t => return Err(corrupt(format!("unknown profile tag {t}"))),
    };
    c.finish()?;
    Ok(AttributeUnitRecord {
        profile,
        degraded,
        incidents,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::RawEventKind;
    use crate::trace::binary::parse_container;
    use crate::trace::timeslice::MILLIS;

    /// Deterministic xorshift generator: the repo's proptest idiom — no
    /// external crates, no OS entropy, failures reproduce from the seed.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }

        fn f64(&mut self) -> f64 {
            // Finite, sign-varied, wide-exponent values; NaN excluded so
            // PartialEq comparison stays meaningful (bit-exactness for NaN
            // is covered by the fixed-vector test below).
            let m = (self.next() >> 12) as f64 / (1u64 << 52) as f64;
            let scale = [1e-9, 1.0, 1e3, 1e12][self.below(4) as usize];
            let sign = if self.below(2) == 0 { 1.0 } else { -1.0 };
            sign * m * scale
        }

        fn string(&mut self) -> String {
            let names = ["cpu", "net", "disk", "compute", "barrier", "über-α"];
            names[self.below(names.len() as u64) as usize].to_string()
        }
    }

    fn rand_events(rng: &mut Rng) -> Vec<RawEvent> {
        (0..rng.below(40))
            .map(|_| {
                let kind = match rng.below(4) {
                    0 => RawEventKind::PhaseStart {
                        path: vec![(rng.string(), rng.below(8) as u32)],
                    },
                    1 => RawEventKind::PhaseEnd {
                        path: vec![
                            (rng.string(), rng.below(8) as u32),
                            (rng.string(), rng.below(8) as u32),
                        ],
                    },
                    2 => RawEventKind::BlockStart {
                        resource: rng.string(),
                    },
                    _ => RawEventKind::BlockEnd {
                        resource: rng.string(),
                    },
                };
                RawEvent {
                    time: rng.below(1 << 40),
                    machine: rng.below(8) as u16,
                    thread: rng.below(4) as u16,
                    kind,
                }
            })
            .collect()
    }

    fn rand_series(rng: &mut Rng) -> Vec<RawSeries> {
        (0..rng.below(6))
            .map(|_| RawSeries {
                instance: ResourceInstance {
                    kind: rng.string(),
                    machine: if rng.below(3) == 0 {
                        None
                    } else {
                        Some(rng.below(8) as u16)
                    },
                    capacity: rng.f64().abs() + 0.5,
                },
                measurements: (0..rng.below(20))
                    .map(|_| Measurement {
                        start: rng.below(1 << 40),
                        end: rng.below(1 << 40),
                        avg: rng.f64(),
                    })
                    .collect(),
            })
            .collect()
    }

    fn rand_incidents(rng: &mut Rng) -> Vec<Incident> {
        (0..rng.below(4))
            .map(|_| Incident {
                stage: STAGES[rng.below(STAGES.len() as u64) as usize],
                unit: format!("machine {}", rng.below(8)),
                kind: [
                    IncidentKind::Panic,
                    IncidentKind::Deadline,
                    IncidentKind::Budget,
                    IncidentKind::MissingData,
                    IncidentKind::Quarantine,
                    IncidentKind::Error,
                ][rng.below(6) as usize],
                detail: format!("detail {}", rng.next()),
                attempts: rng.below(5) as u32,
                outcome: if rng.below(2) == 0 {
                    IncidentOutcome::Dropped
                } else {
                    IncidentOutcome::Recovered {
                        degradation: rng.string(),
                    }
                },
            })
            .collect()
    }

    fn rand_report(rng: &mut Rng) -> IngestReport {
        IngestReport {
            events_total: rng.below(1000) as usize,
            monitoring_windows_total: rng.below(1000) as usize,
            duplicates_dropped: rng.below(10) as usize,
            monitoring_quarantined: rng.below(10) as usize,
            slices_total: rng.below(100_000) as usize,
            ..IngestReport::default()
        }
    }

    fn rand_profile(rng: &mut Rng) -> PerformanceProfile {
        let ns = 1 + rng.below(12) as usize;
        let rows = rng.below(4) as usize;
        let grid = |rng: &mut Rng| {
            MetricGrid::from_flat((0..rows * ns).map(|_| rng.f64()).collect(), ns)
        };
        let consumption = grid(rng);
        let demand_exact = grid(rng);
        let demand_variable = grid(rng);
        let unattributed = grid(rng);
        let estimated =
            BoolGrid::from_flat((0..rows * ns).map(|_| rng.below(2) == 1).collect(), ns);
        let usages = (0..rng.below(5))
            .map(|_| {
                let len = rng.below(ns as u64) as usize;
                InstanceUsage {
                    instance: InstanceId(rng.below(100) as u32),
                    resource: ResourceIdx(rng.below(rows.max(1) as u64) as u32),
                    rule: match rng.below(3) {
                        0 => AttributionRule::None,
                        1 => AttributionRule::Exact(rng.f64()),
                        _ => AttributionRule::Variable(rng.f64()),
                    },
                    first_slice: rng.below((ns - len).max(1) as u64) as usize,
                    demand: (0..len).map(|_| rng.f64()).collect(),
                    usage: (0..len).map(|_| rng.f64()).collect(),
                }
            })
            .collect();
        PerformanceProfile::from_parts(
            TimesliceGrid::covering(0, ns as u64 * 10 * MILLIS, 10 * MILLIS),
            (0..rows)
                .map(|i| ResourceInstance {
                    kind: rng.string(),
                    machine: Some(i as u16),
                    capacity: rng.f64().abs() + 1.0,
                })
                .collect(),
            consumption,
            demand_exact,
            demand_variable,
            unattributed,
            (0..rows).map(|_| rng.f64()).collect(),
            estimated,
            usages,
        )
    }

    fn container_roundtrip<T>(
        sections: Vec<(u32, Vec<u8>)>,
        decode: impl FnOnce(&[Section<'_>]) -> Result<T, Grade10Error>,
    ) -> T {
        let bytes = crate::trace::binary::build_container(
            &crate::cache::CACHE_MAGIC,
            crate::cache::CACHE_FORMAT_VERSION,
            &sections,
        );
        let parsed = parse_container(&bytes, &crate::cache::CACHE_CONTAINER).unwrap();
        decode(&parsed).unwrap()
    }

    #[test]
    fn ingest_unit_roundtrips_over_random_inputs() {
        let mut rng = Rng(0x9e3779b97f4a7c15);
        for _ in 0..64 {
            let status = [UnitStatus::Full, UnitStatus::Degraded, UnitStatus::Dropped]
                [rng.below(3) as usize];
            let incidents = rand_incidents(&mut rng);
            let events = rand_events(&mut rng);
            let series = rand_series(&mut rng);
            let report = rand_report(&mut rng);
            let rec = container_roundtrip(
                encode_ingest_unit(status, &incidents, &events, &series, &report),
                decode_ingest_unit,
            );
            assert_eq!(rec.status, status);
            assert_eq!(rec.incidents, incidents);
            assert_eq!(rec.events, events);
            assert_eq!(rec.series, series);
            assert_eq!(rec.report, report);
        }
    }

    #[test]
    fn attribute_unit_roundtrips_over_random_profiles() {
        let mut rng = Rng(0xdeadbeefcafef00d);
        for _ in 0..64 {
            let profile = if rng.below(8) == 0 {
                None
            } else {
                Some(rand_profile(&mut rng))
            };
            let degraded = rng.below(2) == 1;
            let incidents = rand_incidents(&mut rng);
            let rec = container_roundtrip(
                encode_attribute_unit(profile.as_ref(), degraded, &incidents),
                decode_attribute_unit,
            );
            assert_eq!(rec.degraded, degraded);
            assert_eq!(rec.incidents, incidents);
            match (&rec.profile, &profile) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.grid, b.grid);
                    assert_eq!(a.resources, b.resources);
                    assert_eq!(a.consumption, b.consumption);
                    assert_eq!(a.demand_exact, b.demand_exact);
                    assert_eq!(a.demand_variable, b.demand_variable);
                    assert_eq!(a.unattributed, b.unattributed);
                    assert_eq!(a.overflow, b.overflow);
                    assert_eq!(a.estimated, b.estimated);
                    assert_eq!(a.usages.len(), b.usages.len());
                    for (x, y) in a.usages.iter().zip(&b.usages) {
                        assert_eq!(x.instance, y.instance);
                        assert_eq!(x.resource, y.resource);
                        assert_eq!(x.rule, y.rule);
                        assert_eq!(x.first_slice, y.first_slice);
                        assert_eq!(x.demand, y.demand);
                        assert_eq!(x.usage, y.usage);
                    }
                    // The rebuilt index answers lookups identically.
                    for u in &b.usages {
                        assert!(a.usage_of(u.instance, u.resource).is_some());
                    }
                }
                _ => panic!("profile presence did not round-trip"),
            }
        }
    }

    #[test]
    fn special_float_values_roundtrip_bit_exactly() {
        let specials = [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN, 1e-308];
        let series = vec![RawSeries {
            instance: ResourceInstance {
                kind: "cpu".into(),
                machine: Some(0),
                capacity: 4.0,
            },
            measurements: specials
                .iter()
                .map(|&avg| Measurement {
                    start: 0,
                    end: 1,
                    avg,
                })
                .collect(),
        }];
        let rec = container_roundtrip(
            encode_ingest_unit(
                UnitStatus::Full,
                &[],
                &[],
                &series,
                &IngestReport::default(),
            ),
            decode_ingest_unit,
        );
        for (got, want) in rec.series[0].measurements.iter().zip(&specials) {
            assert_eq!(got.avg.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn truncated_meta_is_rejected_not_panicking() {
        let mut rng = Rng(7);
        let sections = encode_attribute_unit(Some(&rand_profile(&mut rng)), false, &[]);
        let meta = &sections[0].1;
        for len in 0..meta.len() {
            let truncated = [(SECTION_META, meta[..len].to_vec())];
            let bytes = crate::trace::binary::build_container(
                &crate::cache::CACHE_MAGIC,
                crate::cache::CACHE_FORMAT_VERSION,
                &truncated,
            );
            // Either layer may reject — the empty section at the container
            // level, everything else in the codec — but damage never decodes.
            let decoded = parse_container(&bytes, &crate::cache::CACHE_CONTAINER)
                .and_then(|parsed| decode_attribute_unit(&parsed).map(drop));
            assert!(decoded.is_err(), "truncated meta at {len} must fail to decode");
        }
    }

    #[test]
    fn future_codec_version_is_rejected() {
        let sections = encode_ingest_unit(
            UnitStatus::Full,
            &[],
            &[],
            &[],
            &IngestReport::default(),
        );
        let mut bumped = sections.clone();
        bumped[0].1[0] = CODEC_VERSION + 1;
        let bytes = crate::trace::binary::build_container(
            &crate::cache::CACHE_MAGIC,
            crate::cache::CACHE_FORMAT_VERSION,
            &bumped,
        );
        let parsed = parse_container(&bytes, &crate::cache::CACHE_CONTAINER).unwrap();
        assert!(decode_ingest_unit(&parsed).is_err());
    }
}
