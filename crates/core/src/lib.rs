//! # Grade10 — performance characterization of distributed graph processing
//!
//! A from-scratch Rust implementation of the framework described in
//! *Grade10: A Framework for Performance Characterization of Distributed
//! Graph Processing* (Hegeman, Trivedi, Iosup — IEEE CLUSTER 2020).
//!
//! Given (a) an **execution model** — a hierarchical DAG of phase types,
//! (b) a **resource model** — consumable and blocking resources with
//! **attribution rules**, and (c) one execution's **logs** (phase and
//! blocking events) plus **coarse monitoring data**, Grade10 produces a
//! fine-grained performance profile and analyzes it automatically:
//!
//! 1. [`parse`] turns raw logs into an [`trace::ExecutionTrace`];
//! 2. [`attribution`] estimates per-timeslice demand, upsamples the coarse
//!    measurements, and attributes consumption to individual phases —
//!    yielding the 3-D `phase × resource × timeslice` profile;
//! 3. [`bottleneck`] finds where phases were limited by saturated
//!    resources, their own configured ceilings, or blocking events;
//! 4. [`mod@replay`] + [`issues`] estimate, by what-if simulation, the maximal
//!    makespan reduction from removing each bottleneck or evening out each
//!    imbalanced phase group;
//! 5. [`report`] renders tables and time-series for humans.
//!
//! The crate is self-contained: it knows nothing about any particular
//! engine. `grade10-engines` provides ready-made models and log adapters
//! for the simulated Giraph-like and PowerGraph-like systems used in the
//! paper's evaluation.
//!
//! ## Quick tour
//!
//! ```
//! use grade10_core::model::{ExecutionModelBuilder, Repeat, RuleSet, AttributionRule};
//! use grade10_core::trace::{TraceBuilder, ResourceTrace, ResourceInstance, MILLIS};
//! use grade10_core::attribution::{build_profile, ProfileConfig};
//!
//! // Execution model: a job with two sequential phases.
//! let mut b = ExecutionModelBuilder::new("job");
//! let root = b.root();
//! let load = b.child(root, "load", Repeat::Once);
//! let run = b.child(root, "run", Repeat::Once);
//! b.edge(load, run);
//! let model = b.build();
//!
//! // Attribution rules: load is network-bound, run demands exactly 1 core.
//! let rules = RuleSet::new()
//!     .rule(load, "cpu", AttributionRule::Variable(1.0))
//!     .rule(run, "cpu", AttributionRule::Exact(0.25));
//!
//! // One execution's trace: load 0-40 ms, run 40-100 ms on machine 0.
//! let mut tb = TraceBuilder::new(&model);
//! tb.add_phase(&[("job", 0)], 0, 100 * MILLIS, None, None).unwrap();
//! tb.add_phase(&[("job", 0), ("load", 0)], 0, 40 * MILLIS, Some(0), Some(0)).unwrap();
//! tb.add_phase(&[("job", 0), ("run", 0)], 40 * MILLIS, 100 * MILLIS, Some(0), Some(0)).unwrap();
//! let trace = tb.build().unwrap();
//!
//! // Coarse monitoring: one CPU, 4 cores, sampled every 50 ms.
//! let mut rt = ResourceTrace::new();
//! let cpu = rt.add_resource(ResourceInstance {
//!     kind: "cpu".into(), machine: Some(0), capacity: 4.0 });
//! rt.add_series(cpu, 0, 50 * MILLIS, &[0.9, 1.0]);
//!
//! let profile = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
//! assert_eq!(profile.grid.num_slices(), 10);
//! ```

#![warn(missing_docs)]
// Library code must classify failures, not abort: unwrap/expect are only
// acceptable where an invariant makes failure impossible (and then a
// targeted allow with a reason documents why).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod attribution;
pub mod bottleneck;
pub mod cache;
pub mod campaign;
pub mod compare;
pub mod config;
pub mod error;
pub mod critical_path;
pub mod hash;
pub mod indicator;
pub mod infer;
pub mod issues;
pub mod model;
pub mod obs;
pub mod parse;
pub mod pipeline;
pub mod replay;
pub mod report;
pub mod supervise;
pub mod trace;

pub use attribution::{build_profile, PerformanceProfile, ProfileConfig, UpsampleMode};
pub use campaign::{
    run_campaign, CampaignOptions, CampaignRun, CampaignSpec, MixAttempt, MixMode, MixOutcome,
    MixSpec,
};
pub use config::Parallelism;
pub use error::Grade10Error;
pub use pipeline::{
    characterize, characterize_events, characterize_meta, characterize_self, Characterization,
    CharacterizationConfig, MetaCharacterization, SelfCharacterization,
};
pub use bottleneck::{BottleneckConfig, BottleneckReport};
pub use supervise::{
    characterize_events_supervised, ChaosMode, ChaosPoint, Coverage, Incident, IncidentKind,
    IncidentOutcome, MachineCoverage, PartialCharacterization, RetryPolicy, StageCoverage,
    StageStatus, SuperviseConfig, UnitStatus,
};
pub use issues::{IssueConfig, IssueKind, PerformanceIssue};
pub use model::{AttributionRule, ExecutionModel, ExecutionModelBuilder, Repeat, RuleSet};
pub use replay::{replay, replay_original, ReplayConfig, ReplayResult};
pub use trace::{ExecutionTrace, ResourceTrace, TimesliceGrid};
