//! The crate's error type.
//!
//! Everything fallible in Grade10 is an input problem: logs that do not
//! balance, paths that do not resolve against the execution model,
//! malformed serialized artifacts. [`Grade10Error`] classifies them so
//! callers can distinguish "fix your log shipper" from "fix your model"
//! without parsing message strings.

use std::fmt;

/// Errors produced while ingesting Grade10's inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Grade10Error {
    /// A log stream violated the event contract (unbalanced phases,
    /// duplicate starts, blocks without ends).
    MalformedLog(String),
    /// A phase path did not resolve against the execution model, or
    /// referenced a parent instance that was never logged.
    ModelMismatch(String),
    /// A trace failed structural validation (negative durations, dangling
    /// references).
    InvalidTrace(String),
    /// A serialized artifact (model bundle, event file) failed to parse.
    Serialization(String),
}

impl Grade10Error {
    /// The human-readable detail.
    pub fn detail(&self) -> &str {
        match self {
            Grade10Error::MalformedLog(s)
            | Grade10Error::ModelMismatch(s)
            | Grade10Error::InvalidTrace(s)
            | Grade10Error::Serialization(s) => s,
        }
    }
}

impl fmt::Display for Grade10Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Grade10Error::MalformedLog(s) => write!(f, "malformed log: {s}"),
            Grade10Error::ModelMismatch(s) => write!(f, "model mismatch: {s}"),
            Grade10Error::InvalidTrace(s) => write!(f, "invalid trace: {s}"),
            Grade10Error::Serialization(s) => write!(f, "serialization: {s}"),
        }
    }
}

impl std::error::Error for Grade10Error {}

impl From<Grade10Error> for String {
    fn from(e: Grade10Error) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_category() {
        let e = Grade10Error::MalformedLog("phase x never ended".into());
        assert_eq!(e.to_string(), "malformed log: phase x never ended");
        assert_eq!(e.detail(), "phase x never ended");
    }

    #[test]
    fn is_a_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Grade10Error::InvalidTrace("x".into()));
    }
}
