//! The crate's error type.
//!
//! Everything fallible in Grade10 is an input problem: logs that do not
//! balance, paths that do not resolve against the execution model,
//! malformed serialized artifacts. [`Grade10Error`] classifies them so
//! callers can distinguish "fix your log shipper" from "fix your model"
//! without parsing message strings — and, since real telemetry pipelines
//! damage data routinely, so callers can distinguish *recoverable* input
//! blemishes (retry in [`IngestMode::Lenient`](crate::trace::IngestMode))
//! from *fatal* modeling or environment problems.

use std::fmt;

/// Errors produced while ingesting Grade10's inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Grade10Error {
    /// A log stream violated the event contract (unbalanced phases,
    /// duplicate starts, blocks without ends).
    MalformedLog(String),
    /// A phase path did not resolve against the execution model, or
    /// referenced a parent instance that was never logged.
    ModelMismatch(String),
    /// A trace failed structural validation (negative durations, dangling
    /// references).
    InvalidTrace(String),
    /// Monitoring data violated its contract (non-finite or negative
    /// utilization samples, out-of-order windows, non-positive capacity).
    InvalidMonitoring(String),
    /// A serialized artifact (model bundle, event file) failed to parse.
    Serialization(String),
    /// A supervised pipeline unit exceeded its wall-clock deadline and was
    /// abandoned.
    Deadline(String),
    /// A requested timeslice grid exceeded the configured slice/allocation
    /// budget and was rejected before allocating.
    BudgetExceeded(String),
    /// A supervised pipeline unit panicked; the panic was captured and the
    /// rest of the pipeline continued.
    StagePanicked(String),
    /// The filesystem failed underneath a durable artifact (campaign
    /// journal, result store, report). Retrying the computation cannot
    /// help; the environment is broken.
    Io(String),
    /// A versioned durable artifact (campaign journal, binary trace) was
    /// written by a newer build than this one can read. Retrying cannot
    /// help; upgrade the reader or regenerate the artifact.
    UnsupportedVersion(String),
}

impl Grade10Error {
    /// The human-readable detail.
    pub fn detail(&self) -> &str {
        match self {
            Grade10Error::MalformedLog(s)
            | Grade10Error::ModelMismatch(s)
            | Grade10Error::InvalidTrace(s)
            | Grade10Error::InvalidMonitoring(s)
            | Grade10Error::Serialization(s)
            | Grade10Error::Deadline(s)
            | Grade10Error::BudgetExceeded(s)
            | Grade10Error::StagePanicked(s)
            | Grade10Error::Io(s)
            | Grade10Error::UnsupportedVersion(s) => s,
        }
    }

    /// True when re-running the same inputs under degraded settings
    /// ([`IngestMode::Lenient`](crate::trace::IngestMode) ingestion, a
    /// coarser timeslice, a supervised retry) can repair or route around
    /// the problem: damaged log streams, damaged monitoring, and supervised
    /// unit failures (deadline, budget, panic) are recoverable; a wrong
    /// execution model or an unparseable artifact is not.
    pub fn is_recoverable(&self) -> bool {
        match self {
            Grade10Error::MalformedLog(_)
            | Grade10Error::InvalidTrace(_)
            | Grade10Error::InvalidMonitoring(_)
            | Grade10Error::Deadline(_)
            | Grade10Error::BudgetExceeded(_)
            | Grade10Error::StagePanicked(_) => true,
            Grade10Error::ModelMismatch(_)
            | Grade10Error::Serialization(_)
            | Grade10Error::Io(_)
            | Grade10Error::UnsupportedVersion(_) => false,
        }
    }
}

impl fmt::Display for Grade10Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Grade10Error::MalformedLog(s) => write!(f, "malformed log: {s}"),
            Grade10Error::ModelMismatch(s) => write!(f, "model mismatch: {s}"),
            Grade10Error::InvalidTrace(s) => write!(f, "invalid trace: {s}"),
            Grade10Error::InvalidMonitoring(s) => write!(f, "invalid monitoring: {s}"),
            Grade10Error::Serialization(s) => write!(f, "serialization: {s}"),
            Grade10Error::Deadline(s) => write!(f, "deadline exceeded: {s}"),
            Grade10Error::BudgetExceeded(s) => write!(f, "budget exceeded: {s}"),
            Grade10Error::StagePanicked(s) => write!(f, "stage panicked: {s}"),
            Grade10Error::Io(s) => write!(f, "io: {s}"),
            Grade10Error::UnsupportedVersion(s) => write!(f, "unsupported version: {s}"),
        }
    }
}

impl std::error::Error for Grade10Error {}

impl From<Grade10Error> for String {
    fn from(e: Grade10Error) -> String {
        e.to_string()
    }
}

impl From<serde_json::Error> for Grade10Error {
    fn from(e: serde_json::Error) -> Grade10Error {
        Grade10Error::Serialization(e.to_string())
    }
}

impl From<std::io::Error> for Grade10Error {
    fn from(e: std::io::Error) -> Grade10Error {
        Grade10Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_category() {
        let e = Grade10Error::MalformedLog("phase x never ended".into());
        assert_eq!(e.to_string(), "malformed log: phase x never ended");
        assert_eq!(e.detail(), "phase x never ended");
        let e = Grade10Error::InvalidMonitoring("negative sample".into());
        assert_eq!(e.to_string(), "invalid monitoring: negative sample");
    }

    #[test]
    fn is_a_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Grade10Error::InvalidTrace("x".into()));
    }

    #[test]
    fn recoverability_classification() {
        assert!(Grade10Error::MalformedLog("x".into()).is_recoverable());
        assert!(Grade10Error::InvalidTrace("x".into()).is_recoverable());
        assert!(Grade10Error::InvalidMonitoring("x".into()).is_recoverable());
        assert!(!Grade10Error::ModelMismatch("x".into()).is_recoverable());
        assert!(!Grade10Error::Serialization("x".into()).is_recoverable());
        // Supervised unit failures can be retried under degraded settings.
        assert!(Grade10Error::Deadline("x".into()).is_recoverable());
        assert!(Grade10Error::BudgetExceeded("x".into()).is_recoverable());
        assert!(Grade10Error::StagePanicked("x".into()).is_recoverable());
        // A broken filesystem cannot be repaired by degraded re-runs.
        assert!(!Grade10Error::Io("disk full".into()).is_recoverable());
        // Neither can an artifact from a newer build.
        assert!(!Grade10Error::UnsupportedVersion("journal v9".into()).is_recoverable());
    }

    #[test]
    fn unsupported_version_displays() {
        let e = Grade10Error::UnsupportedVersion("journal is format version 9".into());
        assert_eq!(e.to_string(), "unsupported version: journal is format version 9");
        assert_eq!(e.detail(), "journal is format version 9");
    }

    #[test]
    fn supervision_variants_display() {
        assert_eq!(
            Grade10Error::Deadline("unit ran 2s".into()).to_string(),
            "deadline exceeded: unit ran 2s"
        );
        assert_eq!(
            Grade10Error::BudgetExceeded("10M cells".into()).to_string(),
            "budget exceeded: 10M cells"
        );
        assert_eq!(
            Grade10Error::StagePanicked("index oob".into()).to_string(),
            "stage panicked: index oob"
        );
    }

    #[test]
    fn serde_json_errors_convert() {
        let err = serde_json::from_str::<u32>("not json").unwrap_err();
        let e: Grade10Error = err.into();
        assert!(matches!(e, Grade10Error::Serialization(_)));
        assert!(!e.is_recoverable());
    }
}
