//! Critical-path analysis on top of the replay model.
//!
//! The paper's related work treats critical-path analysis as a separate,
//! workload-level technique; Grade10's replay simulator already contains
//! everything needed to derive it. The critical path is the chain of leaf
//! phases whose durations determine the replayed makespan — shortening any
//! phase *off* the path cannot speed the job up at all, so the per-type
//! breakdown here tells an engineer where optimization effort can possibly
//! pay before running any what-if.

use std::collections::BTreeMap;

use crate::model::execution::{ExecutionModel, PhaseTypeId};
use crate::replay::{replay_original, ReplayConfig, ReplayResult};
use crate::trace::execution::{ExecutionTrace, InstanceId};
use crate::trace::timeslice::Nanos;

/// One hop of the critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalHop {
    /// The leaf phase instance on the path.
    pub instance: InstanceId,
    /// Its replayed start.
    pub start: Nanos,
    /// Its replayed end.
    pub end: Nanos,
}

/// The critical path and its aggregate view.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Leaf instances on the path, in execution order.
    pub hops: Vec<CriticalHop>,
    /// Replayed makespan (equals the last hop's end).
    pub makespan: Nanos,
    /// Time on the path per leaf phase type, ns.
    pub time_by_type: BTreeMap<PhaseTypeId, Nanos>,
}

impl CriticalPath {
    /// Fraction of the makespan spent in `ty` on the critical path.
    pub fn fraction_of(&self, ty: PhaseTypeId) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        *self.time_by_type.get(&ty).unwrap_or(&0) as f64 / self.makespan as f64
    }

    /// Human-readable per-type rows, largest first.
    pub fn rows(&self, model: &ExecutionModel) -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> = self
            .time_by_type
            .iter()
            .map(|(&ty, &ns)| (model.type_path(ty), ns as f64 / 1e9))
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        rows
    }
}

/// Derives the critical path of the replayed trace.
///
/// Reconstruction is greedy-backward over the replay schedule: starting
/// from a leaf that finishes at the makespan, repeatedly step to a
/// predecessor-candidate leaf that finishes exactly when the current hop
/// could begin — either a model/sequential predecessor or, under
/// concurrency limits, the previous occupant of the hop's slot.
pub fn critical_path(
    model: &ExecutionModel,
    trace: &ExecutionTrace,
    cfg: &ReplayConfig,
) -> CriticalPath {
    let result = replay_original(model, trace, cfg);
    critical_path_of(model, trace, &result)
}

/// Same, over an existing replay result.
pub fn critical_path_of(
    _model: &ExecutionModel,
    trace: &ExecutionTrace,
    result: &ReplayResult,
) -> CriticalPath {
    let leaves: Vec<InstanceId> = trace.leaves().map(|i| i.id).collect();
    let makespan = result.makespan;

    // Terminal hop: a leaf ending at the makespan.
    let mut current = leaves
        .iter()
        .copied()
        .find(|&id| result.end[id.0 as usize] == makespan);
    let mut hops: Vec<CriticalHop> = Vec::new();

    while let Some(id) = current {
        let (s, e) = (result.start[id.0 as usize], result.end[id.0 as usize]);
        hops.push(CriticalHop {
            instance: id,
            start: s,
            end: e,
        });
        if s == 0 {
            break;
        }
        // A predecessor leaf that ends exactly at (or after — slot waits —
        // no: at) this hop's start and is plausibly ordered before it:
        // any leaf with end == start of the current hop. If several
        // qualify, prefer one on the same machine (slot or local
        // dependency), then any.
        let inst = trace.instance(id);
        let mut cands: Vec<InstanceId> = leaves
            .iter()
            .copied()
            .filter(|&c| c != id && result.end[c.0 as usize] == s)
            .collect();
        cands.sort_by_key(|&c| {
            let ci = trace.instance(c);
            (ci.machine != inst.machine, c.0)
        });
        current = cands.first().copied();
    }
    hops.reverse();

    let mut time_by_type = BTreeMap::new();
    for h in &hops {
        let ty = trace.instance(h.instance).type_id;
        *time_by_type.entry(ty).or_insert(0) += h.end - h.start;
    }
    CriticalPath {
        hops,
        makespan,
        time_by_type,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::trace::execution::TraceBuilder;
    use crate::trace::timeslice::MILLIS;

    /// job -> step(seq) -> task(par): two steps, two tasks each.
    fn setup(durs: [[u64; 2]; 2]) -> (ExecutionModel, ExecutionTrace) {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let step = b.child(r, "step", Repeat::Sequential);
        let _ = b.child(step, "task", Repeat::Parallel);
        let model = b.build();
        let trace = build_trace(&model, durs);
        (model, trace)
    }

    fn build_trace(model: &ExecutionModel, durs: [[u64; 2]; 2]) -> ExecutionTrace {
        let mut tb = TraceBuilder::new(model);
        let s0 = durs[0].iter().max().unwrap();
        let s1 = durs[1].iter().max().unwrap();
        tb.add_phase(&[("job", 0)], 0, (s0 + s1) * MILLIS, None, None).unwrap();
        let mut t0 = 0u64;
        for (si, d) in durs.iter().enumerate() {
            let len = *d.iter().max().unwrap();
            tb.add_phase(
                &[("job", 0), ("step", si as u32)],
                t0 * MILLIS,
                (t0 + len) * MILLIS,
                None,
                None,
            )
            .unwrap();
            for (k, &dk) in d.iter().enumerate() {
                tb.add_phase(
                    &[("job", 0), ("step", si as u32), ("task", k as u32)],
                    t0 * MILLIS,
                    (t0 + dk) * MILLIS,
                    Some(0),
                    Some(k as u16),
                )
                .unwrap();
            }
            t0 += len;
        }
        tb.build().unwrap()
    }

    #[test]
    fn path_picks_the_longest_task_of_each_step() {
        let (model, trace) = setup([[20, 50], [70, 10]]);
        let cp = critical_path(&model, &trace, &ReplayConfig::default());
        assert_eq!(cp.makespan, 120 * MILLIS);
        assert_eq!(cp.hops.len(), 2);
        // Hops are the 50 ms task of step 0 and the 70 ms task of step 1.
        let durs: Vec<u64> = cp.hops.iter().map(|h| (h.end - h.start) / MILLIS).collect();
        assert_eq!(durs, vec![50, 70]);
        // All path time is in `task` phases.
        let task = model.find_by_name("task").unwrap();
        assert_eq!(cp.time_by_type[&task], 120 * MILLIS);
        assert!((cp.fraction_of(task) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hops_are_ordered_and_contiguous() {
        let (model, trace) = setup([[30, 40], [25, 35]]);
        let cp = critical_path(&model, &trace, &ReplayConfig::default());
        for w in cp.hops.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
        assert_eq!(cp.hops.last().unwrap().end, cp.makespan);
        assert_eq!(cp.hops.first().unwrap().start, 0);
    }

    #[test]
    fn rows_sorted_by_time() {
        let (model, trace) = setup([[20, 50], [70, 10]]);
        let cp = critical_path(&model, &trace, &ReplayConfig::default());
        let rows = cp.rows(&model);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "job.step.task");
        assert!((rows[0].1 - 0.12).abs() < 1e-9);
    }

    #[test]
    fn off_path_phases_do_not_contribute() {
        // The 20 ms task of step 0 is off the path; shrinking it must not
        // change the critical-path composition.
        let (model, trace) = setup([[20, 50], [70, 10]]);
        let cp = critical_path(&model, &trace, &ReplayConfig::default());
        let on_path: Vec<u32> = cp.hops.iter().map(|h| h.instance.0).collect();
        let task_ty = model.find_by_name("task").unwrap();
        let short = trace
            .instances_of_type(task_ty)
            .find(|i| i.duration() == 20 * MILLIS)
            .unwrap();
        assert!(!on_path.contains(&short.id.0));
    }
}
