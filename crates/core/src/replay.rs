//! Trace-replay simulation (§III-F).
//!
//! Grade10 estimates the impact of a performance issue by replaying the
//! execution trace under a simplified model: every leaf phase has a fixed
//! duration, there are no delays between phases, precedence follows the
//! execution model, and scheduling respects concurrency and locality — a
//! leaf runs on its original machine, and the number of same-type leaves a
//! machine runs concurrently never exceeds what the original trace shows
//! (compute tasks cannot migrate between machines).
//!
//! Replaying the *original* durations yields the baseline makespan;
//! replaying *adjusted* durations (a bottleneck removed, imbalance evened
//! out) yields the optimistic makespan; their difference bounds the gain
//! from fixing the issue.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::model::execution::{ExecutionModel, Repeat};
use crate::trace::execution::{ExecutionTrace, InstanceId};
use crate::trace::timeslice::Nanos;

/// Replay options.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Enforce per-(machine, phase type) concurrency limits derived from
    /// the original trace. Disabling yields the pure critical path.
    pub enforce_concurrency: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            enforce_concurrency: true,
        }
    }
}

/// Result of one replay.
#[derive(Clone, Debug)]
pub struct ReplayResult {
    /// Simulated completion time of the whole trace (relative, ns).
    pub makespan: Nanos,
    /// Simulated start per instance.
    pub start: Vec<Nanos>,
    /// Simulated end per instance.
    pub end: Vec<Nanos>,
}

/// Replays the trace with per-leaf durations given by `duration_of`
/// (containers derive their extent from their leaves).
pub fn replay(
    model: &ExecutionModel,
    trace: &ExecutionTrace,
    duration_of: &dyn Fn(InstanceId) -> Nanos,
    cfg: &ReplayConfig,
) -> ReplayResult {
    let n = trace.instances().len();
    // Node 2i = instance start, 2i+1 = instance end.
    let num_nodes = 2 * n;
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    let mut indeg = vec![0u32; num_nodes];
    let add_edge = |succ: &mut Vec<Vec<usize>>, indeg: &mut Vec<u32>, a: usize, b: usize| {
        succ[a].push(b);
        indeg[b] += 1;
    };

    // Parent-child containment edges.
    for inst in trace.instances() {
        let i = inst.id.0 as usize;
        if let Some(p) = inst.parent {
            let pi = p.0 as usize;
            add_edge(&mut succ, &mut indeg, 2 * pi, 2 * i);
            add_edge(&mut succ, &mut indeg, 2 * i + 1, 2 * pi + 1);
        }
    }
    // Model precedence edges + sequential sibling chains, per container.
    for inst in trace.instances() {
        let children = trace.children_of(inst.id);
        if children.is_empty() {
            continue;
        }
        // Group children by type.
        let mut by_type: HashMap<_, Vec<InstanceId>> = HashMap::new();
        for &c in children {
            by_type
                .entry(trace.instance(c).type_id)
                .or_default()
                .push(c);
        }
        for (&ty, insts) in by_type.iter_mut() {
            if model.repeat(ty) == Repeat::Sequential && insts.len() > 1 {
                insts.sort_by_key(|&c| trace.instance(c).key);
                for w in insts.windows(2) {
                    add_edge(
                        &mut succ,
                        &mut indeg,
                        2 * w[0].0 as usize + 1,
                        2 * w[1].0 as usize,
                    );
                }
            }
        }
        for &(from_ty, to_ty) in model.edges(trace.instance(inst.id).type_id) {
            if let (Some(fs), Some(ts)) = (by_type.get(&from_ty), by_type.get(&to_ty)) {
                for &f in fs {
                    for &t in ts {
                        add_edge(
                            &mut succ,
                            &mut indeg,
                            2 * f.0 as usize + 1,
                            2 * t.0 as usize,
                        );
                    }
                }
            }
        }
    }

    // A leaf's end is reached only via its duration (pushed explicitly when
    // the leaf starts or is granted a slot); give it an artificial
    // indegree so the init loop below does not fire it at t = 0.
    for inst in trace.instances() {
        if trace.is_leaf(inst.id) {
            indeg[2 * inst.id.0 as usize + 1] += 1;
        }
    }

    // Concurrency slots per (machine, type), from the original trace.
    let slots = if cfg.enforce_concurrency {
        derive_slots(trace)
    } else {
        HashMap::new()
    };
    let mut free: HashMap<SlotKey, usize> = slots.clone();

    // Event-driven propagation.
    let mut fire_time = vec![0u64; num_nodes];
    let mut fired = vec![false; num_nodes];
    // (time, node) events: node becomes fireable at time (all preds done).
    let mut heap: BinaryHeap<Reverse<(Nanos, usize)>> = BinaryHeap::new();
    // Pending leaf tasks per slot group, ordered by original start.
    let mut pending: PendingQueues = HashMap::new();

    for node in 0..num_nodes {
        if indeg[node] == 0 {
            heap.push(Reverse((0, node)));
        }
    }

    let mut makespan = 0u64;
    while let Some(Reverse((t, node))) = heap.pop() {
        if fired[node] {
            continue;
        }
        fired[node] = true;
        fire_time[node] = t;
        makespan = makespan.max(t);

        let i = node / 2;
        let inst = trace.instance(InstanceId(i as u32));
        let is_start = node % 2 == 0;
        let is_leaf = trace.is_leaf(inst.id);

        if is_start && is_leaf {
            // The leaf's end is gated by a slot (if constrained).
            let dur = duration_of(inst.id);
            let key = (inst.machine, inst.type_id);
            if cfg.enforce_concurrency && slots.contains_key(&key) {
                pending
                    .entry(key)
                    .or_default()
                    .push(Reverse((inst.start, inst.id.0, dur)));
                try_start(&mut pending, &mut free, &mut heap, key, t);
            } else {
                heap.push(Reverse((t + dur, node + 1)));
            }
        }
        if !is_start && is_leaf {
            // Leaf finished: release its slot and start a waiting task.
            let key = (inst.machine, inst.type_id);
            if cfg.enforce_concurrency && slots.contains_key(&key) {
                let Some(f) = free.get_mut(&key) else {
                    unreachable!("free has an entry for every slots key");
                };
                *f += 1;
                try_start(&mut pending, &mut free, &mut heap, key, t);
            }
        }
        // Propagate to successors.
        for &s in &succ[node] {
            indeg[s] -= 1;
            fire_time[s] = fire_time[s].max(t);
            if indeg[s] == 0 {
                heap.push(Reverse((fire_time[s], s)));
            }
        }
    }

    debug_assert!(
        fired.iter().all(|&f| f),
        "replay left nodes unfired (cyclic precedence?)"
    );

    let mut start = vec![0u64; n];
    let mut end = vec![0u64; n];
    for i in 0..n {
        start[i] = fire_time[2 * i];
        end[i] = fire_time[2 * i + 1];
    }
    ReplayResult {
        makespan,
        start,
        end,
    }
}

type SlotKey = (Option<u16>, crate::model::execution::PhaseTypeId);

/// Waiting tasks per slot group: `(original start, instance id, duration)`
/// min-heaped so the earliest original start runs first.
type PendingQueues = HashMap<SlotKey, BinaryHeap<Reverse<(Nanos, u32, Nanos)>>>;

fn try_start(
    pending: &mut PendingQueues,
    free: &mut HashMap<SlotKey, usize>,
    heap: &mut BinaryHeap<Reverse<(Nanos, usize)>>,
    key: SlotKey,
    now: Nanos,
) {
    let q = match pending.get_mut(&key) {
        Some(q) => q,
        None => return,
    };
    let Some(f) = free.get_mut(&key) else {
        unreachable!("free has an entry for every pending key");
    };
    while *f > 0 {
        match q.pop() {
            Some(Reverse((_prio, id, dur))) => {
                *f -= 1;
                // End node of instance `id` fires after `dur`.
                heap.push(Reverse((now + dur, 2 * id as usize + 1)));
            }
            None => break,
        }
    }
}

/// Max simultaneous same-type leaves per machine in the original trace.
fn derive_slots(trace: &ExecutionTrace) -> HashMap<SlotKey, usize> {
    let mut events: HashMap<SlotKey, Vec<(Nanos, i32)>> = HashMap::new();
    for inst in trace.leaves() {
        let key = (inst.machine, inst.type_id);
        let e = events.entry(key).or_default();
        e.push((inst.start, 1));
        e.push((inst.end, -1));
    }
    let mut out = HashMap::new();
    for (key, mut evs) in events {
        // Ends sort before starts at the same instant.
        evs.sort_by_key(|&(t, d)| (t, d));
        let (mut cur, mut max) = (0i32, 0i32);
        for (_, d) in evs {
            cur += d;
            max = max.max(cur);
        }
        out.insert(key, max.max(1) as usize);
    }
    out
}

/// Convenience: replay with the original durations.
pub fn replay_original(
    model: &ExecutionModel,
    trace: &ExecutionTrace,
    cfg: &ReplayConfig,
) -> ReplayResult {
    replay(model, trace, &|id| trace.instance(id).duration(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, PhaseTypeId, Repeat};
    use crate::trace::execution::TraceBuilder;
    use crate::trace::timeslice::MILLIS;

    /// job -> step(seq) -> task(par); load -> execute -> output at top.
    fn model() -> ExecutionModel {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let load = b.child(r, "load", Repeat::Once);
        let exec = b.child(r, "execute", Repeat::Once);
        b.edge(load, exec);
        let step = b.child(exec, "step", Repeat::Sequential);
        let _task = b.child(step, "task", Repeat::Parallel);
        b.build()
    }

    fn ty(m: &ExecutionModel, name: &str) -> PhaseTypeId {
        m.find_by_name(name).unwrap()
    }

    /// Two sequential steps, two parallel tasks each, on one machine.
    fn build_trace(m: &ExecutionModel, task_ms: [[u64; 2]; 2]) -> ExecutionTrace {
        let mut tb = TraceBuilder::new(m);
        let total = 10 + task_ms[0].iter().max().unwrap() + task_ms[1].iter().max().unwrap();
        tb.add_phase(&[("job", 0)], 0, total * MILLIS, None, None).unwrap();
        tb.add_phase(&[("job", 0), ("load", 0)], 0, 10 * MILLIS, Some(0), Some(0))
            .unwrap();
        let mut t0 = 10u64;
        tb.add_phase(
            &[("job", 0), ("execute", 0)],
            t0 * MILLIS,
            total * MILLIS,
            None,
            None,
        )
        .unwrap();
        for (s, durs) in task_ms.iter().enumerate() {
            let step_len = *durs.iter().max().unwrap();
            tb.add_phase(
                &[("job", 0), ("execute", 0), ("step", s as u32)],
                t0 * MILLIS,
                (t0 + step_len) * MILLIS,
                None,
                None,
            )
            .unwrap();
            for (k, &d) in durs.iter().enumerate() {
                tb.add_phase(
                    &[
                        ("job", 0),
                        ("execute", 0),
                        ("step", s as u32),
                        ("task", k as u32),
                    ],
                    t0 * MILLIS,
                    (t0 + d) * MILLIS,
                    Some(0),
                    Some(k as u16),
                )
                .unwrap();
            }
            t0 += step_len;
        }
        tb.build().unwrap()
    }

    #[test]
    fn replay_original_reproduces_makespan() {
        let m = model();
        let trace = build_trace(&m, [[20, 30], [40, 10]]);
        let r = replay_original(&m, &trace, &ReplayConfig::default());
        // 10 (load) + 30 (step 0) + 40 (step 1) = 80 ms.
        assert_eq!(r.makespan, 80 * MILLIS);
    }

    #[test]
    fn balanced_durations_shrink_makespan() {
        let m = model();
        let trace = build_trace(&m, [[20, 30], [40, 10]]);
        let task_ty = ty(&m, "task");
        // Balance each step's tasks to their mean: 25/25 and 25/25.
        let r = replay(
            &m,
            &trace,
            &|id| {
                let inst = trace.instance(id);
                if inst.type_id == task_ty {
                    25 * MILLIS
                } else {
                    inst.duration()
                }
            },
            &ReplayConfig::default(),
        );
        assert_eq!(r.makespan, 60 * MILLIS);
    }

    #[test]
    fn sequential_steps_never_overlap() {
        let m = model();
        let trace = build_trace(&m, [[20, 30], [40, 10]]);
        let r = replay_original(&m, &trace, &ReplayConfig::default());
        let step_ty = ty(&m, "step");
        let steps: Vec<_> = trace.instances_of_type(step_ty).collect();
        let (s0, s1) = (steps[0].id.0 as usize, steps[1].id.0 as usize);
        assert!(r.end[s0] <= r.start[s1]);
    }

    #[test]
    fn model_edges_order_load_before_execute() {
        let m = model();
        let trace = build_trace(&m, [[20, 30], [40, 10]]);
        let r = replay_original(&m, &trace, &ReplayConfig::default());
        let load_ty = ty(&m, "load");
        let exec_ty = ty(&m, "execute");
        let load = trace.instances_of_type(load_ty).next().unwrap().id.0 as usize;
        let exec = trace.instances_of_type(exec_ty).next().unwrap().id.0 as usize;
        assert!(r.end[load] <= r.start[exec]);
        assert_eq!(r.end[load], 10 * MILLIS);
    }

    #[test]
    fn concurrency_limit_serializes_tasks() {
        // Both tasks ran concurrently in the original trace on threads 0/1,
        // so two slots exist; shrinking to a trace where they were serial
        // (thread overlap 1) must serialize the replay too.
        let m = model();
        let mut tb = TraceBuilder::new(&m);
        tb.add_phase(&[("job", 0)], 0, 100 * MILLIS, None, None).unwrap();
        tb.add_phase(&[("job", 0), ("load", 0)], 0, 0, Some(0), Some(0))
            .unwrap();
        tb.add_phase(&[("job", 0), ("execute", 0)], 0, 100 * MILLIS, None, None)
            .unwrap();
        tb.add_phase(
            &[("job", 0), ("execute", 0), ("step", 0)],
            0,
            100 * MILLIS,
            None,
            None,
        )
        .unwrap();
        // Serial in the original: task0 0-50, task1 50-100.
        tb.add_phase(
            &[("job", 0), ("execute", 0), ("step", 0), ("task", 0)],
            0,
            50 * MILLIS,
            Some(0),
            Some(0),
        )
        .unwrap();
        tb.add_phase(
            &[("job", 0), ("execute", 0), ("step", 0), ("task", 1)],
            50 * MILLIS,
            100 * MILLIS,
            Some(0),
            Some(0),
        )
        .unwrap();
        let trace = tb.build().unwrap();
        let r = replay_original(&m, &trace, &ReplayConfig::default());
        assert_eq!(r.makespan, 100 * MILLIS);
        // Without concurrency enforcement they run in parallel.
        let r2 = replay_original(
            &m,
            &trace,
            &ReplayConfig {
                enforce_concurrency: false,
            },
        );
        assert_eq!(r2.makespan, 50 * MILLIS);
    }

    #[test]
    fn shorter_durations_never_increase_makespan() {
        let m = model();
        let trace = build_trace(&m, [[20, 30], [40, 10]]);
        let base = replay_original(&m, &trace, &ReplayConfig::default());
        let shrunk = replay(
            &m,
            &trace,
            &|id| trace.instance(id).duration() / 2,
            &ReplayConfig::default(),
        );
        assert!(shrunk.makespan <= base.makespan);
    }

    #[test]
    fn different_machines_have_independent_slots() {
        let m = model();
        let mut tb = TraceBuilder::new(&m);
        tb.add_phase(&[("job", 0)], 0, 50 * MILLIS, None, None).unwrap();
        tb.add_phase(&[("job", 0), ("load", 0)], 0, 0, Some(0), Some(0))
            .unwrap();
        tb.add_phase(&[("job", 0), ("execute", 0)], 0, 50 * MILLIS, None, None)
            .unwrap();
        tb.add_phase(
            &[("job", 0), ("execute", 0), ("step", 0)],
            0,
            50 * MILLIS,
            None,
            None,
        )
        .unwrap();
        // One task per machine, concurrent.
        for k in 0..2u32 {
            tb.add_phase(
                &[("job", 0), ("execute", 0), ("step", 0), ("task", k)],
                0,
                50 * MILLIS,
                Some(k as u16),
                Some(0),
            )
            .unwrap();
        }
        let trace = tb.build().unwrap();
        let r = replay_original(&m, &trace, &ReplayConfig::default());
        assert_eq!(r.makespan, 50 * MILLIS);
    }
}
