//! Supervised pipeline execution: panic isolation, deadlines, budget
//! guards, and partial characterizations.
//!
//! The ordinary pipeline entry points ([`crate::pipeline::characterize`]
//! and friends) are all-or-nothing: one panic in attribution, one
//! clock-bombed record that inflates the timeslice grid, or one quadratic
//! blowup in replay kills the entire characterization with nothing to
//! show. Real distributed runs produce exactly such inputs, and the
//! fault-tolerant systems Grade10 profiles treat partial progress under
//! component failure as a first-class outcome — so the characterization
//! framework should too.
//!
//! [`characterize_events_supervised`] wraps each pipeline stage — and,
//! within ingestion and attribution, each per-machine unit of work — in an
//! isolated worker with:
//!
//! * **panic capture** (`catch_unwind`): a panicking unit becomes a
//!   [`Grade10Error::StagePanicked`], not a process abort;
//! * **wall-clock deadlines** ([`SuperviseConfig::deadline`]): a unit that
//!   overruns is abandoned on its worker thread and the pipeline moves on;
//! * **a budget guard** ([`SuperviseConfig::max_grid_cells`]): timeslice
//!   grids are costed *before* allocation and coarsened (or rejected) when
//!   they exceed the cap;
//! * **a bounded retry ladder**: failed units re-run under degraded
//!   settings — strict ingestion falls back to lenient, an oversized grid
//!   coarsens its timeslice, a failed replay is skipped — and a unit that
//!   exhausts its retries is *dropped*, not fatal.
//!
//! Every failure and every degradation becomes a structured [`Incident`];
//! the result is a [`PartialCharacterization`]: the ordinary
//! [`Characterization`] plus the incident log and a per-machine /
//! per-stage [`Coverage`] map saying exactly what was and was not
//! analyzed. The degradation ladder is: strict → lenient → coarse slice →
//! drop unit (see `docs/robustness.md`).
//!
//! Concurrency: per-machine units run on a bounded worker pool
//! ([`SuperviseConfig::parallelism`] / [`SuperviseConfig::threads`], width
//! resolved by [`crate::config::resolve_threads`] — explicit width, then
//! `GRADE10_THREADS`, then the machine size). Workers claim units from a
//! shared queue, and the supervisor merges their results — profiles,
//! repaired streams, incidents, per-machine status — in stable unit-key
//! order, so the output is byte-identical whatever the pool width,
//! including width 1 (which runs the unit inline on the supervisor
//! thread). With [`SuperviseConfig::deadline`] set, each attempt runs on
//! its own detached thread and is abandoned if it overruns — the thread
//! finishes (or leaks until process exit) in the background, which is the
//! price of not blocking the pipeline on an unbounded computation; because
//! attempts time out *concurrently* on the pool, one stalled unit delays
//! the run by one deadline, not one deadline per stalled unit. Pool
//! workers register with [`crate::obs`] so self-characterization
//! attributes their CPU; failed attempts are stamped into the self-profile
//! as [`obs::Stage::Incident`] spans.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::attribution::{build_profile, PerformanceProfile, ProfileConfig};
use crate::config::Parallelism;
use crate::bottleneck::BottleneckReport;
use crate::error::Grade10Error;
use crate::issues::{detect_bottleneck_issues, detect_imbalance_issues, PerformanceIssue};
use crate::model::{ExecutionModel, RuleSet};
use crate::obs;
use crate::parse::{build_execution_trace, RawEvent};
use crate::pipeline::{Characterization, CharacterizationConfig};
use crate::replay::replay_original;
use crate::trace::repair::{
    plausibility_bound, repair_events_opts, repair_series, validate_event_stream, IngestMode,
    IngestReport, RawSeries,
};
use crate::trace::resource::ResourceTrace;
use crate::trace::timeslice::Nanos;
use crate::trace::ExecutionTrace;

/// Knobs of the supervision layer, carried in
/// [`CharacterizationConfig::supervise`].
#[derive(Clone, Debug)]
pub struct SuperviseConfig {
    /// Wall-clock deadline per unit attempt. `None` (the default) runs
    /// every unit inline on the supervisor thread — fully deterministic,
    /// panics still captured. `Some(d)` runs units on worker threads and
    /// abandons any attempt that has not finished within `d`.
    pub deadline: Option<Duration>,
    /// Retries per unit after the first failed attempt (default 2). Each
    /// retry runs one rung further down the degradation ladder where the
    /// stage has one (strict → lenient ingestion); otherwise it is a plain
    /// re-attempt.
    pub max_retries: u32,
    /// Maximum `(resource × timeslice)` cells a grid may request. Grids
    /// over the cap are rejected *before* allocating and the timeslice is
    /// coarsened by [`coarsen_factor`](Self::coarsen_factor) (bounded by
    /// [`max_retries`](Self::max_retries) rungs); a grid still over the
    /// cap after coarsening drops the attribution stage. The default
    /// (4 M cells ≈ a few hundred MB across the profile arrays) is sized
    /// so a single clock-bombed timestamp cannot OOM the process.
    pub max_grid_cells: usize,
    /// Timeslice multiplier applied per budget rung (default 10).
    pub coarsen_factor: u32,
    /// Test-only fault injection: chaos points matched by unit label. Leave
    /// empty in production.
    pub chaos: Vec<ChaosPoint>,
    /// Threading policy for the per-machine unit pools (ingestion and
    /// attribution). Results are byte-identical at any width — workers
    /// only compute, the supervisor merges in stable unit-key order — so
    /// the default [`Parallelism::Auto`] parallelizes whenever there is
    /// more than one unit.
    pub parallelism: Parallelism,
    /// Explicit worker-pool width. `None` (the default) defers to
    /// `GRADE10_THREADS`, then to the machine size — see
    /// [`crate::config::resolve_threads`].
    pub threads: Option<usize>,
    /// Retry/backoff policy for *whole-mix* re-execution under the
    /// campaign envelope (see [`crate::campaign`]). Unit-level retries
    /// inside one characterization are governed by
    /// [`max_retries`](Self::max_retries); this policy governs how a
    /// campaign re-launches an entire failed mix before recording it as
    /// an [`Incident`].
    pub retry: RetryPolicy,
    /// Stage-output cache for incremental recharacterization (see
    /// [`crate::cache`]). When set, per-machine ingest and attribution
    /// units look up their content-hashed inputs before executing and
    /// persist their outputs after; a re-run with unchanged inputs
    /// replays cached unit results (including their incident records)
    /// and re-merges, byte-identical to a cold run. Ignored — never
    /// consulted, never written — while a [`deadline`](Self::deadline)
    /// or [`chaos`](Self::chaos) points are set, since injected faults
    /// and wall-clock abandonment make unit outputs non-reproducible.
    pub cache: Option<Arc<crate::cache::StageCache>>,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig {
            deadline: None,
            max_retries: 2,
            max_grid_cells: 4_000_000,
            coarsen_factor: 10,
            chaos: Vec::new(),
            parallelism: Parallelism::Auto,
            threads: None,
            retry: RetryPolicy::default(),
            cache: None,
        }
    }
}

/// Bounded exponential backoff with deterministic jitter, used by the
/// campaign scheduler between attempts of a failed mix.
///
/// The delay before attempt `k + 1` is `base << k`, capped at `cap`, then
/// scaled by a jitter factor in `[1 - jitter, 1 + jitter]` derived from an
/// FNV hash of `(salt, k)` — deterministic for a given mix, decorrelated
/// across mixes, and entirely free of wall-clock or OS entropy so that a
/// resumed campaign replays the same schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per mix, including the first (default 3). `0` is
    /// treated as `1`: the first attempt always runs.
    pub max_attempts: u32,
    /// Delay before the first retry (default 50 ms). Zero disables
    /// sleeping entirely — useful in tests.
    pub base: Duration,
    /// Upper bound on any single delay (default 2 s).
    pub cap: Duration,
    /// Jitter half-width as a fraction of the delay, clamped to `[0, 1]`
    /// (default 0.5, i.e. delays vary between 50% and 150% of nominal).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The delay to sleep after failed attempt `attempt` (0-based), salted
    /// so different mixes do not retry in lockstep. Returns
    /// `Duration::ZERO` when [`base`](Self::base) is zero.
    pub fn backoff_delay(&self, attempt: u32, salt: u64) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let shifted = self
            .base
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.cap);
        let nominal = shifted.min(self.cap);
        let jitter = self.jitter.clamp(0.0, 1.0);
        // Map an FNV hash of (salt, attempt) onto [1 - jitter, 1 + jitter].
        let h = crate::campaign::fnv1a_extend(
            crate::campaign::fnv1a(&salt.to_le_bytes()),
            &attempt.to_le_bytes(),
        );
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - jitter + 2.0 * jitter * frac;
        nominal.mul_f64(factor).min(self.cap)
    }
}

/// What a [`ChaosPoint`] does when its unit runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosMode {
    /// Panic inside the unit (exercises `catch_unwind` isolation).
    Panic,
    /// Sleep before doing the work (exercises deadlines).
    Stall(Duration),
}

/// A deterministic fault injected into one supervised unit, for testing
/// the supervision layer itself. The `unit` string must equal the unit's
/// label, e.g. `"attribute/machine 1"` or `"replay"`. The fault fires on
/// *every* attempt, so a `Panic` chaos point drives the unit through its
/// whole retry ladder to `Dropped`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosPoint {
    /// Label of the unit to sabotage.
    pub unit: String,
    /// What to inject.
    pub mode: ChaosMode,
}

/// Classification of a supervised failure or degradation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncidentKind {
    /// A unit panicked and the panic was captured.
    Panic,
    /// A unit exceeded its wall-clock deadline and was abandoned.
    Deadline,
    /// A grid exceeded the slice/allocation budget and was rejected before
    /// allocating.
    Budget,
    /// A machine contributed monitoring but no log events (e.g. its log
    /// shipper died): it is characterized from monitoring only.
    MissingData,
    /// Implausible monitoring windows were quarantined during lenient
    /// repair (timestamp damage that would have inflated the grid).
    Quarantine,
    /// A campaign mix killed several consecutive claimants without ever
    /// recording an outcome and was quarantined as poisoned rather than
    /// allowed to crash-loop the fleet.
    Poisoned,
    /// Any other classified [`Grade10Error`] from a unit.
    Error,
}

impl IncidentKind {
    /// Short lowercase name, for tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            IncidentKind::Panic => "panic",
            IncidentKind::Deadline => "deadline",
            IncidentKind::Budget => "budget",
            IncidentKind::MissingData => "missing-data",
            IncidentKind::Quarantine => "quarantine",
            IncidentKind::Poisoned => "poisoned",
            IncidentKind::Error => "error",
        }
    }

    /// Inverse of [`name`](Self::name), for reconstructing incidents from
    /// durable records (the campaign journal). Unknown names map to
    /// `None`; callers default to [`IncidentKind::Error`].
    pub fn from_name(name: &str) -> Option<IncidentKind> {
        match name {
            "panic" => Some(IncidentKind::Panic),
            "deadline" => Some(IncidentKind::Deadline),
            "budget" => Some(IncidentKind::Budget),
            "missing-data" => Some(IncidentKind::MissingData),
            "quarantine" => Some(IncidentKind::Quarantine),
            "poisoned" => Some(IncidentKind::Poisoned),
            "error" => Some(IncidentKind::Error),
            _ => None,
        }
    }

    pub(crate) fn of(e: &Grade10Error) -> IncidentKind {
        match e {
            Grade10Error::Deadline(_) => IncidentKind::Deadline,
            Grade10Error::BudgetExceeded(_) => IncidentKind::Budget,
            Grade10Error::StagePanicked(_) => IncidentKind::Panic,
            _ => IncidentKind::Error,
        }
    }
}

/// How a supervised unit's story ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IncidentOutcome {
    /// The unit eventually produced a result under degraded settings.
    Recovered {
        /// Human-readable description of the degradation that made the
        /// unit succeed (e.g. `"lenient ingestion"`, `"timeslice coarsened
        /// ×10"`).
        degradation: String,
    },
    /// The unit exhausted its retries and its results are missing from the
    /// characterization.
    Dropped,
}

/// One structured record of a supervised failure or degradation — the
/// replacement for a process abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Incident {
    /// Pipeline stage the unit belonged to (`"ingest"`, `"attribute"`,
    /// `"bottleneck"`, `"replay"`, `"issues"`).
    pub stage: &'static str,
    /// The unit within the stage (`"machine 3"`, `"cluster"`, or the
    /// stage name itself for whole-stage units).
    pub unit: String,
    /// Failure class.
    pub kind: IncidentKind,
    /// Detail of the (first) failure, from the classified error.
    pub detail: String,
    /// Attempts consumed, including the final one.
    pub attempts: u32,
    /// Whether the unit recovered or was dropped.
    pub outcome: IncidentOutcome,
}

/// Coverage status of one per-machine unit of work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnitStatus {
    /// Analyzed at full fidelity.
    Full,
    /// Analyzed, but under degraded settings or with partial data.
    Degraded,
    /// Excluded from the characterization.
    Dropped,
}

impl UnitStatus {
    /// Short lowercase name, for tables.
    pub fn name(self) -> &'static str {
        match self {
            UnitStatus::Full => "full",
            UnitStatus::Degraded => "degraded",
            UnitStatus::Dropped => "dropped",
        }
    }
}

/// Coverage status of one pipeline stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageStatus {
    /// Ran to completion at full fidelity.
    Full,
    /// Ran, but degraded (some units retried, coarsened, or dropped).
    Degraded,
    /// Did not run (or fell back to a trivial substitute).
    Skipped,
}

impl StageStatus {
    /// Short lowercase name, for tables.
    pub fn name(self) -> &'static str {
        match self {
            StageStatus::Full => "full",
            StageStatus::Degraded => "degraded",
            StageStatus::Skipped => "skipped",
        }
    }
}

/// Coverage of one machine's data in the final characterization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineCoverage {
    /// The machine, or `None` for cluster-level resources not pinned to a
    /// machine.
    pub machine: Option<u16>,
    /// How much of the machine's data made it through.
    pub status: UnitStatus,
}

impl MachineCoverage {
    /// `"machine 3"` or `"cluster"`.
    pub fn label(&self) -> String {
        match self.machine {
            Some(m) => format!("machine {m}"),
            None => "cluster".to_string(),
        }
    }
}

/// Coverage of one pipeline stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageCoverage {
    /// Stage name (`"ingest"`, `"attribute"`, …).
    pub stage: &'static str,
    /// How completely the stage ran.
    pub status: StageStatus,
}

/// Per-machine and per-stage account of what a supervised run did and did
/// not analyze.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// One entry per machine seen in the input (events or monitoring),
    /// sorted with cluster-level resources first.
    pub machines: Vec<MachineCoverage>,
    /// One entry per pipeline stage, in pipeline order.
    pub stages: Vec<StageCoverage>,
}

impl Coverage {
    /// Machines whose data is present in the characterization (full or
    /// degraded).
    pub fn machines_covered(&self) -> usize {
        self.machines
            .iter()
            .filter(|m| m.status != UnitStatus::Dropped)
            .count()
    }

    /// Stages that ran (full or degraded).
    pub fn stages_run(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.status != StageStatus::Skipped)
            .count()
    }

    /// One-line summary, e.g. `"7/8 machines, 5/5 stages"`.
    pub fn summary(&self) -> String {
        format!(
            "{}/{} machines, {}/{} stages",
            self.machines_covered(),
            self.machines.len(),
            self.stages_run(),
            self.stages.len()
        )
    }
}

/// A characterization that survived supervision: the ordinary result plus
/// the incident log and the coverage map. `incidents` empty means the run
/// was clean end to end.
pub struct PartialCharacterization {
    /// The (possibly partial) pipeline output.
    pub characterization: Characterization,
    /// The merged execution trace the characterization was built over
    /// (callers need it for rendering; the unsupervised entry points take
    /// it as input instead).
    pub trace: ExecutionTrace,
    /// Everything that failed or degraded, in pipeline order.
    pub incidents: Vec<Incident>,
    /// What was and was not analyzed.
    pub coverage: Coverage,
}

impl PartialCharacterization {
    /// True when nothing failed or degraded: the result is identical in
    /// trust to an unsupervised run.
    pub fn is_complete(&self) -> bool {
        self.incidents.is_empty()
    }
}

// ---------------------------------------------------------------------------
// The unit runner.
// ---------------------------------------------------------------------------

/// Outcome of one supervised unit after its whole retry ladder.
struct UnitRun<T> {
    result: Result<T, Grade10Error>,
    attempts: u32,
    first_error: Option<Grade10Error>,
}

pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs one attempt of a unit: inline with panic capture when no deadline
/// is configured, on a detached worker thread with a receive timeout when
/// one is. A timed-out worker is abandoned (it finishes in the background);
/// see the module docs for why.
fn attempt_once<T: Send + 'static>(
    sup: &SuperviseConfig,
    unit: &str,
    f: Box<dyn FnOnce() -> Result<T, Grade10Error> + Send + 'static>,
) -> Result<T, Grade10Error> {
    let chaos: Vec<ChaosPoint> = sup
        .chaos
        .iter()
        .filter(|c| c.unit == unit)
        .cloned()
        .collect();
    let label = unit.to_string();
    let body = move || -> Result<T, Grade10Error> {
        for c in &chaos {
            match c.mode {
                ChaosMode::Panic => panic!("chaos: injected panic in {label}"),
                ChaosMode::Stall(d) => std::thread::sleep(d),
            }
        }
        f()
    };
    match sup.deadline {
        None => match catch_unwind(AssertUnwindSafe(body)) {
            Ok(r) => r,
            Err(p) => Err(Grade10Error::StagePanicked(format!(
                "{unit}: {}",
                panic_message(p.as_ref())
            ))),
        },
        Some(deadline) => {
            let (tx, rx) = mpsc::channel();
            let spawned = std::thread::Builder::new()
                .name(format!("grade10-{unit}"))
                .spawn(move || {
                    // The receiver may be gone (deadline elapsed): ignore.
                    let _ = tx.send(catch_unwind(AssertUnwindSafe(body)));
                });
            let handle = match spawned {
                Ok(h) => h,
                Err(e) => {
                    return Err(Grade10Error::StagePanicked(format!(
                        "{unit}: failed to spawn worker: {e}"
                    )))
                }
            };
            match rx.recv_timeout(deadline) {
                Ok(Ok(r)) => {
                    let _ = handle.join();
                    r
                }
                Ok(Err(p)) => {
                    let msg = panic_message(p.as_ref());
                    let _ = handle.join();
                    Err(Grade10Error::StagePanicked(format!("{unit}: {msg}")))
                }
                Err(_) => Err(Grade10Error::Deadline(format!(
                    "{unit}: no result within {} ms; worker abandoned",
                    deadline.as_millis()
                ))),
            }
        }
    }
}

/// Runs a unit through its retry ladder. `attempt_for(k)` builds the
/// closure for attempt `k` (the caller encodes per-rung degradation by
/// inspecting `k`). Stops early on a fatal (non-recoverable) error. Each
/// failed attempt is stamped into the self-profile as an
/// [`obs::Stage::Incident`] span.
fn run_unit<T, F>(sup: &SuperviseConfig, unit: &str, mut attempt_for: F) -> UnitRun<T>
where
    T: Send + 'static,
    F: FnMut(u32) -> Box<dyn FnOnce() -> Result<T, Grade10Error> + Send + 'static>,
{
    let mut first_error: Option<Grade10Error> = None;
    let mut k = 0u32;
    loop {
        let t0 = obs::session_now();
        match attempt_once(sup, unit, attempt_for(k)) {
            Ok(v) => {
                return UnitRun {
                    result: Ok(v),
                    attempts: k + 1,
                    first_error,
                }
            }
            Err(e) => {
                if let (Some(a), Some(b)) = (t0, obs::session_now()) {
                    obs::record_span(obs::Stage::Incident, a, b);
                }
                if first_error.is_none() {
                    first_error = Some(e.clone());
                }
                k += 1;
                if !e.is_recoverable() || k > sup.max_retries {
                    return UnitRun {
                        result: Err(e),
                        attempts: k,
                        first_error,
                    };
                }
            }
        }
    }
}

/// Worker-pool width for `units` per-machine units under `sup`'s policy.
/// Units are coarse (a full ingest repair or profile build each), so under
/// [`Parallelism::Auto`] any multi-unit batch is worth fanning out.
fn pool_width(sup: &SuperviseConfig, units: usize) -> usize {
    sup.parallelism.width(sup.threads, units, units > 1)
}

/// Runs `run` over every item on a bounded pool of `width` scoped workers
/// and returns the results **in item order** — the pool only changes *when*
/// units execute, never how their outputs interleave, which is what keeps
/// supervised output byte-identical across widths.
///
/// Workers claim items from a shared cursor (no up-front chunking: one
/// slow unit — a deadline sleeper, a retry ladder — must not leave its
/// chunk-mates queued behind it while other workers sit idle) and register
/// with [`crate::obs`] so self-characterization attributes their CPU.
/// `width <= 1` degenerates to an inline loop on the caller's thread.
pub(crate) fn pool_map<I, T, F>(width: usize, items: Vec<I>, run: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    if width <= 1 || items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run(i, item))
            .collect();
    }
    let n = items.len();
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    let obs_session = obs::worker_handle();
    std::thread::scope(|scope| {
        for _ in 0..width.min(n) {
            let slots = &slots;
            let cursor = &cursor;
            let done = &done;
            let run = &run;
            let obs_session = obs_session.clone();
            scope.spawn(move || {
                let _worker = obs_session.as_ref().map(|h| h.enter());
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    // Units never unwind past `run` (failures are caught
                    // and returned as values), so a poisoned slot can only
                    // mean another worker died mid-claim; taking the inner
                    // value anyway keeps this unit alive regardless.
                    let item = slots[idx]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take();
                    let Some(item) = item else { continue };
                    let out = run(idx, item);
                    done.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push((idx, out));
                }
            });
        }
    });
    let mut done = done.into_inner().unwrap_or_else(PoisonError::into_inner);
    done.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(done.len(), n, "pool lost results");
    done.into_iter().map(|(_, t)| t).collect()
}

// ---------------------------------------------------------------------------
// The supervised pipeline.
// ---------------------------------------------------------------------------

/// Output of one per-machine ingest unit: the repaired substreams plus the
/// unit's repair counters.
struct IngestUnitOut {
    events: Vec<RawEvent>,
    series: Vec<RawSeries>,
    report: IngestReport,
}

/// Validates (strict) or repairs (lenient) one machine's substreams.
/// Lenient event repair runs *without* ancestor synthesis: container
/// phases shared across machines are reconstructed once, by the global
/// merge pass, not once per machine.
fn ingest_unit(
    events: &[RawEvent],
    series: &[RawSeries],
    mode: IngestMode,
    bound: Option<Nanos>,
) -> Result<IngestUnitOut, Grade10Error> {
    let mut report = IngestReport::default();
    let out_events = match mode {
        IngestMode::Strict => {
            validate_event_stream(events)?;
            events.to_vec()
        }
        IngestMode::Lenient => repair_events_opts(events, false, &mut report),
    };
    let out_series = match mode {
        IngestMode::Strict => {
            // Validate against the monitoring contract via a scratch trace.
            let mut rt = ResourceTrace::new();
            for s in series {
                let idx = rt.try_add_resource(s.instance.clone())?;
                for &m in &s.measurements {
                    rt.try_add_measurement(idx, m)?;
                }
            }
            series.to_vec()
        }
        IngestMode::Lenient => series
            .iter()
            .filter_map(|s| {
                if !(s.instance.capacity.is_finite() && s.instance.capacity > 0.0) {
                    report.monitoring_invalid += s.measurements.len();
                    return None;
                }
                Some(RawSeries {
                    instance: s.instance.clone(),
                    measurements: repair_series(&s.measurements, bound, &mut report),
                })
            })
            .collect(),
    };
    Ok(IngestUnitOut {
        events: out_events,
        series: out_series,
        report,
    })
}

/// Adds `from`'s damage counters into `into` (totals and slice counters
/// are managed by the supervisor, not summed).
fn absorb_report(into: &mut IngestReport, from: &IngestReport) {
    into.out_of_order_fixed += from.out_of_order_fixed;
    into.duplicates_dropped += from.duplicates_dropped;
    into.duplicate_starts_dropped += from.duplicate_starts_dropped;
    into.missing_ends_synthesized += from.missing_ends_synthesized;
    into.unmatched_ends_dropped += from.unmatched_ends_dropped;
    into.negative_durations_clamped += from.negative_durations_clamped;
    into.ancestors_synthesized += from.ancestors_synthesized;
    into.monitoring_invalid += from.monitoring_invalid;
    into.monitoring_negatives_clamped += from.monitoring_negatives_clamped;
    into.monitoring_out_of_order += from.monitoring_out_of_order;
    into.monitoring_quarantined += from.monitoring_quarantined;
    into.monitoring_gaps_interpolated += from.monitoring_gaps_interpolated;
}

fn unit_label(machine: Option<u16>) -> String {
    match machine {
        Some(m) => format!("machine {m}"),
        None => "cluster".to_string(),
    }
}

/// Everything one per-machine ingest unit produces. Computed on a pool
/// worker; the supervisor merges these in unit-key order, which reproduces
/// the sequential loop's exact incident sequence, event interleaving, and
/// status map at any pool width.
struct IngestUnitDone {
    key: Option<u16>,
    status: UnitStatus,
    incidents: Vec<Incident>,
    events: Vec<RawEvent>,
    series: Vec<RawSeries>,
    report: IngestReport,
}

/// One machine's supervised ingest: the retry ladder (configured mode,
/// then lenient) plus the unit-local incident records.
fn ingest_machine_unit(
    sup: &SuperviseConfig,
    base_mode: IngestMode,
    bound: Option<Nanos>,
    key: Option<u16>,
    ev: Vec<RawEvent>,
    mon: Vec<RawSeries>,
) -> IngestUnitDone {
    let label = format!("ingest/{}", unit_label(key));
    let ev = Arc::new(ev);
    let mon = Arc::new(mon);
    let run = run_unit(sup, &label, |k| {
        let mode = if k == 0 { base_mode } else { IngestMode::Lenient };
        let ev = Arc::clone(&ev);
        let mon = Arc::clone(&mon);
        Box::new(move || ingest_unit(&ev, &mon, mode, bound))
    });
    let mut incidents = Vec::new();
    let mut status = UnitStatus::Full;
    match run.result {
        Ok(out) => {
            if let Some(e) = run.first_error {
                status = UnitStatus::Degraded;
                let degradation = if base_mode == IngestMode::Strict {
                    "lenient ingestion".to_string()
                } else {
                    "retried".to_string()
                };
                incidents.push(Incident {
                    stage: "ingest",
                    unit: unit_label(key),
                    kind: IncidentKind::of(&e),
                    detail: e.detail().to_string(),
                    attempts: run.attempts,
                    outcome: IncidentOutcome::Recovered { degradation },
                });
            }
            if out.report.monitoring_quarantined > 0 {
                status = status.max(UnitStatus::Degraded);
                incidents.push(Incident {
                    stage: "ingest",
                    unit: unit_label(key),
                    kind: IncidentKind::Quarantine,
                    detail: format!(
                        "{} implausible monitoring windows quarantined",
                        out.report.monitoring_quarantined
                    ),
                    attempts: run.attempts,
                    outcome: IncidentOutcome::Recovered {
                        degradation: "quarantined windows excluded".to_string(),
                    },
                });
            }
            // A machine with monitoring but no log events lost its
            // log stream: characterized from monitoring only.
            if key.is_some() && ev.is_empty() && !out.series.is_empty() {
                status = status.max(UnitStatus::Degraded);
                incidents.push(Incident {
                    stage: "ingest",
                    unit: unit_label(key),
                    kind: IncidentKind::MissingData,
                    detail: "no log events from this machine".to_string(),
                    attempts: run.attempts,
                    outcome: IncidentOutcome::Recovered {
                        degradation: "monitoring-only coverage".to_string(),
                    },
                });
            }
            IngestUnitDone {
                key,
                status,
                incidents,
                events: out.events,
                series: out.series,
                report: out.report,
            }
        }
        Err(e) => {
            incidents.push(Incident {
                stage: "ingest",
                unit: unit_label(key),
                kind: IncidentKind::of(&e),
                detail: e.detail().to_string(),
                attempts: run.attempts,
                outcome: IncidentOutcome::Dropped,
            });
            IngestUnitDone {
                key,
                status: UnitStatus::Dropped,
                incidents,
                events: Vec::new(),
                series: Vec::new(),
                report: IngestReport::default(),
            }
        }
    }
}

/// Result of one per-machine attribution unit: the profile (`None` when
/// the unit was dropped), unit-local incidents, and whether a recovered
/// retry degraded the machine. Merged by the supervisor in unit-key order.
struct AttributeUnitDone {
    key: Option<u16>,
    profile: Option<PerformanceProfile>,
    degraded: bool,
    incidents: Vec<Incident>,
}

/// One machine's supervised attribution: rebuild its resource trace and
/// run `build_profile` over the shared grid, under the retry ladder.
fn attribute_machine_unit(
    sup: &SuperviseConfig,
    model: &Arc<ExecutionModel>,
    rules: &Arc<RuleSet>,
    trace: &Arc<ExecutionTrace>,
    pcfg: &ProfileConfig,
    key: Option<u16>,
    series: Vec<RawSeries>,
) -> AttributeUnitDone {
    let label = format!("attribute/{}", unit_label(key));
    let series = Arc::new(series);
    let run = run_unit(sup, &label, |_k| {
        let model = Arc::clone(model);
        let rules = Arc::clone(rules);
        let trace = Arc::clone(trace);
        let series = Arc::clone(&series);
        let pcfg = pcfg.clone();
        Box::new(move || {
            let mut rt = ResourceTrace::new();
            for s in series.iter() {
                let idx = rt.try_add_resource(s.instance.clone())?;
                for &m in &s.measurements {
                    rt.try_add_measurement(idx, m)?;
                }
            }
            Ok(build_profile(&model, &rules, &trace, &rt, &pcfg))
        })
    });
    let mut incidents = Vec::new();
    match run.result {
        Ok(p) => {
            let mut degraded = false;
            if let Some(e) = run.first_error {
                degraded = true;
                incidents.push(Incident {
                    stage: "attribute",
                    unit: unit_label(key),
                    kind: IncidentKind::of(&e),
                    detail: e.detail().to_string(),
                    attempts: run.attempts,
                    outcome: IncidentOutcome::Recovered {
                        degradation: "retried".to_string(),
                    },
                });
            }
            AttributeUnitDone {
                key,
                profile: Some(p),
                degraded,
                incidents,
            }
        }
        Err(e) => {
            incidents.push(Incident {
                stage: "attribute",
                unit: unit_label(key),
                kind: IncidentKind::of(&e),
                detail: e.detail().to_string(),
                attempts: run.attempts,
                outcome: IncidentOutcome::Dropped,
            });
            AttributeUnitDone {
                key,
                profile: None,
                degraded: false,
                incidents,
            }
        }
    }
}

/// Runs the full Grade10 pipeline from raw collected data under
/// supervision: per-machine ingestion and attribution units, panic
/// capture, deadlines, grid budget guard, and a bounded degradation
/// ladder. Returns a [`PartialCharacterization`] whenever *any* analysis
/// was possible; an `Err` means the run was unsalvageable — a fatal
/// modeling problem ([`Grade10Error::is_recoverable`] `== false`) or a
/// failure of the one stage nothing can route around (assembling the
/// merged execution trace).
///
/// See the module docs for the degradation ladder and determinism notes.
pub fn characterize_events_supervised(
    model: &ExecutionModel,
    rules: &RuleSet,
    events: &[RawEvent],
    monitoring: &[RawSeries],
    cfg: &CharacterizationConfig,
) -> Result<PartialCharacterization, Grade10Error> {
    let sup = &cfg.supervise;
    let base_mode = cfg.ingest.mode;
    // The stage cache only participates in deterministic runs: deadlines
    // and chaos points make unit outputs depend on wall-clock and injected
    // faults, which a content hash of the inputs cannot capture. Model and
    // rule identity ride in every attribution key as hashes of their
    // canonical JSON; if either fails to serialize, caching is disabled
    // for this call rather than risking a false hit.
    let cache: Option<&Arc<crate::cache::StageCache>> = sup
        .cache
        .as_ref()
        .filter(|_| sup.deadline.is_none() && sup.chaos.is_empty());
    let model_rules_hash: Option<(u64, u64)> = cache.and_then(|_| {
        Some((
            crate::hash::fnv1a(serde_json::to_string(model).ok()?.as_bytes()),
            crate::hash::fnv1a(serde_json::to_string(rules).ok()?.as_bytes()),
        ))
    });
    let cache = cache.filter(|_| model_rules_hash.is_some());
    let mut incidents: Vec<Incident> = Vec::new();
    let mut report = IngestReport {
        events_total: events.len(),
        monitoring_windows_total: monitoring.iter().map(|s| s.measurements.len()).sum(),
        ..IngestReport::default()
    };

    // -- Partition the input into per-machine units. Events always carry a
    // machine; monitoring series may be cluster-level (machine: None).
    let mut ev_by: BTreeMap<Option<u16>, Vec<RawEvent>> = BTreeMap::new();
    for e in events {
        ev_by.entry(Some(e.machine)).or_default().push(e.clone());
    }
    let mut mon_by: BTreeMap<Option<u16>, Vec<RawSeries>> = BTreeMap::new();
    for s in monitoring {
        mon_by
            .entry(s.instance.machine)
            .or_default()
            .push(s.clone());
    }
    let mut unit_keys: Vec<Option<u16>> = ev_by.keys().chain(mon_by.keys()).copied().collect();
    unit_keys.sort_unstable();
    unit_keys.dedup();

    // The monitoring plausibility bound is a cross-series statistic: it
    // must see every series, not one machine's, to catch a series whose
    // windows are all equally bombed. Computed once, passed to every unit.
    let bound = plausibility_bound(monitoring);

    // -- Per-machine ingest units. Ladder: configured mode, then lenient.
    // Units execute on the worker pool; everything order-sensitive — the
    // incident sequence, event interleaving, the status map — is merged
    // below in unit-key order, so output is identical at any pool width.
    let mut machine_status: BTreeMap<Option<u16>, UnitStatus> = BTreeMap::new();
    let mut merged_events: Vec<RawEvent> = Vec::new();
    let mut surviving: Vec<(Option<u16>, Vec<RawSeries>)> = Vec::new();
    {
        let _span = obs::span(obs::Stage::Ingest);
        let units: Vec<(Option<u16>, Vec<RawEvent>, Vec<RawSeries>)> = unit_keys
            .iter()
            .map(|&key| {
                (
                    key,
                    ev_by.remove(&key).unwrap_or_default(),
                    mon_by.remove(&key).unwrap_or_default(),
                )
            })
            .collect();
        let width = pool_width(sup, units.len());
        let outs = pool_map(width, units, |_idx, (key, ev, mon)| {
            let Some(c) = cache else {
                return ingest_machine_unit(sup, base_mode, bound, key, ev, mon);
            };
            let k = format!(
                "ingest r1;code={};unit={};mode={:?};bound={:?};retries={};ev={:016x};mon={:016x}",
                crate::campaign::CODE_VERSION,
                unit_label(key),
                base_mode,
                bound,
                sup.max_retries,
                crate::cache::hash_events(&ev),
                crate::cache::hash_series(&mon),
            );
            if let Some(rec) = c.lookup("ingest", &k, crate::cache::codec::decode_ingest_unit) {
                return IngestUnitDone {
                    key,
                    status: rec.status,
                    incidents: rec.incidents,
                    events: rec.events,
                    series: rec.series,
                    report: rec.report,
                };
            }
            let done = ingest_machine_unit(sup, base_mode, bound, key, ev, mon);
            c.store(
                "ingest",
                &k,
                crate::cache::codec::encode_ingest_unit(
                    done.status,
                    &done.incidents,
                    &done.events,
                    &done.series,
                    &done.report,
                ),
            );
            done
        });
        for done in outs {
            incidents.extend(done.incidents);
            absorb_report(&mut report, &done.report);
            merged_events.extend(done.events);
            if !done.series.is_empty() {
                surviving.push((done.key, done.series));
            }
            machine_status.insert(done.key, done.status);
        }
    }

    // -- Assemble the merged execution trace. This is the one stage the
    // pipeline cannot route around: no trace, no characterization. Ladder:
    // strict validation of the merged stream (when configured strict and
    // no unit degraded), then one global lenient repair — which also
    // synthesizes cross-machine ancestors exactly once.
    // Stable sort by time only: each per-machine substream is already in
    // valid arrival order (the parser is order-insensitive among ties with
    // distinct keys, but zero-duration block pairs and doubled barrier
    // pairs NEED their original start-before-end order, which any kind-
    // based tie-break would destroy). Stability keeps every machine's
    // internal order intact while interleaving machines by time.
    merged_events.sort_by_key(|e| e.time);
    let merged = Arc::new(merged_events);
    // Attribution keys hash the *merged* repaired stream, not just the
    // unit's own substream: every unit builds its profile against the
    // shared execution trace, so another machine's events shifting a
    // cross-machine phase boundary must invalidate every unit.
    let merged_hash = cache.map(|_| crate::cache::hash_events(&merged));
    let model_arc = Arc::new(model.clone());
    let any_degraded = machine_status.values().any(|&s| s != UnitStatus::Full);
    let (trace, assemble_rep) = {
        let _span = obs::span(obs::Stage::Ingest);
        let run = run_unit(sup, "ingest/assemble", |k| {
            let strict = base_mode == IngestMode::Strict && !any_degraded && k == 0;
            let ev = Arc::clone(&merged);
            let model = Arc::clone(&model_arc);
            Box::new(move || {
                let mut rep = IngestReport::default();
                let repaired = if strict {
                    validate_event_stream(&ev)?;
                    (*ev).clone()
                } else {
                    repair_events_opts(&ev, true, &mut rep)
                };
                let trace = build_execution_trace(&model, &repaired)?;
                Ok((trace, rep))
            })
        });
        match run.result {
            Ok(out) => {
                if let Some(e) = run.first_error {
                    incidents.push(Incident {
                        stage: "ingest",
                        unit: "assemble".to_string(),
                        kind: IncidentKind::of(&e),
                        detail: e.detail().to_string(),
                        attempts: run.attempts,
                        outcome: IncidentOutcome::Recovered {
                            degradation: "lenient merge repair".to_string(),
                        },
                    });
                }
                out
            }
            Err(e) => return Err(e),
        }
    };
    absorb_report(&mut report, &assemble_rep);
    let ingest_status = if incidents.is_empty() {
        StageStatus::Full
    } else {
        StageStatus::Degraded
    };

    // -- Budget guard: cost the grid before any unit allocates it. One
    // global (end, slice) is chosen so per-machine profiles merge row for
    // row; coarsening therefore happens here, globally, not per unit.
    let num_resources: usize = surviving.iter().map(|(_, s)| s.len()).sum();
    let monitoring_end = surviving
        .iter()
        .flat_map(|(_, series)| series.iter())
        .flat_map(|s| s.measurements.iter())
        .map(|m| m.end)
        .max()
        .unwrap_or(0);
    let mut slice = cfg.profile.slice.max(1);
    let grid_end = trace.makespan_end().max(monitoring_end).max(slice);
    let cells = |slice: Nanos| (grid_end.div_ceil(slice) as u128) * num_resources as u128;
    let mut budget_ok = true;
    if cells(slice) > sup.max_grid_cells as u128 {
        let factor = Nanos::from(sup.coarsen_factor.max(2));
        let mut rungs = 0u32;
        let original = slice;
        while cells(slice) > sup.max_grid_cells as u128 && rungs < sup.max_retries.max(1) {
            slice = slice.saturating_mul(factor);
            rungs += 1;
        }
        if cells(slice) > sup.max_grid_cells as u128 {
            budget_ok = false;
            incidents.push(Incident {
                stage: "attribute",
                unit: "grid".to_string(),
                kind: IncidentKind::Budget,
                detail: format!(
                    "grid needs {} cells (cap {}) even at slice {} ns",
                    cells(slice),
                    sup.max_grid_cells,
                    slice
                ),
                attempts: rungs,
                outcome: IncidentOutcome::Dropped,
            });
        } else {
            incidents.push(Incident {
                stage: "attribute",
                unit: "grid".to_string(),
                kind: IncidentKind::Budget,
                detail: format!(
                    "grid at slice {} ns needs {} cells (cap {})",
                    original,
                    cells(original),
                    sup.max_grid_cells
                ),
                attempts: rungs,
                outcome: IncidentOutcome::Recovered {
                    degradation: format!("timeslice coarsened to {} ns", slice),
                },
            });
        }
    }

    // -- Per-machine attribution units over the shared grid, on the pool.
    let rules_arc = Arc::new(rules.clone());
    let trace_arc = Arc::new(trace);
    let pcfg = ProfileConfig {
        slice,
        grid_end: Some(grid_end),
        ..cfg.profile.clone()
    };
    let mut parts: Vec<PerformanceProfile> = Vec::new();
    let mut attribute_dropped = 0usize;
    if budget_ok {
        // Same pool discipline as ingestion: workers build per-machine
        // profiles concurrently, the merge below runs in unit-key order.
        let width = pool_width(sup, surviving.len());
        let attr_prefix: Option<String> = cache.map(|_| {
            let (mh, rh) = model_rules_hash.unwrap_or_default();
            format!(
                "attribute r1;code={};model={:016x};rules={:016x};trace={:016x};mode={:?};degr={};slice={};end={};upsample={:?};est={};retries={}",
                crate::campaign::CODE_VERSION,
                mh,
                rh,
                merged_hash.unwrap_or_default(),
                base_mode,
                any_degraded,
                pcfg.slice,
                grid_end,
                pcfg.upsample,
                pcfg.estimate_missing,
                sup.max_retries,
            )
        });
        let outs = pool_map(width, surviving, |_idx, (key, series)| {
            let (Some(c), Some(prefix)) = (cache, attr_prefix.as_ref()) else {
                return attribute_machine_unit(
                    sup, &model_arc, &rules_arc, &trace_arc, &pcfg, key, series,
                );
            };
            let k = format!(
                "{prefix};unit={};series={:016x}",
                unit_label(key),
                crate::cache::hash_series(&series),
            );
            if let Some(rec) = c.lookup("attribute", &k, crate::cache::codec::decode_attribute_unit)
            {
                return AttributeUnitDone {
                    key,
                    profile: rec.profile,
                    degraded: rec.degraded,
                    incidents: rec.incidents,
                };
            }
            let done =
                attribute_machine_unit(sup, &model_arc, &rules_arc, &trace_arc, &pcfg, key, series);
            c.store(
                "attribute",
                &k,
                crate::cache::codec::encode_attribute_unit(
                    done.profile.as_ref(),
                    done.degraded,
                    &done.incidents,
                ),
            );
            done
        });
        for done in outs {
            incidents.extend(done.incidents);
            match done.profile {
                Some(p) => {
                    if done.degraded {
                        let status = machine_status.entry(done.key).or_insert(UnitStatus::Full);
                        *status = (*status).max(UnitStatus::Degraded);
                    }
                    parts.push(p);
                }
                None => {
                    attribute_dropped += 1;
                    machine_status.insert(done.key, UnitStatus::Dropped);
                }
            }
        }
    }
    let had_parts = !parts.is_empty();
    let profile = match PerformanceProfile::merge(parts) {
        Some(p) => p,
        None => {
            // Nothing survived attribution (or the budget rejected the
            // grid outright): build a resource-less profile over the trace
            // so downstream stages still see the right grid extent.
            let model = Arc::clone(&model_arc);
            let rules = Arc::clone(&rules_arc);
            let trace = Arc::clone(&trace_arc);
            let pcfg = pcfg.clone();
            let run = run_unit(sup, "attribute/fallback", move |_k| {
                let model = Arc::clone(&model);
                let rules = Arc::clone(&rules);
                let trace = Arc::clone(&trace);
                let pcfg = pcfg.clone();
                Box::new(move || {
                    Ok(build_profile(
                        &model,
                        &rules,
                        &trace,
                        &ResourceTrace::new(),
                        &pcfg,
                    ))
                })
            });
            run.result
                .unwrap_or_else(|_| PerformanceProfile::empty(slice))
        }
    };
    let attribute_status = if !budget_ok || !had_parts {
        StageStatus::Skipped
    } else if attribute_dropped > 0
        || incidents
            .iter()
            .any(|i| i.stage == "attribute")
    {
        StageStatus::Degraded
    } else {
        StageStatus::Full
    };
    report.slices_estimated = profile.estimated_slices();
    report.slices_total = profile.total_slices();

    // -- Bottleneck, replay, and issue detection, each with a degraded
    // fallback: empty bottleneck report, measured makespan, no issues.
    let _bspan = obs::span(obs::Stage::Bottleneck);
    let profile_arc = Arc::new(profile);
    let bcfg = cfg.bottleneck.clone();
    let run = run_unit(sup, "bottleneck", |_k| {
        let trace = Arc::clone(&trace_arc);
        let profile = Arc::clone(&profile_arc);
        let bcfg = bcfg.clone();
        Box::new(move || Ok(BottleneckReport::build(&trace, &profile, &bcfg)))
    });
    let (bottlenecks, bottleneck_status) = finish_stage(
        run,
        "bottleneck",
        "bottleneck",
        BottleneckReport::default(),
        "empty bottleneck report",
        &mut incidents,
    );
    let bottlenecks_arc = Arc::new(bottlenecks);

    let rcfg = cfg.replay.clone();
    let run = run_unit(sup, "replay", |_k| {
        let model = Arc::clone(&model_arc);
        let trace = Arc::clone(&trace_arc);
        let rcfg = rcfg.clone();
        Box::new(move || Ok(replay_original(&model, &trace, &rcfg).makespan))
    });
    let (base_makespan, replay_status) = finish_stage(
        run,
        "replay",
        "replay",
        trace_arc.makespan_end(),
        "replay skipped; measured makespan reported",
        &mut incidents,
    );

    let icfg = cfg.issues.clone();
    let rcfg = cfg.replay.clone();
    let run = run_unit(sup, "issues", |_k| {
        let model = Arc::clone(&model_arc);
        let trace = Arc::clone(&trace_arc);
        let profile = Arc::clone(&profile_arc);
        let bottlenecks = Arc::clone(&bottlenecks_arc);
        let rcfg = rcfg.clone();
        let icfg = icfg.clone();
        Box::new(move || {
            let mut issues =
                detect_bottleneck_issues(&model, &trace, &profile, &bottlenecks, &rcfg, &icfg);
            issues.extend(detect_imbalance_issues(&model, &trace, &rcfg, &icfg));
            issues.sort_by(|a, b| b.reduction.total_cmp(&a.reduction));
            Ok(issues)
        })
    });
    let (issues, issues_status) = finish_stage::<Vec<PerformanceIssue>>(
        run,
        "issues",
        "issues",
        Vec::new(),
        "issue detection skipped",
        &mut incidents,
    );
    drop(_bspan);

    // -- Coverage assembly. Abandoned deadline workers may still hold Arc
    // clones, so fall back to cloning the payloads out.
    let profile = Arc::try_unwrap(profile_arc).unwrap_or_else(|a| (*a).clone());
    let bottlenecks = Arc::try_unwrap(bottlenecks_arc).unwrap_or_else(|a| (*a).clone());
    let trace = Arc::try_unwrap(trace_arc).unwrap_or_else(|a| (*a).clone());
    let coverage = Coverage {
        machines: machine_status
            .into_iter()
            .map(|(machine, status)| MachineCoverage { machine, status })
            .collect(),
        stages: vec![
            StageCoverage {
                stage: "ingest",
                status: ingest_status,
            },
            StageCoverage {
                stage: "attribute",
                status: attribute_status,
            },
            StageCoverage {
                stage: "bottleneck",
                status: bottleneck_status,
            },
            StageCoverage {
                stage: "replay",
                status: replay_status,
            },
            StageCoverage {
                stage: "issues",
                status: issues_status,
            },
        ],
    };
    Ok(PartialCharacterization {
        characterization: Characterization {
            profile,
            bottlenecks,
            base_makespan,
            issues,
            ingest: report,
        },
        trace,
        incidents,
        coverage,
    })
}

/// Converts a whole-stage unit run into (value, stage status), pushing an
/// incident and substituting `fallback` when the unit failed.
fn finish_stage<T>(
    run: UnitRun<T>,
    stage: &'static str,
    unit: &str,
    fallback: T,
    fallback_desc: &str,
    incidents: &mut Vec<Incident>,
) -> (T, StageStatus) {
    match run.result {
        Ok(v) => {
            if let Some(e) = run.first_error {
                incidents.push(Incident {
                    stage,
                    unit: unit.to_string(),
                    kind: IncidentKind::of(&e),
                    detail: e.detail().to_string(),
                    attempts: run.attempts,
                    outcome: IncidentOutcome::Recovered {
                        degradation: "retried".to_string(),
                    },
                });
                (v, StageStatus::Degraded)
            } else {
                (v, StageStatus::Full)
            }
        }
        Err(e) => {
            incidents.push(Incident {
                stage,
                unit: unit.to_string(),
                kind: IncidentKind::of(&e),
                detail: e.detail().to_string(),
                attempts: run.attempts,
                outcome: IncidentOutcome::Recovered {
                    degradation: fallback_desc.to_string(),
                },
            });
            (fallback, StageStatus::Skipped)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttributionRule, ExecutionModelBuilder, Repeat};
    use crate::parse::{RawEventKind, RawPath};
    use crate::trace::repair::IngestConfig;
    use crate::trace::resource::{Measurement, ResourceInstance};
    use crate::trace::MILLIS;

    fn path(segs: &[(&str, u32)]) -> RawPath {
        segs.iter().map(|(n, k)| (n.to_string(), *k)).collect()
    }

    fn ev(time: Nanos, machine: u16, kind: RawEventKind) -> RawEvent {
        RawEvent {
            time,
            machine,
            thread: 0,
            kind,
        }
    }

    /// Two machines: machine 0 logs the shared root `job` and its own
    /// `work` task; machine 1 logs only its `work` task. Each machine has
    /// one cpu series.
    fn scenario() -> (ExecutionModel, RuleSet, Vec<RawEvent>, Vec<RawSeries>) {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let work = b.child(r, "work", Repeat::Parallel);
        let model = b.build();
        let rules = RuleSet::new().rule(work, "cpu", AttributionRule::Variable(1.0));

        let events = vec![
            ev(0, 0, RawEventKind::PhaseStart { path: path(&[("job", 0)]) }),
            ev(
                0,
                0,
                RawEventKind::PhaseStart {
                    path: path(&[("job", 0), ("work", 0)]),
                },
            ),
            ev(
                0,
                1,
                RawEventKind::PhaseStart {
                    path: path(&[("job", 0), ("work", 1)]),
                },
            ),
            ev(
                80 * MILLIS,
                1,
                RawEventKind::PhaseEnd {
                    path: path(&[("job", 0), ("work", 1)]),
                },
            ),
            ev(
                100 * MILLIS,
                0,
                RawEventKind::PhaseEnd {
                    path: path(&[("job", 0), ("work", 0)]),
                },
            ),
            ev(
                100 * MILLIS,
                0,
                RawEventKind::PhaseEnd { path: path(&[("job", 0)]) },
            ),
        ];
        let series = (0..2u16)
            .map(|m| RawSeries {
                instance: ResourceInstance {
                    kind: "cpu".into(),
                    machine: Some(m),
                    capacity: 4.0,
                },
                measurements: (0..10)
                    .map(|i| Measurement {
                        start: i * 10 * MILLIS,
                        end: (i + 1) * 10 * MILLIS,
                        avg: 1.0,
                    })
                    .collect(),
            })
            .collect();
        (model, rules, events, series)
    }

    fn config() -> CharacterizationConfig {
        CharacterizationConfig::default()
    }

    #[test]
    fn clean_run_is_complete_and_matches_unsupervised() {
        let (model, rules, events, series) = scenario();
        let cfg = config();
        let p = characterize_events_supervised(&model, &rules, &events, &series, &cfg)
            .expect("clean run");
        assert!(p.is_complete(), "incidents: {:?}", p.incidents);
        assert!(p.characterization.ingest.is_clean());
        assert_eq!(p.coverage.machines_covered(), 2);
        assert!(p
            .coverage
            .machines
            .iter()
            .all(|m| m.status == UnitStatus::Full));
        assert!(p
            .coverage
            .stages
            .iter()
            .all(|s| s.status == StageStatus::Full));
        let plain = crate::pipeline::characterize_events(&model, &rules, &events, &series, &cfg)
            .expect("unsupervised");
        assert_eq!(p.characterization.base_makespan, plain.base_makespan);
        assert_eq!(
            p.characterization.profile.resources.len(),
            plain.profile.resources.len()
        );
        assert_eq!(p.coverage.summary(), "2/2 machines, 5/5 stages");
    }

    #[test]
    fn chaos_panic_in_one_unit_spares_the_others() {
        let (model, rules, events, series) = scenario();
        let mut cfg = config();
        cfg.supervise.chaos.push(ChaosPoint {
            unit: "attribute/machine 1".to_string(),
            mode: ChaosMode::Panic,
        });
        cfg.supervise.max_retries = 1;
        let p = characterize_events_supervised(&model, &rules, &events, &series, &cfg)
            .expect("supervised run");
        assert!(!p.is_complete());
        let inc = p
            .incidents
            .iter()
            .find(|i| i.unit == "machine 1" && i.stage == "attribute")
            .expect("panic incident");
        assert_eq!(inc.kind, IncidentKind::Panic);
        assert_eq!(inc.outcome, IncidentOutcome::Dropped);
        assert_eq!(inc.attempts, 2);
        // Machine 0's resources survived; machine 1's are gone.
        let machines: Vec<Option<u16>> = p
            .characterization
            .profile
            .resources
            .iter()
            .map(|r| r.machine)
            .collect();
        assert_eq!(machines, vec![Some(0)]);
        let m1 = p
            .coverage
            .machines
            .iter()
            .find(|m| m.machine == Some(1))
            .expect("machine 1 coverage");
        assert_eq!(m1.status, UnitStatus::Dropped);
        assert_eq!(p.coverage.machines_covered(), 1);
        // Downstream stages still ran on the partial profile.
        assert!(p.characterization.base_makespan > 0);
    }

    #[test]
    fn chaos_panic_in_ingest_drops_only_that_machine() {
        let (model, rules, events, series) = scenario();
        let mut cfg = config();
        cfg.supervise.chaos.push(ChaosPoint {
            unit: "ingest/machine 1".to_string(),
            mode: ChaosMode::Panic,
        });
        cfg.supervise.max_retries = 0;
        let p = characterize_events_supervised(&model, &rules, &events, &series, &cfg)
            .expect("supervised run");
        let inc = p
            .incidents
            .iter()
            .find(|i| i.stage == "ingest" && i.unit == "machine 1")
            .expect("ingest incident");
        assert_eq!(inc.outcome, IncidentOutcome::Dropped);
        // Machine 0's work phase is still in the trace and profile.
        assert_eq!(
            p.characterization
                .profile
                .resources
                .iter()
                .filter(|r| r.machine == Some(0))
                .count(),
            1
        );
        assert!(p.characterization.base_makespan >= 100 * MILLIS);
    }

    #[test]
    fn deadline_overrun_is_abandoned_and_reported() {
        let (model, rules, events, series) = scenario();
        let mut cfg = config();
        cfg.supervise.deadline = Some(Duration::from_millis(25));
        cfg.supervise.max_retries = 0;
        cfg.supervise.chaos.push(ChaosPoint {
            unit: "bottleneck".to_string(),
            mode: ChaosMode::Stall(Duration::from_millis(400)),
        });
        let p = characterize_events_supervised(&model, &rules, &events, &series, &cfg)
            .expect("supervised run");
        let inc = p
            .incidents
            .iter()
            .find(|i| i.stage == "bottleneck")
            .expect("deadline incident");
        assert_eq!(inc.kind, IncidentKind::Deadline);
        // The stage fell back to an empty report; everything else ran.
        assert!(p.characterization.bottlenecks.blocking.is_empty());
        let st = p
            .coverage
            .stages
            .iter()
            .find(|s| s.stage == "bottleneck")
            .expect("stage coverage");
        assert_eq!(st.status, StageStatus::Skipped);
        assert_eq!(p.coverage.machines_covered(), 2);
    }

    #[test]
    fn budget_guard_coarsens_before_allocating() {
        let (model, rules, events, series) = scenario();
        let mut cfg = config();
        // 100 ms span / 10 ms slice × 2 resources = 20 cells; cap at 5.
        cfg.supervise.max_grid_cells = 5;
        let p = characterize_events_supervised(&model, &rules, &events, &series, &cfg)
            .expect("supervised run");
        let inc = p
            .incidents
            .iter()
            .find(|i| i.kind == IncidentKind::Budget)
            .expect("budget incident");
        assert!(matches!(inc.outcome, IncidentOutcome::Recovered { .. }));
        // One ×10 rung: slice 10 ms → 100 ms → 1 slice × 2 resources.
        assert_eq!(
            p.characterization.profile.grid.slice_nanos(),
            100 * MILLIS
        );
        assert!(p.characterization.profile.total_slices() <= 5);
    }

    #[test]
    fn strict_input_damage_recovers_via_lenient_rung() {
        let (model, rules, mut events, series) = scenario();
        // Clock damage on machine 1: its records arrive out of time order
        // (the start is stamped after the end).
        events[2].time = 80 * MILLIS;
        events[3].time = 0;
        let cfg = CharacterizationConfig {
            ingest: IngestConfig::default(), // strict
            ..config()
        };
        // Unsupervised strict rejects outright…
        assert!(crate::pipeline::characterize_events(
            &model, &rules, &events, &series, &cfg
        )
        .is_err());
        // …supervised degrades machine 1 to lenient and completes.
        let p = characterize_events_supervised(&model, &rules, &events, &series, &cfg)
            .expect("supervised run");
        let inc = p
            .incidents
            .iter()
            .find(|i| i.stage == "ingest" && i.unit == "machine 1")
            .expect("recovered incident");
        assert!(matches!(
            &inc.outcome,
            IncidentOutcome::Recovered { degradation } if degradation == "lenient ingestion"
        ));
        assert_eq!(p.coverage.machines_covered(), 2);
        assert!(!p.characterization.ingest.is_clean());
    }

    #[test]
    fn machine_with_monitoring_but_no_events_is_missing_data() {
        let (model, rules, events, series) = scenario();
        // Drop machine 1's log stream entirely, keep its monitoring.
        let events: Vec<RawEvent> = events.into_iter().filter(|e| e.machine == 0).collect();
        let p = characterize_events_supervised(&model, &rules, &events, &series, &config())
            .expect("supervised run");
        let inc = p
            .incidents
            .iter()
            .find(|i| i.kind == IncidentKind::MissingData)
            .expect("missing-data incident");
        assert_eq!(inc.unit, "machine 1");
        // The machine still contributes monitoring to the profile.
        assert_eq!(p.characterization.profile.resources.len(), 2);
        let m1 = p
            .coverage
            .machines
            .iter()
            .find(|m| m.machine == Some(1))
            .expect("machine 1");
        assert_eq!(m1.status, UnitStatus::Degraded);
    }
}
