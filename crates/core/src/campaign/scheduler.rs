//! The campaign scheduler: fans the mix matrix over a worker fleet under
//! the durability envelope.
//!
//! Each mix runs at most once per launch, behind three layers of armor:
//! the result store memoizes finished mixes across launches, the journal
//! write-ahead-logs every state change so a SIGKILL'd campaign resumes
//! instead of restarting, and a retry ladder (bounded exponential backoff
//! with deterministic jitter, escalating strict → lenient → partial)
//! absorbs transient failures before a mix is given up on. A mix that
//! exhausts its ladder becomes a campaign-level [`Incident`] and the
//! campaign carries on — one pathological configuration must never cost
//! the other results of an overnight screening run.
//!
//! Since journal format v2 the fleet can span *processes*: every worker —
//! the in-process pool threads of one `grade10 campaign`, and any peer
//! process joined with `--join` over a shared filesystem — coordinates
//! purely through the journal. A worker leases a mix by appending a
//! `claimed` record, heartbeats with `renewed`, and releases it with a
//! terminal marker; claim races resolve by file order (first claim over
//! an unexpired lease wins), a dead worker's lease expires and any peer
//! reclaims the mix, and a mix that keeps killing its claimants is
//! quarantined as poisoned instead of crash-looping the fleet. The final
//! report is assembled from journal + store alone, in matrix order, so it
//! is byte-identical regardless of worker count, kill schedule, or resume
//! order.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use serde::{Serialize as _, Value};

use crate::error::Grade10Error;
use crate::supervise::{
    panic_message, pool_map, Incident, IncidentKind, IncidentOutcome, RetryPolicy,
};

use super::journal::{FailedMix, Journal, JournalReplay};
use super::spec::{CampaignSpec, MixSpec};
use super::store::{atomic_write, MixOutcome, Store};

/// Which rung of the degradation ladder a mix attempt runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MixMode {
    /// Strict ingestion: corrupt telemetry is rejected.
    Strict,
    /// Lenient ingestion: telemetry is repaired first.
    Lenient,
    /// Fully supervised run producing a partial characterization if
    /// stages or machines drop.
    Partial,
}

impl MixMode {
    /// Short lowercase name, stored in outcomes and printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            MixMode::Strict => "strict",
            MixMode::Lenient => "lenient",
            MixMode::Partial => "partial",
        }
    }

    /// Inverse of [`name`](Self::name), for reloading the mode from the
    /// campaign manifest a joining worker reads.
    pub fn from_name(name: &str) -> Option<MixMode> {
        match name {
            "strict" => Some(MixMode::Strict),
            "lenient" => Some(MixMode::Lenient),
            "partial" => Some(MixMode::Partial),
            _ => None,
        }
    }
}

/// The ladder: attempt 0 runs at the campaign's base mode, the first
/// retry of a strict mix relaxes to lenient, and everything after runs
/// supervised, where a partial characterization still counts as a result.
pub fn ladder_mode(base: MixMode, attempt: u32) -> MixMode {
    match (base, attempt) {
        (_, 0) => base,
        (MixMode::Strict, 1) => MixMode::Lenient,
        _ => MixMode::Partial,
    }
}

/// One attempt handed to the mix runner.
#[derive(Clone, Copy, Debug)]
pub struct MixAttempt {
    /// 0-based attempt index within this mix's ladder.
    pub index: u32,
    /// The ladder rung to run at.
    pub mode: MixMode,
}

/// How a campaign executes: where its durable state lives and how hard
/// it fights for each mix.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Campaign directory holding `journal.jsonl`, `campaign.json`,
    /// `store/`, and the final reports.
    pub dir: PathBuf,
    /// Resume a previous launch: replay the journal, serve finished
    /// mixes from the store, re-run the rest. Without this, an existing
    /// journal in `dir` is an error.
    pub resume: bool,
    /// Join a campaign another process leads: open its journal without
    /// truncating anything and start claiming mixes. Mutually exclusive
    /// with `resume` (a joiner is never the epoch leader).
    pub join: bool,
    /// Worker-pool width: in-process claimant threads (clamped to at
    /// least 1). Reports are byte-identical at any width.
    pub width: usize,
    /// Worker-id prefix this process claims mixes under; thread `i`
    /// claims as `"{worker}.{i}"`. Defaults to `"w{pid}"`, unique per
    /// process on one machine; give shared-filesystem fleets distinct
    /// names via `--worker`.
    pub worker: String,
    /// Lease duration: a claim not renewed within this window is
    /// presumed dead and reclaimable. Coarse (default 30s) on purpose —
    /// it only has to beat clock skew between fleet machines, not react
    /// quickly.
    pub lease_ms: u64,
    /// Consecutive claimants a mix may kill (claims abandoned without a
    /// terminal record) before it is quarantined as poisoned.
    pub poison_threshold: u32,
    /// How long an idle worker sleeps between journal polls while every
    /// remaining mix is leased to someone else.
    pub poll_ms: u64,
    /// Per-mix retry/backoff policy (normally copied from
    /// [`SuperviseConfig::retry`](crate::supervise::SuperviseConfig)).
    pub retry: RetryPolicy,
    /// Ladder rung attempt 0 runs at.
    pub base_mode: MixMode,
    /// Test-only crash simulation: stop claiming new mixes after this
    /// many claims, leaving the campaign interrupted exactly as a kill
    /// signal would (minus the torn bytes). `None` in production.
    pub stop_after: Option<usize>,
}

impl CampaignOptions {
    /// Options with production defaults, rooted at `dir`.
    pub fn new(dir: PathBuf) -> CampaignOptions {
        CampaignOptions {
            dir,
            resume: false,
            join: false,
            width: 1,
            worker: format!("w{}", std::process::id()),
            lease_ms: 30_000,
            poison_threshold: 3,
            poll_ms: 200,
            retry: RetryPolicy::default(),
            base_mode: MixMode::Strict,
            stop_after: None,
        }
    }
}

/// What one campaign launch produced.
#[derive(Debug)]
pub struct CampaignRun {
    /// Surviving outcomes, in mix-matrix order (the report ranks its own
    /// copy).
    pub outcomes: Vec<MixOutcome>,
    /// Campaign-level incidents: one per mix that exhausted its ladder or
    /// was quarantined as poisoned. Reconstructed from the journal, so
    /// every worker reports the same incidents whoever suffered them.
    pub incidents: Vec<Incident>,
    /// Mixes this process actually executed this launch.
    pub executed: usize,
    /// Mixes served from the store without running.
    pub cached: usize,
    /// Mixes that ended in an incident (failed or poisoned).
    pub failed: usize,
    /// Journal records quarantined while reloading.
    pub quarantined_journal: usize,
    /// True when a `stop_after` budget interrupted the launch before the
    /// matrix completed; no report was written.
    pub interrupted: bool,
    /// Rendered text report (empty when interrupted).
    pub report_text: String,
    /// Rendered JSON report (empty when interrupted).
    pub report_json: String,
}

impl CampaignRun {
    /// True when every mix characterized completely with no campaign
    /// incidents — the exit-code-0 condition. Mixes that needed retries
    /// but finished clean still count as clean; degraded (partial) or
    /// incident-bearing outcomes do not.
    pub fn is_clean(&self) -> bool {
        !self.interrupted
            && self.incidents.is_empty()
            && self.outcomes.iter().all(|o| !o.degraded && o.incidents == 0)
    }
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Journal handle plus the incremental view of it, advanced together
/// under one lock.
struct JState {
    journal: Journal,
    replay: JournalReplay,
    /// First local sighting of each mix's current lease, keyed by content
    /// hash — the monotonic anchor for expiry arbitration (see
    /// [`claim_next`]). A renewal (worker or deadline change) replaces the
    /// entry, restarting the locally-measured countdown.
    observed: BTreeMap<u64, ObservedLease>,
}

/// One lease state as first seen by *this* process, with its expiry
/// re-anchored to the local monotonic clock. Lease deadlines in the
/// journal are absolute wall-clock milliseconds stamped by the claimant;
/// comparing them directly against our own `SystemTime::now()` lets a
/// worker whose clock runs ahead (or a claimant whose clock runs behind)
/// declare a live peer dead and double-run its mix. So wall expiry alone
/// never revokes a lease: we also require the lease to have stayed
/// unrenewed for its full locally-measured remaining lifetime plus a skew
/// tolerance of at least a third of the lease (one heartbeat interval).
struct ObservedLease {
    worker: String,
    deadline_ms: u64,
    expires_at: Instant,
}

/// Everything the claimant threads share.
struct Shared<'a> {
    opts: &'a CampaignOptions,
    items: &'a [(MixSpec, u64)],
    store: &'a Store,
    journal_path: &'a Path,
    state: Mutex<JState>,
    interrupted: AtomicBool,
    claims_made: AtomicUsize,
    executed: AtomicUsize,
    /// Outcomes this process produced, the fallback if a store read fails
    /// during final assembly.
    local: Mutex<BTreeMap<u64, MixOutcome>>,
}

fn lock<'m, T>(m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs (or resumes, or joins) a campaign: expands the spec, drains the
/// matrix through the lease protocol, and writes `report.txt` /
/// `report.json` into the campaign directory. The `runner` characterizes
/// one mix at one ladder rung; it fills the measurement fields of
/// [`MixOutcome`] (`makespan_ns`, `classes`, `incidents`, `degraded`) and
/// the scheduler normalizes the identity fields (`mix`, `hash`,
/// `attempts`, `mode`). Runner panics are captured and enter the retry
/// ladder like classified errors.
pub fn run_campaign<F>(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
    runner: F,
) -> Result<CampaignRun, Grade10Error>
where
    F: Fn(&MixSpec, MixAttempt) -> Result<MixOutcome, Grade10Error> + Sync,
{
    let mixes = spec.expand();
    if mixes.is_empty() {
        return Err(Grade10Error::Serialization(
            "campaign spec expands to zero mixes".to_string(),
        ));
    }
    std::fs::create_dir_all(&opts.dir)
        .map_err(|e| Grade10Error::Io(format!("creating {}: {e}", opts.dir.display())))?;
    let store = Store::open(&opts.dir.join("store"))?;
    let journal_path = opts.dir.join("journal.jsonl");
    let items: Vec<(MixSpec, u64)> = mixes
        .into_iter()
        .map(|m| {
            let h = m.content_hash(&spec.code_version);
            (m, h)
        })
        .collect();

    let (journal, replay, cached) = if opts.join {
        // The leader creates the journal; wait briefly for it to appear.
        let mut waited = 0u64;
        while !journal_path.exists() {
            if waited >= 10_000 {
                return Err(Grade10Error::Io(format!(
                    "{}: no campaign journal appeared within 10s; is a leader running?",
                    opts.dir.display()
                )));
            }
            let step = opts.poll_ms.clamp(10, 500);
            std::thread::sleep(Duration::from_millis(step));
            waited += step;
        }
        let (j, r) = Journal::open_join(&journal_path)?;
        let cached = items.iter().filter(|(_, h)| r.finished.contains(h)).count();
        (j, r, cached)
    } else if opts.resume {
        let (mut j, mut r) = Journal::open_resume(&journal_path, &spec.name)?;
        // Epoch boundary: the previous fleet is dead; its live claims
        // count as abandoned and its permanent failures reopen.
        j.record_launch(&opts.worker)?;
        // Reconcile journal against store: the store is the outcome
        // authority. A stored outcome whose finished record was lost is
        // re-marked (`skipped`); a finished record whose artifact is
        // unloadable is reopened so the mix recomputes.
        let mut cached = 0;
        for (mix, hash) in &items {
            if store.load(*hash, mix).is_some() {
                cached += 1;
                if !r.finished.contains(hash) {
                    j.record_skipped(&mix.id(), *hash)?;
                }
            } else if r.finished.contains(hash) {
                j.record_reopened(&mix.id(), *hash)?;
            }
        }
        Journal::refresh(&journal_path, &mut r)?;
        (j, r, cached)
    } else {
        if journal_path.exists() {
            return Err(Grade10Error::Io(format!(
                "{} already holds a campaign journal; pass --resume to continue it or use a fresh directory",
                opts.dir.display()
            )));
        }
        (Journal::create(&journal_path, &spec.name)?, JournalReplay::default(), 0)
    };

    if !opts.join {
        // Manifest for joiners and `--status`: enough to reconstruct the
        // matrix and the execution knobs without the original spec file.
        let manifest = Value::Object(vec![
            ("spec".to_string(), spec.to_value()),
            ("base_mode".to_string(), Value::Str(opts.base_mode.name().to_string())),
            ("lease_ms".to_string(), Value::UInt(opts.lease_ms)),
        ]);
        let path = opts.dir.join("campaign.json");
        atomic_write(&path, serde_json::to_string_pretty(&manifest)?.as_bytes())
            .map_err(|e| Grade10Error::Io(format!("writing {}: {e}", path.display())))?;
    }

    let shared = Shared {
        opts,
        items: &items,
        store: &store,
        journal_path: &journal_path,
        state: Mutex::new(JState {
            journal,
            replay,
            observed: BTreeMap::new(),
        }),
        interrupted: AtomicBool::new(false),
        claims_made: AtomicUsize::new(0),
        executed: AtomicUsize::new(0),
        local: Mutex::new(BTreeMap::new()),
    };
    let width = opts.width.max(1).min(items.len());
    let results = pool_map(width, (0..width).collect(), |_, slot| {
        worker_loop(&shared, slot, &runner)
    });
    for r in results {
        r?;
    }

    let Shared { state, local, interrupted, executed, .. } = shared;
    let mut st = state.into_inner().unwrap_or_else(PoisonError::into_inner);
    Journal::refresh(&journal_path, &mut st.replay)?;
    let local = local.into_inner().unwrap_or_else(PoisonError::into_inner);

    let mut run = CampaignRun {
        outcomes: Vec::new(),
        incidents: Vec::new(),
        executed: executed.load(Ordering::SeqCst),
        cached,
        failed: 0,
        quarantined_journal: st.replay.quarantined,
        interrupted: interrupted.load(Ordering::SeqCst),
        report_text: String::new(),
        report_json: String::new(),
    };
    if run.interrupted {
        // The launch died before covering the matrix: leave the journal
        // and store as the durable record, write no report.
        return Ok(run);
    }
    // Assemble in matrix order from journal + store alone, so every
    // worker that gets here renders the identical report.
    for (mix, hash) in &items {
        if let Some(&n) = st.replay.poisoned.get(hash) {
            run.incidents.push(poisoned_incident(mix, n));
        } else if let Some(f) = st.replay.failed.get(hash) {
            run.incidents.push(failed_incident(mix, f));
        } else if let Some(out) = store.load(*hash, mix).or_else(|| local.get(hash).cloned()) {
            run.outcomes.push(out);
        }
    }
    run.failed = run.incidents.len();
    let report = crate::report::campaign_report(&spec.name, &run.outcomes, &run.incidents);
    atomic_write(&opts.dir.join("report.txt"), report.text.as_bytes())
        .map_err(|e| Grade10Error::Io(format!("writing report.txt: {e}")))?;
    atomic_write(&opts.dir.join("report.json"), report.json.as_bytes())
        .map_err(|e| Grade10Error::Io(format!("writing report.json: {e}")))?;
    run.report_text = report.text;
    run.report_json = report.json;
    Ok(run)
}

fn failed_incident(mix: &MixSpec, f: &FailedMix) -> Incident {
    Incident {
        stage: "campaign",
        unit: mix.id(),
        kind: IncidentKind::from_name(&f.kind).unwrap_or(IncidentKind::Error),
        detail: f.error.clone(),
        attempts: f.attempts,
        outcome: IncidentOutcome::Dropped,
    }
}

fn poisoned_incident(mix: &MixSpec, claims: u32) -> Incident {
    Incident {
        stage: "campaign",
        unit: mix.id(),
        kind: IncidentKind::Poisoned,
        detail: format!(
            "poisoned mix: {claims} consecutive claimants died without recording an outcome"
        ),
        attempts: claims,
        outcome: IncidentOutcome::Dropped,
    }
}

/// What one pass over the matrix decided for a claimant thread.
enum Pick {
    /// Every mix is terminal; the campaign is drained.
    AllTerminal,
    /// Everything left is leased to live peers; sleep and re-poll.
    Wait,
    /// Journal state advanced (a skip, a quarantine, or a lost claim
    /// race); scan again immediately.
    Progress,
    /// Won the lease on `items[idx]`; run it.
    Run(usize),
}

/// One claimant thread: repeatedly pick the first available mix in matrix
/// order, lease it through the journal, and run it under the retry
/// ladder. Exits when the matrix is drained or the launch is interrupted.
fn worker_loop<F>(shared: &Shared<'_>, slot: usize, runner: &F) -> Result<(), Grade10Error>
where
    F: Fn(&MixSpec, MixAttempt) -> Result<MixOutcome, Grade10Error> + Sync,
{
    let me = format!("{}.{slot}", shared.opts.worker);
    loop {
        if shared.interrupted.load(Ordering::SeqCst) {
            return Ok(());
        }
        let pick = claim_next(shared, &me)?;
        match pick {
            Pick::AllTerminal => return Ok(()),
            Pick::Progress => {}
            Pick::Wait => {
                std::thread::sleep(Duration::from_millis(shared.opts.poll_ms.max(1)));
            }
            Pick::Run(idx) => run_claimed_mix(shared, &me, idx, runner)?,
        }
    }
}

/// One claim pass, entirely under the in-process journal lock (so two
/// local threads never race each other; cross-process races resolve by
/// journal file order).
fn claim_next(shared: &Shared<'_>, me: &str) -> Result<Pick, Grade10Error> {
    let mut st = lock(&shared.state);
    let JState {
        journal,
        replay,
        observed,
    } = &mut *st;
    Journal::refresh(shared.journal_path, replay)?;
    let now = now_ms();
    // Skew tolerance: how long past a lease's locally-measured lifetime we
    // keep honoring it. At least a third of the lease, so a live holder
    // (heartbeating at lease/3) always renews within the tolerance window
    // no matter how skewed the wall clocks are.
    let tol = Duration::from_millis(shared.opts.lease_ms.div_ceil(3).max(1));
    let mut all_terminal = true;
    let mut candidate: Option<(usize, u32)> = None;
    for (i, (_, hash)) in shared.items.iter().enumerate() {
        if replay.terminal(*hash) {
            observed.remove(hash);
            continue;
        }
        all_terminal = false;
        // A live, unexpired lease belongs to someone; an expired one
        // means its holder is presumed dead and counts toward poison. The
        // deadline in the journal is the *claimant's* wall clock, so wall
        // expiry alone is not trusted: the lease must also have sat
        // unrenewed for its remaining lifetime plus `tol`, measured on
        // our own monotonic clock from when we first saw this exact
        // (worker, deadline) state.
        let expired = match replay.claims.get(hash) {
            Some(c) => {
                let fresh = observed
                    .get(hash)
                    .is_none_or(|o| o.worker != c.worker || o.deadline_ms != c.deadline_ms);
                if fresh {
                    let remaining = Duration::from_millis(c.deadline_ms.saturating_sub(now));
                    observed.insert(
                        *hash,
                        ObservedLease {
                            worker: c.worker.clone(),
                            deadline_ms: c.deadline_ms,
                            expires_at: Instant::now() + remaining + tol,
                        },
                    );
                }
                let wall_expired = now > c.deadline_ms;
                let locally_expired = observed
                    .get(hash)
                    .is_some_and(|o| Instant::now() >= o.expires_at);
                if !(wall_expired && locally_expired) {
                    continue;
                }
                1
            }
            None => {
                observed.remove(hash);
                0
            }
        };
        let abandoned = replay.abandoned.get(hash).copied().unwrap_or(0);
        candidate = Some((i, abandoned + expired));
        break;
    }
    if all_terminal {
        return Ok(Pick::AllTerminal);
    }
    let Some((idx, deaths)) = candidate else {
        return Ok(Pick::Wait);
    };
    let (mix, hash) = &shared.items[idx];
    let id = mix.id();
    if shared.store.load(*hash, mix).is_some() {
        // The store already holds this outcome (its journal record was
        // damaged, or a peer's resume landed it); mark and move on.
        journal.record_skipped(&id, *hash)?;
        replay.finished.insert(*hash);
        replay.claims.remove(hash);
        return Ok(Pick::Progress);
    }
    if deaths >= shared.opts.poison_threshold {
        // The mix keeps killing whoever claims it; quarantine instead of
        // feeding it another worker.
        journal.record_quarantined(&id, *hash, deaths)?;
        Journal::refresh(shared.journal_path, replay)?;
        return Ok(Pick::Progress);
    }
    if let Some(limit) = shared.opts.stop_after {
        if shared.claims_made.fetch_add(1, Ordering::SeqCst) >= limit {
            shared.interrupted.store(true, Ordering::SeqCst);
            return Ok(Pick::Progress);
        }
    }
    journal.record_claimed(&id, *hash, me, now, now + shared.opts.lease_ms)?;
    Journal::refresh(shared.journal_path, replay)?;
    match replay.claims.get(hash) {
        Some(c) if c.worker == me => Ok(Pick::Run(idx)),
        // Lost the race to a peer process whose claim hit the file first.
        _ => Ok(Pick::Progress),
    }
}

/// Runs one leased mix under the retry ladder, heartbeating the lease
/// from a sidecar thread, and appends the terminal marker.
fn run_claimed_mix<F>(
    shared: &Shared<'_>,
    me: &str,
    idx: usize,
    runner: &F,
) -> Result<(), Grade10Error>
where
    F: Fn(&MixSpec, MixAttempt) -> Result<MixOutcome, Grade10Error> + Sync,
{
    let (mix, hash) = &shared.items[idx];
    let id = mix.id();
    let opts = shared.opts;
    let done = AtomicBool::new(false);
    let result = std::thread::scope(|s| {
        s.spawn(|| {
            // Renew at a third of the lease so two heartbeats can be lost
            // before the lease lapses; poll the done flag fast enough not
            // to delay terminal records.
            let interval = Duration::from_millis((opts.lease_ms / 3).max(1));
            loop {
                let started = Instant::now();
                while started.elapsed() < interval {
                    if done.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
                if done.load(Ordering::SeqCst) {
                    return;
                }
                let mut st = lock(&shared.state);
                let _ = st.journal.record_renewed(*hash, me, now_ms() + opts.lease_ms);
            }
        });
        let r = run_ladder(shared, mix, *hash, &id, runner);
        done.store(true, Ordering::SeqCst);
        r
    });
    result
}

/// The retry ladder for one claimed mix: attempts escalate strict →
/// lenient → partial; success stores the outcome then marks `finished`,
/// exhaustion (or a fatal error) marks `failed` with the incident kind.
fn run_ladder<F>(
    shared: &Shared<'_>,
    mix: &MixSpec,
    hash: u64,
    id: &str,
    runner: &F,
) -> Result<(), Grade10Error>
where
    F: Fn(&MixSpec, MixAttempt) -> Result<MixOutcome, Grade10Error> + Sync,
{
    let opts = shared.opts;
    let max_attempts = opts.retry.max_attempts.max(1);
    let mut attempts_made = 0;
    let mut last_err: Option<Grade10Error> = None;
    for k in 0..max_attempts {
        attempts_made = k + 1;
        let attempt = MixAttempt {
            index: k,
            mode: ladder_mode(opts.base_mode, k),
        };
        let result = catch_unwind(AssertUnwindSafe(|| runner(mix, attempt)))
            .unwrap_or_else(|p| Err(Grade10Error::StagePanicked(panic_message(p.as_ref()))));
        match result {
            Ok(mut outcome) => {
                outcome.mix = mix.clone();
                outcome.hash = hash;
                outcome.attempts = attempts_made;
                outcome.mode = attempt.mode.name().to_string();
                if let Err(e) = shared.store.put(&outcome) {
                    last_err = Some(e);
                    break;
                }
                let mut st = lock(&shared.state);
                st.journal.record_finished(id, hash, attempts_made)?;
                drop(st);
                lock(&shared.local).insert(hash, outcome);
                shared.executed.fetch_add(1, Ordering::SeqCst);
                return Ok(());
            }
            Err(e) => {
                let fatal = !e.is_recoverable();
                last_err = Some(e);
                if fatal {
                    break;
                }
                if k + 1 < max_attempts {
                    std::thread::sleep(opts.retry.backoff_delay(k, hash));
                }
            }
        }
    }
    let err = last_err
        .unwrap_or_else(|| Grade10Error::StagePanicked("mix produced no result".to_string()));
    let mut st = lock(&shared.state);
    st.journal
        .record_failed(id, hash, &err.to_string(), attempts_made, IncidentKind::of(&err).name())?;
    drop(st);
    shared.executed.fetch_add(1, Ordering::SeqCst);
    Ok(())
}

/// The campaign manifest (`campaign.json`) a leader writes: everything a
/// joining worker or `--status` needs to reconstruct the matrix without
/// the original spec file.
pub fn load_manifest(dir: &Path) -> Result<(CampaignSpec, MixMode, u64), Grade10Error> {
    let path = dir.join("campaign.json");
    let text = std::fs::read_to_string(&path).map_err(|e| {
        Grade10Error::Io(format!(
            "reading {}: {e}; was a campaign started in this directory?",
            path.display()
        ))
    })?;
    let value: Value = serde_json::from_str(&text)?;
    let Value::Object(entries) = &value else {
        return Err(Grade10Error::Serialization(format!(
            "{}: manifest is not an object",
            path.display()
        )));
    };
    let get = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let spec = CampaignSpec::from_value(get("spec").ok_or_else(|| {
        Grade10Error::Serialization(format!("{}: manifest has no `spec`", path.display()))
    })?)?;
    let base_mode = match get("base_mode") {
        Some(Value::Str(s)) => MixMode::from_name(s).ok_or_else(|| {
            Grade10Error::Serialization(format!("{}: unknown base mode `{s}`", path.display()))
        })?,
        _ => MixMode::Strict,
    };
    let lease_ms = match get("lease_ms") {
        Some(Value::UInt(n)) => *n,
        _ => 30_000,
    };
    Ok((spec, base_mode, lease_ms))
}

/// Progress snapshot of a campaign directory, derived purely from the
/// journal and the store. Read-only and torn-tail tolerant, so it is safe
/// to run while workers are live.
#[derive(Debug, PartialEq, Eq)]
pub struct CampaignStatus {
    /// Campaign name from the manifest.
    pub campaign: String,
    /// Matrix size.
    pub total: usize,
    /// Mixes with a durable outcome.
    pub finished: usize,
    /// Mixes under a live, unexpired lease.
    pub claimed: usize,
    /// Mixes whose lease expired without a terminal record — their
    /// claimant is presumed dead and any worker may reclaim them.
    pub stale: usize,
    /// Mixes that failed permanently this epoch.
    pub failed: usize,
    /// Mixes quarantined as poisoned.
    pub poisoned: usize,
    /// Mixes not yet claimed this epoch.
    pub pending: usize,
    /// Journal records quarantined while reading.
    pub quarantined_journal: usize,
    /// True when `report.txt` exists (the matrix was drained at least
    /// once).
    pub report_written: bool,
}

/// Computes a [`CampaignStatus`] for `dir` without touching any durable
/// state.
pub fn campaign_status(dir: &Path) -> Result<CampaignStatus, Grade10Error> {
    let (spec, _, _) = load_manifest(dir)?;
    let replay = Journal::replay_snapshot(&dir.join("journal.jsonl"))?;
    let store = Store::open(&dir.join("store"))?;
    let now = now_ms();
    let mut status = CampaignStatus {
        campaign: spec.name.clone(),
        total: 0,
        finished: 0,
        claimed: 0,
        stale: 0,
        failed: 0,
        poisoned: 0,
        pending: 0,
        quarantined_journal: replay.quarantined,
        report_written: dir.join("report.txt").exists(),
    };
    for mix in spec.expand() {
        let hash = mix.content_hash(&spec.code_version);
        status.total += 1;
        if replay.poisoned.contains_key(&hash) {
            status.poisoned += 1;
        } else if replay.failed.contains_key(&hash) {
            status.failed += 1;
        } else if replay.finished.contains(&hash) || store.load(hash, &mix).is_some() {
            status.finished += 1;
        } else {
            match replay.claims.get(&hash) {
                Some(c) if now <= c.deadline_ms => status.claimed += 1,
                Some(_) => status.stale += 1,
                None => status.pending += 1,
            }
        }
    }
    Ok(status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            code_version: "t1".into(),
            algorithms: vec!["pr".into(), "bfs".into()],
            datasets: vec!["rmat:6".into()],
            engines: vec!["giraph".into()],
            machines: vec![2],
            seeds: vec![46],
            faults: vec!["none".into()],
        }
    }

    fn opts(dir: &str) -> CampaignOptions {
        let mut o = CampaignOptions::new(
            std::env::temp_dir().join(format!("g10-sched-{dir}-{}", std::process::id())),
        );
        o.retry.base = Duration::ZERO;
        o.poll_ms = 5;
        o
    }

    fn fake_runner(mix: &MixSpec, _a: MixAttempt) -> Result<MixOutcome, Grade10Error> {
        Ok(MixOutcome {
            mix: mix.clone(),
            hash: 0,
            makespan_ns: 1_000_000 * u64::from(mix.machines),
            classes: vec![format!("bottleneck:{}", mix.algorithm)],
            incidents: 0,
            degraded: false,
            attempts: 0,
            mode: String::new(),
        })
    }

    #[test]
    fn ladder_escalates_strict_lenient_partial() {
        assert_eq!(ladder_mode(MixMode::Strict, 0), MixMode::Strict);
        assert_eq!(ladder_mode(MixMode::Strict, 1), MixMode::Lenient);
        assert_eq!(ladder_mode(MixMode::Strict, 2), MixMode::Partial);
        assert_eq!(ladder_mode(MixMode::Lenient, 0), MixMode::Lenient);
        assert_eq!(ladder_mode(MixMode::Lenient, 1), MixMode::Partial);
        assert_eq!(ladder_mode(MixMode::Partial, 0), MixMode::Partial);
    }

    #[test]
    fn mode_names_round_trip() {
        for m in [MixMode::Strict, MixMode::Lenient, MixMode::Partial] {
            assert_eq!(MixMode::from_name(m.name()), Some(m));
        }
        assert_eq!(MixMode::from_name("bogus"), None);
    }

    #[test]
    fn clean_campaign_completes_and_reports() {
        let o = opts("clean");
        let _ = std::fs::remove_dir_all(&o.dir);
        let run = run_campaign(&spec(), &o, fake_runner).expect("run");
        assert!(run.is_clean());
        assert_eq!(run.executed, 2);
        assert_eq!(run.cached, 0);
        assert!(!run.report_text.is_empty());
        assert!(o.dir.join("report.txt").exists());
        assert!(o.dir.join("journal.jsonl").exists());
        assert!(o.dir.join("campaign.json").exists(), "manifest for joiners");
        let _ = std::fs::remove_dir_all(&o.dir);
    }

    #[test]
    fn relaunch_without_resume_is_refused() {
        let o = opts("norerun");
        let _ = std::fs::remove_dir_all(&o.dir);
        run_campaign(&spec(), &o, fake_runner).expect("first run");
        let e = run_campaign(&spec(), &o, fake_runner).unwrap_err();
        assert!(e.to_string().contains("resume"), "{e}");
        let _ = std::fs::remove_dir_all(&o.dir);
    }

    #[test]
    fn resume_serves_finished_mixes_from_store() {
        let o = opts("cache");
        let _ = std::fs::remove_dir_all(&o.dir);
        let first = run_campaign(&spec(), &o, fake_runner).expect("first");
        let mut o2 = o.clone();
        o2.resume = true;
        let second = run_campaign(&spec(), &o2, |_mix, _a| {
            panic!("nothing should execute on a fully cached resume")
        })
        .expect("resume");
        assert_eq!(second.cached, 2);
        assert_eq!(second.executed, 0);
        assert_eq!(second.report_text, first.report_text, "byte-identical");
        assert_eq!(second.report_json, first.report_json);
        let _ = std::fs::remove_dir_all(&o.dir);
    }

    #[test]
    fn transient_failure_retries_up_the_ladder_and_succeeds() {
        let o = opts("retry");
        let _ = std::fs::remove_dir_all(&o.dir);
        let run = run_campaign(&spec(), &o, |mix, a| {
            if mix.algorithm == "pr" && a.index == 0 {
                return Err(Grade10Error::MalformedLog("first attempt chaos".into()));
            }
            fake_runner(mix, a)
        })
        .expect("run");
        assert!(run.incidents.is_empty());
        let pr = run
            .outcomes
            .iter()
            .find(|o| o.mix.algorithm == "pr")
            .expect("pr outcome");
        assert_eq!(pr.attempts, 2);
        assert_eq!(pr.mode, "lenient", "retried one rung down the ladder");
        let _ = std::fs::remove_dir_all(&o.dir);
    }

    #[test]
    fn permanent_failure_becomes_incident_not_abort() {
        let o = opts("perm");
        let _ = std::fs::remove_dir_all(&o.dir);
        let run = run_campaign(&spec(), &o, |mix, a| {
            if mix.algorithm == "bfs" {
                panic!("bfs always dies");
            }
            fake_runner(mix, a)
        })
        .expect("run");
        assert!(!run.is_clean());
        assert_eq!(run.outcomes.len(), 1, "surviving mix still reported");
        assert_eq!(run.incidents.len(), 1);
        let i = &run.incidents[0];
        assert_eq!(i.stage, "campaign");
        assert_eq!(i.kind, IncidentKind::Panic);
        assert_eq!(i.attempts, 3, "whole ladder exhausted");
        assert!(run.report_text.contains("bfs"), "incident in report");
        let _ = std::fs::remove_dir_all(&o.dir);
    }

    #[test]
    fn fatal_errors_stop_the_ladder_early() {
        let o = opts("fatal");
        let _ = std::fs::remove_dir_all(&o.dir);
        let run = run_campaign(&spec(), &o, |mix, a| {
            if mix.algorithm == "bfs" {
                return Err(Grade10Error::ModelMismatch("wrong model".into()));
            }
            fake_runner(mix, a)
        })
        .expect("run");
        assert_eq!(run.incidents.len(), 1);
        assert_eq!(run.incidents[0].attempts, 1, "no retries for fatal errors");
        let _ = std::fs::remove_dir_all(&o.dir);
    }

    #[test]
    fn reports_are_identical_at_any_width() {
        let o1 = opts("w1");
        let mut o4 = opts("w4");
        o4.width = 4;
        let _ = std::fs::remove_dir_all(&o1.dir);
        let _ = std::fs::remove_dir_all(&o4.dir);
        let a = run_campaign(&spec(), &o1, fake_runner).expect("width 1");
        let b = run_campaign(&spec(), &o4, fake_runner).expect("width 4");
        assert_eq!(a.report_text, b.report_text);
        assert_eq!(a.report_json, b.report_json);
        let _ = std::fs::remove_dir_all(&o1.dir);
        let _ = std::fs::remove_dir_all(&o4.dir);
    }

    #[test]
    fn poisoned_mix_is_quarantined_not_rerun() {
        let o = opts("poison");
        let _ = std::fs::remove_dir_all(&o.dir);
        std::fs::create_dir_all(&o.dir).expect("mkdir");
        let sp = spec();
        let victim = &sp.expand()[0];
        let hash = victim.content_hash(&sp.code_version);
        // Three epochs each died holding a claim on the first mix: two
        // past launch boundaries plus the live claim our resume abandons.
        {
            let path = o.dir.join("journal.jsonl");
            let mut j = Journal::create(&path, &sp.name).expect("create");
            for _ in 0..2 {
                j.record_claimed(&victim.id(), hash, "dead", 1, 2).expect("claim");
                j.record_launch("next").expect("launch");
            }
            j.record_claimed(&victim.id(), hash, "dead", 1, 2).expect("claim");
        }
        let mut o2 = o.clone();
        o2.resume = true;
        let run = run_campaign(&sp, &o2, |mix, a| {
            assert_ne!(mix.id(), victim.id(), "poisoned mix must not run");
            fake_runner(mix, a)
        })
        .expect("resume");
        assert_eq!(run.incidents.len(), 1);
        assert_eq!(run.incidents[0].kind, IncidentKind::Poisoned);
        assert_eq!(run.incidents[0].attempts, 3, "three claimants lost");
        assert_eq!(run.outcomes.len(), 1, "healthy mix still characterized");
        assert!(run.report_text.contains("poisoned"), "{}", run.report_text);
        assert!(!run.is_clean());
        let _ = std::fs::remove_dir_all(&o.dir);
    }

    #[test]
    fn joining_a_drained_campaign_reassembles_the_same_report() {
        let o = opts("join");
        let _ = std::fs::remove_dir_all(&o.dir);
        let first = run_campaign(&spec(), &o, fake_runner).expect("lead");
        let mut oj = o.clone();
        oj.join = true;
        let joined = run_campaign(&spec(), &oj, |_mix, _a| {
            panic!("nothing left for a late joiner to run")
        })
        .expect("join");
        assert_eq!(joined.executed, 0);
        assert_eq!(joined.cached, 2);
        assert_eq!(joined.report_text, first.report_text, "byte-identical");
        let _ = std::fs::remove_dir_all(&o.dir);
    }

    #[test]
    fn status_reflects_journal_and_store() {
        let o = opts("status");
        let _ = std::fs::remove_dir_all(&o.dir);
        run_campaign(&spec(), &o, |mix, a| {
            if mix.algorithm == "bfs" {
                return Err(Grade10Error::ModelMismatch("wrong model".into()));
            }
            fake_runner(mix, a)
        })
        .expect("run");
        let st = campaign_status(&o.dir).expect("status");
        assert_eq!(st.campaign, "unit");
        assert_eq!(st.total, 2);
        assert_eq!(st.finished, 1);
        assert_eq!(st.failed, 1);
        assert_eq!(st.pending, 0);
        assert_eq!(st.claimed + st.stale + st.poisoned, 0);
        assert!(st.report_written);
        let _ = std::fs::remove_dir_all(&o.dir);
    }

    #[test]
    fn manifest_round_trips() {
        let o = opts("manifest");
        let _ = std::fs::remove_dir_all(&o.dir);
        run_campaign(&spec(), &o, fake_runner).expect("run");
        let (loaded, base, lease) = load_manifest(&o.dir).expect("manifest");
        assert_eq!(loaded, spec());
        assert_eq!(base, MixMode::Strict);
        assert_eq!(lease, 30_000);
        let _ = std::fs::remove_dir_all(&o.dir);
    }
}
