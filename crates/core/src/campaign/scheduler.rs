//! The campaign scheduler: fans the mix matrix over a worker pool under
//! the durability envelope.
//!
//! Each mix runs at most once per launch, behind three layers of armor:
//! the result store memoizes finished mixes across launches, the journal
//! write-ahead-logs every state change so a SIGKILL'd campaign resumes
//! instead of restarting, and a retry ladder (bounded exponential backoff
//! with deterministic jitter, escalating strict → lenient → partial)
//! absorbs transient failures before a mix is given up on. A mix that
//! exhausts its ladder becomes a campaign-level [`Incident`] and the
//! campaign carries on — one pathological configuration must never cost
//! the other results of an overnight screening run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::error::Grade10Error;
use crate::supervise::{
    panic_message, pool_map, Incident, IncidentKind, IncidentOutcome, RetryPolicy,
};

use super::journal::{Journal, JournalReplay};
use super::spec::{CampaignSpec, MixSpec};
use super::store::{atomic_write, MixOutcome, Store};

/// Which rung of the degradation ladder a mix attempt runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MixMode {
    /// Strict ingestion: corrupt telemetry is rejected.
    Strict,
    /// Lenient ingestion: telemetry is repaired first.
    Lenient,
    /// Fully supervised run producing a partial characterization if
    /// stages or machines drop.
    Partial,
}

impl MixMode {
    /// Short lowercase name, stored in outcomes and printed in reports.
    pub fn name(self) -> &'static str {
        match self {
            MixMode::Strict => "strict",
            MixMode::Lenient => "lenient",
            MixMode::Partial => "partial",
        }
    }
}

/// The ladder: attempt 0 runs at the campaign's base mode, the first
/// retry of a strict mix relaxes to lenient, and everything after runs
/// supervised, where a partial characterization still counts as a result.
pub fn ladder_mode(base: MixMode, attempt: u32) -> MixMode {
    match (base, attempt) {
        (_, 0) => base,
        (MixMode::Strict, 1) => MixMode::Lenient,
        _ => MixMode::Partial,
    }
}

/// One attempt handed to the mix runner.
#[derive(Clone, Copy, Debug)]
pub struct MixAttempt {
    /// 0-based attempt index within this mix's ladder.
    pub index: u32,
    /// The ladder rung to run at.
    pub mode: MixMode,
}

/// How a campaign executes: where its durable state lives and how hard
/// it fights for each mix.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Campaign directory holding `journal.jsonl`, `store/`, and the
    /// final reports.
    pub dir: PathBuf,
    /// Resume a previous launch: replay the journal, serve finished
    /// mixes from the store, re-run the rest. Without this, an existing
    /// journal in `dir` is an error.
    pub resume: bool,
    /// Worker-pool width for fanning out mixes (clamped to at least 1).
    /// Reports are byte-identical at any width.
    pub width: usize,
    /// Per-mix retry/backoff policy (normally copied from
    /// [`SuperviseConfig::retry`](crate::supervise::SuperviseConfig)).
    pub retry: RetryPolicy,
    /// Ladder rung attempt 0 runs at.
    pub base_mode: MixMode,
    /// Test-only crash simulation: stop claiming new mixes after this
    /// many executions have started, leaving the campaign interrupted
    /// exactly as a kill signal would (minus the torn bytes). `None` in
    /// production.
    pub stop_after: Option<usize>,
}

impl CampaignOptions {
    /// Options with production defaults, rooted at `dir`.
    pub fn new(dir: PathBuf) -> CampaignOptions {
        CampaignOptions {
            dir,
            resume: false,
            width: 1,
            retry: RetryPolicy::default(),
            base_mode: MixMode::Strict,
            stop_after: None,
        }
    }
}

/// What one campaign launch produced.
#[derive(Debug)]
pub struct CampaignRun {
    /// Surviving outcomes, in mix-matrix order (the report ranks its own
    /// copy).
    pub outcomes: Vec<MixOutcome>,
    /// Campaign-level incidents: one per mix that exhausted its ladder.
    pub incidents: Vec<Incident>,
    /// Mixes actually executed this launch.
    pub executed: usize,
    /// Mixes served from the store without running.
    pub cached: usize,
    /// Mixes that failed permanently this launch.
    pub failed: usize,
    /// Journal records quarantined while resuming.
    pub quarantined_journal: usize,
    /// True when a `stop_after` budget interrupted the launch before the
    /// matrix completed; no report was written.
    pub interrupted: bool,
    /// Rendered text report (empty when interrupted).
    pub report_text: String,
    /// Rendered JSON report (empty when interrupted).
    pub report_json: String,
}

impl CampaignRun {
    /// True when every mix characterized completely with no campaign
    /// incidents — the exit-code-0 condition. Mixes that needed retries
    /// but finished clean still count as clean; degraded (partial) or
    /// incident-bearing outcomes do not.
    pub fn is_clean(&self) -> bool {
        !self.interrupted
            && self.incidents.is_empty()
            && self.outcomes.iter().all(|o| !o.degraded && o.incidents == 0)
    }
}

/// How one mix ended inside the pool.
enum MixResult {
    Done { outcome: MixOutcome, cached: bool },
    Failed(Incident),
    NotRun,
}

/// Runs (or resumes) a campaign: expands the spec, fans the matrix over
/// the pool, and writes `report.txt` / `report.json` into the campaign
/// directory. The `runner` characterizes one mix at one ladder rung; it
/// fills the measurement fields of [`MixOutcome`] (`makespan_ns`,
/// `classes`, `incidents`, `degraded`) and the scheduler normalizes the
/// identity fields (`mix`, `hash`, `attempts`, `mode`). Runner panics are
/// captured and enter the retry ladder like classified errors.
pub fn run_campaign<F>(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
    runner: F,
) -> Result<CampaignRun, Grade10Error>
where
    F: Fn(&MixSpec, MixAttempt) -> Result<MixOutcome, Grade10Error> + Sync,
{
    let mixes = spec.expand();
    if mixes.is_empty() {
        return Err(Grade10Error::Serialization(
            "campaign spec expands to zero mixes".to_string(),
        ));
    }
    std::fs::create_dir_all(&opts.dir)
        .map_err(|e| Grade10Error::Io(format!("creating {}: {e}", opts.dir.display())))?;
    let store = Store::open(&opts.dir.join("store"))?;
    let journal_path = opts.dir.join("journal.jsonl");
    let (journal, replay) = if opts.resume {
        Journal::open_resume(&journal_path, &spec.name)?
    } else {
        if journal_path.exists() {
            return Err(Grade10Error::Io(format!(
                "{} already holds a campaign journal; pass --resume to continue it or use a fresh directory",
                opts.dir.display()
            )));
        }
        (Journal::create(&journal_path, &spec.name)?, JournalReplay::default())
    };
    let journal = Mutex::new(journal);
    let interrupted = AtomicBool::new(false);
    let claimed = AtomicUsize::new(0);

    let items: Vec<(MixSpec, u64)> = mixes
        .into_iter()
        .map(|m| {
            let h = m.content_hash(&spec.code_version);
            (m, h)
        })
        .collect();
    let width = opts.width.max(1).min(items.len());

    let results = pool_map(width, items, |_, (mix, hash)| {
        run_one_mix(&mix, hash, opts, &store, &journal, &interrupted, &claimed, &runner)
    });

    let mut run = CampaignRun {
        outcomes: Vec::new(),
        incidents: Vec::new(),
        executed: 0,
        cached: 0,
        failed: 0,
        quarantined_journal: replay.quarantined,
        interrupted: interrupted.load(Ordering::SeqCst),
        report_text: String::new(),
        report_json: String::new(),
    };
    for r in results {
        match r {
            MixResult::Done { outcome, cached } => {
                if cached {
                    run.cached += 1;
                } else {
                    run.executed += 1;
                }
                run.outcomes.push(outcome);
            }
            MixResult::Failed(incident) => {
                run.failed += 1;
                run.executed += 1;
                run.incidents.push(incident);
            }
            MixResult::NotRun => {}
        }
    }
    if run.interrupted {
        // The launch died before covering the matrix: leave the journal
        // and store as the durable record, write no report.
        return Ok(run);
    }
    let report = crate::report::campaign_report(&spec.name, &run.outcomes, &run.incidents);
    atomic_write(&opts.dir.join("report.txt"), report.text.as_bytes())
        .map_err(|e| Grade10Error::Io(format!("writing report.txt: {e}")))?;
    atomic_write(&opts.dir.join("report.json"), report.json.as_bytes())
        .map_err(|e| Grade10Error::Io(format!("writing report.json: {e}")))?;
    run.report_text = report.text;
    run.report_json = report.json;
    Ok(run)
}

/// Executes one mix under the envelope: store lookup, write-ahead record,
/// retry ladder, durable completion marker.
#[allow(clippy::too_many_arguments)]
fn run_one_mix<F>(
    mix: &MixSpec,
    hash: u64,
    opts: &CampaignOptions,
    store: &Store,
    journal: &Mutex<Journal>,
    interrupted: &AtomicBool,
    claimed: &AtomicUsize,
    runner: &F,
) -> MixResult
where
    F: Fn(&MixSpec, MixAttempt) -> Result<MixOutcome, Grade10Error> + Sync,
{
    let id = mix.id();
    if interrupted.load(Ordering::SeqCst) {
        return MixResult::NotRun;
    }
    if opts.resume {
        if let Some(prev) = store.load(hash) {
            let mut j = journal.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = j.record_skipped(&id, hash);
            return MixResult::Done { outcome: prev, cached: true };
        }
    }
    if let Some(limit) = opts.stop_after {
        if claimed.fetch_add(1, Ordering::SeqCst) >= limit {
            interrupted.store(true, Ordering::SeqCst);
            return MixResult::NotRun;
        }
    }
    let journal_incident = |attempts: u32, e: Grade10Error| {
        MixResult::Failed(Incident {
            stage: "campaign",
            unit: id.clone(),
            kind: IncidentKind::of(&e),
            detail: e.to_string(),
            attempts,
            outcome: IncidentOutcome::Dropped,
        })
    };
    {
        let mut j = journal.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(e) = j.record_started(&id, hash) {
            return journal_incident(0, e);
        }
    }
    let max_attempts = opts.retry.max_attempts.max(1);
    let mut attempts_made = 0;
    let mut last_err: Option<Grade10Error> = None;
    for k in 0..max_attempts {
        attempts_made = k + 1;
        let attempt = MixAttempt {
            index: k,
            mode: ladder_mode(opts.base_mode, k),
        };
        let result = catch_unwind(AssertUnwindSafe(|| runner(mix, attempt)))
            .unwrap_or_else(|p| Err(Grade10Error::StagePanicked(panic_message(p.as_ref()))));
        match result {
            Ok(mut outcome) => {
                outcome.mix = mix.clone();
                outcome.hash = hash;
                outcome.attempts = attempts_made;
                outcome.mode = attempt.mode.name().to_string();
                if let Err(e) = store.put(&outcome) {
                    last_err = Some(e);
                    break;
                }
                let mut j = journal.lock().unwrap_or_else(PoisonError::into_inner);
                if let Err(e) = j.record_finished(&id, hash, attempts_made) {
                    return journal_incident(attempts_made, e);
                }
                return MixResult::Done { outcome, cached: false };
            }
            Err(e) => {
                let fatal = !e.is_recoverable();
                last_err = Some(e);
                if fatal {
                    break;
                }
                if k + 1 < max_attempts {
                    std::thread::sleep(opts.retry.backoff_delay(k, hash));
                }
            }
        }
    }
    let err = last_err
        .unwrap_or_else(|| Grade10Error::StagePanicked("mix produced no result".to_string()));
    {
        let mut j = journal.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = j.record_failed(&id, hash, &err.to_string(), attempts_made);
    }
    journal_incident(attempts_made, err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            code_version: "t1".into(),
            algorithms: vec!["pr".into(), "bfs".into()],
            datasets: vec!["rmat:6".into()],
            engines: vec!["giraph".into()],
            machines: vec![2],
            seeds: vec![46],
            faults: vec!["none".into()],
        }
    }

    fn opts(dir: &str) -> CampaignOptions {
        let mut o = CampaignOptions::new(
            std::env::temp_dir().join(format!("g10-sched-{dir}-{}", std::process::id())),
        );
        o.retry.base = Duration::ZERO;
        o
    }

    fn fake_runner(mix: &MixSpec, _a: MixAttempt) -> Result<MixOutcome, Grade10Error> {
        Ok(MixOutcome {
            mix: mix.clone(),
            hash: 0,
            makespan_ns: 1_000_000 * u64::from(mix.machines),
            classes: vec![format!("bottleneck:{}", mix.algorithm)],
            incidents: 0,
            degraded: false,
            attempts: 0,
            mode: String::new(),
        })
    }

    #[test]
    fn ladder_escalates_strict_lenient_partial() {
        assert_eq!(ladder_mode(MixMode::Strict, 0), MixMode::Strict);
        assert_eq!(ladder_mode(MixMode::Strict, 1), MixMode::Lenient);
        assert_eq!(ladder_mode(MixMode::Strict, 2), MixMode::Partial);
        assert_eq!(ladder_mode(MixMode::Lenient, 0), MixMode::Lenient);
        assert_eq!(ladder_mode(MixMode::Lenient, 1), MixMode::Partial);
        assert_eq!(ladder_mode(MixMode::Partial, 0), MixMode::Partial);
    }

    #[test]
    fn clean_campaign_completes_and_reports() {
        let o = opts("clean");
        let _ = std::fs::remove_dir_all(&o.dir);
        let run = run_campaign(&spec(), &o, fake_runner).expect("run");
        assert!(run.is_clean());
        assert_eq!(run.executed, 2);
        assert_eq!(run.cached, 0);
        assert!(!run.report_text.is_empty());
        assert!(o.dir.join("report.txt").exists());
        assert!(o.dir.join("journal.jsonl").exists());
        let _ = std::fs::remove_dir_all(&o.dir);
    }

    #[test]
    fn relaunch_without_resume_is_refused() {
        let o = opts("norerun");
        let _ = std::fs::remove_dir_all(&o.dir);
        run_campaign(&spec(), &o, fake_runner).expect("first run");
        let e = run_campaign(&spec(), &o, fake_runner).unwrap_err();
        assert!(e.to_string().contains("resume"), "{e}");
        let _ = std::fs::remove_dir_all(&o.dir);
    }

    #[test]
    fn resume_serves_finished_mixes_from_store() {
        let o = opts("cache");
        let _ = std::fs::remove_dir_all(&o.dir);
        let first = run_campaign(&spec(), &o, fake_runner).expect("first");
        let mut o2 = o.clone();
        o2.resume = true;
        let second = run_campaign(&spec(), &o2, |_mix, _a| {
            panic!("nothing should execute on a fully cached resume")
        })
        .expect("resume");
        assert_eq!(second.cached, 2);
        assert_eq!(second.executed, 0);
        assert_eq!(second.report_text, first.report_text, "byte-identical");
        assert_eq!(second.report_json, first.report_json);
        let _ = std::fs::remove_dir_all(&o.dir);
    }

    #[test]
    fn transient_failure_retries_up_the_ladder_and_succeeds() {
        let o = opts("retry");
        let _ = std::fs::remove_dir_all(&o.dir);
        let run = run_campaign(&spec(), &o, |mix, a| {
            if mix.algorithm == "pr" && a.index == 0 {
                return Err(Grade10Error::MalformedLog("first attempt chaos".into()));
            }
            fake_runner(mix, a)
        })
        .expect("run");
        assert!(run.incidents.is_empty());
        let pr = run
            .outcomes
            .iter()
            .find(|o| o.mix.algorithm == "pr")
            .expect("pr outcome");
        assert_eq!(pr.attempts, 2);
        assert_eq!(pr.mode, "lenient", "retried one rung down the ladder");
        let _ = std::fs::remove_dir_all(&o.dir);
    }

    #[test]
    fn permanent_failure_becomes_incident_not_abort() {
        let o = opts("perm");
        let _ = std::fs::remove_dir_all(&o.dir);
        let run = run_campaign(&spec(), &o, |mix, a| {
            if mix.algorithm == "bfs" {
                panic!("bfs always dies");
            }
            fake_runner(mix, a)
        })
        .expect("run");
        assert!(!run.is_clean());
        assert_eq!(run.outcomes.len(), 1, "surviving mix still reported");
        assert_eq!(run.incidents.len(), 1);
        let i = &run.incidents[0];
        assert_eq!(i.stage, "campaign");
        assert_eq!(i.kind, IncidentKind::Panic);
        assert_eq!(i.attempts, 3, "whole ladder exhausted");
        assert!(run.report_text.contains("bfs"), "incident in report");
        let _ = std::fs::remove_dir_all(&o.dir);
    }

    #[test]
    fn fatal_errors_stop_the_ladder_early() {
        let o = opts("fatal");
        let _ = std::fs::remove_dir_all(&o.dir);
        let run = run_campaign(&spec(), &o, |mix, a| {
            if mix.algorithm == "bfs" {
                return Err(Grade10Error::ModelMismatch("wrong model".into()));
            }
            fake_runner(mix, a)
        })
        .expect("run");
        assert_eq!(run.incidents.len(), 1);
        assert_eq!(run.incidents[0].attempts, 1, "no retries for fatal errors");
        let _ = std::fs::remove_dir_all(&o.dir);
    }
}
