//! Declarative campaign specs and their expansion into a mix matrix.
//!
//! A spec names the axes of a screening campaign — workloads, graph
//! scales, engines, partitionings, seeds, fault plans — and the scheduler
//! runs their full cross product. Specs are data, not code: a TOML or
//! JSON file checked into the experiment repo, so a campaign is
//! reproducible from the file alone. The TOML dialect accepted here is
//! the flat subset a spec actually needs (scalar and array values, `#`
//! comments, multi-line arrays); tables and dotted keys are rejected with
//! an explicit error rather than silently misread.

use serde::{Deserialize, DeError, Serialize, Value};

use crate::error::Grade10Error;

use crate::hash::fnv1a;

/// Code-version tag mixed into every content hash. Bump when the
/// characterization pipeline changes in a way that invalidates stored
/// mix outcomes; every mix then re-runs on the next `--resume`.
///
/// `g10c-2`: retroactive bump for the PR 8 retirement of the legacy
/// attribution backend (whose outputs `g10c-1` stores may still embed),
/// plus the introduction of the stage cache, whose record keys also embed
/// this tag. `tests/columnar_equivalence.rs` ties the tag to the committed
/// golden hashes: changing attribution output without bumping fails CI.
pub const CODE_VERSION: &str = "g10c-2";

/// One point in the campaign matrix: a workload × dataset × engine ×
/// partitioning × seed × fault-plan combination.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixSpec {
    /// Algorithm name (`bfs`, `pr`, `wcc`, `cdlp`, `sssp`, `lcc`, `prc`).
    pub algorithm: String,
    /// Dataset spec (`rmat:12`, `social:2000`).
    pub dataset: String,
    /// Engine name (`giraph`, `powergraph`).
    pub engine: String,
    /// Cluster size the workload is partitioned over.
    pub machines: u32,
    /// Workload seed (drives graph generation and simulated timing).
    pub seed: u64,
    /// Fault plan applied to the collected telemetry (`none`, `all`,
    /// `hostile`, or a comma-separated class list).
    pub fault: String,
}

impl MixSpec {
    /// Stable human-readable identifier, unique within a campaign.
    pub fn id(&self) -> String {
        format!(
            "{}-{}-{}-m{}-s{}-{}",
            self.algorithm, self.dataset, self.engine, self.machines, self.seed, self.fault
        )
    }

    /// Canonical content string hashed into [`content_hash`]. Every field
    /// is keyed so axis values cannot collide across field boundaries.
    fn content_string(&self, code_version: &str) -> String {
        format!(
            "v={code_version};alg={};ds={};eng={};m={};seed={};fault={}",
            self.algorithm, self.dataset, self.engine, self.machines, self.seed, self.fault
        )
    }

    /// Content hash keying this mix in the result store. Covers every
    /// spec field *and* the code version: edit one axis value and exactly
    /// the affected mixes re-run; bump the code version and everything
    /// does.
    pub fn content_hash(&self, code_version: &str) -> u64 {
        fnv1a(self.content_string(code_version).as_bytes())
    }
}

/// A declarative campaign: axis values whose cross product is the mix
/// matrix. Load from a file with [`CampaignSpec::load`] or build in code.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct CampaignSpec {
    /// Campaign name, used in the journal header and reports.
    pub name: String,
    /// Version tag mixed into every content hash (defaults to
    /// [`CODE_VERSION`]).
    pub code_version: String,
    /// Algorithms to run.
    pub algorithms: Vec<String>,
    /// Datasets to run each algorithm on.
    pub datasets: Vec<String>,
    /// Engines to run each workload under (default `["giraph"]`).
    pub engines: Vec<String>,
    /// Cluster sizes (default `[2]`).
    pub machines: Vec<u32>,
    /// Workload seeds (default `[46]`).
    pub seeds: Vec<u64>,
    /// Fault plans (default `["none"]`).
    pub faults: Vec<String>,
}

impl CampaignSpec {
    /// Expands the cross product into the ordered mix matrix. The order
    /// (algorithm, dataset, engine, machines, seed, fault — outermost
    /// first) is part of the format: journals and reports list mixes in
    /// it, and it must not change between a run and its resume.
    pub fn expand(&self) -> Vec<MixSpec> {
        let mut mixes = Vec::new();
        for alg in &self.algorithms {
            for ds in &self.datasets {
                for eng in &self.engines {
                    for &m in &self.machines {
                        for &seed in &self.seeds {
                            for fault in &self.faults {
                                mixes.push(MixSpec {
                                    algorithm: alg.clone(),
                                    dataset: ds.clone(),
                                    engine: eng.clone(),
                                    machines: m,
                                    seed,
                                    fault: fault.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        mixes
    }

    /// Parses a spec from file contents, dispatching on the extension:
    /// `.json` is parsed as JSON, anything else as the flat TOML subset.
    pub fn parse(path_hint: &str, contents: &str) -> Result<CampaignSpec, Grade10Error> {
        let value = if path_hint.ends_with(".json") {
            serde_json::from_str::<Value>(contents)
                .map_err(|e| Grade10Error::Serialization(format!("campaign spec: {e}")))?
        } else {
            parse_toml_subset(contents)?
        };
        Self::from_spec_value(&value)
            .map_err(|e| Grade10Error::Serialization(format!("campaign spec: {}", e.0)))
    }

    /// Loads and parses a spec file.
    pub fn load(path: &std::path::Path) -> Result<CampaignSpec, Grade10Error> {
        let contents = std::fs::read_to_string(path)
            .map_err(|e| Grade10Error::Io(format!("reading {}: {e}", path.display())))?;
        Self::parse(&path.to_string_lossy(), &contents)
    }

    /// Builds the spec from an already-parsed [`Value`] tree — the path a
    /// joining worker takes when it reads the campaign manifest a leader
    /// serialized, rather than the original spec file.
    pub fn from_value(v: &Value) -> Result<CampaignSpec, Grade10Error> {
        Self::from_spec_value(v)
            .map_err(|e| Grade10Error::Serialization(format!("campaign spec: {}", e.0)))
    }

    /// Builds the spec from a parsed key/value tree, applying defaults
    /// for optional axes and rejecting unknown keys (a typo'd axis name
    /// must not silently shrink the matrix).
    fn from_spec_value(v: &Value) -> Result<CampaignSpec, DeError> {
        let Value::Object(entries) = v else {
            return Err(DeError::expected("object", v));
        };
        let mut spec = CampaignSpec {
            name: String::new(),
            code_version: CODE_VERSION.to_string(),
            algorithms: Vec::new(),
            datasets: Vec::new(),
            engines: vec!["giraph".to_string()],
            machines: vec![2],
            seeds: vec![46],
            faults: vec!["none".to_string()],
        };
        let mut saw_name = false;
        for (key, val) in entries {
            match key.as_str() {
                "name" => {
                    spec.name = String::from_value(val)?;
                    saw_name = true;
                }
                "code_version" => spec.code_version = String::from_value(val)?,
                "algorithms" => spec.algorithms = Vec::<String>::from_value(val)?,
                "datasets" => spec.datasets = Vec::<String>::from_value(val)?,
                "engines" => spec.engines = Vec::<String>::from_value(val)?,
                "machines" => spec.machines = Vec::<u32>::from_value(val)?,
                "seeds" => spec.seeds = Vec::<u64>::from_value(val)?,
                "faults" => spec.faults = Vec::<String>::from_value(val)?,
                other => return Err(DeError::msg(format!("unknown key `{other}`"))),
            }
        }
        if !saw_name || spec.name.is_empty() {
            return Err(DeError::msg("missing required key `name`"));
        }
        if spec.algorithms.is_empty() {
            return Err(DeError::msg("`algorithms` must list at least one workload"));
        }
        if spec.datasets.is_empty() {
            return Err(DeError::msg("`datasets` must list at least one dataset"));
        }
        Ok(spec)
    }
}

/// Parses the flat TOML subset campaign specs use: `key = value` lines,
/// `#` comments, string/integer/boolean scalars, and (possibly
/// multi-line) arrays of scalars. Tables (`[section]`) and dotted keys
/// are rejected explicitly.
fn parse_toml_subset(contents: &str) -> Result<Value, Grade10Error> {
    let err = |line: usize, msg: String| {
        Grade10Error::Serialization(format!("campaign spec line {line}: {msg}"))
    };
    let mut entries: Vec<(String, Value)> = Vec::new();
    let mut lines = contents.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            return Err(err(
                line_no,
                "TOML tables are not supported; use flat `key = value` lines".to_string(),
            ));
        }
        let Some(eq) = line.find('=') else {
            return Err(err(line_no, format!("expected `key = value`, got `{line}`")));
        };
        let key = line[..eq].trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(err(line_no, format!("invalid key `{key}`")));
        }
        let mut value_text = line[eq + 1..].trim().to_string();
        // Join continuation lines until array brackets balance.
        while bracket_depth(&value_text) > 0 {
            let Some((_, next)) = lines.next() else {
                return Err(err(line_no, "unclosed array".to_string()));
            };
            value_text.push(' ');
            value_text.push_str(strip_comment(next).trim());
        }
        let value = parse_toml_value(value_text.trim())
            .map_err(|msg| err(line_no, format!("value for `{key}`: {msg}")))?;
        entries.push((key.to_string(), value));
    }
    Ok(Value::Object(entries))
}

/// Strips a `#` comment, ignoring `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Net `[`/`]` depth outside strings; positive means an array continues
/// on the next line.
fn bracket_depth(text: &str) -> i32 {
    let mut depth = 0;
    let mut in_str = false;
    for c in text.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Parses one TOML scalar or single-depth array of scalars.
fn parse_toml_value(text: &str) -> Result<Value, String> {
    let text = text.trim();
    if text.is_empty() {
        return Err("empty value".to_string());
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unclosed array".to_string())?;
        let mut items = Vec::new();
        for part in split_toml_items(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_toml_scalar(part)?);
        }
        return Ok(Value::Array(items));
    }
    parse_toml_scalar(text)
}

/// Splits an array body on commas outside strings.
fn split_toml_items(body: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    items.push(current);
    items
}

/// Parses one TOML scalar: string, boolean, or integer.
fn parse_toml_scalar(text: &str) -> Result<Value, String> {
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{text}`"))?;
        if inner.contains('"') {
            return Err(format!("stray quote inside `{text}`"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(u) = text.parse::<u64>() {
        return Ok(Value::UInt(u));
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    Err(format!("unsupported scalar `{text}` (expected string, integer, or boolean)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "t".into(),
            code_version: CODE_VERSION.into(),
            algorithms: vec!["pr".into(), "bfs".into()],
            datasets: vec!["rmat:8".into()],
            engines: vec!["giraph".into(), "powergraph".into()],
            machines: vec![2],
            seeds: vec![46],
            faults: vec!["none".into()],
        }
    }

    #[test]
    fn expansion_is_cross_product_in_axis_order() {
        let mixes = tiny_spec().expand();
        assert_eq!(mixes.len(), 4);
        assert_eq!(mixes[0].id(), "pr-rmat:8-giraph-m2-s46-none");
        assert_eq!(mixes[1].id(), "pr-rmat:8-powergraph-m2-s46-none");
        assert_eq!(mixes[2].id(), "bfs-rmat:8-giraph-m2-s46-none");
    }

    #[test]
    fn content_hash_is_per_field_and_version_sensitive() {
        let mixes = tiny_spec().expand();
        let h = mixes[0].content_hash(CODE_VERSION);
        assert_eq!(h, mixes[0].content_hash(CODE_VERSION), "deterministic");
        assert_ne!(h, mixes[1].content_hash(CODE_VERSION), "axis-sensitive");
        assert_ne!(h, mixes[0].content_hash("g10c-3"), "version-sensitive");
    }

    #[test]
    fn parses_toml_subset() {
        let text = r#"
            # screening campaign
            name = "smoke"
            algorithms = ["pr", "bfs"]
            datasets = [
                "rmat:8",  # tiny
            ]
            machines = [2, 4]
            seeds = [46]
        "#;
        let spec = CampaignSpec::parse("spec.toml", text).expect("parse");
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.algorithms, vec!["pr", "bfs"]);
        assert_eq!(spec.machines, vec![2, 4]);
        assert_eq!(spec.engines, vec!["giraph"], "default engine");
        assert_eq!(spec.faults, vec!["none"], "default fault plan");
        assert_eq!(spec.expand().len(), 4);
    }

    #[test]
    fn parses_json() {
        let text = r#"{"name": "j", "algorithms": ["wcc"], "datasets": ["rmat:6"]}"#;
        let spec = CampaignSpec::parse("spec.json", text).expect("parse");
        assert_eq!(spec.name, "j");
        assert_eq!(spec.expand().len(), 1);
    }

    #[test]
    fn rejects_unknown_keys_tables_and_missing_axes() {
        let unknown = "name = \"x\"\nalgorithm = [\"pr\"]\ndatasets = [\"rmat:8\"]";
        let e = CampaignSpec::parse("s.toml", unknown).unwrap_err();
        assert!(e.to_string().contains("unknown key"), "{e}");
        let table = "[campaign]\nname = \"x\"";
        let e = CampaignSpec::parse("s.toml", table).unwrap_err();
        assert!(e.to_string().contains("tables are not supported"), "{e}");
        let missing = "name = \"x\"\ndatasets = [\"rmat:8\"]";
        let e = CampaignSpec::parse("s.toml", missing).unwrap_err();
        assert!(e.to_string().contains("algorithms"), "{e}");
    }
}
