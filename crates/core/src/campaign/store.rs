//! The durable mix-result store: one JSON file per finished mix, keyed by
//! content hash.
//!
//! The store is the campaign's memo table. A mix that finished once never
//! re-runs — not on `--resume` after a crash, not on a re-launch with an
//! edited spec (only the mixes whose content hash changed miss). Files are
//! written atomically (temp sibling + rename, fsync before the rename), so
//! a store entry either exists completely or not at all; a half-written
//! file from a torn `write(2)` cannot exist under the final name. Anything
//! unreadable under the final name — truncated by an unclean filesystem,
//! hand-edited, or hash-mismatched — is quarantined aside and treated as a
//! miss, never trusted and never fatal.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::error::Grade10Error;

use super::spec::MixSpec;

/// The stored result of one characterized mix: everything the campaign
/// report needs, nothing wall-clock-dependent, so a report assembled from
/// cached outcomes is byte-identical to one assembled live.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MixOutcome {
    /// The mix this outcome belongs to (embedded so store files are
    /// self-describing).
    pub mix: MixSpec,
    /// Content hash the outcome is stored under.
    pub hash: u64,
    /// Simulated makespan of the characterized run, ns.
    pub makespan_ns: u64,
    /// Sorted issue-class labels (see
    /// [`Characterization::issue_classes`](crate::pipeline::Characterization::issue_classes)).
    pub classes: Vec<String>,
    /// Supervision incidents recorded *inside* the characterization (0
    /// unless the mix degraded to a partial run).
    pub incidents: u32,
    /// True when the characterization has partial coverage (stages or
    /// machines dropped).
    pub degraded: bool,
    /// Campaign-level attempts it took to produce this outcome (1 = first
    /// try).
    pub attempts: u32,
    /// Degradation-ladder rung that produced the outcome: `strict`,
    /// `lenient`, or `partial`.
    pub mode: String,
}

/// Writes `bytes` to `path` atomically: a temp sibling in the same
/// directory is written, fsync'd, and renamed over the target. Readers
/// see the old contents or the new contents, never a prefix. The temp
/// name carries the writer's pid *and* a per-process sequence number, so
/// concurrent writers — peer processes racing to store the same hash, or
/// two in-process campaign runs rendering one report — never scribble
/// into (or rename away) each other's temp file. Both renames land whole
/// contents, and last-rename-wins is harmless because equal hashes mean
/// equal payloads.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = PathBuf::from(tmp_name);
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Renames an unreadable artifact aside so it stops matching lookups but
/// stays on disk for a post-mortem. Best-effort: if even the rename
/// fails, the caller still treats the artifact as absent.
pub(crate) fn quarantine(path: &Path) {
    let mut q = path.as_os_str().to_os_string();
    q.push(".quarantined");
    let _ = std::fs::rename(path, PathBuf::from(q));
}

/// The on-disk result store under `<campaign dir>/store/`.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the store directory.
    pub fn open(dir: &Path) -> Result<Store, Grade10Error> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Grade10Error::Io(format!("creating store {}: {e}", dir.display())))?;
        Ok(Store {
            dir: dir.to_path_buf(),
        })
    }

    /// The file a mix with this content hash is stored under.
    pub fn path_for(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.json"))
    }

    /// Loads a stored outcome, or `None` on a miss. A file that exists
    /// but does not parse — or parses to an outcome claiming a different
    /// hash — is quarantined and reported as a miss, so the mix simply
    /// re-runs.
    ///
    /// The store is keyed by a bare 64-bit FNV-1a of the mix spec, which is
    /// not collision-proof: two distinct mixes *can* hash alike, and a
    /// wrong outcome served on a collision would silently poison the
    /// ranked report. So a hit must also present the embedded [`MixSpec`]
    /// matching `expect` field-for-field; a spec mismatch means the entry
    /// belongs to some other mix and is quarantined as a miss.
    pub fn load(&self, hash: u64, expect: &MixSpec) -> Option<MixOutcome> {
        let path = self.path_for(hash);
        let bytes = std::fs::read(&path).ok()?;
        match serde_json::from_slice::<MixOutcome>(&bytes) {
            Ok(out) if out.hash == hash && out.mix == *expect => Some(out),
            _ => {
                quarantine(&path);
                None
            }
        }
    }

    /// Stores an outcome atomically under its content hash.
    pub fn put(&self, out: &MixOutcome) -> Result<(), Grade10Error> {
        let path = self.path_for(out.hash);
        let json = serde_json::to_string_pretty(out)?;
        atomic_write(&path, json.as_bytes())
            .map_err(|e| Grade10Error::Io(format!("writing {}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(hash: u64) -> MixOutcome {
        MixOutcome {
            mix: MixSpec {
                algorithm: "pr".into(),
                dataset: "rmat:8".into(),
                engine: "giraph".into(),
                machines: 2,
                seed: 46,
                fault: "none".into(),
            },
            hash,
            makespan_ns: 1_000_000,
            classes: vec!["bottleneck:cpu".into()],
            incidents: 0,
            degraded: false,
            attempts: 1,
            mode: "strict".into(),
        }
    }

    #[test]
    fn roundtrips_and_misses() {
        let dir = std::env::temp_dir().join(format!("g10-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("open");
        let mix = outcome(7).mix;
        assert!(store.load(7, &mix).is_none());
        store.put(&outcome(7)).expect("put");
        assert_eq!(store.load(7, &mix), Some(outcome(7)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_fatal() {
        let dir = std::env::temp_dir().join(format!("g10-storeq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("open");
        let mix = outcome(9).mix;
        std::fs::write(store.path_for(9), b"{ torn").expect("write");
        assert!(store.load(9, &mix).is_none());
        assert!(!store.path_for(9).exists(), "corrupt file moved aside");
        // Hash mismatch (file claims a different identity) is also a miss.
        store.put(&outcome(11)).expect("put");
        std::fs::rename(store.path_for(11), store.path_for(12)).expect("rename");
        assert!(store.load(12, &mix).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn colliding_spec_is_quarantined_not_served() {
        // Two different mixes that (by construction here) share a store
        // hash: the entry on disk embeds mix A, but mix B asks for the
        // same hash. Serving A's outcome for B would corrupt the report,
        // so the lookup must treat it as a miss and quarantine the entry.
        let dir = std::env::temp_dir().join(format!("g10-storec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("open");
        store.put(&outcome(21)).expect("put");
        let mut other = outcome(21).mix;
        other.seed = 999;
        assert!(
            store.load(21, &other).is_none(),
            "an entry embedding a different mix spec must not be served"
        );
        assert!(
            !store.path_for(21).exists(),
            "the colliding entry is quarantined aside"
        );
        // The rightful owner re-stores and is served again.
        store.put(&outcome(21)).expect("re-put");
        assert_eq!(store.load(21, &outcome(21).mix), Some(outcome(21)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("g10-aw-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("x.json");
        atomic_write(&path, b"first").expect("write");
        atomic_write(&path, b"second").expect("rewrite");
        assert_eq!(std::fs::read(&path).expect("read"), b"second");
        assert!(
            std::fs::read_dir(&dir)
                .expect("ls")
                .all(|e| !e.expect("entry").file_name().to_string_lossy().ends_with(".tmp")),
            "no temp droppings"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
