//! The campaign's write-ahead journal.
//!
//! Every mix writes a `started` record before it runs and an fsync'd
//! `finished` or `failed` marker after, so the on-disk journal always
//! bounds what a crashed campaign was doing: finished mixes are durable,
//! started-but-unfinished mixes were in flight when the process died, and
//! everything else never ran. `--resume` replays the journal (and the
//! result store) instead of recomputing.
//!
//! The format is JSON lines — one self-checking record per line, each
//! carrying an FNV checksum of its own payload. Reload tolerates exactly
//! the damage a SIGKILL can cause: a torn final line (no trailing
//! newline) is truncated away before appending resumes, and any complete
//! line that fails to parse or checksum is quarantined — counted and
//! skipped, never fatal and never trusted.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::Path;

use serde::Value;

use crate::error::Grade10Error;

use crate::hash::fnv1a;

/// Version tag in the journal header record. Bump on any change to the
/// record schema; resume refuses journals from a different version rather
/// than misreading them.
pub const JOURNAL_FORMAT_VERSION: u64 = 1;

/// An open, append-only campaign journal.
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
}

/// What replaying a journal on `--resume` learned, keyed by mix content
/// hash.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Mixes with a durable `finished` marker.
    pub finished: BTreeSet<u64>,
    /// Mixes whose last run failed permanently: hash → (error, attempts).
    /// Resume re-runs them — a past failure earns a fresh chance, and a
    /// deterministic failure will simply fail identically.
    pub failed: BTreeMap<u64, (String, u32)>,
    /// Mixes that started (possibly several times across interrupted
    /// runs) — in flight when a previous run died, unless also finished
    /// or failed.
    pub started: BTreeSet<u64>,
    /// Records skipped on reload: torn tails, checksum mismatches,
    /// unparseable lines, unknown record kinds.
    pub quarantined: usize,
}

impl JournalReplay {
    /// Mixes that were in flight when the journal's writer died.
    pub fn interrupted(&self) -> BTreeSet<u64> {
        self.started
            .iter()
            .filter(|h| !self.finished.contains(h) && !self.failed.contains_key(h))
            .copied()
            .collect()
    }
}

/// Serializes record fields plus a trailing checksum of them into one
/// journal line.
fn render_record(fields: &[(&str, Value)]) -> Result<String, Grade10Error> {
    let payload: Vec<(String, Value)> = fields
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    let crc = fnv1a(serde_json::to_string(&Value::Object(payload.clone()))?.as_bytes());
    let mut full = payload;
    full.push(("crc".to_string(), Value::UInt(crc)));
    let mut line = serde_json::to_string(&Value::Object(full))?;
    line.push('\n');
    Ok(line)
}

/// Parses one journal line, verifying its checksum. Returns the payload
/// entries (checksum removed) or `None` for any damaged line.
fn parse_record(line: &str) -> Option<Vec<(String, Value)>> {
    let Ok(Value::Object(mut entries)) = serde_json::from_str::<Value>(line) else {
        return None;
    };
    let (key, crc) = entries.pop()?;
    if key != "crc" {
        return None;
    }
    let Value::UInt(crc) = crc else { return None };
    let payload = Value::Object(entries);
    let expect = fnv1a(serde_json::to_string(&payload).ok()?.as_bytes());
    if crc != expect {
        return None;
    }
    let Value::Object(entries) = payload else {
        return None;
    };
    Some(entries)
}

fn field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn uint_field(entries: &[(String, Value)], key: &str) -> Option<u64> {
    match field(entries, key)? {
        Value::UInt(n) => Some(*n),
        _ => None,
    }
}

impl Journal {
    /// Creates a fresh journal at `path` and writes its fsync'd header.
    /// Fails if the file already exists — starting a campaign over a live
    /// journal without `--resume` would silently fork its history.
    pub fn create(path: &Path, campaign: &str) -> Result<Journal, Grade10Error> {
        let file = std::fs::OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(path)
            .map_err(|e| Grade10Error::Io(format!("creating {}: {e}", path.display())))?;
        let mut journal = Journal { file };
        journal.append(
            &[
                ("record", Value::Str("header".to_string())),
                ("version", Value::UInt(JOURNAL_FORMAT_VERSION)),
                ("campaign", Value::Str(campaign.to_string())),
            ],
            true,
        )?;
        Ok(journal)
    }

    /// Opens an existing journal for resumption: replays its records,
    /// truncates any torn tail so appends start on a record boundary, and
    /// reopens for appending. A missing file degenerates to
    /// [`create`](Self::create) — resuming nothing is a fresh start.
    pub fn open_resume(path: &Path, campaign: &str) -> Result<(Journal, JournalReplay), Grade10Error> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Journal::create(path, campaign)?, JournalReplay::default()));
            }
            Err(e) => return Err(Grade10Error::Io(format!("reading {}: {e}", path.display()))),
        };
        let mut replay = JournalReplay::default();
        // A record is only complete once its newline is on disk; anything
        // after the last newline is a torn tail from an unclean death.
        let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        if keep < bytes.len() {
            replay.quarantined += 1;
        }
        let text = String::from_utf8_lossy(&bytes[..keep]);
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Some(entries) = parse_record(line) else {
                replay.quarantined += 1;
                continue;
            };
            let kind = match field(&entries, "record") {
                Some(Value::Str(s)) => s.clone(),
                _ => {
                    replay.quarantined += 1;
                    continue;
                }
            };
            match kind.as_str() {
                "header" => {
                    let version = uint_field(&entries, "version").unwrap_or(0);
                    if version != JOURNAL_FORMAT_VERSION {
                        return Err(Grade10Error::Serialization(format!(
                            "journal {} is format version {version}, this build reads {JOURNAL_FORMAT_VERSION}",
                            path.display()
                        )));
                    }
                }
                "started" | "finished" | "failed" | "skipped" => {
                    let Some(hash) = uint_field(&entries, "hash") else {
                        replay.quarantined += 1;
                        continue;
                    };
                    match kind.as_str() {
                        "started" => {
                            replay.started.insert(hash);
                        }
                        "finished" => {
                            replay.finished.insert(hash);
                            replay.failed.remove(&hash);
                        }
                        "failed" => {
                            let error = match field(&entries, "error") {
                                Some(Value::Str(s)) => s.clone(),
                                _ => String::new(),
                            };
                            let attempts = uint_field(&entries, "attempts").unwrap_or(0) as u32;
                            replay.failed.insert(hash, (error, attempts));
                        }
                        _ => {} // "skipped" is informational
                    }
                }
                _ => replay.quarantined += 1, // unknown record kind
            }
        }
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| Grade10Error::Io(format!("opening {}: {e}", path.display())))?;
        file.set_len(keep as u64)
            .map_err(|e| Grade10Error::Io(format!("truncating torn tail of {}: {e}", path.display())))?;
        let mut journal = Journal { file };
        use std::io::Seek as _;
        journal
            .file
            .seek(std::io::SeekFrom::End(0))
            .map_err(|e| Grade10Error::Io(format!("seeking {}: {e}", path.display())))?;
        if keep == 0 {
            // Everything (header included) was torn away: re-establish one.
            journal.append(
                &[
                    ("record", Value::Str("header".to_string())),
                    ("version", Value::UInt(JOURNAL_FORMAT_VERSION)),
                    ("campaign", Value::Str(campaign.to_string())),
                ],
                true,
            )?;
        }
        Ok((journal, replay))
    }

    fn append(&mut self, fields: &[(&str, Value)], durable: bool) -> Result<(), Grade10Error> {
        let line = render_record(fields)?;
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| Grade10Error::Io(format!("journal append: {e}")))?;
        if durable {
            self.file
                .sync_all()
                .map_err(|e| Grade10Error::Io(format!("journal fsync: {e}")))?;
        }
        Ok(())
    }

    /// Records that a mix is about to run (write-ahead, not fsync'd — a
    /// lost `started` record only costs resume some precision about what
    /// was in flight).
    pub fn record_started(&mut self, mix: &str, hash: u64) -> Result<(), Grade10Error> {
        self.append(
            &[
                ("record", Value::Str("started".to_string())),
                ("mix", Value::Str(mix.to_string())),
                ("hash", Value::UInt(hash)),
            ],
            false,
        )
    }

    /// Records a durable completion marker (fsync'd; the mix's outcome is
    /// already in the store when this lands).
    pub fn record_finished(&mut self, mix: &str, hash: u64, attempts: u32) -> Result<(), Grade10Error> {
        self.append(
            &[
                ("record", Value::Str("finished".to_string())),
                ("mix", Value::Str(mix.to_string())),
                ("hash", Value::UInt(hash)),
                ("attempts", Value::UInt(u64::from(attempts))),
            ],
            true,
        )
    }

    /// Records a durable permanent-failure marker (fsync'd).
    pub fn record_failed(
        &mut self,
        mix: &str,
        hash: u64,
        error: &str,
        attempts: u32,
    ) -> Result<(), Grade10Error> {
        self.append(
            &[
                ("record", Value::Str("failed".to_string())),
                ("mix", Value::Str(mix.to_string())),
                ("hash", Value::UInt(hash)),
                ("error", Value::Str(error.to_string())),
                ("attempts", Value::UInt(u64::from(attempts))),
            ],
            true,
        )
    }

    /// Records that resume served a mix from the store without running it.
    pub fn record_skipped(&mut self, mix: &str, hash: u64) -> Result<(), Grade10Error> {
        self.append(
            &[
                ("record", Value::Str("skipped".to_string())),
                ("mix", Value::Str(mix.to_string())),
                ("hash", Value::UInt(hash)),
            ],
            false,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("g10-journal-{name}-{}", std::process::id()))
    }

    #[test]
    fn full_lifecycle_replays() {
        let path = tmp("life");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::create(&path, "c").expect("create");
            j.record_started("a", 1).expect("rec");
            j.record_finished("a", 1, 1).expect("rec");
            j.record_started("b", 2).expect("rec");
            j.record_failed("b", 2, "boom", 3).expect("rec");
            j.record_started("c", 3).expect("rec");
        }
        let (_j, replay) = Journal::open_resume(&path, "c").expect("resume");
        assert!(replay.finished.contains(&1));
        assert_eq!(replay.failed.get(&2), Some(&("boom".to_string(), 3)));
        assert_eq!(replay.interrupted(), BTreeSet::from([3]));
        assert_eq!(replay.quarantined, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_refuses_existing_journal() {
        let path = tmp("dup");
        let _ = std::fs::remove_file(&path);
        let _j = Journal::create(&path, "c").expect("create");
        assert!(Journal::create(&path, "c").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::create(&path, "c").expect("create");
            j.record_finished("a", 1, 1).expect("rec");
        }
        // Simulate a SIGKILL mid-append: a record prefix with no newline.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).expect("open");
            f.write_all(b"{\"record\":\"finis").expect("tear");
        }
        let (mut j, replay) = Journal::open_resume(&path, "c").expect("resume");
        assert_eq!(replay.quarantined, 1, "torn tail counted");
        assert!(replay.finished.contains(&1), "intact records survive");
        j.record_finished("b", 2, 1).expect("append after truncate");
        drop(j);
        let (_j, replay) = Journal::open_resume(&path, "c").expect("second resume");
        assert_eq!(replay.quarantined, 0, "tail was repaired");
        assert!(replay.finished.contains(&2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_interior_record_is_quarantined_not_fatal() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::create(&path, "c").expect("create");
            j.record_finished("a", 1, 1).expect("rec");
            j.record_finished("b", 2, 1).expect("rec");
        }
        // Flip a byte inside the first finished record's mix name; its
        // checksum no longer matches.
        let mut bytes = std::fs::read(&path).expect("read");
        let pos = bytes
            .windows(3)
            .position(|w| w == b"\"a\"")
            .expect("find payload");
        bytes[pos + 1] = b'z';
        std::fs::write(&path, &bytes).expect("rewrite");
        let (_j, replay) = Journal::open_resume(&path, "c").expect("resume");
        assert_eq!(replay.quarantined, 1);
        assert!(!replay.finished.contains(&1), "damaged record not trusted");
        assert!(replay.finished.contains(&2), "later records unaffected");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn future_format_version_is_refused() {
        let path = tmp("ver");
        let _ = std::fs::remove_file(&path);
        let line = render_record(&[
            ("record", Value::Str("header".to_string())),
            ("version", Value::UInt(JOURNAL_FORMAT_VERSION + 1)),
            ("campaign", Value::Str("c".to_string())),
        ])
        .expect("render");
        std::fs::write(&path, line).expect("write");
        assert!(Journal::open_resume(&path, "c").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_of_missing_journal_is_a_fresh_start() {
        let path = tmp("fresh");
        let _ = std::fs::remove_file(&path);
        let (_j, replay) = Journal::open_resume(&path, "c").expect("resume");
        assert!(replay.finished.is_empty());
        assert!(path.exists(), "journal created with header");
        let _ = std::fs::remove_file(&path);
    }
}
