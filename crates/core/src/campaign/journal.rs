//! The campaign's write-ahead journal — and, since format version 2, the
//! fleet's only coordination layer.
//!
//! Several `grade10 campaign` worker processes drain one mix matrix by
//! appending to one shared `journal.jsonl`: a worker appends a `claimed`
//! record (worker id + lease deadline) before running a mix, `renewed`
//! heartbeats while it runs, and an fsync'd `finished` / `failed` /
//! `quarantined` terminal marker after. Ownership is therefore recoverable
//! state, not in-memory state — a worker that dies mid-mix simply stops
//! renewing, its lease expires, and any peer reclaims the mix by appending
//! a fresh claim. Claim races resolve by file order: the *first* claim
//! over an unexpired lease wins, and every reader agrees because earlier
//! records never arrive later in anyone's view of the file.
//!
//! The format is JSON lines — one self-checking record per line, each
//! carrying an FNV checksum of its own payload. Reload tolerates exactly
//! the damage a SIGKILL can cause: a torn final line (no trailing newline)
//! is truncated away by the resume leader before appending resumes (live
//! joiners and `--status` readers instead just ignore it), and any
//! complete line that fails to parse or checksum is quarantined — counted
//! and skipped, never fatal and never trusted. Version-1 journals (the
//! single-process format: `started` instead of `claimed`, no leases)
//! replay unchanged; journals from a *newer* format version are refused
//! with [`Grade10Error::UnsupportedVersion`].

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::Path;

use serde::Value;

use crate::error::Grade10Error;

use crate::hash::fnv1a;

/// Version tag in the journal header record. Bump on any change to the
/// record schema. Version 2 added the lease records (`claimed`,
/// `renewed`), the epoch marker (`launch`), and the `quarantined` /
/// `reopened` terminal corrections; version-1 journals stay readable.
pub const JOURNAL_FORMAT_VERSION: u64 = 2;

/// Oldest journal format this build still replays.
pub const MIN_JOURNAL_FORMAT_VERSION: u64 = 1;

/// An open, append-only campaign journal. The handle is opened in append
/// mode, so several processes writing whole small records interleave at
/// record granularity and the file's total order arbitrates claim races.
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
}

/// The live lease on one mix, as reconstructed from the journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClaimState {
    /// Worker id holding the lease.
    pub worker: String,
    /// Lease deadline, ms since the Unix epoch (renewals extend it).
    pub deadline_ms: u64,
    /// When the claim was appended, ms since the Unix epoch.
    pub at_ms: u64,
}

/// One permanently failed mix, as reconstructed from the journal. Carries
/// everything a campaign [`Incident`](crate::supervise::Incident) needs,
/// so any worker renders the same incident table from the journal alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailedMix {
    /// Display string of the classified error.
    pub error: String,
    /// Ladder attempts consumed.
    pub attempts: u32,
    /// [`IncidentKind`](crate::supervise::IncidentKind) name (v1 records
    /// lack it; replay defaults to `"error"`).
    pub kind: String,
}

/// What replaying a journal learned, keyed by mix content hash. Also the
/// incremental view a live worker keeps: [`absorb`](Self::absorb) applies
/// any records appended since the last refresh.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Mixes with a durable `finished` (or store-served `skipped`) marker.
    pub finished: BTreeSet<u64>,
    /// Mixes that failed permanently *this epoch*. A `launch` epoch marker
    /// reopens them — a past failure earns a fresh chance on resume, and a
    /// deterministic failure will simply fail identically.
    pub failed: BTreeMap<u64, FailedMix>,
    /// Mixes quarantined as poisoned: hash → consecutive claimants lost.
    /// Terminal across epochs; resume does not retry a mix that keeps
    /// killing its workers.
    pub poisoned: BTreeMap<u64, u32>,
    /// Live (not yet terminal) leases.
    pub claims: BTreeMap<u64, ClaimState>,
    /// Consecutive claims abandoned without a terminal record, per mix —
    /// the poisoned-mix ladder. Reset by any terminal record.
    pub abandoned: BTreeMap<u64, u32>,
    /// Mixes that were ever claimed or `started` (v1), for
    /// [`interrupted`](Self::interrupted).
    pub started: BTreeSet<u64>,
    /// Records skipped on reload: checksum mismatches, unparseable lines,
    /// unknown record kinds, and (for the truncating resume path) the torn
    /// tail.
    pub quarantined: usize,
    /// Byte offset through which the journal has been absorbed; records
    /// at or past this offset have not been seen yet.
    pub consumed: usize,
}

impl JournalReplay {
    /// Mixes that were in flight when a previous fleet died — claimed or
    /// started, never terminal.
    pub fn interrupted(&self) -> BTreeSet<u64> {
        self.started
            .iter()
            .filter(|h| !self.terminal(**h))
            .copied()
            .collect()
    }

    /// True when the mix has reached a terminal state this epoch:
    /// finished, failed, or quarantined as poisoned.
    pub fn terminal(&self, hash: u64) -> bool {
        self.finished.contains(&hash)
            || self.failed.contains_key(&hash)
            || self.poisoned.contains_key(&hash)
    }

    /// Absorbs every *complete* record in `bytes` past
    /// [`consumed`](Self::consumed) and advances the offset. Bytes after
    /// the last newline are a possibly-still-growing tail and are left for
    /// the next refresh. Only a header from a future format version is an
    /// error; damaged lines are quarantined and skipped.
    pub fn absorb(&mut self, bytes: &[u8], path: &Path) -> Result<(), Grade10Error> {
        let end = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        if end <= self.consumed {
            return Ok(());
        }
        let text = String::from_utf8_lossy(&bytes[self.consumed..end]);
        for line in text.lines() {
            self.apply_line(line, path)?;
        }
        self.consumed = end;
        Ok(())
    }

    fn apply_line(&mut self, line: &str, path: &Path) -> Result<(), Grade10Error> {
        if line.trim().is_empty() {
            return Ok(());
        }
        let Some(entries) = parse_record(line) else {
            self.quarantined += 1;
            return Ok(());
        };
        let kind = match field(&entries, "record") {
            Some(Value::Str(s)) => s.clone(),
            _ => {
                self.quarantined += 1;
                return Ok(());
            }
        };
        match kind.as_str() {
            "header" => {
                let version = uint_field(&entries, "version").unwrap_or(0);
                if !(MIN_JOURNAL_FORMAT_VERSION..=JOURNAL_FORMAT_VERSION).contains(&version) {
                    return Err(Grade10Error::UnsupportedVersion(format!(
                        "journal {} is format version {version}, this build reads versions \
                         {MIN_JOURNAL_FORMAT_VERSION} through {JOURNAL_FORMAT_VERSION}",
                        path.display()
                    )));
                }
            }
            "launch" => {
                // Epoch boundary: the previous fleet is dead. Its live
                // claims were abandoned (they count toward the poisoned
                // ladder), and its permanent failures reopen for a fresh
                // chance.
                let stale: Vec<u64> = self.claims.keys().copied().collect();
                for h in stale {
                    self.claims.remove(&h);
                    *self.abandoned.entry(h).or_insert(0) += 1;
                }
                self.failed.clear();
            }
            "started" => {
                // v1 write-ahead marker: in flight, but no lease to track.
                if let Some(hash) = uint_field(&entries, "hash") {
                    self.started.insert(hash);
                } else {
                    self.quarantined += 1;
                }
            }
            "claimed" => {
                let (Some(hash), Some(at), Some(lease)) = (
                    uint_field(&entries, "hash"),
                    uint_field(&entries, "at"),
                    uint_field(&entries, "lease"),
                ) else {
                    self.quarantined += 1;
                    return Ok(());
                };
                let worker = match field(&entries, "worker") {
                    Some(Value::Str(s)) => s.clone(),
                    _ => {
                        self.quarantined += 1;
                        return Ok(());
                    }
                };
                self.started.insert(hash);
                if self.terminal(hash) {
                    return Ok(()); // late claim over a decided mix
                }
                match self.claims.get(&hash) {
                    // First claim over an unexpired lease wins; a later
                    // claim in the race window is ignored — every reader
                    // sees the same file order, so every reader agrees.
                    Some(prev) if at <= prev.deadline_ms => {}
                    other => {
                        if other.is_some() {
                            // Takeover of an expired lease: the previous
                            // claimant died without a terminal record.
                            *self.abandoned.entry(hash).or_insert(0) += 1;
                        }
                        self.claims.insert(
                            hash,
                            ClaimState { worker, deadline_ms: lease, at_ms: at },
                        );
                    }
                }
            }
            "renewed" => {
                let (Some(hash), Some(lease)) =
                    (uint_field(&entries, "hash"), uint_field(&entries, "lease"))
                else {
                    self.quarantined += 1;
                    return Ok(());
                };
                let worker = match field(&entries, "worker") {
                    Some(Value::Str(s)) => s.clone(),
                    _ => {
                        self.quarantined += 1;
                        return Ok(());
                    }
                };
                if let Some(claim) = self.claims.get_mut(&hash) {
                    if claim.worker == worker {
                        claim.deadline_ms = claim.deadline_ms.max(lease);
                    }
                }
            }
            "finished" | "failed" | "skipped" | "quarantined" | "reopened" => {
                let Some(hash) = uint_field(&entries, "hash") else {
                    self.quarantined += 1;
                    return Ok(());
                };
                if kind != "reopened" && self.terminal(hash) {
                    // First terminal record wins: a double completion from
                    // a reclaim race changes nothing, it only clears any
                    // straggler lease.
                    self.claims.remove(&hash);
                    return Ok(());
                }
                self.claims.remove(&hash);
                self.abandoned.remove(&hash);
                match kind.as_str() {
                    // `skipped` means a resume served the mix from the
                    // store: the outcome is durable, the mix is done.
                    "finished" | "skipped" => {
                        self.finished.insert(hash);
                        self.failed.remove(&hash);
                    }
                    "failed" => {
                        let error = match field(&entries, "error") {
                            Some(Value::Str(s)) => s.clone(),
                            _ => String::new(),
                        };
                        let attempts = uint_field(&entries, "attempts").unwrap_or(0) as u32;
                        let kind_name = match field(&entries, "kind") {
                            Some(Value::Str(s)) => s.clone(),
                            _ => "error".to_string(), // v1 records carry no kind
                        };
                        self.failed.insert(hash, FailedMix { error, attempts, kind: kind_name });
                    }
                    "quarantined" => {
                        let claims = uint_field(&entries, "claims").unwrap_or(0) as u32;
                        self.poisoned.insert(hash, claims);
                    }
                    // `reopened`: the resume leader found a `finished` mix
                    // whose store artifact was lost; undo the marker so
                    // the mix recomputes.
                    _ => {
                        self.finished.remove(&hash);
                        self.failed.remove(&hash);
                    }
                }
            }
            _ => self.quarantined += 1, // unknown record kind
        }
        Ok(())
    }
}

/// Serializes record fields plus a trailing checksum of them into one
/// journal line.
fn render_record(fields: &[(&str, Value)]) -> Result<String, Grade10Error> {
    let payload: Vec<(String, Value)> = fields
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    let crc = fnv1a(serde_json::to_string(&Value::Object(payload.clone()))?.as_bytes());
    let mut full = payload;
    full.push(("crc".to_string(), Value::UInt(crc)));
    let mut line = serde_json::to_string(&Value::Object(full))?;
    line.push('\n');
    Ok(line)
}

/// Parses one journal line, verifying its checksum. Returns the payload
/// entries (checksum removed) or `None` for any damaged line.
fn parse_record(line: &str) -> Option<Vec<(String, Value)>> {
    let Ok(Value::Object(mut entries)) = serde_json::from_str::<Value>(line) else {
        return None;
    };
    let (key, crc) = entries.pop()?;
    if key != "crc" {
        return None;
    }
    let Value::UInt(crc) = crc else { return None };
    let payload = Value::Object(entries);
    let expect = fnv1a(serde_json::to_string(&payload).ok()?.as_bytes());
    if crc != expect {
        return None;
    }
    let Value::Object(entries) = payload else {
        return None;
    };
    Some(entries)
}

fn field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn uint_field(entries: &[(String, Value)], key: &str) -> Option<u64> {
    match field(entries, key)? {
        Value::UInt(n) => Some(*n),
        _ => None,
    }
}

fn open_append(path: &Path) -> Result<std::fs::File, Grade10Error> {
    std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| Grade10Error::Io(format!("opening {}: {e}", path.display())))
}

impl Journal {
    /// Creates a fresh journal at `path` and writes its fsync'd header.
    /// Fails if the file already exists — starting a campaign over a live
    /// journal without `--resume` would silently fork its history.
    pub fn create(path: &Path, campaign: &str) -> Result<Journal, Grade10Error> {
        let file = std::fs::OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(path)
            .map_err(|e| Grade10Error::Io(format!("creating {}: {e}", path.display())))?;
        let mut journal = Journal { file };
        journal.append(
            &[
                ("record", Value::Str("header".to_string())),
                ("version", Value::UInt(JOURNAL_FORMAT_VERSION)),
                ("campaign", Value::Str(campaign.to_string())),
            ],
            true,
        )?;
        Ok(journal)
    }

    /// Opens an existing journal for resumption: replays its records,
    /// truncates any torn tail so appends start on a record boundary, and
    /// reopens for appending. **Destructive** — only the resume leader of
    /// a dead fleet may call this; a worker joining a live campaign uses
    /// [`open_join`](Self::open_join), which never truncates what a peer
    /// may still be writing. A missing file degenerates to
    /// [`create`](Self::create) — resuming nothing is a fresh start.
    pub fn open_resume(path: &Path, campaign: &str) -> Result<(Journal, JournalReplay), Grade10Error> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Journal::create(path, campaign)?, JournalReplay::default()));
            }
            Err(e) => return Err(Grade10Error::Io(format!("reading {}: {e}", path.display()))),
        };
        let mut replay = JournalReplay::default();
        // A record is only complete once its newline is on disk; anything
        // after the last newline is a torn tail from an unclean death.
        let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        if keep < bytes.len() {
            replay.quarantined += 1;
        }
        replay.absorb(&bytes[..keep], path)?;
        {
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| Grade10Error::Io(format!("opening {}: {e}", path.display())))?;
            file.set_len(keep as u64).map_err(|e| {
                Grade10Error::Io(format!("truncating torn tail of {}: {e}", path.display()))
            })?;
        }
        let mut journal = Journal { file: open_append(path)? };
        if keep == 0 {
            // Everything (header included) was torn away: re-establish one.
            journal.append(
                &[
                    ("record", Value::Str("header".to_string())),
                    ("version", Value::UInt(JOURNAL_FORMAT_VERSION)),
                    ("campaign", Value::Str(campaign.to_string())),
                ],
                true,
            )?;
            replay.consumed = 0;
        }
        Ok((journal, replay))
    }

    /// Opens a journal that another worker owns, for joining a live
    /// campaign: replays whatever complete records exist and opens for
    /// appending without truncating anything — a trailing partial line may
    /// be a peer's append in flight, not damage.
    pub fn open_join(path: &Path) -> Result<(Journal, JournalReplay), Grade10Error> {
        let bytes = std::fs::read(path)
            .map_err(|e| Grade10Error::Io(format!("reading {}: {e}", path.display())))?;
        let mut replay = JournalReplay::default();
        replay.absorb(&bytes, path)?;
        Ok((Journal { file: open_append(path)? }, replay))
    }

    /// Read-only replay for progress inspection (`--status`): no handle is
    /// kept, nothing is truncated, and a torn tail is ignored. Safe to run
    /// while workers are live.
    pub fn replay_snapshot(path: &Path) -> Result<JournalReplay, Grade10Error> {
        let bytes = std::fs::read(path)
            .map_err(|e| Grade10Error::Io(format!("reading {}: {e}", path.display())))?;
        let mut replay = JournalReplay::default();
        replay.absorb(&bytes, path)?;
        Ok(replay)
    }

    /// Refreshes a live view: absorbs any complete records appended (by
    /// this worker or any peer) since `replay` last looked.
    pub fn refresh(path: &Path, replay: &mut JournalReplay) -> Result<(), Grade10Error> {
        let bytes = std::fs::read(path)
            .map_err(|e| Grade10Error::Io(format!("reading {}: {e}", path.display())))?;
        replay.absorb(&bytes, path)
    }

    fn append(&mut self, fields: &[(&str, Value)], durable: bool) -> Result<(), Grade10Error> {
        let line = render_record(fields)?;
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| Grade10Error::Io(format!("journal append: {e}")))?;
        if durable {
            self.file
                .sync_all()
                .map_err(|e| Grade10Error::Io(format!("journal fsync: {e}")))?;
        }
        Ok(())
    }

    /// Records an epoch boundary (fsync'd): a new fleet is taking over a
    /// journal whose previous writers are dead. Replay treats claims
    /// before the marker as abandoned and reopens previous failures.
    pub fn record_launch(&mut self, worker: &str) -> Result<(), Grade10Error> {
        self.append(
            &[
                ("record", Value::Str("launch".to_string())),
                ("worker", Value::Str(worker.to_string())),
            ],
            true,
        )
    }

    /// Records a lease claim (fsync'd, so peers on a shared filesystem see
    /// it promptly): `worker` owns `mix` until `lease_deadline_ms`.
    pub fn record_claimed(
        &mut self,
        mix: &str,
        hash: u64,
        worker: &str,
        at_ms: u64,
        lease_deadline_ms: u64,
    ) -> Result<(), Grade10Error> {
        self.append(
            &[
                ("record", Value::Str("claimed".to_string())),
                ("mix", Value::Str(mix.to_string())),
                ("hash", Value::UInt(hash)),
                ("worker", Value::Str(worker.to_string())),
                ("at", Value::UInt(at_ms)),
                ("lease", Value::UInt(lease_deadline_ms)),
            ],
            true,
        )
    }

    /// Records a heartbeat (fsync'd): the claimant is alive and its lease
    /// now runs to `lease_deadline_ms`.
    pub fn record_renewed(
        &mut self,
        hash: u64,
        worker: &str,
        lease_deadline_ms: u64,
    ) -> Result<(), Grade10Error> {
        self.append(
            &[
                ("record", Value::Str("renewed".to_string())),
                ("hash", Value::UInt(hash)),
                ("worker", Value::Str(worker.to_string())),
                ("lease", Value::UInt(lease_deadline_ms)),
            ],
            true,
        )
    }

    /// Records a durable completion marker (fsync'd; the mix's outcome is
    /// already in the store when this lands).
    pub fn record_finished(&mut self, mix: &str, hash: u64, attempts: u32) -> Result<(), Grade10Error> {
        self.append(
            &[
                ("record", Value::Str("finished".to_string())),
                ("mix", Value::Str(mix.to_string())),
                ("hash", Value::UInt(hash)),
                ("attempts", Value::UInt(u64::from(attempts))),
            ],
            true,
        )
    }

    /// Records a durable permanent-failure marker (fsync'd). `kind` is the
    /// [`IncidentKind`](crate::supervise::IncidentKind) name, carried so
    /// any worker reconstructs the identical campaign incident from the
    /// journal alone.
    pub fn record_failed(
        &mut self,
        mix: &str,
        hash: u64,
        error: &str,
        attempts: u32,
        kind: &str,
    ) -> Result<(), Grade10Error> {
        self.append(
            &[
                ("record", Value::Str("failed".to_string())),
                ("mix", Value::Str(mix.to_string())),
                ("hash", Value::UInt(hash)),
                ("error", Value::Str(error.to_string())),
                ("attempts", Value::UInt(u64::from(attempts))),
                ("kind", Value::Str(kind.to_string())),
            ],
            true,
        )
    }

    /// Records that resume served a mix from the store without running it.
    pub fn record_skipped(&mut self, mix: &str, hash: u64) -> Result<(), Grade10Error> {
        self.append(
            &[
                ("record", Value::Str("skipped".to_string())),
                ("mix", Value::Str(mix.to_string())),
                ("hash", Value::UInt(hash)),
            ],
            false,
        )
    }

    /// Records that a mix was quarantined as poisoned (fsync'd): `claims`
    /// consecutive claimants died without recording an outcome, and the
    /// fleet will not feed it another worker.
    pub fn record_quarantined(
        &mut self,
        mix: &str,
        hash: u64,
        claims: u32,
    ) -> Result<(), Grade10Error> {
        self.append(
            &[
                ("record", Value::Str("quarantined".to_string())),
                ("mix", Value::Str(mix.to_string())),
                ("hash", Value::UInt(hash)),
                ("claims", Value::UInt(u64::from(claims))),
            ],
            true,
        )
    }

    /// Records that a `finished` marker was undone (fsync'd): the resume
    /// leader found its store artifact lost or corrupt, and the mix
    /// recomputes.
    pub fn record_reopened(&mut self, mix: &str, hash: u64) -> Result<(), Grade10Error> {
        self.append(
            &[
                ("record", Value::Str("reopened".to_string())),
                ("mix", Value::Str(mix.to_string())),
                ("hash", Value::UInt(hash)),
            ],
            true,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("g10-journal-{name}-{}", std::process::id()))
    }

    #[test]
    fn full_lifecycle_replays() {
        let path = tmp("life");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::create(&path, "c").expect("create");
            j.record_claimed("a", 1, "w1", 100, 1_100).expect("rec");
            j.record_finished("a", 1, 1).expect("rec");
            j.record_claimed("b", 2, "w1", 200, 1_200).expect("rec");
            j.record_failed("b", 2, "boom", 3, "panic").expect("rec");
            j.record_claimed("c", 3, "w2", 300, 1_300).expect("rec");
        }
        let (_j, replay) = Journal::open_resume(&path, "c").expect("resume");
        assert!(replay.finished.contains(&1));
        assert_eq!(
            replay.failed.get(&2),
            Some(&FailedMix { error: "boom".into(), attempts: 3, kind: "panic".into() })
        );
        assert_eq!(replay.interrupted(), BTreeSet::from([3]));
        assert_eq!(
            replay.claims.get(&3),
            Some(&ClaimState { worker: "w2".into(), deadline_ms: 1_300, at_ms: 300 })
        );
        assert_eq!(replay.quarantined, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn create_refuses_existing_journal() {
        let path = tmp("dup");
        let _ = std::fs::remove_file(&path);
        let _j = Journal::create(&path, "c").expect("create");
        assert!(Journal::create(&path, "c").is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn first_claim_wins_inside_the_lease() {
        let path = tmp("race");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path, "c").expect("create");
        j.record_claimed("a", 1, "w1", 100, 10_000).expect("rec");
        // A racing claim inside w1's lease loses, regardless of arriving
        // later in the file.
        j.record_claimed("a", 1, "w2", 150, 10_050).expect("rec");
        drop(j);
        let replay = Journal::replay_snapshot(&path).expect("snapshot");
        assert_eq!(replay.claims.get(&1).map(|c| c.worker.as_str()), Some("w1"));
        assert!(replay.abandoned.is_empty(), "a race is not an abandonment");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn expired_lease_takeover_counts_toward_poison() {
        let path = tmp("lease");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path, "c").expect("create");
        j.record_claimed("a", 1, "w1", 100, 1_000).expect("rec");
        j.record_renewed(1, "w1", 2_000).expect("rec");
        // Renewal by a non-owner is ignored.
        j.record_renewed(1, "w9", 99_000).expect("rec");
        // Claim after the renewed deadline: w1 is presumed dead.
        j.record_claimed("a", 1, "w2", 2_500, 3_500).expect("rec");
        drop(j);
        let replay = Journal::replay_snapshot(&path).expect("snapshot");
        assert_eq!(replay.claims.get(&1).map(|c| c.worker.as_str()), Some("w2"));
        assert_eq!(replay.abandoned.get(&1), Some(&1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn launch_reopens_failures_and_abandons_claims() {
        let path = tmp("launch");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path, "c").expect("create");
        j.record_claimed("a", 1, "w1", 100, 1_000).expect("rec");
        j.record_claimed("b", 2, "w1", 100, 1_000).expect("rec");
        j.record_failed("b", 2, "boom", 3, "panic").expect("rec");
        j.record_launch("w2").expect("rec");
        drop(j);
        let replay = Journal::replay_snapshot(&path).expect("snapshot");
        assert!(replay.failed.is_empty(), "failures reopen across epochs");
        assert!(replay.claims.is_empty(), "pre-boundary claims are dead");
        assert_eq!(replay.abandoned.get(&1), Some(&1));
        assert_eq!(replay.abandoned.get(&2), None, "terminal before the boundary");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn first_terminal_record_wins() {
        let path = tmp("term");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path, "c").expect("create");
        j.record_finished("a", 1, 1).expect("rec");
        // A reclaim race's late duplicate completion changes nothing.
        j.record_failed("a", 1, "late loser", 3, "error").expect("rec");
        j.record_quarantined("a", 1, 3).expect("rec");
        drop(j);
        let replay = Journal::replay_snapshot(&path).expect("snapshot");
        assert!(replay.finished.contains(&1));
        assert!(replay.failed.is_empty());
        assert!(replay.poisoned.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quarantined_and_reopened_are_replayed() {
        let path = tmp("poison");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path, "c").expect("create");
        j.record_quarantined("a", 1, 3).expect("rec");
        j.record_finished("b", 2, 1).expect("rec");
        j.record_reopened("b", 2).expect("rec");
        drop(j);
        let replay = Journal::replay_snapshot(&path).expect("snapshot");
        assert_eq!(replay.poisoned.get(&1), Some(&3));
        assert!(!replay.finished.contains(&2), "reopened undoes finished");
        assert!(!replay.terminal(2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::create(&path, "c").expect("create");
            j.record_finished("a", 1, 1).expect("rec");
        }
        // Simulate a SIGKILL mid-append: a record prefix with no newline.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).expect("open");
            f.write_all(b"{\"record\":\"finis").expect("tear");
        }
        // A non-destructive snapshot just ignores the tail.
        let snap = Journal::replay_snapshot(&path).expect("snapshot");
        assert_eq!(snap.quarantined, 0, "a growing tail is not damage");
        assert!(snap.finished.contains(&1));
        let (mut j, replay) = Journal::open_resume(&path, "c").expect("resume");
        assert_eq!(replay.quarantined, 1, "torn tail counted");
        assert!(replay.finished.contains(&1), "intact records survive");
        j.record_finished("b", 2, 1).expect("append after truncate");
        drop(j);
        let (_j, replay) = Journal::open_resume(&path, "c").expect("second resume");
        assert_eq!(replay.quarantined, 0, "tail was repaired");
        assert!(replay.finished.contains(&2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_interior_record_is_quarantined_not_fatal() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::create(&path, "c").expect("create");
            j.record_finished("a", 1, 1).expect("rec");
            j.record_finished("b", 2, 1).expect("rec");
        }
        // Flip a byte inside the first finished record's mix name; its
        // checksum no longer matches.
        let mut bytes = std::fs::read(&path).expect("read");
        let pos = bytes
            .windows(3)
            .position(|w| w == b"\"a\"")
            .expect("find payload");
        bytes[pos + 1] = b'z';
        std::fs::write(&path, &bytes).expect("rewrite");
        let (_j, replay) = Journal::open_resume(&path, "c").expect("resume");
        assert_eq!(replay.quarantined, 1);
        assert!(!replay.finished.contains(&1), "damaged record not trusted");
        assert!(replay.finished.contains(&2), "later records unaffected");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_1_journals_replay_unchanged() {
        let path = tmp("v1");
        let _ = std::fs::remove_file(&path);
        let mut text = String::new();
        for fields in [
            vec![
                ("record", Value::Str("header".into())),
                ("version", Value::UInt(1)),
                ("campaign", Value::Str("c".into())),
            ],
            vec![
                ("record", Value::Str("started".into())),
                ("mix", Value::Str("a".into())),
                ("hash", Value::UInt(1)),
            ],
            vec![
                ("record", Value::Str("finished".into())),
                ("mix", Value::Str("a".into())),
                ("hash", Value::UInt(1)),
                ("attempts", Value::UInt(1)),
            ],
            vec![
                ("record", Value::Str("started".into())),
                ("mix", Value::Str("b".into())),
                ("hash", Value::UInt(2)),
            ],
            vec![
                ("record", Value::Str("failed".into())),
                ("mix", Value::Str("b".into())),
                ("hash", Value::UInt(2)),
                ("error", Value::Str("boom".into())),
                ("attempts", Value::UInt(3)),
            ],
            vec![
                ("record", Value::Str("started".into())),
                ("mix", Value::Str("c".into())),
                ("hash", Value::UInt(3)),
            ],
        ] {
            text.push_str(&render_record(&fields).expect("render"));
        }
        std::fs::write(&path, text).expect("write");
        let (_j, replay) = Journal::open_resume(&path, "c").expect("resume");
        assert!(replay.finished.contains(&1));
        let failed = replay.failed.get(&2).expect("failed replayed");
        assert_eq!(failed.error, "boom");
        assert_eq!(failed.attempts, 3);
        assert_eq!(failed.kind, "error", "v1 records default the kind");
        assert_eq!(replay.interrupted(), BTreeSet::from([3]));
        assert_eq!(replay.quarantined, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn future_format_version_is_refused() {
        let path = tmp("ver");
        let _ = std::fs::remove_file(&path);
        let line = render_record(&[
            ("record", Value::Str("header".to_string())),
            ("version", Value::UInt(JOURNAL_FORMAT_VERSION + 1)),
            ("campaign", Value::Str("c".to_string())),
        ])
        .expect("render");
        std::fs::write(&path, line).expect("write");
        let err = Journal::open_resume(&path, "c").unwrap_err();
        assert!(
            matches!(err, Grade10Error::UnsupportedVersion(_)),
            "classified for callers: {err}"
        );
        assert!(err.to_string().contains("format version 3"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_of_missing_journal_is_a_fresh_start() {
        let path = tmp("fresh");
        let _ = std::fs::remove_file(&path);
        let (_j, replay) = Journal::open_resume(&path, "c").expect("resume");
        assert!(replay.finished.is_empty());
        assert!(path.exists(), "journal created with header");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn incremental_refresh_absorbs_only_new_records() {
        let path = tmp("incr");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path, "c").expect("create");
        j.record_finished("a", 1, 1).expect("rec");
        let mut view = Journal::replay_snapshot(&path).expect("snapshot");
        assert!(view.finished.contains(&1));
        j.record_finished("b", 2, 1).expect("rec");
        j.record_claimed("c", 3, "w1", 100, 1_000).expect("rec");
        Journal::refresh(&path, &mut view).expect("refresh");
        assert!(view.finished.contains(&2));
        assert!(view.claims.contains_key(&3));
        let _ = std::fs::remove_file(&path);
    }
}
