//! Screening campaigns under a durable robustness envelope.
//!
//! A campaign is the fleet-screening methodology promoted to a
//! first-class citizen: a declarative spec (workload × graph scale ×
//! engine × partitioning × fault plan) expands into a deterministic mix
//! matrix, and every mix runs under the same protections Grade10 gives
//! individual characterizations — plus durability across process death:
//!
//! - **Result store** ([`store`]): every finished mix is persisted under
//!   a content hash of its spec entry and the code version, written
//!   atomically. Re-launching skips finished work; editing one axis
//!   value re-runs exactly the affected mixes; bumping
//!   [`CODE_VERSION`] re-runs everything.
//! - **Write-ahead journal** ([`journal`]): append-only, self-checking
//!   records with fsync'd completion markers. A SIGKILL'd campaign is
//!   resumable with `--resume`; torn or corrupt records are quarantined,
//!   never trusted and never fatal.
//! - **Retry ladder** ([`scheduler`]): failed mixes retry with bounded
//!   exponential backoff and deterministic jitter, escalating strict →
//!   lenient → partial; a mix that exhausts the ladder becomes a
//!   campaign-level [`Incident`](crate::supervise::Incident) instead of
//!   aborting the campaign.
//!
//! The final report (text + JSON, rendered by
//! [`report::campaign_report`](crate::report::campaign_report)) ranks
//! mixes by makespan, flags configurations whose bottleneck classes
//! differ from the rest of the matrix, and carries the incident log — and
//! is a pure function of the outcomes, so a resumed campaign's report is
//! byte-identical to an uninterrupted one.

mod journal;
mod scheduler;
mod spec;
mod store;

// Re-exported from the shared hash module for backwards compatibility;
// the implementation lives in [`crate::hash`] so other subsystems (the
// binary trace format's section checksums) share one FNV-1a.
pub use crate::hash::{fnv1a, fnv1a_extend};
pub use journal::{
    ClaimState, FailedMix, Journal, JournalReplay, JOURNAL_FORMAT_VERSION,
    MIN_JOURNAL_FORMAT_VERSION,
};
pub use scheduler::{
    campaign_status, ladder_mode, load_manifest, run_campaign, CampaignOptions, CampaignRun,
    CampaignStatus, MixAttempt, MixMode,
};
pub use spec::{CampaignSpec, MixSpec, CODE_VERSION};
pub(crate) use store::quarantine;
pub use store::{atomic_write, MixOutcome, Store};
