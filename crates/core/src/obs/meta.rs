//! The meta-models: Grade10's own pipeline described in Grade10's terms.
//!
//! The *meta execution model* is the hand-written phase hierarchy of the
//! characterization pipeline itself (ingest → demand → upsample →
//! attribute → bottleneck → report, with parallel upsampling workers
//! nested under `upsample`). The *meta resource model* is one CPU of
//! capacity 1.0 per recorder thread. A recorded [`MetaTrace`] converts
//! into the standard raw-input formats ([`RawEvent`] stream + monitoring
//! [`RawSeries`]), so the self-trace flows through the exact same
//! ingestion and attribution code as any external framework's logs.

use crate::model::{
    AttributionRule, ExecutionModel, ExecutionModelBuilder, ModelBundle, Repeat, ResourceModel,
    RuleSet,
};
use crate::obs::recorder::{MetaTrace, SpanRecord, Stage};
use crate::parse::{RawEvent, RawEventKind, RawPath};
use crate::trace::repair::RawSeries;
use crate::trace::resource::{Measurement, ResourceInstance};
use crate::trace::Nanos;

/// Resource kind used for recorder-thread CPU in the meta resource model.
pub const META_CPU: &str = "cpu";

/// Name of the meta execution model's root phase type.
pub const META_ROOT: &str = "pipeline";

/// Builds the meta execution model and its attribution rules: every
/// pipeline stage demands its thread's CPU as `Variable(1.0)`.
pub fn meta_model() -> (ExecutionModel, RuleSet) {
    let mut b = ExecutionModelBuilder::new(META_ROOT);
    let root = b.root();
    // Sequential: one characterization runs each stage once, but a session
    // may record several runs back to back.
    let ingest = b.child(root, Stage::Ingest.name(), Repeat::Sequential);
    let demand = b.child(root, Stage::Demand.name(), Repeat::Sequential);
    let upsample = b.child(root, Stage::Upsample.name(), Repeat::Sequential);
    let attribute = b.child(root, Stage::Attribute.name(), Repeat::Sequential);
    let bottleneck = b.child(root, Stage::Bottleneck.name(), Repeat::Sequential);
    let report = b.child(root, Stage::Report.name(), Repeat::Sequential);
    let worker = b.child(upsample, Stage::Worker.name(), Repeat::Parallel);
    // Incident spans (failed supervised attempts) can appear anywhere in
    // the run, so the stage is unordered with respect to the others.
    let incident = b.child(root, Stage::Incident.name(), Repeat::Sequential);
    b.edge(ingest, demand);
    b.edge(demand, upsample);
    b.edge(upsample, attribute);
    b.edge(attribute, bottleneck);
    b.edge(bottleneck, report);
    let model = b.build();

    let mut rules = RuleSet::new().with_default(AttributionRule::None);
    for ty in [
        ingest, demand, upsample, attribute, bottleneck, report, worker, incident,
    ] {
        rules = rules.rule(ty, META_CPU, AttributionRule::Variable(1.0));
    }
    (model, rules)
}

/// The meta resource model: recorder-thread CPU as a consumable.
pub fn meta_resource_model() -> ResourceModel {
    ResourceModel::new().consumable(META_CPU)
}

/// The complete meta-model bundle, exportable like any framework model so
/// `analyze` can round-trip an exported self-trace.
pub fn meta_bundle() -> ModelBundle {
    let (execution, rules) = meta_model();
    ModelBundle {
        framework: "grade10-self".to_string(),
        notes: "Grade10's own characterization pipeline: phases are the \
                pipeline stages, resources are recorder threads (capacity \
                1.0 CPU each). Recorded by grade10_core::obs."
            .to_string(),
        execution,
        rules,
        resources: meta_resource_model(),
    }
}

fn path(segs: &[(&str, u32)]) -> RawPath {
    segs.iter().map(|(n, k)| (n.to_string(), *k)).collect()
}

fn phase_events(out: &mut Vec<(Nanos, u8, u32, RawEvent)>, p: RawPath, start: Nanos, end: Nanos, machine: u16) {
    let depth = p.len() as u32;
    out.push((
        start,
        0,
        depth,
        RawEvent {
            time: start,
            machine,
            thread: 0,
            kind: RawEventKind::PhaseStart { path: p.clone() },
        },
    ));
    // At equal timestamps children must close before their parents, so end
    // events sort by *descending* depth.
    out.push((
        end,
        1,
        u32::MAX - depth,
        RawEvent {
            time: end,
            machine,
            thread: 0,
            kind: RawEventKind::PhaseEnd { path: p },
        },
    ));
}

impl MetaTrace {
    /// Converts the recorded spans into a Grade10 raw event stream against
    /// [`meta_model`]: one `pipeline` root spanning the session, one phase
    /// instance per stage span (keyed by occurrence), worker spans nested
    /// under the `upsample` instance that contains them. The stream is
    /// sorted and satisfies the strict ingestion contract.
    pub fn to_raw_events(&self) -> Vec<RawEvent> {
        let mut out: Vec<(Nanos, u8, u32, RawEvent)> = Vec::new();
        phase_events(&mut out, path(&[(META_ROOT, 0)]), 0, self.end, 0);

        // Stage instances on the recording thread, keyed per occurrence.
        let mut next_key = [0u32; Stage::ALL.len()];
        let key_slot = |stage: Stage| Stage::ALL.iter().position(|&s| s == stage).unwrap_or(0);
        let mut upsamples: Vec<(Nanos, Nanos, u32, u32)> = Vec::new(); // (start, end, key, next worker key)
        for s in self.spans.iter().filter(|s| s.stage != Stage::Worker) {
            let slot = key_slot(s.stage);
            let key = next_key[slot];
            next_key[slot] += 1;
            if s.stage == Stage::Upsample {
                upsamples.push((s.start, s.end, key, 0));
            }
            phase_events(
                &mut out,
                path(&[(META_ROOT, 0), (s.stage.name(), key)]),
                s.start,
                s.end,
                s.thread,
            );
        }

        // Worker spans nest under the upsample occurrence containing them.
        for w in self.spans.iter().filter(|s| s.stage == Stage::Worker) {
            let Some(u) = upsamples
                .iter_mut()
                .find(|u| u.0 <= w.start && w.end <= u.1)
            else {
                // A worker that outlived its upsample scope (impossible by
                // construction, but recorded input is data, not an oracle).
                continue;
            };
            let wkey = u.3;
            u.3 += 1;
            let ukey = u.2;
            phase_events(
                &mut out,
                path(&[
                    (META_ROOT, 0),
                    (Stage::Upsample.name(), ukey),
                    (Stage::Worker.name(), wkey),
                ]),
                w.start,
                w.end,
                w.thread,
            );
        }

        out.sort_by_key(|a| (a.0, a.1, a.2));
        out.into_iter().map(|(_, _, _, ev)| ev).collect()
    }

    /// Synthesizes per-thread CPU monitoring from the spans: each recorder
    /// thread becomes a `cpu` resource of capacity 1.0 whose windows carry
    /// the thread's busy fraction (union of its open spans). `window` is
    /// the monitoring window width in nanoseconds — keep it a small
    /// multiple of the characterization timeslice so upsampling has
    /// something to do, exactly like real coarse monitoring.
    pub fn to_raw_series(&self, window: Nanos) -> Vec<RawSeries> {
        let window = window.max(1);
        if self.end == 0 {
            return Vec::new();
        }
        let mut threads: Vec<u16> = self.spans.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        if threads.is_empty() {
            threads.push(0);
        }

        threads
            .into_iter()
            .map(|t| {
                let spans: Vec<&SpanRecord> =
                    self.spans.iter().filter(|s| s.thread == t).collect();
                let busy = merge_intervals(&spans);
                let mut measurements = Vec::new();
                let mut w0 = 0;
                while w0 < self.end {
                    let w1 = (w0 + window).min(self.end);
                    let occupied: u128 = busy
                        .iter()
                        .map(|&(a, b)| (b.min(w1).saturating_sub(a.max(w0))) as u128)
                        .sum();
                    measurements.push(Measurement {
                        start: w0,
                        end: w1,
                        avg: occupied as f64 / (w1 - w0) as f64,
                    });
                    w0 = w1;
                }
                RawSeries {
                    instance: ResourceInstance {
                        kind: META_CPU.to_string(),
                        machine: Some(t),
                        capacity: 1.0,
                    },
                    measurements,
                }
            })
            .collect()
    }
}

/// Union of (possibly nested) span intervals, sorted and disjoint.
fn merge_intervals(spans: &[&SpanRecord]) -> Vec<(Nanos, Nanos)> {
    let mut iv: Vec<(Nanos, Nanos)> = spans.iter().map(|s| (s.start, s.end)).collect();
    iv.sort_unstable();
    let mut out: Vec<(Nanos, Nanos)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        match out.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::repair::{ingest, IngestConfig};

    fn sample_trace() -> MetaTrace {
        let spans = vec![
            SpanRecord { stage: Stage::Ingest, thread: 0, start: 0, end: 100, allocs: 0, alloc_bytes: 0 },
            SpanRecord { stage: Stage::Demand, thread: 0, start: 100, end: 250, allocs: 0, alloc_bytes: 0 },
            SpanRecord { stage: Stage::Upsample, thread: 0, start: 250, end: 600, allocs: 0, alloc_bytes: 0 },
            SpanRecord { stage: Stage::Worker, thread: 1, start: 260, end: 500, allocs: 0, alloc_bytes: 0 },
            SpanRecord { stage: Stage::Worker, thread: 2, start: 270, end: 590, allocs: 0, alloc_bytes: 0 },
            SpanRecord { stage: Stage::Attribute, thread: 0, start: 600, end: 800, allocs: 0, alloc_bytes: 0 },
            SpanRecord { stage: Stage::Bottleneck, thread: 0, start: 800, end: 950, allocs: 0, alloc_bytes: 0 },
            SpanRecord { stage: Stage::Report, thread: 0, start: 950, end: 1000, allocs: 0, alloc_bytes: 0 },
        ];
        MetaTrace { spans, end: 1000 }
    }

    #[test]
    fn meta_model_has_all_stages() {
        let (model, rules) = meta_model();
        for stage in Stage::ALL {
            let ty = model
                .find_by_name(stage.name())
                .unwrap_or_else(|| panic!("missing stage {stage:?}"));
            assert_eq!(rules.get(ty, META_CPU), AttributionRule::Variable(1.0));
        }
        assert!(meta_resource_model().find(META_CPU).is_some());
        let bundle = meta_bundle();
        let round = ModelBundle::from_json(&bundle.to_json()).expect("bundle round-trips");
        assert_eq!(round.framework, "grade10-self");
    }

    #[test]
    fn raw_events_pass_strict_ingestion() {
        let trace = sample_trace();
        let (model, _rules) = meta_model();
        let events = trace.to_raw_events();
        let series = trace.to_raw_series(200);
        let input = ingest(&model, &events, &series, &IngestConfig::default())
            .expect("meta trace must satisfy the strict contract");
        assert!(input.report.is_clean());
        // Root + 6 stage spans + 2 workers.
        assert_eq!(input.trace.instances().len(), 9);
        assert_eq!(input.trace.makespan_end(), 1000);
        // Workers are children of the upsample instance.
        let worker_ty = model.find_by_name("worker").expect("worker type");
        for w in input.trace.instances_of_type(worker_ty) {
            let parent = w.parent.expect("worker has a parent");
            let upsample_ty = model.find_by_name("upsample").expect("upsample type");
            assert_eq!(input.trace.instance(parent).type_id, upsample_ty);
        }
    }

    #[test]
    fn monitoring_matches_busy_fractions() {
        let trace = sample_trace();
        let series = trace.to_raw_series(200);
        // Threads 0, 1, 2 each get a cpu resource.
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.instance.kind, META_CPU);
            assert_eq!(s.instance.capacity, 1.0);
            let covered: Nanos = s.measurements.iter().map(|m| m.end - m.start).sum();
            assert_eq!(covered, 1000);
            for m in &s.measurements {
                assert!((0.0..=1.0).contains(&m.avg), "busy fraction {}", m.avg);
            }
        }
        // Thread 0 is busy 0..1000 end to end: every window fully busy.
        let t0 = &series[0];
        assert!(t0.measurements.iter().all(|m| (m.avg - 1.0).abs() < 1e-12));
        // Thread 1 is busy 260..500: total busy time 240 ns.
        let t1_busy: f64 = series[1]
            .measurements
            .iter()
            .map(|m| m.avg * (m.end - m.start) as f64)
            .sum();
        assert!((t1_busy - 240.0).abs() < 1e-9, "{t1_busy}");
    }

    #[test]
    fn repeated_stages_get_distinct_keys() {
        let spans = vec![
            SpanRecord { stage: Stage::Demand, thread: 0, start: 0, end: 10, allocs: 0, alloc_bytes: 0 },
            SpanRecord { stage: Stage::Demand, thread: 0, start: 10, end: 30, allocs: 0, alloc_bytes: 0 },
        ];
        let trace = MetaTrace { spans, end: 30 };
        let events = trace.to_raw_events();
        let starts: Vec<&RawPath> = events
            .iter()
            .filter_map(|e| match &e.kind {
                RawEventKind::PhaseStart { path } if path.len() == 2 => Some(path),
                _ => None,
            })
            .collect();
        assert_eq!(starts.len(), 2);
        assert_eq!(starts[0][1], ("demand".to_string(), 0));
        assert_eq!(starts[1][1], ("demand".to_string(), 1));
    }
}
