//! Self-observability: Grade10 instrumented with its own recorder, so the
//! pipeline can characterize itself.
//!
//! Three pieces:
//!
//! 1. [`recorder`](self) — RAII [`span`]s buffered per thread (no locks on
//!    the hot path), wall-clock + allocation counters, no-op when no
//!    session is [`start`]ed;
//! 2. the meta-models ([`meta_model`], [`meta_resource_model`]) describing
//!    the pipeline's own stages and recorder-thread CPUs, plus conversion
//!    of a captured [`MetaTrace`] into standard raw inputs;
//! 3. [`CountingAlloc`], an opt-in global allocator wrapper feeding the
//!    per-span allocation counters.
//!
//! The feedback loop lives in
//! [`pipeline::characterize_self`](crate::pipeline::characterize_self):
//! run a normal characterization while recording, then run the captured
//! meta-trace through the pipeline again.

mod alloc;
mod meta;
mod recorder;

pub use alloc::{snapshot, AllocSnapshot, CountingAlloc};
pub use meta::{meta_bundle, meta_model, meta_resource_model, META_CPU, META_ROOT};
pub use recorder::{
    record_span, session_now, span, start, worker_handle, MetaTrace, Recording, Span, SpanRecord,
    Stage, WorkerGuard, WorkerHandle,
};
