//! Per-thread allocation counting for span records.
//!
//! [`CountingAlloc`] is a drop-in [`GlobalAlloc`] wrapper around the system
//! allocator that bumps two thread-local counters on every allocation. The
//! recorder samples the counters at span open/close, so spans report how
//! many heap allocations (and bytes) the instrumented stage performed on
//! its thread. The library never installs it — a binary opts in with
//! `#[global_allocator]`; without it the counters stay at zero and span
//! records simply carry zeros.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // `const` init keeps the TLS access allocation-free, which matters
    // inside a global allocator (a lazily initialized thread-local could
    // recurse into `alloc`).
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A point-in-time reading of the current thread's allocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation calls (`alloc`/`alloc_zeroed`/growing `realloc`) so far.
    pub allocs: u64,
    /// Total bytes requested by those calls.
    pub bytes: u64,
}

/// Reads the current thread's allocation counters. Zero (forever) unless
/// the running binary installed [`CountingAlloc`] as its global allocator.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.try_with(Cell::get).unwrap_or(0),
        bytes: BYTES.try_with(Cell::get).unwrap_or(0),
    }
}

#[inline]
fn count(bytes: usize) {
    // `try_with`: during thread teardown the TLS slot may already be
    // destroyed; losing those few counts is fine, panicking in the
    // allocator is not.
    let _ = ALLOCS.try_with(|a| a.set(a.get().wrapping_add(1)));
    let _ = BYTES.try_with(|b| b.set(b.get().wrapping_add(bytes as u64)));
}

/// The counting global allocator. Install in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: grade10_core::obs::CountingAlloc = grade10_core::obs::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: defers all allocation to `System` with unchanged arguments; the
// counter updates touch only thread-local plain counters and cannot
// allocate (const-initialized TLS) or unwind (`try_with`).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            count(new_size - layout.size());
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_monotone() {
        let a = snapshot();
        let b = snapshot();
        assert!(b.allocs >= a.allocs);
        assert!(b.bytes >= a.bytes);
    }
}
