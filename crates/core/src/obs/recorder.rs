//! The span recorder: RAII spans buffered per thread, drained at scope
//! exit, no locks on the hot path.
//!
//! Recording is opt-in and thread-scoped. [`start`] installs a session on
//! the *current* thread; [`span`] records into it; worker threads join via
//! an explicitly propagated [`WorkerHandle`] (thread-locals do not cross
//! `std::thread::scope` boundaries on their own). When no session is
//! installed, [`span`] costs one thread-local read and records nothing —
//! the instrumented pipeline stays effectively free for normal callers.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::obs::alloc::{self, AllocSnapshot};
use crate::trace::Nanos;

/// The stages of Grade10's own pipeline, as recorded by the instrumented
/// code. Names match the phase types of [`meta_model`](crate::obs::meta_model).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Validation/repair of raw events and monitoring (`trace::repair::ingest`).
    Ingest,
    /// Timeslice-granular demand estimation (§III-D1).
    Demand,
    /// Upsampling coarse measurements to timeslices (§III-D2), including
    /// the missing-slice estimation pass.
    Upsample,
    /// One upsampling worker thread's share of the fan-out.
    Worker,
    /// Attribution of consumption to phases (§III-D3).
    Attribute,
    /// Bottleneck identification, replay simulation and issue detection.
    Bottleneck,
    /// A supervised unit's failed attempt: the wall-clock time a panicked,
    /// timed-out, or budget-rejected unit consumed before the supervisor
    /// gave up on the attempt (recorded retroactively).
    Incident,
    /// Rendering of human-readable output.
    Report,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::Ingest,
        Stage::Demand,
        Stage::Upsample,
        Stage::Worker,
        Stage::Attribute,
        Stage::Bottleneck,
        Stage::Incident,
        Stage::Report,
    ];

    /// The stage's phase-type name in the meta execution model.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Demand => "demand",
            Stage::Upsample => "upsample",
            Stage::Worker => "worker",
            Stage::Attribute => "attribute",
            Stage::Bottleneck => "bottleneck",
            Stage::Incident => "incident",
            Stage::Report => "report",
        }
    }
}

/// One closed span: a stage execution on one recorder thread.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Which pipeline stage ran.
    pub stage: Stage,
    /// Recorder thread index (0 = the thread that called [`start`]).
    pub thread: u16,
    /// Start, nanoseconds since the session epoch.
    pub start: Nanos,
    /// End, nanoseconds since the session epoch (`end >= start`).
    pub end: Nanos,
    /// Heap allocations performed on this thread while the span was open.
    /// Zero unless the binary installs [`CountingAlloc`](crate::obs::CountingAlloc).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration(&self) -> Nanos {
        self.end - self.start
    }
}

/// Everything one recording session captured: the raw self-trace that
/// [`characterize_meta`](crate::pipeline::characterize_meta) feeds back
/// through the pipeline.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetaTrace {
    /// All closed spans, sorted by `(start, thread, end)`.
    pub spans: Vec<SpanRecord>,
    /// Session end, nanoseconds since the epoch (≥ every span's end).
    pub end: Nanos,
}

impl MetaTrace {
    /// Total recorded wall-clock time of one stage, in nanoseconds.
    pub fn stage_wall(&self, stage: Stage) -> Nanos {
        self.spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(SpanRecord::duration)
            .sum()
    }

    /// Number of distinct recorder threads that produced spans.
    pub fn num_threads(&self) -> usize {
        let mut threads: Vec<u16> = self.spans.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        threads.len()
    }
}

struct SessionInner {
    epoch: Instant,
    /// Cold path only: each thread's buffer is flushed here once, when the
    /// thread leaves the session.
    spans: Mutex<Vec<SpanRecord>>,
    next_thread: AtomicU16,
}

struct ThreadCtx {
    session: Arc<SessionInner>,
    thread: u16,
    buf: Vec<SpanRecord>,
}

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

fn flush_ctx(ctx: ThreadCtx) {
    let mut spans = ctx
        .session
        .spans
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    spans.extend(ctx.buf);
}

/// An active recording session, returned by [`start`]. Dropping it without
/// calling [`finish`](Recording::finish) discards the recording.
pub struct Recording {
    session: Arc<SessionInner>,
}

/// Starts recording spans on the current thread.
///
/// # Panics
/// Panics if this thread already has an active session: sessions do not
/// nest (a self-characterization of a self-characterization would recurse).
pub fn start() -> Recording {
    let session = Arc::new(SessionInner {
        epoch: Instant::now(),
        spans: Mutex::new(Vec::new()),
        next_thread: AtomicU16::new(1),
    });
    CTX.with(|c| {
        let mut c = c.borrow_mut();
        assert!(
            c.is_none(),
            "obs::start: this thread is already recording a session"
        );
        *c = Some(ThreadCtx {
            session: Arc::clone(&session),
            thread: 0,
            buf: Vec::new(),
        });
    });
    Recording { session }
}

impl Recording {
    /// Stops recording on the calling thread and returns the captured
    /// trace. Worker threads that entered via [`WorkerHandle`] have already
    /// flushed their buffers when their guards dropped.
    pub fn finish(self) -> MetaTrace {
        if let Some(ctx) = CTX.with(|c| c.borrow_mut().take()) {
            flush_ctx(ctx);
        }
        let end = self.session.epoch.elapsed().as_nanos() as Nanos;
        let mut spans = {
            let mut locked = self
                .session
                .spans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *locked)
        };
        spans.sort_by_key(|s| (s.start, s.thread, s.end));
        let end = spans.iter().map(|s| s.end).fold(end, Nanos::max);
        MetaTrace { spans, end }
    }
}

impl Drop for Recording {
    fn drop(&mut self) {
        // If finish() ran, the context is already gone; otherwise uninstall
        // it so an abandoned session does not leak into later pipeline runs
        // on this thread.
        CTX.with(|c| {
            let mut c = c.borrow_mut();
            if c.as_ref()
                .is_some_and(|ctx| Arc::ptr_eq(&ctx.session, &self.session))
            {
                *c = None;
            }
        });
    }
}

/// An open RAII span; the record is written when it drops. Inert (and
/// near-free) when the thread has no active session.
pub struct Span {
    active: Option<(Stage, Nanos, AllocSnapshot)>,
}

/// Opens a span for `stage` on the current thread. The span closes — and
/// the record is buffered — when the returned guard drops.
#[inline]
pub fn span(stage: Stage) -> Span {
    let start = CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| ctx.session.epoch.elapsed().as_nanos() as Nanos)
    });
    Span {
        active: start.map(|t0| (stage, t0, alloc::snapshot())),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((stage, start, alloc0)) = self.active.take() else {
            return;
        };
        let alloc1 = alloc::snapshot();
        CTX.with(|c| {
            let mut c = c.borrow_mut();
            if let Some(ctx) = c.as_mut() {
                let end = (ctx.session.epoch.elapsed().as_nanos() as Nanos).max(start);
                ctx.buf.push(SpanRecord {
                    stage,
                    thread: ctx.thread,
                    start,
                    end,
                    allocs: alloc1.allocs.saturating_sub(alloc0.allocs),
                    alloc_bytes: alloc1.bytes.saturating_sub(alloc0.bytes),
                });
            }
        });
    }
}

/// Nanoseconds since the current session's epoch, or `None` when the
/// calling thread is not recording. Pair with [`record_span`] to stamp a
/// span retroactively — e.g. the supervisor timing a unit whose worker
/// died and could not close its own spans.
pub fn session_now() -> Option<Nanos> {
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| ctx.session.epoch.elapsed().as_nanos() as Nanos)
    })
}

/// Buffers a span with explicit endpoints (from [`session_now`]) on the
/// current thread's session. A no-op when nothing is recording. Allocation
/// counters are zero: the spanned work happened elsewhere.
pub fn record_span(stage: Stage, start: Nanos, end: Nanos) {
    CTX.with(|c| {
        let mut c = c.borrow_mut();
        if let Some(ctx) = c.as_mut() {
            ctx.buf.push(SpanRecord {
                stage,
                thread: ctx.thread,
                start,
                end: end.max(start),
                allocs: 0,
                alloc_bytes: 0,
            });
        }
    });
}

/// A cloneable handle that lets a spawned worker thread record into the
/// session of the thread that created the handle.
#[derive(Clone)]
pub struct WorkerHandle {
    session: Arc<SessionInner>,
}

/// The current thread's session as a handle for worker threads, or `None`
/// when nothing is recording. Capture this *before* spawning and call
/// [`WorkerHandle::enter`] on the worker.
pub fn worker_handle() -> Option<WorkerHandle> {
    CTX.with(|c| {
        c.borrow().as_ref().map(|ctx| WorkerHandle {
            session: Arc::clone(&ctx.session),
        })
    })
}

impl WorkerHandle {
    /// Joins the session from a worker thread: installs a recording context
    /// with a fresh thread index and opens a [`Stage::Worker`] span. The
    /// returned guard closes the span and flushes the thread's buffer into
    /// the session when dropped.
    ///
    /// If the calling thread already has a context (the handle was entered
    /// on the coordinating thread itself), only the span is opened; the
    /// existing context is left untouched.
    pub fn enter(&self) -> WorkerGuard {
        let fresh = CTX.with(|c| {
            let mut c = c.borrow_mut();
            if c.is_some() {
                false
            } else {
                let thread = self.session.next_thread.fetch_add(1, Ordering::Relaxed);
                *c = Some(ThreadCtx {
                    session: Arc::clone(&self.session),
                    thread,
                    buf: Vec::new(),
                });
                true
            }
        });
        WorkerGuard {
            span: Some(span(Stage::Worker)),
            fresh,
        }
    }
}

/// Guard returned by [`WorkerHandle::enter`]; closes the worker span and
/// (for threads the handle installed) flushes and uninstalls the context.
pub struct WorkerGuard {
    span: Option<Span>,
    fresh: bool,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        // Close the worker span first so it lands in the buffer...
        self.span.take();
        // ...then hand the buffer to the session.
        if self.fresh {
            if let Some(ctx) = CTX.with(|c| c.borrow_mut().take()) {
                flush_ctx(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_session_records_nothing() {
        {
            let _s = span(Stage::Demand);
        }
        let rec = start();
        let trace = rec.finish();
        assert!(trace.spans.is_empty());
    }

    #[test]
    fn spans_capture_order_and_nesting() {
        let rec = start();
        {
            let _outer = span(Stage::Upsample);
            let _inner = span(Stage::Attribute);
        }
        {
            let _s = span(Stage::Bottleneck);
        }
        let trace = rec.finish();
        let stages: Vec<Stage> = trace.spans.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec![Stage::Upsample, Stage::Attribute, Stage::Bottleneck]
        );
        for s in &trace.spans {
            assert!(s.end >= s.start);
            assert!(s.end <= trace.end);
            assert_eq!(s.thread, 0);
        }
        // The inner span closed before (or with) the outer one.
        assert!(trace.spans[1].end <= trace.spans[0].end);
    }

    #[test]
    fn worker_threads_record_into_the_session() {
        let rec = start();
        let handle = worker_handle().expect("session active");
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let handle = handle.clone();
                scope.spawn(move || {
                    let _g = handle.enter();
                    let _s = span(Stage::Upsample);
                });
            }
        });
        let trace = rec.finish();
        let workers: Vec<&SpanRecord> = trace
            .spans
            .iter()
            .filter(|s| s.stage == Stage::Worker)
            .collect();
        assert_eq!(workers.len(), 3);
        let mut threads: Vec<u16> = workers.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        assert_eq!(threads, vec![1, 2, 3]);
        // Each worker also recorded its nested upsample span on its thread.
        assert_eq!(trace.stage_wall(Stage::Upsample), {
            trace
                .spans
                .iter()
                .filter(|s| s.stage == Stage::Upsample)
                .map(SpanRecord::duration)
                .sum()
        });
        // Thread 0 recorded no spans of its own here: only workers count.
        assert_eq!(trace.num_threads(), 3);
    }

    #[test]
    fn dropping_recording_uninstalls_context() {
        {
            let _rec = start();
            // No finish(): dropped.
        }
        // A new session must start cleanly on the same thread.
        let rec = start();
        {
            let _s = span(Stage::Ingest);
        }
        assert_eq!(rec.finish().spans.len(), 1);
    }

    #[test]
    fn sessions_are_thread_scoped() {
        let rec = start();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // No handle entered: this thread is not recording.
                let _s = span(Stage::Demand);
            });
        });
        assert!(rec.finish().spans.is_empty());
    }
}
