//! Shared execution-policy configuration.
//!
//! Two layers of the pipeline fan work out over threads: the upsampling
//! stage of [`crate::attribution::build_profile`] (one worker per batch of
//! resource rows) and the supervision layer of
//! [`crate::supervise::characterize_events_supervised`] (one worker per
//! per-machine unit). Both must answer the same two questions — *should*
//! this run parallel, and over *how many* threads — and both must answer
//! them identically for `GRADE10_THREADS` to mean one thing. This module
//! holds the shared vocabulary: the [`Parallelism`] policy enum and the
//! [`resolve_threads`] width resolution.
//!
//! Width precedence, strongest first:
//!
//! 1. an explicit width from the caller (the CLI's `--threads`);
//! 2. the `GRADE10_THREADS` environment variable (tests pin it to prove
//!    results are independent of thread count);
//! 3. [`std::thread::available_parallelism`] (falling back to 4 when the
//!    platform cannot say).
//!
//! The resolved width is clamped to the number of work units — spawning
//! idle workers buys nothing — and to at least 1.

/// Threading policy for a parallelizable pipeline stage. The result is
/// bit-identical whichever variant is chosen: parallel paths partition
/// work so every output cell is written by exactly one worker and merge
/// results in a stable, input-defined order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Parallelize when the input is large enough to amortize the spawns.
    #[default]
    Auto,
    /// Always single-threaded.
    Never,
    /// Always parallel (mostly for tests pinning determinism).
    Always,
}

impl Parallelism {
    /// Worker-pool width for `units` independent pieces of work, given the
    /// policy and an optional explicit override: 1 when the policy says
    /// sequential (or `worthwhile` is false under [`Parallelism::Auto`]),
    /// otherwise [`resolve_threads`]`(explicit, units)`.
    pub fn width(self, explicit: Option<usize>, units: usize, worthwhile: bool) -> usize {
        let go = match self {
            Parallelism::Never => false,
            Parallelism::Always => units > 1,
            Parallelism::Auto => worthwhile && units > 1,
        };
        if go {
            resolve_threads(explicit, units)
        } else {
            1
        }
    }
}

/// Resolves the worker-pool width for `units` independent pieces of work:
/// `explicit` beats `GRADE10_THREADS` beats the machine size (see the
/// module docs for why). Always in `1..=units.max(1)`.
pub fn resolve_threads(explicit: Option<usize>, units: usize) -> usize {
    explicit
        .filter(|&n| n > 0)
        .or_else(|| {
            std::env::var("GRADE10_THREADS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
        .min(units)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    // `GRADE10_THREADS` is process-global, so these tests only exercise
    // the env-independent branches; the env precedence itself is pinned by
    // the integration tests that own the variable (tests/determinism.rs,
    // tests/supervision_determinism.rs).

    #[test]
    fn explicit_width_wins_and_is_clamped() {
        assert_eq!(resolve_threads(Some(3), 8), 3);
        assert_eq!(resolve_threads(Some(16), 4), 4);
        assert_eq!(resolve_threads(Some(2), 0), 1);
    }

    #[test]
    fn zero_explicit_width_is_ignored() {
        // `Some(0)` would deadlock a pool; treat it as "not specified".
        assert!(resolve_threads(Some(0), 8) >= 1);
    }

    #[test]
    fn never_is_sequential_regardless_of_width() {
        assert_eq!(Parallelism::Never.width(Some(8), 8, true), 1);
    }

    #[test]
    fn auto_respects_worthwhile() {
        assert_eq!(Parallelism::Auto.width(Some(4), 8, false), 1);
        assert_eq!(Parallelism::Auto.width(Some(4), 8, true), 4);
    }

    #[test]
    fn single_unit_never_spawns() {
        assert_eq!(Parallelism::Always.width(Some(8), 1, true), 1);
    }
}
