//! One-call characterization: the whole Grade10 lifecycle (Fig. 1 of the
//! paper) behind a single function.
//!
//! [`characterize`] runs resource attribution, bottleneck identification,
//! and performance-issue detection in order and returns a
//! [`Characterization`] bundling the artifacts plus a human-readable
//! summary. Use the individual modules directly when you need intermediate
//! control (custom thresholds per stage, partial pipelines, or repeated
//! what-ifs over one profile).

use crate::attribution::{build_profile, PerformanceProfile, ProfileConfig};
use crate::bottleneck::{BottleneckConfig, BottleneckReport};
use crate::issues::{
    detect_bottleneck_issues, detect_imbalance_issues, IssueConfig, IssueKind, PerformanceIssue,
};
use crate::model::{ExecutionModel, RuleSet};
use crate::replay::{replay_original, ReplayConfig};
use crate::report::table::pct;
use crate::trace::{ExecutionTrace, ResourceTrace};

/// Configuration for the full pipeline.
#[derive(Clone, Debug, Default)]
pub struct CharacterizationConfig {
    /// Attribution settings (timeslice, upsampling mode).
    pub profile: ProfileConfig,
    /// Bottleneck-detection thresholds.
    pub bottleneck: BottleneckConfig,
    /// Replay-simulation options.
    pub replay: ReplayConfig,
    /// Issue-detection thresholds.
    pub issues: IssueConfig,
}

/// Everything one characterization run produces.
pub struct Characterization {
    /// The fine-grained phase × resource × timeslice profile.
    pub profile: PerformanceProfile,
    /// Where phases were resource-limited.
    pub bottlenecks: BottleneckReport,
    /// Baseline makespan of the replayed trace, ns.
    pub base_makespan: u64,
    /// Detected issues, most impactful first (bottlenecks and imbalance
    /// interleaved by estimated reduction).
    pub issues: Vec<PerformanceIssue>,
}

impl Characterization {
    /// Human-readable issue list, one line per issue.
    pub fn summary(&self, model: &ExecutionModel) -> Vec<String> {
        self.issues
            .iter()
            .map(|i| {
                let what = match &i.kind {
                    IssueKind::ConsumableBottleneck { resource_kind } => {
                        format!("remove {resource_kind} bottlenecks")
                    }
                    IssueKind::BlockingBottleneck { resource_kind } => {
                        format!("eliminate {resource_kind} blocking")
                    }
                    IssueKind::Imbalance { phase_type } => {
                        format!("balance {} phases", model.type_path(*phase_type))
                    }
                };
                format!(
                    "{}: up to {} faster ({} instances affected)",
                    what,
                    pct(i.reduction),
                    i.affected_instances
                )
            })
            .collect()
    }

    /// The single most impactful issue, if any cleared the threshold.
    pub fn top_issue(&self) -> Option<&PerformanceIssue> {
        self.issues.first()
    }
}

/// Runs the full Grade10 pipeline.
pub fn characterize(
    model: &ExecutionModel,
    rules: &RuleSet,
    trace: &ExecutionTrace,
    resources: &ResourceTrace,
    cfg: &CharacterizationConfig,
) -> Characterization {
    let profile = build_profile(model, rules, trace, resources, &cfg.profile);
    let bottlenecks = BottleneckReport::build(trace, &profile, &cfg.bottleneck);
    let base = replay_original(model, trace, &cfg.replay);
    let mut issues = detect_bottleneck_issues(
        model,
        trace,
        &profile,
        &bottlenecks,
        &cfg.replay,
        &cfg.issues,
    );
    issues.extend(detect_imbalance_issues(model, trace, &cfg.replay, &cfg.issues));
    issues.sort_by(|a, b| b.reduction.total_cmp(&a.reduction));
    Characterization {
        profile,
        bottlenecks,
        base_makespan: base.makespan,
        issues,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttributionRule, ExecutionModelBuilder, Repeat};
    use crate::trace::{ResourceInstance, TraceBuilder, MILLIS};

    /// Two sequential phases; the first saturates the CPU, the second is
    /// GC-bound; plus an imbalanced pair of parallel tasks inside phase b.
    fn scenario() -> (ExecutionModel, RuleSet, ExecutionTrace, ResourceTrace) {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let a = b.child(r, "a", Repeat::Once);
        let bb = b.child(r, "b", Repeat::Once);
        b.edge(a, bb);
        let task = b.child(bb, "task", Repeat::Parallel);
        let model = b.build();
        let rules = RuleSet::new().rule(task, "cpu", AttributionRule::Variable(1.0));

        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, 300 * MILLIS, None, None).unwrap();
        let ai = tb
            .add_phase(&[("job", 0), ("a", 0)], 0, 100 * MILLIS, Some(0), Some(0))
            .unwrap();
        tb.add_blocking(ai, "gc", 40 * MILLIS, 60 * MILLIS);
        tb.add_phase(&[("job", 0), ("b", 0)], 100 * MILLIS, 300 * MILLIS, None, None)
            .unwrap();
        tb.add_phase(
            &[("job", 0), ("b", 0), ("task", 0)],
            100 * MILLIS,
            150 * MILLIS,
            Some(0),
            Some(0),
        )
        .unwrap();
        tb.add_phase(
            &[("job", 0), ("b", 0), ("task", 1)],
            100 * MILLIS,
            300 * MILLIS,
            Some(0),
            Some(1),
        )
        .unwrap();
        let trace = tb.build().unwrap();

        let mut rt = ResourceTrace::new();
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 4.0,
        });
        rt.add_series(cpu, 0, 50 * MILLIS, &[4.0, 4.0, 1.0, 1.0, 1.0, 1.0]);
        (model, rules, trace, rt)
    }

    #[test]
    fn characterize_finds_multiple_issue_classes() {
        let (model, rules, trace, rt) = scenario();
        let c = characterize(&model, &rules, &trace, &rt, &CharacterizationConfig::default());
        assert_eq!(c.base_makespan, 300 * MILLIS);
        let kinds: Vec<_> = c.issues.iter().map(|i| &i.kind).collect();
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, IssueKind::BlockingBottleneck { resource_kind } if resource_kind == "gc")),
            "expected a gc issue in {kinds:?}"
        );
        assert!(
            kinds.iter().any(|k| matches!(k, IssueKind::Imbalance { .. })),
            "expected an imbalance issue in {kinds:?}"
        );
        // Issues are ordered by impact.
        for w in c.issues.windows(2) {
            assert!(w[0].reduction >= w[1].reduction);
        }
    }

    #[test]
    fn summary_is_readable() {
        let (model, rules, trace, rt) = scenario();
        let c = characterize(&model, &rules, &trace, &rt, &CharacterizationConfig::default());
        let lines = c.summary(&model);
        assert_eq!(lines.len(), c.issues.len());
        assert!(lines.iter().any(|l| l.contains("gc")), "{lines:?}");
        assert!(c.top_issue().is_some());
    }
}
