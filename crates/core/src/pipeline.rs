//! One-call characterization: the whole Grade10 lifecycle (Fig. 1 of the
//! paper) behind a single function.
//!
//! [`characterize`] runs resource attribution, bottleneck identification,
//! and performance-issue detection in order and returns a
//! [`Characterization`] bundling the artifacts plus a human-readable
//! summary. Use the individual modules directly when you need intermediate
//! control (custom thresholds per stage, partial pipelines, or repeated
//! what-ifs over one profile).

use crate::attribution::{build_profile, PerformanceProfile, ProfileConfig};
use crate::bottleneck::{BottleneckConfig, BottleneckReport};
use crate::error::Grade10Error;
use crate::issues::{
    detect_bottleneck_issues, detect_imbalance_issues, IssueConfig, IssueKind, PerformanceIssue,
};
use crate::model::{ExecutionModel, RuleSet};
use crate::obs::{self, MetaTrace, Stage};
use crate::parse::RawEvent;
use crate::replay::{replay_original, ReplayConfig};
use crate::report::table::pct;
use crate::trace::repair::{
    ingest, ingest_with_streams, rebuild_ingested, IngestConfig, IngestReport, IngestedInput,
    RawSeries,
};
use crate::trace::{ExecutionTrace, ResourceTrace};

/// Configuration for the full pipeline.
#[derive(Clone, Debug, Default)]
pub struct CharacterizationConfig {
    /// Attribution settings (timeslice, upsampling mode).
    pub profile: ProfileConfig,
    /// Bottleneck-detection thresholds.
    pub bottleneck: BottleneckConfig,
    /// Replay-simulation options.
    pub replay: ReplayConfig,
    /// Issue-detection thresholds.
    pub issues: IssueConfig,
    /// Ingestion strictness used by [`characterize_events`] (ignored by
    /// [`characterize`], which takes already-built traces).
    pub ingest: IngestConfig,
    /// Supervision knobs (deadlines, retries, budget), honored by
    /// [`crate::supervise::characterize_events_supervised`]. The
    /// unsupervised entry points ignore this field except for
    /// [`SuperviseConfig::cache`](crate::supervise::SuperviseConfig::cache),
    /// which [`characterize_events`] consults for stage-level reuse.
    pub supervise: crate::supervise::SuperviseConfig,
}

/// Everything one characterization run produces.
pub struct Characterization {
    /// The fine-grained phase × resource × timeslice profile.
    pub profile: PerformanceProfile,
    /// Where phases were resource-limited.
    pub bottlenecks: BottleneckReport,
    /// Baseline makespan of the replayed trace, ns.
    pub base_makespan: u64,
    /// Detected issues, most impactful first (bottlenecks and imbalance
    /// interleaved by estimated reduction).
    pub issues: Vec<PerformanceIssue>,
    /// What ingestion saw and repaired. Clean (all-zero) when the input was
    /// well-formed or when [`characterize`] was called on pre-built traces.
    pub ingest: IngestReport,
}

impl Characterization {
    /// Human-readable issue list, one line per issue.
    pub fn summary(&self, model: &ExecutionModel) -> Vec<String> {
        self.issues
            .iter()
            .map(|i| {
                let what = match &i.kind {
                    IssueKind::ConsumableBottleneck { resource_kind } => {
                        format!("remove {resource_kind} bottlenecks")
                    }
                    IssueKind::BlockingBottleneck { resource_kind } => {
                        format!("eliminate {resource_kind} blocking")
                    }
                    IssueKind::Imbalance { phase_type } => {
                        format!("balance {} phases", model.type_path(*phase_type))
                    }
                };
                format!(
                    "{}: up to {} faster ({} instances affected)",
                    what,
                    pct(i.reduction),
                    i.affected_instances
                )
            })
            .collect()
    }

    /// The single most impactful issue, if any cleared the threshold.
    pub fn top_issue(&self) -> Option<&PerformanceIssue> {
        self.issues.first()
    }

    /// Stable class labels for the detected issues, deduplicated and
    /// sorted: `bottleneck:<kind>` for consumable bottlenecks,
    /// `blocking:<kind>` for blocking ones, `imbalance:<type path>` for
    /// imbalance. Campaign reports diff these sets across mixes to flag
    /// configurations that surface *new* bottleneck classes.
    pub fn issue_classes(&self, model: &ExecutionModel) -> Vec<String> {
        let mut classes: Vec<String> = self
            .issues
            .iter()
            .map(|i| match &i.kind {
                IssueKind::ConsumableBottleneck { resource_kind } => {
                    format!("bottleneck:{resource_kind}")
                }
                IssueKind::BlockingBottleneck { resource_kind } => {
                    format!("blocking:{resource_kind}")
                }
                IssueKind::Imbalance { phase_type } => {
                    format!("imbalance:{}", model.type_path(*phase_type))
                }
            })
            .collect();
        classes.sort();
        classes.dedup();
        classes
    }
}

/// Runs the full Grade10 pipeline on already-built traces.
pub fn characterize(
    model: &ExecutionModel,
    rules: &RuleSet,
    trace: &ExecutionTrace,
    resources: &ResourceTrace,
    cfg: &CharacterizationConfig,
) -> Characterization {
    characterize_with_report(model, rules, trace, resources, cfg, IngestReport::default())
}

/// Runs the full Grade10 pipeline from raw collected data: an event stream
/// and monitoring series, ingested under [`CharacterizationConfig::ingest`].
///
/// In strict mode any corruption is rejected with a classified
/// [`Grade10Error`]; in lenient mode the streams are repaired first and the
/// repairs are tallied in [`Characterization::ingest`].
///
/// When `cfg.supervise.cache` holds a [`crate::cache::StageCache`], the
/// ingest and attribution stages are content-hash cached: the
/// validated/repaired streams and the built profile are persisted keyed by
/// their inputs, and a re-run with matching inputs reuses them instead of
/// recomputing. Bottleneck, replay, and issue detection always re-run —
/// they are cheap relative to attribution and depend on every upstream
/// artifact. Cached and uncached runs produce byte-identical results.
pub fn characterize_events(
    model: &ExecutionModel,
    rules: &RuleSet,
    events: &[RawEvent],
    monitoring: &[RawSeries],
    cfg: &CharacterizationConfig,
) -> Result<Characterization, Grade10Error> {
    let Some(cache) = cfg.supervise.cache.as_deref() else {
        let input = ingest(model, events, monitoring, &cfg.ingest)?;
        return Ok(characterize_with_report(
            model,
            rules,
            &input.trace,
            &input.resources,
            cfg,
            input.report,
        ));
    };

    let ev_hash = crate::cache::hash_events(events);
    let mon_hash = crate::cache::hash_series(monitoring);
    // The ingest record stores pre-trace-build streams, so the key does not
    // pin the model: rebuilding validates against the *current* model and
    // fails exactly as a cold run would on a mismatch.
    let ingest_key = format!(
        "ingest r1;code={};unit=pipeline;mode={:?};ev={:016x};mon={:016x}",
        crate::campaign::CODE_VERSION,
        cfg.ingest.mode,
        ev_hash,
        mon_hash,
    );
    let input = match cache.lookup("ingest", &ingest_key, crate::cache::codec::decode_ingest_unit)
    {
        Some(rec) => rebuild_ingested(
            model,
            cfg.ingest.mode,
            &rec.events,
            rec.series,
            rec.report,
        )?,
        None => {
            let (input, ev, mon) = ingest_with_streams(model, events, monitoring, &cfg.ingest)?;
            cache.store(
                "ingest",
                &ingest_key,
                crate::cache::codec::encode_ingest_unit(
                    crate::supervise::UnitStatus::Full,
                    &[],
                    &ev,
                    &mon,
                    &input.report,
                ),
            );
            input
        }
    };

    // The profile is a pure function of (model, rules, ingested traces,
    // profile config); the raw-input hashes stand in for the ingested
    // traces because ingest is deterministic. Skipped (never a cache
    // error) if the model or rules fail to serialize.
    let profile_cache = (|| {
        let mh = crate::hash::fnv1a(serde_json::to_string(model).ok()?.as_bytes());
        let rh = crate::hash::fnv1a(serde_json::to_string(rules).ok()?.as_bytes());
        Some((
            cache,
            format!(
                "profile r1;code={};model={:016x};rules={:016x};mode={:?};ev={:016x};mon={:016x};slice={};upsample={:?};est={};end={:?}",
                crate::campaign::CODE_VERSION,
                mh,
                rh,
                cfg.ingest.mode,
                ev_hash,
                mon_hash,
                cfg.profile.slice,
                cfg.profile.upsample,
                cfg.profile.estimate_missing,
                cfg.profile.grid_end,
            ),
        ))
    })();
    Ok(characterize_with_cache(
        model,
        rules,
        &input.trace,
        &input.resources,
        cfg,
        input.report,
        profile_cache,
    ))
}

/// Runs the pipeline on the output of a separate [`ingest`] call — for
/// callers that need to keep the ingested traces (e.g. to render them)
/// while still carrying the repair report into the result.
pub fn characterize_ingested(
    model: &ExecutionModel,
    rules: &RuleSet,
    input: &IngestedInput,
    cfg: &CharacterizationConfig,
) -> Characterization {
    characterize_with_report(
        model,
        rules,
        &input.trace,
        &input.resources,
        cfg,
        input.report.clone(),
    )
}

fn characterize_with_report(
    model: &ExecutionModel,
    rules: &RuleSet,
    trace: &ExecutionTrace,
    resources: &ResourceTrace,
    cfg: &CharacterizationConfig,
    report: IngestReport,
) -> Characterization {
    characterize_with_cache(model, rules, trace, resources, cfg, report, None)
}

fn characterize_with_cache(
    model: &ExecutionModel,
    rules: &RuleSet,
    trace: &ExecutionTrace,
    resources: &ResourceTrace,
    cfg: &CharacterizationConfig,
    mut report: IngestReport,
    profile_cache: Option<(&crate::cache::StageCache, String)>,
) -> Characterization {
    let profile = match profile_cache {
        Some((c, key)) => match c
            .lookup("profile", &key, crate::cache::codec::decode_attribute_unit)
            .and_then(|rec| rec.profile)
        {
            Some(p) => p,
            None => {
                let p = build_profile(model, rules, trace, resources, &cfg.profile);
                c.store(
                    "profile",
                    &key,
                    crate::cache::codec::encode_attribute_unit(Some(&p), false, &[]),
                );
                p
            }
        },
        None => build_profile(model, rules, trace, resources, &cfg.profile),
    };
    report.slices_estimated = profile.estimated_slices();
    report.slices_total = profile.total_slices();
    let _span = obs::span(Stage::Bottleneck);
    let bottlenecks = BottleneckReport::build(trace, &profile, &cfg.bottleneck);
    let base = replay_original(model, trace, &cfg.replay);
    let mut issues = detect_bottleneck_issues(
        model,
        trace,
        &profile,
        &bottlenecks,
        &cfg.replay,
        &cfg.issues,
    );
    issues.extend(detect_imbalance_issues(model, trace, &cfg.replay, &cfg.issues));
    issues.sort_by(|a, b| b.reduction.total_cmp(&a.reduction));
    Characterization {
        profile,
        bottlenecks,
        base_makespan: base.makespan,
        issues,
        ingest: report,
    }
}

/// A characterization of Grade10's own pipeline, produced by feeding a
/// recorded [`MetaTrace`] back through the pipeline.
pub struct MetaCharacterization {
    /// The meta execution model (pipeline stages as phase types).
    pub model: ExecutionModel,
    /// Attribution rules of the meta model (CPU as `Variable` per stage).
    pub rules: RuleSet,
    /// The raw recorded spans the characterization was built from.
    pub raw: MetaTrace,
    /// The self-trace rendered as a standard raw event stream — the same
    /// format external frameworks feed in, so it can be exported and
    /// re-analyzed offline.
    pub events: Vec<RawEvent>,
    /// Synthesized per-recorder-thread CPU monitoring series.
    pub series: Vec<RawSeries>,
    /// The ingested execution trace of the pipeline run.
    pub trace: ExecutionTrace,
    /// The full pipeline output over the meta-trace: profile, bottlenecks,
    /// issues — Grade10's verdict on Grade10.
    pub result: Characterization,
}

impl MetaCharacterization {
    /// Timeslice width (ns) used for a meta characterization of a recording
    /// that ended at `end` ns: ~200 slices across the run, at least 10 µs
    /// each so timer noise does not masquerade as utilization structure.
    pub fn slice_for(end: u64) -> u64 {
        (end / 200).max(10_000)
    }

    /// Monitoring window width (ns) matching [`slice_for`](Self::slice_for):
    /// four timeslices per window, like real coarse monitoring, so the
    /// demand-guided upsampler has genuine work to do.
    pub fn window_for(end: u64) -> u64 {
        Self::slice_for(end) * 4
    }
}

/// Runs the attribution pipeline on a recorded meta-trace: Grade10
/// characterizing its own execution. Uses the hand-written
/// [`meta_model`](crate::obs::meta_model), a timeslice of
/// [`MetaCharacterization::slice_for`] and strict ingestion — the recorder
/// emits well-formed streams by construction, and a repair firing here
/// would itself be a bug.
pub fn characterize_meta(raw: &MetaTrace) -> Result<MetaCharacterization, Grade10Error> {
    let (model, rules) = obs::meta_model();
    let events = raw.to_raw_events();
    let series = raw.to_raw_series(MetaCharacterization::window_for(raw.end));
    let cfg = CharacterizationConfig {
        profile: ProfileConfig {
            slice: MetaCharacterization::slice_for(raw.end),
            // Default `Auto` policy: a meta-trace is far below the Auto
            // fan-out threshold, so it analyzes sequentially without
            // pinning a policy the caller might want to override.
            ..ProfileConfig::default()
        },
        ..CharacterizationConfig::default()
    };
    let input = ingest(&model, &events, &series, &cfg.ingest)?;
    let result = characterize_ingested(&model, &rules, &input, &cfg);
    Ok(MetaCharacterization {
        model,
        rules,
        raw: raw.clone(),
        events,
        series,
        trace: input.trace,
        result,
    })
}

/// A normal characterization plus the pipeline's characterization of
/// itself, from one instrumented run.
pub struct SelfCharacterization {
    /// The characterization of the *subject* traces, identical to what
    /// [`characterize`] returns without recording.
    pub result: Characterization,
    /// The subject run's issue summary, rendered during the recorded
    /// `report` stage (so that stage has real work attributed to it).
    pub summary: Vec<String>,
    /// The pipeline characterized by itself.
    pub meta: MetaCharacterization,
}

/// Runs a normal characterization while recording the pipeline's own
/// spans, then runs the attribution pipeline a second time on the captured
/// meta-trace (§III applied to ourselves).
///
/// # Panics
/// Panics if the current thread is already recording an observability
/// session: self-characterizations do not nest.
pub fn characterize_self(
    model: &ExecutionModel,
    rules: &RuleSet,
    trace: &ExecutionTrace,
    resources: &ResourceTrace,
    cfg: &CharacterizationConfig,
) -> Result<SelfCharacterization, Grade10Error> {
    let recording = obs::start();
    let result = characterize(model, rules, trace, resources, cfg);
    let summary = {
        let _span = obs::span(Stage::Report);
        result.summary(model)
    };
    let meta = characterize_meta(&recording.finish())?;
    Ok(SelfCharacterization {
        result,
        summary,
        meta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttributionRule, ExecutionModelBuilder, Repeat};
    use crate::trace::{ResourceInstance, TraceBuilder, MILLIS};

    /// Two sequential phases; the first saturates the CPU, the second is
    /// GC-bound; plus an imbalanced pair of parallel tasks inside phase b.
    fn scenario() -> (ExecutionModel, RuleSet, ExecutionTrace, ResourceTrace) {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let a = b.child(r, "a", Repeat::Once);
        let bb = b.child(r, "b", Repeat::Once);
        b.edge(a, bb);
        let task = b.child(bb, "task", Repeat::Parallel);
        let model = b.build();
        let rules = RuleSet::new().rule(task, "cpu", AttributionRule::Variable(1.0));

        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, 300 * MILLIS, None, None).unwrap();
        let ai = tb
            .add_phase(&[("job", 0), ("a", 0)], 0, 100 * MILLIS, Some(0), Some(0))
            .unwrap();
        tb.add_blocking(ai, "gc", 40 * MILLIS, 60 * MILLIS);
        tb.add_phase(&[("job", 0), ("b", 0)], 100 * MILLIS, 300 * MILLIS, None, None)
            .unwrap();
        tb.add_phase(
            &[("job", 0), ("b", 0), ("task", 0)],
            100 * MILLIS,
            150 * MILLIS,
            Some(0),
            Some(0),
        )
        .unwrap();
        tb.add_phase(
            &[("job", 0), ("b", 0), ("task", 1)],
            100 * MILLIS,
            300 * MILLIS,
            Some(0),
            Some(1),
        )
        .unwrap();
        let trace = tb.build().unwrap();

        let mut rt = ResourceTrace::new();
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 4.0,
        });
        rt.add_series(cpu, 0, 50 * MILLIS, &[4.0, 4.0, 1.0, 1.0, 1.0, 1.0]);
        (model, rules, trace, rt)
    }

    #[test]
    fn characterize_finds_multiple_issue_classes() {
        let (model, rules, trace, rt) = scenario();
        let c = characterize(&model, &rules, &trace, &rt, &CharacterizationConfig::default());
        assert_eq!(c.base_makespan, 300 * MILLIS);
        let kinds: Vec<_> = c.issues.iter().map(|i| &i.kind).collect();
        assert!(
            kinds
                .iter()
                .any(|k| matches!(k, IssueKind::BlockingBottleneck { resource_kind } if resource_kind == "gc")),
            "expected a gc issue in {kinds:?}"
        );
        assert!(
            kinds.iter().any(|k| matches!(k, IssueKind::Imbalance { .. })),
            "expected an imbalance issue in {kinds:?}"
        );
        // Issues are ordered by impact.
        for w in c.issues.windows(2) {
            assert!(w[0].reduction >= w[1].reduction);
        }
    }

    #[test]
    fn characterize_events_strict_vs_lenient() {
        use crate::parse::RawEventKind;
        use crate::trace::repair::IngestMode;

        let b = ExecutionModelBuilder::new("job");
        let _ = b.root();
        let model = b.build();
        let rules = RuleSet::new();
        let path = vec![("job".to_string(), 0u32)];
        // Start without end: a crashed worker truncated the stream.
        let events = vec![RawEvent {
            time: 0,
            machine: 0,
            thread: 0,
            kind: RawEventKind::PhaseStart { path },
        }];
        let mut rt = ResourceTrace::new();
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 4.0,
        });
        rt.add_series(cpu, 0, 10 * MILLIS, &[1.0, 2.0]);
        let monitoring = crate::trace::RawSeries::from_trace(&rt);

        let strict = CharacterizationConfig::default();
        match characterize_events(&model, &rules, &events, &monitoring, &strict) {
            Err(err) => assert!(err.is_recoverable()),
            Ok(_) => panic!("strict must reject the truncated stream"),
        }

        let lenient = CharacterizationConfig {
            ingest: IngestConfig {
                mode: IngestMode::Lenient,
            },
            ..Default::default()
        };
        let c = characterize_events(&model, &rules, &events, &monitoring, &lenient)
            .expect("lenient must repair and complete");
        assert_eq!(c.ingest.missing_ends_synthesized, 1);
        assert!(!c.ingest.is_clean());
        assert!(c.ingest.quality_score() < 1.0);
        assert!(c.ingest.slices_total > 0);
    }

    #[test]
    fn summary_is_readable() {
        let (model, rules, trace, rt) = scenario();
        let c = characterize(&model, &rules, &trace, &rt, &CharacterizationConfig::default());
        let lines = c.summary(&model);
        assert_eq!(lines.len(), c.issues.len());
        assert!(lines.iter().any(|l| l.contains("gc")), "{lines:?}");
        assert!(c.top_issue().is_some());
    }
}
