//! Indicator resources — lifting a §V limitation of the paper.
//!
//! The paper notes its resource model "does not support resources that do
//! not fit in its consumable or blocking resource archetypes, e.g., CPU
//! cache hit rates, or IPC counts". Such quantities are *indicators*: they
//! are monitored like consumable resources (a value per measurement window)
//! but they are neither capacity-limited nor attributable — dividing an IPC
//! among phases is meaningless. What an analyst wants instead is each
//! phase's *exposure*: the time-weighted average (and peak) of the
//! indicator while the phase ran.
//!
//! Feed indicator series into a [`ResourceTrace`] like any other resource
//! (capacity is only used as a plotting hint) and summarize them here; keep
//! them out of the attribution rule set (`None` rules) so the consumable
//! pipeline ignores them.

use std::collections::BTreeMap;

use crate::model::execution::{ExecutionModel, PhaseTypeId};
use crate::trace::execution::{ExecutionTrace, InstanceId};
use crate::trace::resource::{ResourceIdx, ResourceTrace};

/// One phase instance's exposure to an indicator.
#[derive(Clone, Debug, PartialEq)]
pub struct IndicatorSummary {
    /// The phase instance.
    pub instance: InstanceId,
    /// The indicator resource instance.
    pub resource: ResourceIdx,
    /// Time-weighted mean of the indicator while the phase ran.
    pub mean: f64,
    /// Largest window value overlapping the phase.
    pub peak: f64,
    /// Fraction of the phase's lifetime covered by measurements (below 1.0
    /// means the monitor missed part of the phase).
    pub coverage: f64,
}

/// Summarizes indicator `r` over every leaf phase instance whose machine
/// matches the indicator's scope. Instances with no overlapping
/// measurements are omitted.
pub fn summarize_indicator(
    trace: &ExecutionTrace,
    resources: &ResourceTrace,
    r: ResourceIdx,
) -> Vec<IndicatorSummary> {
    let res = resources.instance(r);
    let measurements = resources.measurements(r);
    let mut out = Vec::new();
    for inst in trace.leaves() {
        if let (Some(rm), Some(im)) = (res.machine, inst.machine) {
            if rm != im {
                continue;
            }
        } else if res.machine.is_some() && inst.machine.is_none() {
            continue;
        }
        let (mut wsum, mut vsum, mut peak) = (0.0f64, 0.0f64, f64::NEG_INFINITY);
        for m in measurements {
            let lo = m.start.max(inst.start);
            let hi = m.end.min(inst.end);
            if hi <= lo {
                continue;
            }
            let w = (hi - lo) as f64;
            wsum += w;
            vsum += m.avg * w;
            peak = peak.max(m.avg);
        }
        if wsum <= 0.0 {
            continue;
        }
        let duration = inst.duration().max(1) as f64;
        out.push(IndicatorSummary {
            instance: inst.id,
            resource: r,
            mean: vsum / wsum,
            peak,
            coverage: (wsum / duration).min(1.0),
        });
    }
    out
}

/// Duration-weighted mean indicator per leaf phase *type* — the view that
/// answers "do gather phases run at worse IPC than apply phases?".
pub fn indicator_by_type(
    trace: &ExecutionTrace,
    resources: &ResourceTrace,
    r: ResourceIdx,
) -> BTreeMap<PhaseTypeId, f64> {
    let mut acc: BTreeMap<PhaseTypeId, (f64, f64)> = BTreeMap::new();
    for s in summarize_indicator(trace, resources, r) {
        let inst = trace.instance(s.instance);
        let w = inst.duration() as f64 * s.coverage;
        let e = acc.entry(inst.type_id).or_insert((0.0, 0.0));
        e.0 += s.mean * w;
        e.1 += w;
    }
    acc.into_iter()
        .filter(|(_, (_, w))| *w > 0.0)
        .map(|(ty, (vw, w))| (ty, vw / w))
        .collect()
}

/// Renders the per-type view as table rows `(type path, mean)`.
pub fn indicator_rows(
    model: &ExecutionModel,
    trace: &ExecutionTrace,
    resources: &ResourceTrace,
    r: ResourceIdx,
) -> Vec<(String, f64)> {
    indicator_by_type(trace, resources, r)
        .into_iter()
        .map(|(ty, v)| (model.type_path(ty), v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::trace::execution::TraceBuilder;
    use crate::trace::resource::ResourceInstance;
    use crate::trace::timeslice::MILLIS;

    /// Two phases; a synthetic IPC indicator is high during the first and
    /// low during the second.
    fn setup() -> (
        ExecutionModel,
        ExecutionTrace,
        ResourceTrace,
        ResourceIdx,
    ) {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let _a = b.child(r, "a", Repeat::Once);
        let _c = b.child(r, "b", Repeat::Once);
        let model = b.build();
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, 200 * MILLIS, None, None).unwrap();
        tb.add_phase(&[("job", 0), ("a", 0)], 0, 100 * MILLIS, Some(0), Some(0))
            .unwrap();
        tb.add_phase(
            &[("job", 0), ("b", 0)],
            100 * MILLIS,
            200 * MILLIS,
            Some(0),
            Some(0),
        )
        .unwrap();
        let trace = tb.build().unwrap();
        let mut rt = ResourceTrace::new();
        let ipc = rt.add_resource(ResourceInstance {
            kind: "ipc".into(),
            machine: Some(0),
            capacity: 4.0, // plotting hint only
        });
        rt.add_series(ipc, 0, 50 * MILLIS, &[2.0, 2.0, 0.5, 0.7]);
        (model, trace, rt, ipc)
    }

    #[test]
    fn per_phase_exposure_recovered() {
        let (_model, trace, rt, ipc) = setup();
        let sums = summarize_indicator(&trace, &rt, ipc);
        assert_eq!(sums.len(), 2);
        assert!((sums[0].mean - 2.0).abs() < 1e-9, "phase a: {}", sums[0].mean);
        assert!((sums[1].mean - 0.6).abs() < 1e-9, "phase b: {}", sums[1].mean);
        assert_eq!(sums[0].peak, 2.0);
        assert_eq!(sums[1].peak, 0.7);
        assert!((sums[0].coverage - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_coverage_reported() {
        let (_model, trace, mut rt, _) = setup();
        let cache = rt.add_resource(ResourceInstance {
            kind: "cache_hit".into(),
            machine: Some(0),
            capacity: 1.0,
        });
        // Only the first half of phase a is measured.
        rt.add_series(cache, 0, 50 * MILLIS, &[0.9]);
        let sums = summarize_indicator(&trace, &rt, cache);
        assert_eq!(sums.len(), 1, "phase b has no overlapping measurements");
        assert!((sums[0].coverage - 0.5).abs() < 1e-9);
        assert!((sums[0].mean - 0.9).abs() < 1e-9);
    }

    #[test]
    fn by_type_aggregates_and_labels() {
        let (model, trace, rt, ipc) = setup();
        let by_type = indicator_by_type(&trace, &rt, ipc);
        assert_eq!(by_type.len(), 2);
        let rows = indicator_rows(&model, &trace, &rt, ipc);
        assert!(rows.iter().any(|(p, v)| p == "job.a" && (*v - 2.0).abs() < 1e-9));
        assert!(rows.iter().any(|(p, v)| p == "job.b" && (*v - 0.6).abs() < 1e-9));
    }

    #[test]
    fn machine_scope_respected() {
        let (_model, trace, mut rt, _) = setup();
        let other = rt.add_resource(ResourceInstance {
            kind: "ipc".into(),
            machine: Some(9),
            capacity: 4.0,
        });
        rt.add_series(other, 0, 50 * MILLIS, &[1.0; 4]);
        assert!(summarize_indicator(&trace, &rt, other).is_empty());
    }

    #[test]
    fn straddling_measurement_weighted_correctly() {
        // One 100 ms window covering the back half of a and front half of b.
        let (_model, trace, mut rt, _) = setup();
        let x = rt.add_resource(ResourceInstance {
            kind: "x".into(),
            machine: Some(0),
            capacity: 1.0,
        });
        rt.add_series(x, 50 * MILLIS, 100 * MILLIS, &[3.0]);
        let sums = summarize_indicator(&trace, &rt, x);
        assert_eq!(sums.len(), 2);
        for s in &sums {
            assert!((s.mean - 3.0).abs() < 1e-9);
            assert!((s.coverage - 0.5).abs() < 1e-9);
        }
    }
}
