//! Step 2 of resource attribution: upsampling coarse measurements to
//! timeslice granularity (§III-D2).
//!
//! Each measurement reports the *average* usage over a multi-slice window.
//! The measured total is split over the window's slices by superimposing the
//! estimated demand: first proportionally to known (Exact) demand without
//! exceeding demand or capacity, then the remainder proportionally to
//! variable demand capped by capacity, then any residue proportionally to
//! remaining capacity. Anything that still cannot be placed (measurement
//! exceeding capacity × window) is reported back as overflow.

use crate::trace::resource::Measurement;
use crate::trace::timeslice::TimesliceGrid;

/// Distributes `amount` over `out` proportionally to `weights`, never
/// pushing `out[i]` above `caps[i]`. Returns the undistributable remainder.
/// Exact water-filling: at most `n` rounds, each freezing one capped slot.
///
/// Convergence tolerances are *relative* to the problem's magnitude (the
/// larger of `amount` and the largest cap): an absolute `1e-12` would spin
/// on inputs measured in units of 1e12 (nanosecond totals) and would treat
/// everything as converged on inputs of order 1e-12 (fractions of a
/// second), leaking the whole amount back as remainder.
pub fn waterfill(weights: &[f64], caps: &[f64], amount: f64, out: &mut [f64]) -> f64 {
    waterfill_into(weights, caps, amount, out, &mut Vec::new())
}

/// [`waterfill`] with a caller-provided scratch buffer for the active-slot
/// set, so hot loops (one call per measurement) do not allocate per call.
/// Identical arithmetic — the buffer only changes where the index list
/// lives, never its contents.
pub fn waterfill_into(
    weights: &[f64],
    caps: &[f64],
    amount: f64,
    out: &mut [f64],
    active: &mut Vec<usize>,
) -> f64 {
    debug_assert_eq!(weights.len(), caps.len());
    debug_assert_eq!(weights.len(), out.len());
    let max_cap = caps.iter().copied().fold(0.0f64, f64::max);
    let eps = 1e-12 * amount.abs().max(max_cap).max(1e-300);
    let mut remaining = amount;
    // One predicate decides slot liveness everywhere — seeding, the
    // stalled-scale retry, and the per-round retain. Mixing thresholds
    // (`out[i] < caps[i]` to seed, an epsilon gap to retain) let a slot
    // within epsilon of its cap enter the active set only to stall the
    // first round on a zero scale.
    let live = |out: &[f64], i: usize| caps[i] - out[i] > eps;
    active.clear();
    active.extend((0..weights.len()).filter(|&i| weights[i] > 0.0 && live(out, i)));
    while remaining > eps && !active.is_empty() {
        let wsum: f64 = active.iter().map(|&i| weights[i]).sum();
        if wsum <= 0.0 {
            break;
        }
        // Largest uniform scale before some slot hits its cap.
        let mut scale = remaining / wsum;
        for &i in active.iter() {
            let headroom = caps[i] - out[i];
            scale = scale.min(headroom / weights[i]);
        }
        if scale <= 0.0 {
            // All remaining slots are at cap within epsilon.
            active.retain(|&i| live(out, i));
            if active.is_empty() {
                break;
            }
            continue;
        }
        for &i in active.iter() {
            out[i] += scale * weights[i];
        }
        remaining -= scale * wsum;
        active.retain(|&i| live(out, i));
    }
    remaining.max(0.0)
}

/// Upsamples one measurement into per-slice usage, writing into
/// `out[ws..we]` (slice indices of the window). `exact` and `variable` are
/// the demand rows of this resource over all slices. Returns the overflow
/// that could not be placed under `capacity`.
///
/// The mass to place is `avg × true duration` (in units × slices), *not*
/// `avg × snapped slice count`: a window whose bounds sit off the slice
/// boundaries (`[0, 14 ms)` on a 10 ms grid) snaps to one slice, and
/// pricing it by the snapped count would silently drop 40 % of what the
/// monitor measured. The snapped range still decides *where* the mass
/// lands; only the amount comes from the true extent.
pub fn upsample_measurement(
    m: &Measurement,
    grid: &TimesliceGrid,
    exact: &[f64],
    variable: &[f64],
    capacity: f64,
    out: &mut [f64],
) -> f64 {
    let mut scratch = UpsampleScratch::default();
    upsample_measurement_scratch(m, grid, exact, variable, capacity, out, &mut scratch)
}

/// Reusable buffers for the columnar upsampling path: one allocation per
/// worker instead of ~five per measurement. The buffers never outlive a
/// call's arithmetic — they only move where the temporaries live.
#[derive(Default)]
pub struct UpsampleScratch {
    targets: Vec<f64>,
    weights: Vec<f64>,
    caps: Vec<f64>,
    headroom: Vec<f64>,
    active: Vec<usize>,
}

/// Scratch-buffer form of [`upsample_measurement`]: identical arithmetic
/// (same three placement steps, same water-filling, same epsilons), but
/// temporaries come from `scratch` — one allocation per worker instead of
/// ~five per measurement — and the window is computed **in place** in
/// `out[ws..we]`. The retired allocating path built the window in a fresh
/// zeroed buffer and copied it back, so zeroing the window first is
/// bit-identical; `tests/columnar_equivalence.rs` pins the end-to-end
/// profiles against committed goldens.
pub fn upsample_measurement_scratch(
    m: &Measurement,
    grid: &TimesliceGrid,
    exact: &[f64],
    variable: &[f64],
    capacity: f64,
    out: &mut [f64],
    scratch: &mut UpsampleScratch,
) -> f64 {
    let ws = grid.snap(m.start);
    let we = grid.snap(m.end).max(ws + 1).min(grid.num_slices());
    let n = we - ws;
    let total = m.avg * duration_slices(m, grid); // in (units × slices)

    let x = &mut out[ws..we];
    x.fill(0.0);

    // Step 1: proportional to known demand, capped by min(demand, capacity).
    scratch.targets.clear();
    scratch
        .targets
        .extend(exact[ws..we].iter().map(|&e| e.min(capacity)));
    let tsum: f64 = scratch.targets.iter().sum();
    let mut rem = total;
    if tsum > 0.0 {
        let placed = total.min(tsum);
        for i in 0..n {
            x[i] = placed * scratch.targets[i] / tsum;
        }
        rem = total - placed;
    }

    // Step 2: remainder proportional to variable demand, capped by capacity.
    if rem > 1e-12 {
        scratch.weights.clear();
        scratch.weights.extend_from_slice(&variable[ws..we]);
        scratch.caps.clear();
        scratch.caps.resize(n, capacity);
        rem = waterfill_into(
            &scratch.weights,
            &scratch.caps,
            rem,
            x,
            &mut scratch.active,
        );
    }

    // Step 3: residue proportional to remaining headroom (covers system
    // activity no modeled phase demanded).
    if rem > 1e-12 {
        scratch.headroom.clear();
        scratch
            .headroom
            .extend(x.iter().map(|&v| (capacity - v).max(0.0)));
        scratch.caps.clear();
        scratch.caps.resize(n, capacity);
        rem = waterfill_into(
            &scratch.headroom,
            &scratch.caps,
            rem,
            x,
            &mut scratch.active,
        );
    }

    rem
}

/// Measured window extent in units of grid slices — the true duration, not
/// the snapped slice count, so mass conservation survives windows whose
/// bounds are off the slice boundaries.
fn duration_slices(m: &Measurement, grid: &TimesliceGrid) -> f64 {
    m.end.saturating_sub(m.start) as f64 / grid.slice_nanos() as f64
}

/// The strawman the paper compares against: assume constant usage over the
/// measurement window. Like [`upsample_measurement`], the placed mass is
/// `avg × true duration`, spread evenly over the snapped slices.
pub fn upsample_constant(m: &Measurement, grid: &TimesliceGrid, out: &mut [f64]) {
    let ws = grid.snap(m.start);
    let we = grid.snap(m.end).max(ws + 1).min(grid.num_slices());
    let n = we - ws;
    let level = m.avg * duration_slices(m, grid) / n as f64;
    for slot in &mut out[ws..we] {
        *slot = level;
    }
}

/// The paper's Table II metric: sum of absolute differences between the
/// upsampled series and the ground truth, as a fraction of total ground
/// truth consumption. Both series must share the same granularity.
///
/// When the truth sums to zero the ratio is degenerate: zero-vs-zero is a
/// perfect reconstruction (0.0), but *nonzero*-vs-zero is unboundedly
/// wrong and returns [`f64::INFINITY`] — returning 0.0 there would score
/// phantom mass as a perfect match.
pub fn relative_sampling_error(upsampled: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(
        upsampled.len(),
        truth.len(),
        "series lengths differ: {} vs {}",
        upsampled.len(),
        truth.len()
    );
    let total: f64 = truth.iter().sum();
    let abs_diff: f64 = upsampled
        .iter()
        .zip(truth)
        .map(|(u, t)| (u - t).abs())
        .sum();
    if total <= 0.0 {
        return if abs_diff > 0.0 { f64::INFINITY } else { 0.0 };
    }
    abs_diff / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::timeslice::MILLIS;

    fn grid(n: usize) -> TimesliceGrid {
        TimesliceGrid::covering(0, n as u64 * 10 * MILLIS, 10 * MILLIS)
    }

    #[test]
    fn waterfill_proportional_within_caps() {
        let mut out = vec![0.0; 3];
        let left = waterfill(&[1.0, 2.0, 1.0], &[10.0, 10.0, 10.0], 8.0, &mut out);
        assert!(left < 1e-12);
        assert!((out[0] - 2.0).abs() < 1e-9);
        assert!((out[1] - 4.0).abs() < 1e-9);
        assert!((out[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn waterfill_respects_caps_and_returns_leftover() {
        let mut out = vec![0.0; 2];
        let left = waterfill(&[1.0, 1.0], &[1.0, 2.0], 5.0, &mut out);
        assert!((out[0] - 1.0).abs() < 1e-9);
        assert!((out[1] - 2.0).abs() < 1e-9);
        assert!((left - 2.0).abs() < 1e-9);
    }

    #[test]
    fn waterfill_zero_weights_distribute_nothing() {
        let mut out = vec![0.0; 2];
        let left = waterfill(&[0.0, 0.0], &[5.0, 5.0], 3.0, &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
        assert!((left - 3.0).abs() < 1e-12);
    }

    /// The worked example of Figure 2: resource R2, timeslices 2–3
    /// (0-indexed 1 and 2 here), measured at 40 % over two slices; exact
    /// demand 50 % in the second slice only, variable weight 1 in both.
    #[test]
    fn figure2_r2_example() {
        let g = grid(2);
        let exact = vec![0.0, 50.0];
        let variable = vec![1.0, 1.0];
        let m = Measurement {
            start: 0,
            end: 20 * MILLIS,
            avg: 40.0,
        };
        let mut out = vec![0.0; 2];
        let overflow = upsample_measurement(&m, &g, &exact, &variable, 100.0, &mut out);
        assert!(overflow < 1e-9);
        assert!((out[0] - 15.0).abs() < 1e-9, "slice 2 should be 15%, got {}", out[0]);
        assert!((out[1] - 65.0).abs() < 1e-9, "slice 3 should be 65%, got {}", out[1]);
    }

    #[test]
    fn conservation_of_total() {
        let g = grid(4);
        let exact = vec![1.0, 0.0, 2.0, 0.5];
        let variable = vec![0.0, 3.0, 1.0, 0.0];
        let m = Measurement {
            start: 0,
            end: 40 * MILLIS,
            avg: 2.0,
        };
        let mut out = vec![0.0; 4];
        let overflow = upsample_measurement(&m, &g, &exact, &variable, 4.0, &mut out);
        let placed: f64 = out.iter().sum();
        assert!((placed + overflow - 8.0).abs() < 1e-9);
        assert!(out.iter().all(|&v| v <= 4.0 + 1e-9));
    }

    #[test]
    fn no_demand_spreads_by_headroom() {
        let g = grid(2);
        let m = Measurement {
            start: 0,
            end: 20 * MILLIS,
            avg: 3.0,
        };
        let mut out = vec![0.0; 2];
        let overflow =
            upsample_measurement(&m, &g, &[0.0, 0.0], &[0.0, 0.0], 4.0, &mut out);
        assert!(overflow < 1e-9);
        // Uniform headroom: spread evenly (matches the constant strawman
        // when the model knows nothing).
        assert!((out[0] - 3.0).abs() < 1e-9);
        assert!((out[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn over_capacity_measurement_reports_overflow() {
        let g = grid(2);
        let m = Measurement {
            start: 0,
            end: 20 * MILLIS,
            avg: 5.0, // above the capacity of 4
        };
        let mut out = vec![0.0; 2];
        let overflow =
            upsample_measurement(&m, &g, &[0.0, 0.0], &[1.0, 1.0], 4.0, &mut out);
        assert!((overflow - 2.0).abs() < 1e-9);
        assert!((out[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn exact_demand_concentrates_usage() {
        // All demand sits in slice 0; the measurement should follow it.
        let g = grid(4);
        let m = Measurement {
            start: 0,
            end: 40 * MILLIS,
            avg: 0.5,
        };
        let mut out = vec![0.0; 4];
        upsample_measurement(&m, &g, &[2.0, 0.0, 0.0, 0.0], &[0.0; 4], 4.0, &mut out);
        assert!((out[0] - 2.0).abs() < 1e-9);
        assert!(out[1..].iter().all(|&v| v < 1e-9));
    }

    #[test]
    fn constant_strawman_is_flat() {
        let g = grid(3);
        let m = Measurement {
            start: 0,
            end: 30 * MILLIS,
            avg: 1.5,
        };
        let mut out = vec![0.0; 3];
        upsample_constant(&m, &g, &mut out);
        assert_eq!(out, vec![1.5, 1.5, 1.5]);
    }

    #[test]
    fn error_metric_basics() {
        assert_eq!(relative_sampling_error(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
        assert!((relative_sampling_error(&[2.0, 0.0], &[1.0, 1.0]) - 1.0).abs() < 1e-12);
        // Zero-vs-zero is a perfect reconstruction ...
        assert_eq!(relative_sampling_error(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        // ... but phantom mass against a zero truth is unboundedly wrong,
        // not a perfect score.
        assert_eq!(relative_sampling_error(&[5.0], &[0.0]), f64::INFINITY);
    }

    /// Off-boundary regression: `[0, 14 ms)` on a 10 ms grid snaps to one
    /// slice. The mass placed must be `avg × 1.4 slices`, not `avg × 1` —
    /// the snapped-count pricing silently dropped 40 % of the measurement.
    #[test]
    fn off_boundary_window_conserves_true_mass() {
        for (start_ms, end_ms) in [(0u64, 14u64), (3, 14), (0, 6), (7, 33)] {
            let g = grid(4);
            let m = Measurement {
                start: start_ms * MILLIS,
                end: end_ms * MILLIS,
                avg: 2.0,
            };
            let dur_slices = (end_ms - start_ms) as f64 / 10.0;
            let mut out = vec![0.0; 4];
            let overflow =
                upsample_measurement(&m, &g, &[0.0; 4], &[1.0; 4], 100.0, &mut out);
            let placed: f64 = out.iter().sum();
            assert!(
                (placed + overflow - 2.0 * dur_slices).abs() < 1e-9,
                "[{start_ms},{end_ms}) ms: placed {placed} + overflow {overflow} \
                 != avg × {dur_slices} slices"
            );
        }
    }

    /// The constant strawman conserves the same true mass: a 14 ms window
    /// snapped to one 10 ms slice reads 2.8 units there, not 2.0.
    #[test]
    fn off_boundary_constant_conserves_true_mass() {
        let g = grid(4);
        let m = Measurement {
            start: 0,
            end: 14 * MILLIS,
            avg: 2.0,
        };
        let mut out = vec![0.0; 4];
        upsample_constant(&m, &g, &mut out);
        assert!((out[0] - 2.8).abs() < 1e-9, "got {}", out[0]);
        assert!(out[1..].iter().all(|&v| v == 0.0));
    }

    /// Waterfill's tolerances are relative: the same shape must fill at
    /// 1e±15 scales without leaking the amount back as remainder.
    #[test]
    fn waterfill_handles_extreme_magnitudes() {
        for scale in [1e-15f64, 1.0, 1e15] {
            let weights = [1.0, 2.0, 1.0];
            let caps = [10.0 * scale, 10.0 * scale, 10.0 * scale];
            let amount = 8.0 * scale;
            let mut out = vec![0.0; 3];
            let left = waterfill(&weights, &caps, amount, &mut out);
            assert!(left <= 1e-9 * scale, "scale {scale}: leftover {left}");
            assert!((out[1] - 4.0 * scale).abs() < 1e-9 * scale, "scale {scale}");
        }
    }

    /// A slot already within rounding of its cap must not stall the fill:
    /// the unified liveness predicate excludes it from the first round.
    #[test]
    fn waterfill_skips_slots_at_cap_within_epsilon() {
        let caps = [1.0, 5.0];
        let mut out = vec![1.0 - 1e-16, 0.0];
        let left = waterfill(&[1.0, 1.0], &caps, 3.0, &mut out);
        assert!(left < 1e-9, "leftover {left}");
        assert!((out[1] - 3.0).abs() < 1e-9, "got {}", out[1]);
    }
}
