//! Step 2 of resource attribution: upsampling coarse measurements to
//! timeslice granularity (§III-D2).
//!
//! Each measurement reports the *average* usage over a multi-slice window.
//! The measured total is split over the window's slices by superimposing the
//! estimated demand: first proportionally to known (Exact) demand without
//! exceeding demand or capacity, then the remainder proportionally to
//! variable demand capped by capacity, then any residue proportionally to
//! remaining capacity. Anything that still cannot be placed (measurement
//! exceeding capacity × window) is reported back as overflow.

use crate::trace::resource::Measurement;
use crate::trace::timeslice::TimesliceGrid;

/// Distributes `amount` over `out` proportionally to `weights`, never
/// pushing `out[i]` above `caps[i]`. Returns the undistributable remainder.
/// Exact water-filling: at most `n` rounds, each freezing one capped slot.
pub fn waterfill(weights: &[f64], caps: &[f64], amount: f64, out: &mut [f64]) -> f64 {
    debug_assert_eq!(weights.len(), caps.len());
    debug_assert_eq!(weights.len(), out.len());
    let mut remaining = amount;
    let mut active: Vec<usize> = (0..weights.len())
        .filter(|&i| weights[i] > 0.0 && out[i] < caps[i])
        .collect();
    while remaining > 1e-12 && !active.is_empty() {
        let wsum: f64 = active.iter().map(|&i| weights[i]).sum();
        if wsum <= 0.0 {
            break;
        }
        // Largest uniform scale before some slot hits its cap.
        let mut scale = remaining / wsum;
        for &i in &active {
            let headroom = caps[i] - out[i];
            scale = scale.min(headroom / weights[i]);
        }
        if scale <= 0.0 {
            // All remaining slots are at cap within epsilon.
            active.retain(|&i| caps[i] - out[i] > 1e-12);
            if active.is_empty() {
                break;
            }
            continue;
        }
        for &i in &active {
            out[i] += scale * weights[i];
        }
        remaining -= scale * wsum;
        active.retain(|&i| caps[i] - out[i] > 1e-12);
    }
    remaining.max(0.0)
}

/// Upsamples one measurement into per-slice usage, writing into
/// `out[ws..we]` (slice indices of the window). `exact` and `variable` are
/// the demand rows of this resource over all slices. Returns the overflow
/// that could not be placed under `capacity`.
pub fn upsample_measurement(
    m: &Measurement,
    grid: &TimesliceGrid,
    exact: &[f64],
    variable: &[f64],
    capacity: f64,
    out: &mut [f64],
) -> f64 {
    let ws = grid.snap(m.start);
    let we = grid.snap(m.end).max(ws + 1).min(grid.num_slices());
    let n = we - ws;
    let total = m.avg * n as f64; // in (units × slices)

    // Step 1: proportional to known demand, capped by min(demand, capacity).
    let targets: Vec<f64> = (ws..we).map(|s| exact[s].min(capacity)).collect();
    let tsum: f64 = targets.iter().sum();
    let mut x = vec![0.0; n];
    let mut rem = total;
    if tsum > 0.0 {
        let placed = total.min(tsum);
        for i in 0..n {
            x[i] = placed * targets[i] / tsum;
        }
        rem = total - placed;
    }

    // Step 2: remainder proportional to variable demand, capped by capacity.
    if rem > 1e-12 {
        let weights: Vec<f64> = (ws..we).map(|s| variable[s]).collect();
        let caps = vec![capacity; n];
        rem = waterfill(&weights, &caps, rem, &mut x);
    }

    // Step 3: residue proportional to remaining headroom (covers system
    // activity no modeled phase demanded).
    if rem > 1e-12 {
        let headroom: Vec<f64> = x.iter().map(|&v| (capacity - v).max(0.0)).collect();
        let caps = vec![capacity; n];
        rem = waterfill(&headroom, &caps, rem, &mut x);
    }

    out[ws..we].copy_from_slice(&x);
    rem
}

/// The strawman the paper compares against: assume constant usage over the
/// measurement window.
pub fn upsample_constant(m: &Measurement, grid: &TimesliceGrid, out: &mut [f64]) {
    let ws = grid.snap(m.start);
    let we = grid.snap(m.end).max(ws + 1).min(grid.num_slices());
    for slot in &mut out[ws..we] {
        *slot = m.avg;
    }
}

/// The paper's Table II metric: sum of absolute differences between the
/// upsampled series and the ground truth, as a fraction of total ground
/// truth consumption. Both series must share the same granularity.
pub fn relative_sampling_error(upsampled: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(
        upsampled.len(),
        truth.len(),
        "series lengths differ: {} vs {}",
        upsampled.len(),
        truth.len()
    );
    let total: f64 = truth.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let abs_diff: f64 = upsampled
        .iter()
        .zip(truth)
        .map(|(u, t)| (u - t).abs())
        .sum();
    abs_diff / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::timeslice::MILLIS;

    fn grid(n: usize) -> TimesliceGrid {
        TimesliceGrid::covering(0, n as u64 * 10 * MILLIS, 10 * MILLIS)
    }

    #[test]
    fn waterfill_proportional_within_caps() {
        let mut out = vec![0.0; 3];
        let left = waterfill(&[1.0, 2.0, 1.0], &[10.0, 10.0, 10.0], 8.0, &mut out);
        assert!(left < 1e-12);
        assert!((out[0] - 2.0).abs() < 1e-9);
        assert!((out[1] - 4.0).abs() < 1e-9);
        assert!((out[2] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn waterfill_respects_caps_and_returns_leftover() {
        let mut out = vec![0.0; 2];
        let left = waterfill(&[1.0, 1.0], &[1.0, 2.0], 5.0, &mut out);
        assert!((out[0] - 1.0).abs() < 1e-9);
        assert!((out[1] - 2.0).abs() < 1e-9);
        assert!((left - 2.0).abs() < 1e-9);
    }

    #[test]
    fn waterfill_zero_weights_distribute_nothing() {
        let mut out = vec![0.0; 2];
        let left = waterfill(&[0.0, 0.0], &[5.0, 5.0], 3.0, &mut out);
        assert_eq!(out, vec![0.0, 0.0]);
        assert!((left - 3.0).abs() < 1e-12);
    }

    /// The worked example of Figure 2: resource R2, timeslices 2–3
    /// (0-indexed 1 and 2 here), measured at 40 % over two slices; exact
    /// demand 50 % in the second slice only, variable weight 1 in both.
    #[test]
    fn figure2_r2_example() {
        let g = grid(2);
        let exact = vec![0.0, 50.0];
        let variable = vec![1.0, 1.0];
        let m = Measurement {
            start: 0,
            end: 20 * MILLIS,
            avg: 40.0,
        };
        let mut out = vec![0.0; 2];
        let overflow = upsample_measurement(&m, &g, &exact, &variable, 100.0, &mut out);
        assert!(overflow < 1e-9);
        assert!((out[0] - 15.0).abs() < 1e-9, "slice 2 should be 15%, got {}", out[0]);
        assert!((out[1] - 65.0).abs() < 1e-9, "slice 3 should be 65%, got {}", out[1]);
    }

    #[test]
    fn conservation_of_total() {
        let g = grid(4);
        let exact = vec![1.0, 0.0, 2.0, 0.5];
        let variable = vec![0.0, 3.0, 1.0, 0.0];
        let m = Measurement {
            start: 0,
            end: 40 * MILLIS,
            avg: 2.0,
        };
        let mut out = vec![0.0; 4];
        let overflow = upsample_measurement(&m, &g, &exact, &variable, 4.0, &mut out);
        let placed: f64 = out.iter().sum();
        assert!((placed + overflow - 8.0).abs() < 1e-9);
        assert!(out.iter().all(|&v| v <= 4.0 + 1e-9));
    }

    #[test]
    fn no_demand_spreads_by_headroom() {
        let g = grid(2);
        let m = Measurement {
            start: 0,
            end: 20 * MILLIS,
            avg: 3.0,
        };
        let mut out = vec![0.0; 2];
        let overflow =
            upsample_measurement(&m, &g, &[0.0, 0.0], &[0.0, 0.0], 4.0, &mut out);
        assert!(overflow < 1e-9);
        // Uniform headroom: spread evenly (matches the constant strawman
        // when the model knows nothing).
        assert!((out[0] - 3.0).abs() < 1e-9);
        assert!((out[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn over_capacity_measurement_reports_overflow() {
        let g = grid(2);
        let m = Measurement {
            start: 0,
            end: 20 * MILLIS,
            avg: 5.0, // above the capacity of 4
        };
        let mut out = vec![0.0; 2];
        let overflow =
            upsample_measurement(&m, &g, &[0.0, 0.0], &[1.0, 1.0], 4.0, &mut out);
        assert!((overflow - 2.0).abs() < 1e-9);
        assert!((out[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn exact_demand_concentrates_usage() {
        // All demand sits in slice 0; the measurement should follow it.
        let g = grid(4);
        let m = Measurement {
            start: 0,
            end: 40 * MILLIS,
            avg: 0.5,
        };
        let mut out = vec![0.0; 4];
        upsample_measurement(&m, &g, &[2.0, 0.0, 0.0, 0.0], &[0.0; 4], 4.0, &mut out);
        assert!((out[0] - 2.0).abs() < 1e-9);
        assert!(out[1..].iter().all(|&v| v < 1e-9));
    }

    #[test]
    fn constant_strawman_is_flat() {
        let g = grid(3);
        let m = Measurement {
            start: 0,
            end: 30 * MILLIS,
            avg: 1.5,
        };
        let mut out = vec![0.0; 3];
        upsample_constant(&m, &g, &mut out);
        assert_eq!(out, vec![1.5, 1.5, 1.5]);
    }

    #[test]
    fn error_metric_basics() {
        assert_eq!(relative_sampling_error(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
        assert!((relative_sampling_error(&[2.0, 0.0], &[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(relative_sampling_error(&[5.0], &[0.0]), 0.0);
    }
}
