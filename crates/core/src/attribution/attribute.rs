//! Step 3 of resource attribution: assigning per-slice consumption to
//! individual phase instances (§III-D3).
//!
//! Within one timeslice and one resource: phases with `Exact` rules receive
//! the consumption proportionally to (and never exceeding) their demand;
//! whatever remains is split over `Variable` phases proportionally to their
//! weights. Consumption that no active phase can absorb is recorded as
//! unattributed (system overhead outside the model).

use crate::attribution::demand::DemandMatrix;
use crate::model::rules::AttributionRule;
use crate::trace::timeslice::MetricGrid;

/// Per-participant attributed usage, aligned with
/// [`DemandMatrix::participants`].
#[derive(Clone, Debug)]
pub struct AttributedUsage {
    /// Usage per slice, same offset/length as the participant's demand.
    pub usage: Vec<Vec<f64>>,
    /// Consumption no participant absorbed: `[resource][slice]`.
    pub unattributed: MetricGrid,
}

/// Cell-major reference implementation of [`attribute`]: for every
/// `(resource, slice)` cell it scans all participants of that resource.
/// Retired from the production pipeline (the participant-major kernel
/// below is bit-identical and asymptotically cheaper); kept as the
/// differential-testing oracle for `columnar_matches_reference_bitwise`.
#[cfg(test)]
fn attribute_reference(dm: &DemandMatrix, consumption: &MetricGrid) -> AttributedUsage {
    let nr = consumption.num_rows();
    let ns = consumption.num_slices();
    let mut usage: Vec<Vec<f64>> = dm
        .participants
        .iter()
        .map(|p| vec![0.0; p.demand.len()])
        .collect();
    let mut unattributed = MetricGrid::zeros(nr, ns);

    // Group participants per resource once.
    let mut by_resource: Vec<Vec<usize>> = vec![Vec::new(); nr];
    for (pi, p) in dm.participants.iter().enumerate() {
        by_resource[p.resource.0 as usize].push(pi);
    }

    for r in 0..nr {
        for s in 0..ns {
            let c = consumption[r][s];
            if c <= 0.0 {
                continue;
            }
            // Exact participants first, proportional to demand, capped by it.
            let exact_total = dm.exact[r][s];
            let var_total = dm.variable[r][s];
            let to_exact = c.min(exact_total);
            let mut remainder = c - to_exact;
            for &pi in &by_resource[r] {
                let p = &dm.participants[pi];
                if s < p.first_slice || s >= p.first_slice + p.demand.len() {
                    continue;
                }
                let d = p.demand[s - p.first_slice];
                if d <= 0.0 {
                    continue;
                }
                match p.rule {
                    AttributionRule::Exact(_) => {
                        usage[pi][s - p.first_slice] = to_exact * d / exact_total;
                    }
                    AttributionRule::Variable(_) => {
                        if var_total > 0.0 {
                            usage[pi][s - p.first_slice] = remainder * d / var_total;
                        }
                    }
                    AttributionRule::None => {}
                }
            }
            if var_total > 0.0 {
                remainder = 0.0;
            }
            unattributed[r][s] = remainder;
        }
    }
    AttributedUsage {
        usage,
        unattributed,
    }
}

/// Attributes the upsampled `consumption` (`[resource][slice]`) to the
/// participants of `dm`. Participant-major: instead of scanning every
/// participant of a resource for every cell — O(resources × slices ×
/// participants-per-resource) — it walks each participant's own demand
/// window once, O(cells + total demand entries).
///
/// Bit-identical to the cell-major reference above: each usage cell
/// depends only on the per-cell totals `consumption[r][s]`,
/// `exact[r][s]`, `variable[r][s]` (precomputed either way), each
/// participant owns its own output cell (plain assignment, never
/// accumulation), and the per-cell formula —
/// `c.min(exact_total) * d / exact_total` resp.
/// `(c - c.min(exact_total)) * d / var_total` — is evaluated with the
/// same operation order. `tests/columnar_equivalence.rs` pins the
/// end-to-end behavior against committed goldens.
pub fn attribute(dm: &DemandMatrix, consumption: &MetricGrid) -> AttributedUsage {
    let nr = consumption.num_rows();
    let ns = consumption.num_slices();
    let mut unattributed = MetricGrid::zeros(nr, ns);

    // Unattributed pass: pure per-cell arithmetic over contiguous rows.
    for r in 0..nr {
        let c_row = &consumption[r];
        let e_row = &dm.exact[r];
        let v_row = &dm.variable[r];
        let u_row = &mut unattributed[r];
        for s in 0..ns {
            let c = c_row[s];
            if c <= 0.0 || v_row[s] > 0.0 {
                continue;
            }
            u_row[s] = c - c.min(e_row[s]);
        }
    }

    // Usage pass: one contiguous sweep per participant window.
    let usage = dm
        .participants
        .iter()
        .map(|p| {
            let mut row = vec![0.0; p.demand.len()];
            let r = p.resource.0 as usize;
            let first = p.first_slice;
            let c_row = &consumption[r];
            let e_row = &dm.exact[r];
            let v_row = &dm.variable[r];
            for (k, &d) in p.demand.iter().enumerate() {
                let s = first + k;
                let c = c_row[s];
                if c <= 0.0 || d <= 0.0 {
                    continue;
                }
                match p.rule {
                    AttributionRule::Exact(_) => {
                        let exact_total = e_row[s];
                        row[k] = c.min(exact_total) * d / exact_total;
                    }
                    AttributionRule::Variable(_) => {
                        let var_total = v_row[s];
                        if var_total > 0.0 {
                            row[k] = (c - c.min(e_row[s])) * d / var_total;
                        }
                    }
                    AttributionRule::None => {}
                }
            }
            row
        })
        .collect();

    AttributedUsage {
        usage,
        unattributed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::demand::ParticipantDemand;
    use crate::trace::execution::InstanceId;
    use crate::trace::resource::ResourceIdx;

    fn participant(
        pi: u32,
        rule: AttributionRule,
        first: usize,
        demand: Vec<f64>,
    ) -> ParticipantDemand {
        ParticipantDemand {
            instance: InstanceId(pi),
            resource: ResourceIdx(0),
            rule,
            first_slice: first,
            demand,
        }
    }

    fn grid1(row: Vec<f64>) -> MetricGrid {
        MetricGrid::from_rows(vec![row])
    }

    /// The Figure 2(f) example at timeslice 3: consumption 65 %, exact
    /// phase P3 demands 50 %, variable phase P2 has weight 1 → P3 gets 50,
    /// P2 gets 15.
    #[test]
    fn figure2_attribution_example() {
        let dm = DemandMatrix {
            exact: grid1(vec![50.0]),
            variable: grid1(vec![1.0]),
            participants: vec![
                participant(0, AttributionRule::Exact(0.5), 0, vec![50.0]),
                participant(1, AttributionRule::Variable(1.0), 0, vec![1.0]),
            ],
        };
        let att = attribute(&dm, &grid1(vec![65.0]));
        assert!((att.usage[0][0] - 50.0).abs() < 1e-9);
        assert!((att.usage[1][0] - 15.0).abs() < 1e-9);
        assert!(att.unattributed[0][0] < 1e-12);
    }

    #[test]
    fn exact_capped_at_demand_when_consumption_low() {
        let dm = DemandMatrix {
            exact: grid1(vec![4.0]),
            variable: grid1(vec![0.0]),
            participants: vec![
                participant(0, AttributionRule::Exact(0.5), 0, vec![3.0]),
                participant(1, AttributionRule::Exact(0.5), 0, vec![1.0]),
            ],
        };
        // Only 2.0 consumed: split 3:1.
        let att = attribute(&dm, &grid1(vec![2.0]));
        assert!((att.usage[0][0] - 1.5).abs() < 1e-9);
        assert!((att.usage[1][0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn variable_split_by_weight() {
        let dm = DemandMatrix {
            exact: grid1(vec![0.0]),
            variable: grid1(vec![3.0]),
            participants: vec![
                participant(0, AttributionRule::Variable(1.0), 0, vec![1.0]),
                participant(1, AttributionRule::Variable(2.0), 0, vec![2.0]),
            ],
        };
        let att = attribute(&dm, &grid1(vec![6.0]));
        assert!((att.usage[0][0] - 2.0).abs() < 1e-9);
        assert!((att.usage[1][0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn unattributed_when_no_active_phase() {
        let dm = DemandMatrix {
            exact: grid1(vec![0.0, 2.0]),
            variable: grid1(vec![0.0, 0.0]),
            participants: vec![participant(0, AttributionRule::Exact(0.5), 1, vec![2.0])],
        };
        let att = attribute(&dm, &grid1(vec![1.5, 3.0]));
        // Slice 0: nobody active — all 1.5 unattributed.
        assert!((att.unattributed[0][0] - 1.5).abs() < 1e-9);
        // Slice 1: exact takes its 2.0, the extra 1.0 has no variable
        // phase to go to.
        assert!((att.usage[0][0] - 2.0).abs() < 1e-9);
        assert!((att.unattributed[0][1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conservation_per_slice() {
        let dm = DemandMatrix {
            exact: grid1(vec![2.0, 1.0]),
            variable: grid1(vec![1.0, 2.0]),
            participants: vec![
                participant(0, AttributionRule::Exact(0.25), 0, vec![2.0, 1.0]),
                participant(1, AttributionRule::Variable(1.0), 0, vec![1.0, 2.0]),
            ],
        };
        let consumption = grid1(vec![3.5, 2.5]);
        let att = attribute(&dm, &consumption);
        for s in 0..2 {
            let total: f64 = att.usage.iter().map(|u| u[s]).sum::<f64>()
                + att.unattributed[0][s];
            assert!(
                (total - consumption[0][s]).abs() < 1e-9,
                "slice {s}: {total} != {}",
                consumption[0][s]
            );
        }
    }

    /// The columnar path must agree bit-for-bit with the cell-major
    /// reference on a mixed Exact/Variable/None scenario with offset
    /// windows and idle cells.
    #[test]
    fn columnar_matches_reference_bitwise() {
        let dm = DemandMatrix {
            exact: MetricGrid::from_rows(vec![
                vec![2.0, 1.0, 0.0, 0.5],
                vec![0.0, 0.0, 3.0, 0.0],
            ]),
            variable: MetricGrid::from_rows(vec![
                vec![1.0, 0.0, 2.0, 0.0],
                vec![0.0, 1.5, 0.0, 0.0],
            ]),
            participants: vec![
                participant(0, AttributionRule::Exact(0.25), 0, vec![2.0, 1.0]),
                participant(1, AttributionRule::Variable(1.0), 0, vec![1.0, 0.0, 2.0]),
                participant(2, AttributionRule::Exact(0.5), 3, vec![0.5]),
                participant(3, AttributionRule::None, 1, vec![1.0, 1.0]),
                ParticipantDemand {
                    instance: InstanceId(4),
                    resource: ResourceIdx(1),
                    rule: AttributionRule::Variable(1.5),
                    first_slice: 1,
                    demand: vec![1.5, 0.0],
                },
            ],
        };
        let consumption = MetricGrid::from_rows(vec![
            vec![3.5, 0.7, 1.9, 2.0],
            vec![0.4, 2.2, 1.0, 0.0],
        ]);
        let a = attribute_reference(&dm, &consumption);
        let b = attribute(&dm, &consumption);
        assert_eq!(format!("{:?}", a.usage), format!("{:?}", b.usage));
        assert_eq!(a.unattributed, b.unattributed);
    }
}
