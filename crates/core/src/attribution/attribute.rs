//! Step 3 of resource attribution: assigning per-slice consumption to
//! individual phase instances (§III-D3).
//!
//! Within one timeslice and one resource: phases with `Exact` rules receive
//! the consumption proportionally to (and never exceeding) their demand;
//! whatever remains is split over `Variable` phases proportionally to their
//! weights. Consumption that no active phase can absorb is recorded as
//! unattributed (system overhead outside the model).

use crate::attribution::demand::DemandMatrix;
use crate::model::rules::AttributionRule;

/// Per-participant attributed usage, aligned with
/// [`DemandMatrix::participants`].
#[derive(Clone, Debug)]
pub struct AttributedUsage {
    /// Usage per slice, same offset/length as the participant's demand.
    pub usage: Vec<Vec<f64>>,
    /// Consumption no participant absorbed: `[resource][slice]`.
    pub unattributed: Vec<Vec<f64>>,
}

/// Attributes the upsampled `consumption` (`[resource][slice]`) to the
/// participants of `dm`.
pub fn attribute(dm: &DemandMatrix, consumption: &[Vec<f64>]) -> AttributedUsage {
    let nr = consumption.len();
    let ns = consumption.first().map_or(0, |c| c.len());
    let mut usage: Vec<Vec<f64>> = dm
        .participants
        .iter()
        .map(|p| vec![0.0; p.demand.len()])
        .collect();
    let mut unattributed = vec![vec![0.0; ns]; nr];

    // Group participants per resource once.
    let mut by_resource: Vec<Vec<usize>> = vec![Vec::new(); nr];
    for (pi, p) in dm.participants.iter().enumerate() {
        by_resource[p.resource.0 as usize].push(pi);
    }

    for r in 0..nr {
        for s in 0..ns {
            let c = consumption[r][s];
            if c <= 0.0 {
                continue;
            }
            // Exact participants first, proportional to demand, capped by it.
            let exact_total = dm.exact[r][s];
            let var_total = dm.variable[r][s];
            let to_exact = c.min(exact_total);
            let mut remainder = c - to_exact;
            for &pi in &by_resource[r] {
                let p = &dm.participants[pi];
                if s < p.first_slice || s >= p.first_slice + p.demand.len() {
                    continue;
                }
                let d = p.demand[s - p.first_slice];
                if d <= 0.0 {
                    continue;
                }
                match p.rule {
                    AttributionRule::Exact(_) => {
                        usage[pi][s - p.first_slice] = to_exact * d / exact_total;
                    }
                    AttributionRule::Variable(_) => {
                        if var_total > 0.0 {
                            usage[pi][s - p.first_slice] = remainder * d / var_total;
                        }
                    }
                    AttributionRule::None => {}
                }
            }
            if var_total > 0.0 {
                remainder = 0.0;
            }
            unattributed[r][s] = remainder;
        }
    }
    AttributedUsage {
        usage,
        unattributed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::demand::ParticipantDemand;
    use crate::trace::execution::InstanceId;
    use crate::trace::resource::ResourceIdx;

    fn participant(
        pi: u32,
        rule: AttributionRule,
        first: usize,
        demand: Vec<f64>,
    ) -> ParticipantDemand {
        ParticipantDemand {
            instance: InstanceId(pi),
            resource: ResourceIdx(0),
            rule,
            first_slice: first,
            demand,
        }
    }

    /// The Figure 2(f) example at timeslice 3: consumption 65 %, exact
    /// phase P3 demands 50 %, variable phase P2 has weight 1 → P3 gets 50,
    /// P2 gets 15.
    #[test]
    fn figure2_attribution_example() {
        let dm = DemandMatrix {
            exact: vec![vec![50.0]],
            variable: vec![vec![1.0]],
            participants: vec![
                participant(0, AttributionRule::Exact(0.5), 0, vec![50.0]),
                participant(1, AttributionRule::Variable(1.0), 0, vec![1.0]),
            ],
        };
        let att = attribute(&dm, &[vec![65.0]]);
        assert!((att.usage[0][0] - 50.0).abs() < 1e-9);
        assert!((att.usage[1][0] - 15.0).abs() < 1e-9);
        assert!(att.unattributed[0][0] < 1e-12);
    }

    #[test]
    fn exact_capped_at_demand_when_consumption_low() {
        let dm = DemandMatrix {
            exact: vec![vec![4.0]],
            variable: vec![vec![0.0]],
            participants: vec![
                participant(0, AttributionRule::Exact(0.5), 0, vec![3.0]),
                participant(1, AttributionRule::Exact(0.5), 0, vec![1.0]),
            ],
        };
        // Only 2.0 consumed: split 3:1.
        let att = attribute(&dm, &[vec![2.0]]);
        assert!((att.usage[0][0] - 1.5).abs() < 1e-9);
        assert!((att.usage[1][0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn variable_split_by_weight() {
        let dm = DemandMatrix {
            exact: vec![vec![0.0]],
            variable: vec![vec![3.0]],
            participants: vec![
                participant(0, AttributionRule::Variable(1.0), 0, vec![1.0]),
                participant(1, AttributionRule::Variable(2.0), 0, vec![2.0]),
            ],
        };
        let att = attribute(&dm, &[vec![6.0]]);
        assert!((att.usage[0][0] - 2.0).abs() < 1e-9);
        assert!((att.usage[1][0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn unattributed_when_no_active_phase() {
        let dm = DemandMatrix {
            exact: vec![vec![0.0, 2.0]],
            variable: vec![vec![0.0, 0.0]],
            participants: vec![participant(0, AttributionRule::Exact(0.5), 1, vec![2.0])],
        };
        let att = attribute(&dm, &[vec![1.5, 3.0]]);
        // Slice 0: nobody active — all 1.5 unattributed.
        assert!((att.unattributed[0][0] - 1.5).abs() < 1e-9);
        // Slice 1: exact takes its 2.0, the extra 1.0 has no variable
        // phase to go to.
        assert!((att.usage[0][0] - 2.0).abs() < 1e-9);
        assert!((att.unattributed[0][1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conservation_per_slice() {
        let dm = DemandMatrix {
            exact: vec![vec![2.0, 1.0]],
            variable: vec![vec![1.0, 2.0]],
            participants: vec![
                participant(0, AttributionRule::Exact(0.25), 0, vec![2.0, 1.0]),
                participant(1, AttributionRule::Variable(1.0), 0, vec![1.0, 2.0]),
            ],
        };
        let consumption = vec![vec![3.5, 2.5]];
        let att = attribute(&dm, &consumption);
        for s in 0..2 {
            let total: f64 = att.usage.iter().map(|u| u[s]).sum::<f64>()
                + att.unattributed[0][s];
            assert!(
                (total - consumption[0][s]).abs() < 1e-9,
                "slice {s}: {total} != {}",
                consumption[0][s]
            );
        }
    }
}
