//! Resource attribution (§III-D): the paper's core mechanism.
//!
//! Three steps, run per resource instance:
//!
//! 1. **Demand estimation** ([`demand`]) — per timeslice, sum the demands of
//!    active phases: `Exact` rules contribute known absolute demand,
//!    `Variable` rules contribute relative weights.
//! 2. **Upsampling** ([`upsample`]) — split each coarse monitoring
//!    measurement over its timeslices: first proportionally to known demand
//!    (never exceeding demand or capacity), then the remainder
//!    proportionally to variable demand, then any residue proportionally to
//!    free capacity.
//! 3. **Attribution** ([`attribute`]) — within each timeslice, give `Exact`
//!    phases up to their demand and distribute the rest over `Variable`
//!    phases by weight.
//!
//! The result is the fine-grained, per-phase, per-resource, per-timeslice
//! [`PerformanceProfile`] that bottleneck and issue detection consume.

pub mod attribute;
pub mod demand;
pub mod profile;
pub mod upsample;

pub use profile::{
    build_profile, InstanceUsage, Parallelism, PerformanceProfile, ProfileConfig, UpsampleMode,
};
pub use upsample::relative_sampling_error;
