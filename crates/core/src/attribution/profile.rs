//! The fine-grained performance profile: output of the attribution pipeline.

use std::collections::HashMap;

use crate::attribution::attribute::attribute;
use crate::attribution::demand::estimate_demand;
use crate::attribution::upsample::{
    upsample_constant, upsample_measurement_scratch, UpsampleScratch,
};
use crate::model::execution::ExecutionModel;
use crate::model::rules::{AttributionRule, RuleSet};
use crate::trace::execution::{ExecutionTrace, InstanceId};
use crate::trace::resource::{ResourceIdx, ResourceInstance, ResourceTrace};
use crate::trace::timeslice::{BoolGrid, MetricGrid, Nanos, TimesliceGrid, MILLIS};

/// How coarse measurements are upsampled to timeslices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpsampleMode {
    /// Grade10's demand-guided upsampling (§III-D2).
    DemandGuided,
    /// The strawman: constant usage over each measurement window.
    Constant,
}

pub use crate::config::Parallelism;

/// Configuration of a profile build.
#[derive(Clone, Debug)]
pub struct ProfileConfig {
    /// Timeslice duration in nanoseconds (paper default: 10 ms).
    pub slice: Nanos,
    /// Upsampling strategy for coarse measurements.
    pub upsample: UpsampleMode,
    /// Threading of the upsampling stage; the result is bit-identical
    /// either way.
    pub parallelism: Parallelism,
    /// Explicit worker-pool width for the upsampling fan-out. `None` (the
    /// default) defers to `GRADE10_THREADS`, then to the machine size —
    /// see [`crate::config::resolve_threads`].
    pub threads: Option<usize>,
    /// When monitoring does not cover a timeslice (crashed monitor,
    /// dropped windows), estimate its consumption from the modeled demand
    /// instead of treating it as idle: `min(capacity, exact + α ×
    /// variable)`, with α calibrated from the slices that *were* measured.
    /// Estimated slices are flagged in
    /// [`PerformanceProfile::estimated`] as low-confidence. Off by
    /// default: with clean input the flag changes nothing, and silence is
    /// the conservative reading of missing data.
    pub estimate_missing: bool,
    /// Overrides the grid's end time (normally derived from the trace and
    /// monitoring extents). Supervised execution attributes each machine in
    /// its own unit and merges the per-machine profiles along the resource
    /// axis; for the rows to line up, every unit must build over the same
    /// grid, so the supervisor computes one global end and pins it here.
    pub grid_end: Option<Nanos>,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            slice: 10 * MILLIS,
            upsample: UpsampleMode::DemandGuided,
            parallelism: Parallelism::Auto,
            threads: None,
            estimate_missing: false,
            grid_end: None,
        }
    }
}

/// Attributed usage of one (leaf instance, resource instance) pair.
#[derive(Clone, Debug)]
pub struct InstanceUsage {
    /// The phase instance.
    pub instance: InstanceId,
    /// The resource instance.
    pub resource: ResourceIdx,
    /// The rule that governed this pair.
    pub rule: AttributionRule,
    /// Slice index of `usage[0]` / `demand[0]`.
    pub first_slice: usize,
    /// Absolute demand per slice for `Exact` rules; weight × active
    /// fraction for `Variable` rules.
    pub demand: Vec<f64>,
    /// Attributed absolute usage per slice.
    pub usage: Vec<f64>,
}

impl InstanceUsage {
    /// Usage in slice `s` (global index), zero outside the phase's range.
    pub fn usage_at(&self, s: usize) -> f64 {
        if s < self.first_slice || s >= self.first_slice + self.usage.len() {
            0.0
        } else {
            self.usage[s - self.first_slice]
        }
    }

    /// Demand in slice `s` (global index).
    pub fn demand_at(&self, s: usize) -> f64 {
        if s < self.first_slice || s >= self.first_slice + self.demand.len() {
            0.0
        } else {
            self.demand[s - self.first_slice]
        }
    }
}

/// The 3-D performance profile: per phase instance, per resource instance,
/// per timeslice (§III-D, Figure 2(f)).
#[derive(Clone, Debug)]
pub struct PerformanceProfile {
    /// The timeslice grid all arrays are indexed by.
    pub grid: TimesliceGrid,
    /// The monitored resource instances (row index = `ResourceIdx`).
    pub resources: Vec<ResourceInstance>,
    /// Upsampled consumption: `[resource][slice]`, absolute units.
    pub consumption: MetricGrid,
    /// Known (Exact) demand totals: `[resource][slice]`.
    pub demand_exact: MetricGrid,
    /// Variable demand weight totals: `[resource][slice]`.
    pub demand_variable: MetricGrid,
    /// Consumption not attributable to any modeled phase.
    pub unattributed: MetricGrid,
    /// Measured consumption that exceeded capacity and was dropped, per
    /// resource, in unit-seconds (non-zero values indicate a mis-specified
    /// capacity).
    pub overflow: Vec<f64>,
    /// `[resource][slice]` flags marking slices whose consumption is a
    /// demand-derived *estimate* (no monitoring covered the slice) rather
    /// than a measurement. Always all-false unless
    /// [`ProfileConfig::estimate_missing`] is on. Treat flagged cells as
    /// low-confidence.
    pub estimated: BoolGrid,
    /// Per-(leaf instance, resource) usage and demand.
    pub usages: Vec<InstanceUsage>,
    index: HashMap<(InstanceId, ResourceIdx), usize>,
}

impl PerformanceProfile {
    /// Usage record of one (instance, resource) pair, if the instance
    /// participates in that resource.
    pub fn usage_of(&self, instance: InstanceId, resource: ResourceIdx) -> Option<&InstanceUsage> {
        self.index.get(&(instance, resource)).map(|&i| &self.usages[i])
    }

    /// Total attributed consumption (unit-seconds) of one instance on one
    /// resource.
    pub fn total_usage(&self, instance: InstanceId, resource: ResourceIdx) -> f64 {
        self.usage_of(instance, resource)
            .map(|u| u.usage.iter().sum::<f64>() * self.grid.slice_secs())
            .unwrap_or(0.0)
    }

    /// Attributed usage of an instance *including all descendants* on one
    /// resource, per slice over the whole grid. This is how container
    /// phases (e.g. a worker's whole Compute phase) report usage: as the
    /// sum of their leaves.
    pub fn aggregate_usage(
        &self,
        trace: &ExecutionTrace,
        root: InstanceId,
        resource: ResourceIdx,
    ) -> Vec<f64> {
        let mut out = vec![0.0; self.grid.num_slices()];
        self.visit_leaves(trace, root, &mut |id| {
            if let Some(u) = self.usage_of(id, resource) {
                for (k, &v) in u.usage.iter().enumerate() {
                    out[u.first_slice + k] += v;
                }
            }
        });
        out
    }

    /// Same as [`aggregate_usage`](Self::aggregate_usage) but for demand
    /// (Exact absolute demand + Variable weights are reported separately).
    pub fn aggregate_demand(
        &self,
        trace: &ExecutionTrace,
        root: InstanceId,
        resource: ResourceIdx,
    ) -> (Vec<f64>, Vec<f64>) {
        let ns = self.grid.num_slices();
        let (mut exact, mut var) = (vec![0.0; ns], vec![0.0; ns]);
        self.visit_leaves(trace, root, &mut |id| {
            if let Some(u) = self.usage_of(id, resource) {
                let dst = match u.rule {
                    AttributionRule::Exact(_) => &mut exact,
                    _ => &mut var,
                };
                for (k, &v) in u.demand.iter().enumerate() {
                    dst[u.first_slice + k] += v;
                }
            }
        });
        (exact, var)
    }

    fn visit_leaves(
        &self,
        trace: &ExecutionTrace,
        root: InstanceId,
        f: &mut impl FnMut(InstanceId),
    ) {
        if trace.is_leaf(root) {
            f(root);
            return;
        }
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if trace.is_leaf(id) {
                f(id);
            } else {
                stack.extend_from_slice(trace.children_of(id));
            }
        }
    }

    /// Number of `(resource, slice)` cells whose consumption is a
    /// demand-derived estimate rather than a measurement.
    pub fn estimated_slices(&self) -> usize {
        self.estimated.count_set()
    }

    /// Total number of `(resource, slice)` cells in the profile.
    pub fn total_slices(&self) -> usize {
        self.resources.len() * self.grid.num_slices()
    }

    /// Utilization fraction (0..1) of a resource in a slice.
    pub fn utilization(&self, resource: ResourceIdx, slice: usize) -> f64 {
        let cap = self.resources[resource.0 as usize].capacity;
        self.consumption[resource.0 as usize][slice] / cap
    }

    /// A profile with no resources over a single-slice grid: the fallback a
    /// supervised run reports when *every* attribution unit was dropped.
    /// Downstream consumers see zero resources rather than a crash.
    pub fn empty(slice: Nanos) -> PerformanceProfile {
        let slice = slice.max(1);
        PerformanceProfile {
            grid: TimesliceGrid::covering(0, slice, slice),
            resources: Vec::new(),
            consumption: MetricGrid::empty(),
            demand_exact: MetricGrid::empty(),
            demand_variable: MetricGrid::empty(),
            unattributed: MetricGrid::empty(),
            overflow: Vec::new(),
            estimated: BoolGrid::empty(),
            usages: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Reassembles a profile from its public parts, rebuilding the
    /// `(instance, resource) → usage` index from the order of `usages`.
    /// This is the stage-cache codec's constructor: a decoded profile must
    /// be indistinguishable from the one that was encoded, including
    /// lookup behavior.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        grid: TimesliceGrid,
        resources: Vec<ResourceInstance>,
        consumption: MetricGrid,
        demand_exact: MetricGrid,
        demand_variable: MetricGrid,
        unattributed: MetricGrid,
        overflow: Vec<f64>,
        estimated: BoolGrid,
        usages: Vec<InstanceUsage>,
    ) -> PerformanceProfile {
        let index = usages
            .iter()
            .enumerate()
            .map(|(i, u)| ((u.instance, u.resource), i))
            .collect();
        PerformanceProfile {
            grid,
            resources,
            consumption,
            demand_exact,
            demand_variable,
            unattributed,
            overflow,
            estimated,
            usages,
            index,
        }
    }

    /// Merges per-machine profiles built over the *same grid* (see
    /// [`ProfileConfig::grid_end`]) into one profile by concatenating the
    /// resource axis; instance IDs refer to the shared execution trace, so
    /// only `ResourceIdx` values are re-based. Returns `None` when `parts`
    /// is empty; panics if the grids disagree (a supervisor bug, not an
    /// input problem).
    pub fn merge(parts: Vec<PerformanceProfile>) -> Option<PerformanceProfile> {
        let mut parts = parts.into_iter();
        let mut out = parts.next()?;
        for p in parts {
            assert_eq!(
                (out.grid.num_slices(), out.grid.slice_nanos()),
                (p.grid.num_slices(), p.grid.slice_nanos()),
                "merged profiles must share a grid"
            );
            let off = out.resources.len() as u32;
            out.resources.extend(p.resources);
            out.consumption.extend_rows(p.consumption);
            out.demand_exact.extend_rows(p.demand_exact);
            out.demand_variable.extend_rows(p.demand_variable);
            out.unattributed.extend_rows(p.unattributed);
            out.overflow.extend(p.overflow);
            out.estimated.extend_rows(p.estimated);
            for mut u in p.usages {
                u.resource = ResourceIdx(u.resource.0 + off);
                out.index.insert((u.instance, u.resource), out.usages.len());
                out.usages.push(u);
            }
        }
        Some(out)
    }
}

/// Runs the full attribution pipeline (§III-D): demand estimation,
/// upsampling, attribution.
pub fn build_profile(
    model: &ExecutionModel,
    rules: &RuleSet,
    trace: &ExecutionTrace,
    resources: &ResourceTrace,
    cfg: &ProfileConfig,
) -> PerformanceProfile {
    let demand_span = crate::obs::span(crate::obs::Stage::Demand);
    let end = cfg
        .grid_end
        .unwrap_or_else(|| trace.makespan_end().max(resources.end()))
        .max(cfg.slice);
    let grid = TimesliceGrid::covering(0, end, cfg.slice);
    let ns = grid.num_slices();
    let nr = resources.instances().len();

    let dm = estimate_demand(model, rules, trace, resources, &grid);
    drop(demand_span);
    let upsample_span = crate::obs::span(crate::obs::Stage::Upsample);

    // Upsampling is independent per resource instance; fan the rows out
    // over a small thread scope when there is enough work to amortize
    // the thread spawns. Results are written into disjoint row slices, so
    // the parallel and sequential paths are bit-identical. Each worker
    // (and the sequential loop) owns one `UpsampleScratch`, so the
    // columnar path allocates per worker instead of per measurement.
    let mut consumption = MetricGrid::zeros(nr, ns);
    let mut overflow = vec![0.0; nr];
    let upsample_row = |r: usize, row: &mut [f64], scratch: &mut UpsampleScratch| -> f64 {
        let cap = resources.instances()[r].capacity;
        let mut over = 0.0;
        for m in resources.measurements(ResourceIdx(r as u32)) {
            match cfg.upsample {
                UpsampleMode::DemandGuided => {
                    // The measurement kernels report their residue in
                    // units x slices; normalize to unit-seconds so overflow
                    // is directly comparable with total consumption.
                    let rem = upsample_measurement_scratch(
                        m,
                        &grid,
                        &dm.exact[r],
                        &dm.variable[r],
                        cap,
                        row,
                        scratch,
                    );
                    over += rem * grid.slice_secs();
                }
                UpsampleMode::Constant => {
                    upsample_constant(m, &grid, row);
                }
            }
        }
        over
    };
    let parallel_worthwhile = match cfg.parallelism {
        Parallelism::Never => false,
        Parallelism::Always => nr > 1,
        Parallelism::Auto => nr >= 4 && (ns * nr) >= 64 * 1024,
    };
    if parallel_worthwhile {
        // Width precedence (cfg.threads > GRADE10_THREADS > machine size)
        // is shared with the supervision layer via `crate::config`, so one
        // knob pins every fan-out. `Always` keeps the worker scope even at
        // width 1: tests rely on worker spans existing under that policy.
        let threads = crate::config::resolve_threads(cfg.threads, nr);
        let obs_session = crate::obs::worker_handle();
        std::thread::scope(|scope| {
            let mut rows: Vec<(usize, &mut [f64], &mut f64)> = consumption
                .rows_mut()
                .zip(overflow.iter_mut())
                .enumerate()
                .map(|(r, (row, over))| (r, row, over))
                .collect();
            let chunk = rows.len().div_ceil(threads);
            let mut work: Vec<Vec<(usize, &mut [f64], &mut f64)>> = Vec::new();
            while !rows.is_empty() {
                let take = chunk.min(rows.len());
                work.push(rows.drain(..take).collect());
            }
            for batch in work {
                let upsample_row = &upsample_row;
                let obs_session = obs_session.clone();
                // A worker panic propagates when the scope joins, exactly
                // like the old crossbeam scope's `expect`.
                scope.spawn(move || {
                    let _worker = obs_session.as_ref().map(|h| h.enter());
                    let mut scratch = UpsampleScratch::default();
                    for (r, row, over) in batch {
                        *over = upsample_row(r, row, &mut scratch);
                    }
                });
            }
        });
    } else {
        let mut scratch = UpsampleScratch::default();
        for (r, (row, over)) in consumption.rows_mut().zip(overflow.iter_mut()).enumerate() {
            *over = upsample_row(r, row, &mut scratch);
        }
    }

    // Graceful degradation: slices no monitoring window covers read as
    // zero consumption above, which attribution would interpret as "the
    // resource sat idle". When enabled, fill those holes with a
    // demand-derived estimate *before* attribution so per-slice
    // conservation (attributed + unattributed = consumption) still holds
    // for the estimated cells.
    let mut estimated = BoolGrid::falses(nr, ns);
    if cfg.estimate_missing {
        for r in 0..nr {
            let cap = resources.instances()[r].capacity;
            let mut covered = vec![false; ns];
            for m in resources.measurements(ResourceIdx(r as u32)) {
                let (a, b) = grid.slice_range(m.start, m.end);
                for c in covered.iter_mut().take(b).skip(a) {
                    *c = true;
                }
            }
            // Calibrate how much consumption one unit of variable-demand
            // weight produced on the slices that *were* measured.
            let (mut num, mut den) = (0.0, 0.0);
            for s in 0..ns {
                if covered[s] && dm.variable[r][s] > 0.0 {
                    num += (consumption[r][s] - dm.exact[r][s]).max(0.0);
                    den += dm.variable[r][s];
                }
            }
            let alpha = if den > 0.0 { num / den } else { 0.0 };
            for s in 0..ns {
                // Only slices where some phase demanded the resource are
                // estimates; uncovered idle slices stay zero and unflagged.
                if !covered[s] && (dm.exact[r][s] > 0.0 || dm.variable[r][s] > 0.0) {
                    consumption[r][s] =
                        (dm.exact[r][s] + alpha * dm.variable[r][s]).min(cap);
                    estimated[r][s] = true;
                }
            }
        }
    }

    drop(upsample_span);
    let _attribute_span = crate::obs::span(crate::obs::Stage::Attribute);
    let att = attribute(&dm, &consumption);

    let mut usages = Vec::with_capacity(dm.participants.len());
    let mut index = HashMap::with_capacity(dm.participants.len());
    for (pi, (p, usage)) in dm.participants.into_iter().zip(att.usage).enumerate() {
        index.insert((p.instance, p.resource), pi);
        usages.push(InstanceUsage {
            instance: p.instance,
            resource: p.resource,
            rule: p.rule,
            first_slice: p.first_slice,
            demand: p.demand,
            usage,
        });
    }

    PerformanceProfile {
        grid,
        resources: resources.instances().to_vec(),
        consumption,
        demand_exact: dm.exact,
        demand_variable: dm.variable,
        unattributed: att.unattributed,
        overflow,
        estimated,
        usages,
        index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::trace::execution::TraceBuilder;
    use crate::trace::resource::ResourceInstance;

    /// Builds the complete Figure 2 scenario: phases P1..P4, resources
    /// R1..R3 with the rule matrix of Figure 2(b), the execution trace of
    /// Figure 2(a), and the monitoring data of Figure 2(d). Slices are
    /// 10 ms; the figure's timeslices 1..6 map to indices 0..5.
    pub(crate) fn figure2() -> (
        ExecutionModel,
        RuleSet,
        ExecutionTrace,
        ResourceTrace,
    ) {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let p1 = b.child(r, "P1", Repeat::Once);
        let p2 = b.child(r, "P2", Repeat::Once);
        let p3 = b.child(r, "P3", Repeat::Once);
        let p4 = b.child(r, "P4", Repeat::Once);
        let model = b.build();

        // Rule matrix (Figure 2b):
        //        P1      P2      P3       P4
        // R1     x(1)    2x      -        -
        // R2     -       y(1)    50%      -
        // R3     -       80%     z(1)     z(1)
        let rules = RuleSet::new()
            .with_default(AttributionRule::None)
            .rule(p1, "R1", AttributionRule::Variable(1.0))
            .rule(p2, "R1", AttributionRule::Variable(2.0))
            .rule(p2, "R2", AttributionRule::Variable(1.0))
            .rule(p3, "R2", AttributionRule::Exact(0.5))
            .rule(p2, "R3", AttributionRule::Exact(0.8))
            .rule(p3, "R3", AttributionRule::Variable(1.0))
            .rule(p4, "R3", AttributionRule::Variable(1.0));

        // Execution trace (Figure 2a): timeslices are 10 ms; measurement
        // windows cover two slices each ([0,2), [2,4), [4,6)).
        // P1: slices 0-1, P2: slices 2-3, P3: slices 3-4, P4: slices 4-5,
        // so window [2,4) sees P2's variable demand in both slices and
        // P3's Exact 50 % only in slice 3 — the paper's worked example.
        let ms = MILLIS;
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, 60 * ms, None, None).unwrap();
        tb.add_phase(&[("job", 0), ("P1", 0)], 0, 20 * ms, Some(0), Some(0))
            .unwrap();
        tb.add_phase(&[("job", 0), ("P2", 0)], 20 * ms, 40 * ms, Some(0), Some(1))
            .unwrap();
        tb.add_phase(&[("job", 0), ("P3", 0)], 30 * ms, 50 * ms, Some(0), Some(2))
            .unwrap();
        tb.add_phase(&[("job", 0), ("P4", 0)], 40 * ms, 60 * ms, Some(0), Some(3))
            .unwrap();
        let trace = tb.build().unwrap();

        // Resource trace (Figure 2d): measurements over 2-slice quanta, in
        // percent (capacity 100).
        let mut rt = ResourceTrace::new();
        let r1 = rt.add_resource(ResourceInstance {
            kind: "R1".into(),
            machine: Some(0),
            capacity: 100.0,
        });
        let r2 = rt.add_resource(ResourceInstance {
            kind: "R2".into(),
            machine: Some(0),
            capacity: 100.0,
        });
        let r3 = rt.add_resource(ResourceInstance {
            kind: "R3".into(),
            machine: Some(0),
            capacity: 100.0,
        });
        rt.add_series(r1, 0, 20 * ms, &[60.0, 85.0, 30.0]);
        rt.add_series(r2, 0, 20 * ms, &[0.0, 40.0, 20.0]);
        rt.add_series(r3, 0, 20 * ms, &[40.0, 90.0, 50.0]);
        (model, rules, trace, rt)
    }

    fn inst(trace: &ExecutionTrace, model: &ExecutionModel, name: &str) -> InstanceId {
        let ty = model.find_by_name(name).unwrap();
        trace.instances_of_type(ty).next().unwrap().id
    }

    #[test]
    fn figure2_r2_upsampling_and_attribution() {
        let (model, rules, trace, rt) = figure2();
        let prof = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
        let r2 = rt.find("R2", Some(0)).unwrap();
        // Upsampled R2 (paper text): the 40 % measurement over the window
        // splits into 15 % (first slice, variable demand only) and 65 %
        // (second slice, 50 % Exact + variable) — indices 2 and 3 here.
        let c = &prof.consumption[r2.0 as usize];
        assert!((c[2] - 15.0).abs() < 1e-6, "first window slice = {}", c[2]);
        assert!((c[3] - 65.0).abs() < 1e-6, "second window slice = {}", c[3]);
        // Attribution in that slice: P3 gets its Exact 50, P2 the variable
        // remainder of 15 (Figure 2f).
        let p2 = inst(&trace, &model, "P2");
        let p3 = inst(&trace, &model, "P3");
        let u2 = prof.usage_of(p2, r2).unwrap();
        let u3 = prof.usage_of(p3, r2).unwrap();
        assert!((u3.usage_at(3) - 50.0).abs() < 1e-6, "P3 {}", u3.usage_at(3));
        assert!((u2.usage_at(3) - 15.0).abs() < 1e-6, "P2 {}", u2.usage_at(3));
    }

    #[test]
    fn figure2_conservation_everywhere() {
        let (model, rules, trace, rt) = figure2();
        let prof = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
        // Upsampling conserves each measurement's total; attribution +
        // unattributed conserves each slice's consumption.
        for r in 0..3usize {
            let measured: f64 = rt.total_consumption(ResourceIdx(r as u32));
            let upsampled: f64 =
                prof.consumption[r].iter().sum::<f64>() * prof.grid.slice_secs();
            assert!(
                (measured - upsampled).abs() < 1e-6,
                "resource {r}: measured {measured} vs upsampled {upsampled}"
            );
            for s in 0..prof.grid.num_slices() {
                let attributed: f64 = prof
                    .usages
                    .iter()
                    .filter(|u| u.resource.0 as usize == r)
                    .map(|u| u.usage_at(s))
                    .sum();
                let total = attributed + prof.unattributed[r][s];
                assert!(
                    (total - prof.consumption[r][s]).abs() < 1e-6,
                    "resource {r} slice {s}: {total} vs {}",
                    prof.consumption[r][s]
                );
            }
        }
    }

    #[test]
    fn figure2_p2_exact_limit_on_r3() {
        // Figure 2(e)/§III-E: P2 uses its full 80 % Exact demand of R3
        // even though R3 is not saturated in that slice.
        let (model, rules, trace, rt) = figure2();
        let prof = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
        let r3 = rt.find("R3", Some(0)).unwrap();
        let p2 = inst(&trace, &model, "P2");
        let u = prof.usage_of(p2, r3).unwrap();
        assert!((u.usage_at(2) - 80.0).abs() < 1e-6, "P2@R3 = {}", u.usage_at(2));
        assert!((u.demand_at(2) - 80.0).abs() < 1e-6);
    }

    #[test]
    fn aggregate_usage_sums_children() {
        let (model, rules, trace, rt) = figure2();
        let prof = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
        let r1 = rt.find("R1", Some(0)).unwrap();
        let job = InstanceId(0); // root added first
        let agg = prof.aggregate_usage(&trace, job, r1);
        // Root aggregate equals total consumption minus unattributed.
        for s in 0..prof.grid.num_slices() {
            let expect = prof.consumption[r1.0 as usize][s] - prof.unattributed[r1.0 as usize][s];
            assert!((agg[s] - expect).abs() < 1e-6, "slice {s}");
        }
    }

    #[test]
    fn parallel_and_sequential_upsampling_agree_exactly() {
        let (model, rules, trace, rt) = figure2();
        let seq = build_profile(
            &model,
            &rules,
            &trace,
            &rt,
            &ProfileConfig {
                parallelism: Parallelism::Never,
                ..Default::default()
            },
        );
        let par = build_profile(
            &model,
            &rules,
            &trace,
            &rt,
            &ProfileConfig {
                parallelism: Parallelism::Always,
                ..Default::default()
            },
        );
        assert_eq!(seq.consumption, par.consumption);
        assert_eq!(seq.overflow, par.overflow);
        for (a, b) in seq.usages.iter().zip(&par.usages) {
            assert_eq!(a.usage, b.usage);
        }
    }

    #[test]
    fn constant_mode_flattens() {
        let (model, rules, trace, rt) = figure2();
        let cfg = ProfileConfig {
            upsample: UpsampleMode::Constant,
            ..Default::default()
        };
        let prof = build_profile(&model, &rules, &trace, &rt, &cfg);
        let r1 = rt.find("R1", Some(0)).unwrap().0 as usize;
        // Constant mode: both slices of each window carry the average.
        assert_eq!(prof.consumption[r1][0], prof.consumption[r1][1]);
        assert_eq!(prof.consumption[r1][2], prof.consumption[r1][3]);
    }

    /// Figure 2 with the last R2 monitoring window lost (monitor crashed):
    /// slices 4–5 of R2 are uncovered.
    fn figure2_truncated_r2() -> (
        ExecutionModel,
        RuleSet,
        ExecutionTrace,
        ResourceTrace,
    ) {
        let (model, rules, trace, rt_full) = figure2();
        let mut rt = ResourceTrace::new();
        for (r, inst) in rt_full.instances().iter().enumerate() {
            let idx = rt.add_resource(inst.clone());
            let keep = if inst.kind == "R2" { 2 } else { 3 };
            for m in rt_full.measurements(ResourceIdx(r as u32)).iter().take(keep) {
                rt.add_measurement(idx, *m);
            }
        }
        // R2 now ends at 40 ms; the grid still spans 60 ms via the trace.
        assert_eq!(rt.measurements(rt.find("R2", Some(0)).unwrap()).len(), 2);
        (model, rules, trace, rt)
    }

    #[test]
    fn missing_monitoring_reads_idle_by_default() {
        let (model, rules, trace, rt) = figure2_truncated_r2();
        let prof = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
        let r2 = rt.find("R2", Some(0)).unwrap().0 as usize;
        assert_eq!(prof.consumption[r2][4], 0.0);
        assert_eq!(prof.estimated_slices(), 0);
    }

    #[test]
    fn estimate_missing_fills_uncovered_demanded_slices() {
        let (model, rules, trace, rt) = figure2_truncated_r2();
        let cfg = ProfileConfig {
            estimate_missing: true,
            ..Default::default()
        };
        let prof = build_profile(&model, &rules, &trace, &rt, &cfg);
        let r2 = rt.find("R2", Some(0)).unwrap().0 as usize;
        // P3 (Exact 50 % of R2) runs through slice 4, so the estimate must
        // recover at least its exact demand there, capped by capacity.
        assert!(
            prof.consumption[r2][4] >= 50.0 - 1e-9,
            "estimated consumption {}",
            prof.consumption[r2][4]
        );
        assert!(prof.consumption[r2][4] <= 100.0);
        assert!(prof.estimated[r2][4]);
        // Slice 5 has no phase demanding R2: stays zero and unflagged.
        assert_eq!(prof.consumption[r2][5], 0.0);
        assert!(!prof.estimated[r2][5]);
        assert!(prof.estimated_slices() >= 1);
        // Covered slices are untouched: the paper's golden numbers hold.
        assert!((prof.consumption[r2][2] - 15.0).abs() < 1e-6);
        assert!((prof.consumption[r2][3] - 65.0).abs() < 1e-6);
        // Conservation still holds on the estimated slice.
        let attributed: f64 = prof
            .usages
            .iter()
            .filter(|u| u.resource.0 as usize == r2)
            .map(|u| u.usage_at(4))
            .sum();
        let total = attributed + prof.unattributed[r2][4];
        assert!((total - prof.consumption[r2][4]).abs() < 1e-6);
    }

    #[test]
    fn estimate_missing_is_identity_on_full_coverage() {
        let (model, rules, trace, rt) = figure2();
        let base = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
        let est = build_profile(
            &model,
            &rules,
            &trace,
            &rt,
            &ProfileConfig {
                estimate_missing: true,
                ..Default::default()
            },
        );
        assert_eq!(base.consumption, est.consumption);
        assert_eq!(est.estimated_slices(), 0);
    }

    #[test]
    fn total_usage_in_unit_seconds() {
        let (model, rules, trace, rt) = figure2();
        let prof = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
        let r3 = rt.find("R3", Some(0)).unwrap();
        let p2 = inst(&trace, &model, "P2");
        let t = prof.total_usage(p2, r3);
        assert!(t > 0.0);
        // Missing pairs report zero.
        let p1 = inst(&trace, &model, "P1");
        assert_eq!(prof.total_usage(p1, r3), 0.0);
    }
}
