//! Step 1 of resource attribution: timeslice-granular demand estimation
//! (§III-D1).

use std::collections::HashMap;

use crate::model::execution::{ExecutionModel, PhaseTypeId};
use crate::model::rules::{AttributionRule, RuleSet};
use crate::trace::execution::{ExecutionTrace, InstanceId};
use crate::trace::resource::{ResourceIdx, ResourceTrace};
use crate::trace::timeslice::{MetricGrid, TimesliceGrid};

/// Demand of one (leaf phase instance, resource instance) pair over the
/// slices the phase spans.
#[derive(Clone, Debug)]
pub struct ParticipantDemand {
    /// The demanding phase instance.
    pub instance: InstanceId,
    /// The demanded resource instance.
    pub resource: ResourceIdx,
    /// The rule that produced this demand.
    pub rule: AttributionRule,
    /// First slice of the `demand` array.
    pub first_slice: usize,
    /// Per-slice demand: absolute units for `Exact`, relative weight for
    /// `Variable`, both scaled by the phase's active fraction in the slice.
    pub demand: Vec<f64>,
}

/// Per-resource, per-slice demand totals, one contiguous
/// [`MetricGrid`] row per resource.
#[derive(Clone, Debug)]
pub struct DemandMatrix {
    /// Known (Exact) demand in absolute units: `[resource][slice]`.
    pub exact: MetricGrid,
    /// Variable demand weights: `[resource][slice]`.
    pub variable: MetricGrid,
    /// Per-participant demand detail, for the attribution step.
    pub participants: Vec<ParticipantDemand>,
}

/// Fraction of each slice in `[first, last)` during which `id` was actively
/// executing: present (between start and end) and not halted by a blocking
/// event. This implements the paper's "active (started, not ended, and not
/// interrupted by a blocking event)" at sub-slice resolution.
pub fn active_fractions(
    trace: &ExecutionTrace,
    id: InstanceId,
    grid: &TimesliceGrid,
) -> (usize, Vec<f64>) {
    let inst = trace.instance(id);
    let (first, last) = grid.slice_range(inst.start, inst.end);
    let mut af: Vec<f64> = (first..last)
        .map(|s| grid.overlap_fraction(s, inst.start, inst.end))
        .collect();
    for ev in trace.blocking_of(id) {
        let (bf, bl) = grid.slice_range(ev.start, ev.end);
        for s in bf.max(first)..bl.min(last) {
            af[s - first] = (af[s - first] - grid.overlap_fraction(s, ev.start, ev.end)).max(0.0);
        }
    }
    (first, af)
}

/// Builds the demand matrix for all (leaf instance × resource instance)
/// pairs whose machines match and whose rule is not `None`.
///
/// A resource instance scoped to machine `m` is demanded only by phases on
/// machine `m`; a global resource (machine `None`) is demanded by every
/// phase. Container phases (those with children in the trace) carry no
/// demand of their own — their usage is the sum of their leaves.
///
/// Columnar implementation: leaves-outer, resources-inner traversal with
/// the per-(leaf × resource) rule lookup served from a per-phase-type
/// **rule row** computed once, collapsing the string-keyed lookups from
/// (leaves × resources) to (types × resources). Behavior is pinned
/// against committed goldens by `tests/columnar_equivalence.rs` (the
/// per-cell reference implementation this replaced produced bit-identical
/// profiles).
pub fn estimate_demand(
    _model: &ExecutionModel,
    rules: &RuleSet,
    trace: &ExecutionTrace,
    resources: &ResourceTrace,
    grid: &TimesliceGrid,
) -> DemandMatrix {
    let nr = resources.instances().len();
    let ns = grid.num_slices();
    let mut exact = MetricGrid::zeros(nr, ns);
    let mut variable = MetricGrid::zeros(nr, ns);
    let mut participants = Vec::new();

    // One row of effective rules per phase type, filled on first
    // encounter. Leaves overwhelmingly share a handful of types, so the
    // string-keyed lookups collapse from (leaves × resources) to
    // (types × resources).
    let mut rule_rows: HashMap<PhaseTypeId, Vec<AttributionRule>> = HashMap::new();

    for inst in trace.leaves() {
        let (first, af) = active_fractions(trace, inst.id, grid);
        if af.is_empty() {
            continue;
        }
        let rule_row = rule_rows.entry(inst.type_id).or_insert_with(|| {
            resources
                .instances()
                .iter()
                .map(|res| rules.get(inst.type_id, &res.kind))
                .collect()
        });
        for (ri, res) in resources.instances().iter().enumerate() {
            if let (Some(rm), Some(im)) = (res.machine, inst.machine) {
                if rm != im {
                    continue;
                }
            } else if res.machine.is_some() && inst.machine.is_none() {
                continue;
            }
            let rule = rule_row[ri];
            if rule.is_none() {
                continue;
            }
            let mut demand = Vec::with_capacity(af.len());
            match rule {
                AttributionRule::None => unreachable!(),
                AttributionRule::Exact(p) => {
                    let row = &mut exact[ri][first..first + af.len()];
                    // `(p * capacity) * a` preserves the legacy operation
                    // order, so hoisting the product is bit-identical.
                    let scale = p * res.capacity;
                    for (k, &a) in af.iter().enumerate() {
                        let d = scale * a;
                        demand.push(d);
                        row[k] += d;
                    }
                }
                AttributionRule::Variable(w) => {
                    let row = &mut variable[ri][first..first + af.len()];
                    for (k, &a) in af.iter().enumerate() {
                        let d = w * a;
                        demand.push(d);
                        row[k] += d;
                    }
                }
            }
            participants.push(ParticipantDemand {
                instance: inst.id,
                resource: ResourceIdx(ri as u32),
                rule,
                first_slice: first,
                demand,
            });
        }
    }
    DemandMatrix {
        exact,
        variable,
        participants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::trace::execution::TraceBuilder;
    use crate::trace::resource::ResourceInstance;
    use crate::trace::timeslice::MILLIS;

    fn setup() -> (ExecutionModel, ExecutionTrace, ResourceTrace, TimesliceGrid) {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let _a = b.child(r, "a", Repeat::Once);
        let _c = b.child(r, "b", Repeat::Once);
        let model = b.build();
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, 40 * MILLIS, None, None).unwrap();
        // a: slices 0..2 on machine 0; b: slices 1..4 on machine 0.
        let a = tb
            .add_phase(&[("job", 0), ("a", 0)], 0, 20 * MILLIS, Some(0), Some(0))
            .unwrap();
        tb.add_phase(
            &[("job", 0), ("b", 0)],
            10 * MILLIS,
            40 * MILLIS,
            Some(0),
            Some(1),
        )
        .unwrap();
        // a is blocked for the whole of slice 1.
        tb.add_blocking(a, "gc", 10 * MILLIS, 20 * MILLIS);
        let trace = tb.build().unwrap();
        let mut rt = ResourceTrace::new();
        rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 4.0,
        });
        let grid = TimesliceGrid::covering(0, 40 * MILLIS, 10 * MILLIS);
        (model, trace, rt, grid)
    }

    fn model_type(model: &ExecutionModel, name: &str) -> crate::model::execution::PhaseTypeId {
        model.find_by_name(name).unwrap()
    }

    #[test]
    fn active_fraction_subtracts_blocking() {
        let (model, trace, _rt, grid) = setup();
        let a_ty = model_type(&model, "a");
        let a = trace.instances_of_type(a_ty).next().unwrap().id;
        let (first, af) = active_fractions(&trace, a, &grid);
        assert_eq!(first, 0);
        assert_eq!(af.len(), 2);
        assert!((af[0] - 1.0).abs() < 1e-12);
        assert!(af[1].abs() < 1e-12, "blocked slice should be inactive");
    }

    #[test]
    fn default_rules_give_variable_weights() {
        let (model, trace, rt, grid) = setup();
        let rules = RuleSet::new(); // implicit Variable(1.0)
        let dm = estimate_demand(&model, &rules, &trace, &rt, &grid);
        // Leaves are a and b; job is a container and carries no demand.
        assert_eq!(dm.participants.len(), 2);
        // Slice 0: only a (weight 1). Slice 1: a blocked, b active (1).
        // Slices 2,3: only b.
        assert_eq!(dm.variable[0], vec![1.0, 1.0, 1.0, 1.0]);
        assert_eq!(dm.exact[0], vec![0.0; 4]);
    }

    #[test]
    fn exact_rules_use_capacity_fraction() {
        let (model, trace, rt, grid) = setup();
        let a_ty = model_type(&model, "a");
        let rules = RuleSet::new().rule(a_ty, "cpu", AttributionRule::Exact(0.25));
        let dm = estimate_demand(&model, &rules, &trace, &rt, &grid);
        // a demands 0.25 * 4 cores = 1 core in slice 0; blocked in slice 1.
        assert!((dm.exact[0][0] - 1.0).abs() < 1e-12);
        assert!(dm.exact[0][1].abs() < 1e-12);
        // b keeps the default variable weight.
        assert_eq!(dm.variable[0], vec![0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn none_rule_removes_participant() {
        let (model, trace, rt, grid) = setup();
        let a_ty = model_type(&model, "a");
        let b_ty = model_type(&model, "b");
        let rules = RuleSet::new()
            .rule(a_ty, "cpu", AttributionRule::None)
            .rule(b_ty, "cpu", AttributionRule::None);
        let dm = estimate_demand(&model, &rules, &trace, &rt, &grid);
        assert!(dm.participants.is_empty());
    }

    #[test]
    fn machine_scope_respected() {
        let (model, trace, mut rt, grid) = setup();
        rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(7), // no phases live there
            capacity: 4.0,
        });
        let rules = RuleSet::new();
        let dm = estimate_demand(&model, &rules, &trace, &rt, &grid);
        assert!(dm.participants.iter().all(|p| p.resource == ResourceIdx(0)));
        assert_eq!(dm.variable[1], vec![0.0; 4]);
    }
}
