//! The execution model: a hierarchical DAG of phase types (§III-B).
//!
//! Nodes are *phase types* ("superstep", "compute", "gather-thread"); a node
//! may contain a nested DAG of child types, and directed edges between
//! sibling types express precedence. A phase type may be instantiated more
//! than once within one parent instance; [`Repeat`] declares whether such
//! instances run one after another (supersteps) or concurrently (threads).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Index of a phase type within an [`ExecutionModel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhaseTypeId(pub u32);

/// How multiple instances of a phase type relate within one parent instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Repeat {
    /// At most one instance per parent instance.
    Once,
    /// Instances execute in instance-key order (e.g. supersteps).
    Sequential,
    /// Instances execute concurrently (e.g. worker threads).
    Parallel,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub(crate) struct PhaseTypeNode {
    pub name: String,
    pub parent: Option<PhaseTypeId>,
    pub children: Vec<PhaseTypeId>,
    /// Precedence edges among this node's children.
    pub edges: Vec<(PhaseTypeId, PhaseTypeId)>,
    pub repeat: Repeat,
}

/// A frozen execution model. Build with [`ExecutionModelBuilder`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExecutionModel {
    nodes: Vec<PhaseTypeNode>,
    root: PhaseTypeId,
}

impl ExecutionModel {
    /// The root phase type (the whole job).
    pub fn root(&self) -> PhaseTypeId {
        self.root
    }

    /// Name of a phase type.
    pub fn name(&self, id: PhaseTypeId) -> &str {
        &self.nodes[id.0 as usize].name
    }

    /// Parent of a phase type (`None` for the root).
    pub fn parent(&self, id: PhaseTypeId) -> Option<PhaseTypeId> {
        self.nodes[id.0 as usize].parent
    }

    /// Children of a phase type.
    pub fn children(&self, id: PhaseTypeId) -> &[PhaseTypeId] {
        &self.nodes[id.0 as usize].children
    }

    /// Precedence edges among the children of `id`.
    pub fn edges(&self, id: PhaseTypeId) -> &[(PhaseTypeId, PhaseTypeId)] {
        &self.nodes[id.0 as usize].edges
    }

    /// Repetition semantics of a phase type.
    pub fn repeat(&self, id: PhaseTypeId) -> Repeat {
        self.nodes[id.0 as usize].repeat
    }

    /// True if `id` has no children (leaf phases carry resource demand;
    /// container phases aggregate their leaves).
    pub fn is_leaf(&self, id: PhaseTypeId) -> bool {
        self.children(id).is_empty()
    }

    /// Number of phase types.
    pub fn num_types(&self) -> usize {
        self.nodes.len()
    }

    /// Child of `parent` with the given name.
    pub fn child_by_name(&self, parent: PhaseTypeId, name: &str) -> Option<PhaseTypeId> {
        self.children(parent)
            .iter()
            .copied()
            .find(|&c| self.name(c) == name)
    }

    /// Resolves a path of names from the root (the root's own name is the
    /// first element).
    pub fn resolve_path(&self, names: &[&str]) -> Option<PhaseTypeId> {
        let mut it = names.iter();
        let first = it.next()?;
        if *first != self.name(self.root) {
            return None;
        }
        let mut cur = self.root;
        for name in it {
            cur = self.child_by_name(cur, name)?;
        }
        Some(cur)
    }

    /// Finds a phase type anywhere in the tree by name (first match in
    /// breadth-first order). Names need not be globally unique; prefer
    /// [`resolve_path`](Self::resolve_path) when they are not.
    pub fn find_by_name(&self, name: &str) -> Option<PhaseTypeId> {
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(id) = queue.pop_front() {
            if self.name(id) == name {
                return Some(id);
            }
            queue.extend(self.children(id).iter().copied());
        }
        None
    }

    /// Full name path of a type from the root, dot-joined.
    pub fn type_path(&self, id: PhaseTypeId) -> String {
        let mut parts = vec![self.name(id).to_string()];
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            parts.push(self.name(p).to_string());
            cur = p;
        }
        parts.reverse();
        parts.join(".")
    }

    /// The nearest ancestor (or `id` itself) with `Sequential` repetition,
    /// or the root. This is the scope within which concurrent same-type
    /// phases are considered interchangeable by the imbalance analysis:
    /// work moves freely among the gather threads of one iteration, never
    /// across iterations.
    pub fn grouping_scope(&self, id: PhaseTypeId) -> PhaseTypeId {
        let mut cur = id;
        loop {
            match self.parent(cur) {
                None => return cur,
                Some(p) => {
                    if self.repeat(cur) == Repeat::Sequential {
                        return cur;
                    }
                    cur = p;
                }
            }
        }
    }
}

/// Builder for [`ExecutionModel`].
pub struct ExecutionModelBuilder {
    nodes: Vec<PhaseTypeNode>,
}

impl ExecutionModelBuilder {
    /// Starts a model whose root phase type is `root_name`.
    pub fn new(root_name: impl Into<String>) -> Self {
        ExecutionModelBuilder {
            nodes: vec![PhaseTypeNode {
                name: root_name.into(),
                parent: None,
                children: Vec::new(),
                edges: Vec::new(),
                repeat: Repeat::Once,
            }],
        }
    }

    /// The root's id.
    pub fn root(&self) -> PhaseTypeId {
        PhaseTypeId(0)
    }

    /// Adds a child phase type under `parent`. Sibling names must be unique.
    pub fn child(
        &mut self,
        parent: PhaseTypeId,
        name: impl Into<String>,
        repeat: Repeat,
    ) -> PhaseTypeId {
        let name = name.into();
        assert!(
            !self.nodes[parent.0 as usize]
                .children
                .iter()
                .any(|&c| self.nodes[c.0 as usize].name == name),
            "duplicate child name '{name}'"
        );
        let id = PhaseTypeId(self.nodes.len() as u32);
        self.nodes.push(PhaseTypeNode {
            name,
            parent: Some(parent),
            children: Vec::new(),
            edges: Vec::new(),
            repeat,
        });
        self.nodes[parent.0 as usize].children.push(id);
        id
    }

    /// Declares that every instance of `from` precedes every instance of
    /// `to` within one parent instance. Both must be children of the same
    /// parent.
    pub fn edge(&mut self, from: PhaseTypeId, to: PhaseTypeId) {
        let pf = self.nodes[from.0 as usize].parent;
        let pt = self.nodes[to.0 as usize].parent;
        let (Some(parent), true) = (pf, pf == pt) else {
            panic!("precedence edges must connect siblings");
        };
        self.nodes[parent.0 as usize].edges.push((from, to));
    }

    /// Freezes the model, verifying the sibling DAGs are acyclic.
    pub fn build(self) -> ExecutionModel {
        // Cycle check per parent via Kahn's algorithm.
        for node in &self.nodes {
            if node.edges.is_empty() {
                continue;
            }
            let mut indeg: HashMap<PhaseTypeId, usize> =
                node.children.iter().map(|&c| (c, 0)).collect();
            for &(_, to) in &node.edges {
                let Some(d) = indeg.get_mut(&to) else {
                    panic!("edge endpoint {to:?} is not a child of its parent");
                };
                *d += 1;
            }
            let mut queue: Vec<PhaseTypeId> = indeg
                .iter()
                .filter(|(_, &d)| d == 0)
                .map(|(&c, _)| c)
                .collect();
            let mut seen = 0;
            while let Some(c) = queue.pop() {
                seen += 1;
                for &(f, t) in &node.edges {
                    if f == c {
                        let Some(d) = indeg.get_mut(&t) else {
                            unreachable!("every edge endpoint was seeded above");
                        };
                        *d -= 1;
                        if *d == 0 {
                            queue.push(t);
                        }
                    }
                }
            }
            assert_eq!(
                seen,
                node.children.len(),
                "cycle among children of '{}'",
                node.name
            );
        }
        ExecutionModel {
            nodes: self.nodes,
            root: PhaseTypeId(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Giraph-flavored model used across core tests.
    pub(crate) fn giraph_like() -> ExecutionModel {
        let mut b = ExecutionModelBuilder::new("job");
        let root = b.root();
        let load = b.child(root, "load", Repeat::Parallel);
        let execute = b.child(root, "execute", Repeat::Once);
        let output = b.child(root, "output", Repeat::Parallel);
        b.edge(load, execute);
        b.edge(execute, output);
        let superstep = b.child(execute, "superstep", Repeat::Sequential);
        let worker = b.child(superstep, "worker", Repeat::Parallel);
        let compute = b.child(worker, "compute", Repeat::Once);
        let _thread = b.child(compute, "thread", Repeat::Parallel);
        let comm = b.child(worker, "communicate", Repeat::Once);
        let sync = b.child(worker, "sync", Repeat::Once);
        b.edge(compute, sync);
        b.edge(comm, sync);
        b.build()
    }

    #[test]
    fn build_and_navigate() {
        let m = giraph_like();
        assert_eq!(m.name(m.root()), "job");
        let execute = m.child_by_name(m.root(), "execute").unwrap();
        let superstep = m.child_by_name(execute, "superstep").unwrap();
        assert_eq!(m.repeat(superstep), Repeat::Sequential);
        assert_eq!(m.parent(superstep), Some(execute));
        assert!(!m.is_leaf(superstep));
        let worker = m.child_by_name(superstep, "worker").unwrap();
        let sync = m.child_by_name(worker, "sync").unwrap();
        assert!(m.is_leaf(sync));
    }

    #[test]
    fn resolve_path_walks_names() {
        let m = giraph_like();
        let id = m
            .resolve_path(&["job", "execute", "superstep", "worker", "compute", "thread"])
            .unwrap();
        assert_eq!(m.name(id), "thread");
        assert!(m.resolve_path(&["job", "nope"]).is_none());
        assert!(m.resolve_path(&["wrong-root"]).is_none());
    }

    #[test]
    fn type_path_round_trips() {
        let m = giraph_like();
        let id = m.find_by_name("thread").unwrap();
        assert_eq!(m.type_path(id), "job.execute.superstep.worker.compute.thread");
    }

    #[test]
    fn grouping_scope_finds_iteration_boundary() {
        let m = giraph_like();
        let thread = m.find_by_name("thread").unwrap();
        let superstep = m.find_by_name("superstep").unwrap();
        assert_eq!(m.grouping_scope(thread), superstep);
        // The root groups at itself.
        assert_eq!(m.grouping_scope(m.root()), m.root());
        // load is Parallel directly under the root: scope is the root.
        let load = m.find_by_name("load").unwrap();
        assert_eq!(m.grouping_scope(load), m.root());
    }

    #[test]
    #[should_panic(expected = "duplicate child name")]
    fn duplicate_sibling_names_rejected() {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        b.child(r, "x", Repeat::Once);
        b.child(r, "x", Repeat::Once);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_edges_rejected() {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let a = b.child(r, "a", Repeat::Once);
        let c = b.child(r, "b", Repeat::Once);
        b.edge(a, c);
        b.edge(c, a);
        b.build();
    }

    #[test]
    #[should_panic(expected = "siblings")]
    fn non_sibling_edge_rejected() {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let a = b.child(r, "a", Repeat::Once);
        let nested = b.child(a, "nested", Repeat::Once);
        let c = b.child(r, "b", Repeat::Once);
        b.edge(nested, c);
    }
}
