//! Execution and resource models — the "expert input" of the Grade10 paper
//! (§III-B), defined once per graph-processing framework and reused across
//! workloads.

pub mod execution;
pub mod persist;
pub mod resource;
pub mod rules;

pub use execution::{ExecutionModel, ExecutionModelBuilder, PhaseTypeId, Repeat};
pub use persist::ModelBundle;
pub use resource::{ResourceClass, ResourceDef, ResourceModel};
pub use rules::{AttributionRule, RuleSet};
