//! Persistence of expert input.
//!
//! The paper's workflow: models and rules "are defined once, typically by a
//! domain expert [...] then, with calibration, they can be used repeatedly
//! by multiple users" (§III-B). [`ModelBundle`] is that reusable artifact —
//! the execution model, resource model, and attribution rules of one
//! framework, serialized as JSON.

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};

use crate::error::Grade10Error;
use crate::model::execution::ExecutionModel;
use crate::model::resource::ResourceModel;
use crate::model::rules::RuleSet;

/// The complete expert input for one graph-processing framework.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Framework name ("giraph", "powergraph", ...).
    pub framework: String,
    /// Free-form notes (calibration setup, cores assumed by Exact rules).
    pub notes: String,
    /// The hierarchical phase-type DAG.
    pub execution: ExecutionModel,
    /// Consumable and blocking resource kinds.
    pub resources: ResourceModel,
    /// The attribution-rule matrix.
    pub rules: RuleSet,
}

impl ModelBundle {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        match serde_json::to_string_pretty(self) {
            Ok(json) => json,
            // Every field is plain data with a derived Serialize; there is
            // no fallible state to hit.
            Err(e) => unreachable!("model bundles always serialize: {e}"),
        }
    }

    /// Deserializes from JSON.
    pub fn from_json(json: &str) -> Result<Self, Grade10Error> {
        serde_json::from_str(json)
            .map_err(|e| Grade10Error::Serialization(format!("invalid model bundle: {e}")))
    }

    /// Writes the bundle to a writer.
    pub fn save<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        w.write_all(self.to_json().as_bytes())
    }

    /// Reads a bundle from a reader.
    pub fn load<R: Read>(mut r: R) -> std::io::Result<Self> {
        let mut buf = String::new();
        r.read_to_string(&mut buf)?;
        Self::from_json(&buf).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::model::rules::AttributionRule;

    fn bundle() -> ModelBundle {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let step = b.child(r, "step", Repeat::Sequential);
        let task = b.child(step, "task", Repeat::Parallel);
        let execution = b.build();
        let rules = RuleSet::new()
            .with_default(AttributionRule::None)
            .rule(task, "cpu", AttributionRule::Exact(0.125))
            .rule(task, "net_out", AttributionRule::Variable(1.0));
        ModelBundle {
            framework: "test-engine".into(),
            notes: "8-core machines".into(),
            execution,
            resources: ResourceModel::new().consumable("cpu").blocking("gc"),
            rules,
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let b = bundle();
        let json = b.to_json();
        let back = ModelBundle::from_json(&json).unwrap();
        assert_eq!(back.framework, "test-engine");
        // Model structure survives.
        let task = back.execution.find_by_name("task").unwrap();
        assert_eq!(back.execution.type_path(task), "job.step.task");
        assert_eq!(back.execution.repeat(task), Repeat::Parallel);
        // Rules survive, including the overridden default.
        assert_eq!(back.rules.get(task, "cpu"), AttributionRule::Exact(0.125));
        assert_eq!(
            back.rules.get(task, "net_out"),
            AttributionRule::Variable(1.0)
        );
        assert!(back.rules.get(task, "disk").is_none());
        // Resource model survives.
        assert!(back.resources.find("gc").is_some());
    }

    #[test]
    fn save_load_via_io() {
        let b = bundle();
        let mut buf = Vec::new();
        b.save(&mut buf).unwrap();
        let back = ModelBundle::load(buf.as_slice()).unwrap();
        assert_eq!(back.notes, b.notes);
    }

    #[test]
    fn invalid_json_reports_error() {
        let err = ModelBundle::from_json("{ not json").unwrap_err();
        assert!(
            err.detail().contains("invalid model bundle"),
            "{err}"
        );
    }

    #[test]
    fn serialization_is_deterministic() {
        // Rule entries are sorted, so two saves of the same bundle are
        // byte-identical (diff-able expert input under version control).
        let b = bundle();
        assert_eq!(b.to_json(), bundle().to_json());
    }
}
