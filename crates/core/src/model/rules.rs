//! Resource attribution rules (§III-D1).
//!
//! A rule links the demand of a phase *type* to a resource *kind*:
//!
//! * [`AttributionRule::None`] — the phase does not use the resource;
//! * [`AttributionRule::Exact`] — the phase demands exactly a fraction of
//!   the resource's capacity (e.g. one compute thread demands exactly
//!   `1/cores` of the machine's CPU);
//! * [`AttributionRule::Variable`] — the phase's demand is unknown but has a
//!   relative weight against other variable-demand phases.
//!
//! When no rule is given, Grade10 assumes `Variable(1.0)` — exactly the
//! paper's untuned default, whose poor upsampling accuracy Table II and
//! Fig. 3a quantify.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::model::execution::PhaseTypeId;

/// How a phase type's demand for a resource kind is estimated.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttributionRule {
    /// The phase does not use the resource.
    None,
    /// Demand is exactly this fraction of the resource instance's capacity
    /// (per active instance).
    Exact(f64),
    /// Demand is unknown; the value is a relative weight.
    Variable(f64),
}

impl AttributionRule {
    /// True for `AttributionRule::None`.
    pub fn is_none(&self) -> bool {
        matches!(self, AttributionRule::None)
    }
}

/// The (phase type × resource kind) rule matrix with the implicit-default
/// semantics of the paper.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RuleSet {
    /// Serialized as a list of `(phase type, resource kind, rule)` entries;
    /// JSON maps cannot carry tuple keys.
    #[serde(with = "rules_serde")]
    rules: HashMap<(PhaseTypeId, String), AttributionRule>,
    /// Rule used when no explicit rule exists (paper default:
    /// `Variable(1.0)`).
    default: AttributionRule,
}

mod rules_serde {
    use super::*;
    use serde::{DeError, Value};

    pub fn serialize(map: &HashMap<(PhaseTypeId, String), AttributionRule>) -> Value {
        let mut entries: Vec<(&PhaseTypeId, &String, &AttributionRule)> = map
            .iter()
            .map(|((ty, kind), rule)| (ty, kind, rule))
            .collect();
        entries.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        serde::Serialize::to_value(&entries)
    }

    pub fn deserialize(
        v: &Value,
    ) -> Result<HashMap<(PhaseTypeId, String), AttributionRule>, DeError> {
        let entries: Vec<(PhaseTypeId, String, AttributionRule)> =
            serde::Deserialize::from_value(v)?;
        Ok(entries
            .into_iter()
            .map(|(ty, kind, rule)| ((ty, kind), rule))
            .collect())
    }
}

impl Default for RuleSet {
    fn default() -> Self {
        RuleSet {
            rules: HashMap::new(),
            default: AttributionRule::Variable(1.0),
        }
    }
}

impl RuleSet {
    /// An empty rule set with the paper's implicit `Variable(1.0)` default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the implicit default (e.g. `None` for models that enumerate
    /// every demand explicitly).
    pub fn with_default(mut self, default: AttributionRule) -> Self {
        self.default = default;
        self
    }

    /// Sets the rule for (phase type, resource kind). Builder style.
    pub fn rule(
        mut self,
        phase: PhaseTypeId,
        resource_kind: impl Into<String>,
        rule: AttributionRule,
    ) -> Self {
        self.set(phase, resource_kind, rule);
        self
    }

    /// Sets the rule for (phase type, resource kind).
    pub fn set(
        &mut self,
        phase: PhaseTypeId,
        resource_kind: impl Into<String>,
        rule: AttributionRule,
    ) {
        if let AttributionRule::Exact(p) = rule {
            assert!(
                (0.0..=1.0).contains(&p),
                "Exact proportion {p} out of [0, 1]"
            );
        }
        if let AttributionRule::Variable(w) = rule {
            assert!(w > 0.0, "Variable weight must be positive, got {w}");
        }
        self.rules.insert((phase, resource_kind.into()), rule);
    }

    /// Looks up the effective rule for (phase type, resource kind).
    pub fn get(&self, phase: PhaseTypeId, resource_kind: &str) -> AttributionRule {
        self.rules
            .get(&(phase, resource_kind.to_string()))
            .copied()
            .unwrap_or(self.default)
    }

    /// Number of explicit rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if no explicit rules are set.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Lints the rule set against the models it will be used with,
    /// returning one message per suspicious entry. The two mistakes this
    /// catches burned real time while building the bundled engine models:
    ///
    /// * a rule on a **container** phase type — demand estimation only
    ///   considers leaves, so the rule would silently never apply;
    /// * a rule naming a resource kind the resource model does not declare
    ///   (usually a typo), which would silently never match a monitored
    ///   instance.
    pub fn lint(
        &self,
        model: &crate::model::execution::ExecutionModel,
        resources: &crate::model::resource::ResourceModel,
    ) -> Vec<String> {
        let mut issues = Vec::new();
        for ((phase, kind), rule) in &self.rules {
            if !model.is_leaf(*phase) {
                issues.push(format!(
                    "rule {rule:?} on container phase type '{}' never applies (only leaf phases carry demand)",
                    model.type_path(*phase)
                ));
            }
            if resources.find(kind).is_none() {
                issues.push(format!(
                    "rule {rule:?} for phase type '{}' names unknown resource kind '{kind}'",
                    model.type_path(*phase)
                ));
            }
        }
        issues.sort();
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_variable_one() {
        let rs = RuleSet::new();
        assert_eq!(rs.get(PhaseTypeId(3), "cpu"), AttributionRule::Variable(1.0));
        assert!(rs.is_empty());
    }

    #[test]
    fn explicit_rules_override_default() {
        let rs = RuleSet::new()
            .rule(PhaseTypeId(1), "cpu", AttributionRule::Exact(0.25))
            .rule(PhaseTypeId(1), "net_out", AttributionRule::None)
            .rule(PhaseTypeId(2), "cpu", AttributionRule::Variable(2.0));
        assert_eq!(rs.get(PhaseTypeId(1), "cpu"), AttributionRule::Exact(0.25));
        assert!(rs.get(PhaseTypeId(1), "net_out").is_none());
        assert_eq!(rs.get(PhaseTypeId(2), "cpu"), AttributionRule::Variable(2.0));
        assert_eq!(rs.get(PhaseTypeId(2), "net_out"), AttributionRule::Variable(1.0));
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn none_default_available() {
        let rs = RuleSet::new().with_default(AttributionRule::None);
        assert!(rs.get(PhaseTypeId(0), "cpu").is_none());
    }

    #[test]
    fn lint_flags_container_rules_and_unknown_kinds() {
        use crate::model::execution::{ExecutionModelBuilder, Repeat};
        use crate::model::resource::ResourceModel;
        let mut b = ExecutionModelBuilder::new("job");
        let root = b.root();
        let step = b.child(root, "step", Repeat::Sequential);
        let task = b.child(step, "task", Repeat::Parallel);
        let model = b.build();
        let resources = ResourceModel::new().consumable("cpu");
        let rules = RuleSet::new()
            .rule(step, "cpu", AttributionRule::Variable(1.0)) // container!
            .rule(task, "cup", AttributionRule::Exact(0.5)) // typo!
            .rule(task, "cpu", AttributionRule::Exact(0.5)); // fine
        let issues = rules.lint(&model, &resources);
        assert_eq!(issues.len(), 2, "{issues:?}");
        assert!(issues.iter().any(|i| i.contains("container")));
        assert!(issues.iter().any(|i| i.contains("unknown resource kind 'cup'")));
        // A clean rule set lints clean.
        let clean = RuleSet::new().rule(task, "cpu", AttributionRule::Exact(0.5));
        assert!(clean.lint(&model, &resources).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn exact_out_of_range_rejected() {
        let _ = RuleSet::new().rule(PhaseTypeId(0), "cpu", AttributionRule::Exact(1.5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_weight_rejected() {
        let _ = RuleSet::new().rule(PhaseTypeId(0), "cpu", AttributionRule::Variable(0.0));
    }
}
