//! The resource model: what resources exist in the system under test
//! (§III-B).
//!
//! Grade10 models two archetypes. *Consumable* resources (CPU, network) have
//! a capacity; exceeding demand slows phases down. *Blocking* resources
//! (locks, queues, the garbage collector) do not affect execution while
//! available but halt phases when they are not — they appear in the trace as
//! blocking events rather than utilization series.

use serde::{Deserialize, Serialize};

/// The two resource archetypes of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResourceClass {
    /// Capacity-limited; monitored as a utilization series.
    Consumable,
    /// Availability-gated; monitored as blocking events.
    Blocking,
}

/// A resource *kind* ("cpu", "net_out", "gc", "msgq"). Concrete instances —
/// a kind on a particular machine — live in the resource trace; attribution
/// rules are written against kinds.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceDef {
    /// Kind name ("cpu", "gc", ...), referenced by rules and traces.
    pub name: String,
    /// Consumable or blocking.
    pub class: ResourceClass,
}

/// The set of resource kinds of a system under test.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ResourceModel {
    defs: Vec<ResourceDef>,
}

impl ResourceModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a consumable resource kind (builder style).
    pub fn consumable(mut self, name: impl Into<String>) -> Self {
        self.push(name.into(), ResourceClass::Consumable);
        self
    }

    /// Adds a blocking resource kind (builder style).
    pub fn blocking(mut self, name: impl Into<String>) -> Self {
        self.push(name.into(), ResourceClass::Blocking);
        self
    }

    fn push(&mut self, name: String, class: ResourceClass) {
        assert!(
            self.find(&name).is_none(),
            "duplicate resource kind '{name}'"
        );
        self.defs.push(ResourceDef { name, class });
    }

    /// Looks a kind up by name.
    pub fn find(&self, name: &str) -> Option<&ResourceDef> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// Class of a kind, if known.
    pub fn class_of(&self, name: &str) -> Option<ResourceClass> {
        self.find(name).map(|d| d.class)
    }

    /// All kinds.
    pub fn defs(&self) -> &[ResourceDef] {
        &self.defs
    }

    /// All consumable kinds.
    pub fn consumables(&self) -> impl Iterator<Item = &ResourceDef> {
        self.defs
            .iter()
            .filter(|d| d.class == ResourceClass::Consumable)
    }

    /// All blocking kinds.
    pub fn blockings(&self) -> impl Iterator<Item = &ResourceDef> {
        self.defs
            .iter()
            .filter(|d| d.class == ResourceClass::Blocking)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let m = ResourceModel::new()
            .consumable("cpu")
            .consumable("net_out")
            .blocking("gc")
            .blocking("msgq");
        assert_eq!(m.defs().len(), 4);
        assert_eq!(m.class_of("cpu"), Some(ResourceClass::Consumable));
        assert_eq!(m.class_of("gc"), Some(ResourceClass::Blocking));
        assert_eq!(m.class_of("disk"), None);
        assert_eq!(m.consumables().count(), 2);
        assert_eq!(m.blockings().count(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate resource kind")]
    fn duplicate_rejected() {
        let _ = ResourceModel::new().consumable("cpu").blocking("cpu");
    }
}
