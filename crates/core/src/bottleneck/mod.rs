//! Resource-bottleneck identification (§III-E).
//!
//! Two resource archetypes, two detectors:
//!
//! * [`blocking`] — a phase halted by a blocking resource (GC, full queue,
//!   barrier) is bottlenecked on it for the duration of the event;
//! * [`consumable`] — a phase is bottlenecked on a consumable resource when
//!   the resource is *saturated* (≈100 % utilized for an extended period),
//!   or when the phase's attributed usage reaches its own `Exact` demand
//!   ceiling even though the resource itself has headroom — the paper's
//!   "least understood" case.

pub mod blocking;
pub mod consumable;

pub use blocking::{blocking_bottlenecks, BlockingBottleneck};
pub use consumable::{
    consumable_bottlenecks, BottleneckCause, BottleneckConfig, ConsumableBottleneck,
};

use crate::model::execution::{ExecutionModel, PhaseTypeId};
use crate::trace::execution::ExecutionTrace;
use crate::trace::resource::ResourceIdx;

/// Combined bottleneck report for one profile.
#[derive(Clone, Debug, Default)]
pub struct BottleneckReport {
    /// Blocked time per (phase instance, blocking resource).
    pub blocking: Vec<BlockingBottleneck>,
    /// Consumable bottlenecks per (phase instance, resource).
    pub consumable: Vec<ConsumableBottleneck>,
}

impl BottleneckReport {
    /// Builds the full report.
    pub fn build(
        trace: &ExecutionTrace,
        profile: &crate::attribution::PerformanceProfile,
        cfg: &BottleneckConfig,
    ) -> Self {
        BottleneckReport {
            blocking: blocking_bottlenecks(trace),
            consumable: consumable_bottlenecks(profile, cfg),
        }
    }

    /// Total blocked seconds per (phase type, blocking resource kind),
    /// summed over instances — the per-workload aggregate of Fig. 4.
    pub fn blocked_time_by_type(
        &self,
        trace: &ExecutionTrace,
    ) -> std::collections::BTreeMap<(PhaseTypeId, String), f64> {
        let mut out = std::collections::BTreeMap::new();
        for b in &self.blocking {
            let ty = trace.instance(b.instance).type_id;
            *out.entry((ty, b.resource.clone())).or_insert(0.0) += b.blocked_secs;
        }
        out
    }

    /// Bottlenecked slice count per (phase type, resource instance).
    pub fn bottleneck_slices_by_type(
        &self,
        trace: &ExecutionTrace,
    ) -> std::collections::BTreeMap<(PhaseTypeId, ResourceIdx), usize> {
        let mut out = std::collections::BTreeMap::new();
        for c in &self.consumable {
            let ty = trace.instance(c.instance).type_id;
            *out.entry((ty, c.resource)).or_insert(0) += c.slices.len();
        }
        out
    }

    /// Human-oriented summary lines (phase type name, resource, magnitude).
    pub fn summary(&self, model: &ExecutionModel, trace: &ExecutionTrace) -> Vec<String> {
        let mut lines = Vec::new();
        for ((ty, res), secs) in self.blocked_time_by_type(trace) {
            lines.push(format!(
                "{} blocked on {res} for {secs:.3}s total",
                model.type_path(ty)
            ));
        }
        for ((ty, res), slices) in self.bottleneck_slices_by_type(trace) {
            lines.push(format!(
                "{} bottlenecked on resource #{} for {slices} slices",
                model.type_path(ty),
                res.0
            ));
        }
        lines
    }
}
