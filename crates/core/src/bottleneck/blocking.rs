//! Blocking-resource bottlenecks: straightforward per the paper — every
//! blocking event delays its phase, so the blocked time *is* the bottleneck
//! (the graph-processing analogue of blocked-time analysis).

use std::collections::BTreeMap;

use crate::trace::execution::{ExecutionTrace, InstanceId};

/// Total time one phase instance spent blocked on one blocking resource.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockingBottleneck {
    /// The blocked phase instance.
    pub instance: InstanceId,
    /// The blocking resource kind.
    pub resource: String,
    /// Total blocked time, seconds.
    pub blocked_secs: f64,
    /// Number of blocking events aggregated.
    pub events: usize,
}

/// Aggregates the trace's blocking events per (instance, resource).
pub fn blocking_bottlenecks(trace: &ExecutionTrace) -> Vec<BlockingBottleneck> {
    let mut agg: BTreeMap<(InstanceId, String), (f64, usize)> = BTreeMap::new();
    for ev in trace.blocking() {
        let secs = (ev.end - ev.start) as f64 / 1e9;
        let e = agg.entry((ev.instance, ev.resource.clone())).or_insert((0.0, 0));
        e.0 += secs;
        e.1 += 1;
    }
    agg.into_iter()
        .map(|((instance, resource), (blocked_secs, events))| BlockingBottleneck {
            instance,
            resource,
            blocked_secs,
            events,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::trace::execution::TraceBuilder;
    use crate::trace::timeslice::MILLIS;

    #[test]
    fn aggregates_per_instance_and_resource() {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        b.child(r, "p", Repeat::Parallel);
        let model = b.build();
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, 100 * MILLIS, None, None).unwrap();
        let p0 = tb
            .add_phase(&[("job", 0), ("p", 0)], 0, 50 * MILLIS, Some(0), Some(0))
            .unwrap();
        let p1 = tb
            .add_phase(&[("job", 0), ("p", 1)], 0, 80 * MILLIS, Some(0), Some(1))
            .unwrap();
        tb.add_blocking(p0, "gc", 10 * MILLIS, 20 * MILLIS);
        tb.add_blocking(p0, "gc", 30 * MILLIS, 35 * MILLIS);
        tb.add_blocking(p0, "msgq", 40 * MILLIS, 45 * MILLIS);
        tb.add_blocking(p1, "gc", 10 * MILLIS, 20 * MILLIS);
        let trace = tb.build().unwrap();

        let bs = blocking_bottlenecks(&trace);
        assert_eq!(bs.len(), 3);
        let gc0 = bs
            .iter()
            .find(|b| b.instance == p0 && b.resource == "gc")
            .unwrap();
        assert!((gc0.blocked_secs - 0.015).abs() < 1e-9);
        assert_eq!(gc0.events, 2);
        let q0 = bs
            .iter()
            .find(|b| b.instance == p0 && b.resource == "msgq")
            .unwrap();
        assert!((q0.blocked_secs - 0.005).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_no_bottlenecks() {
        let model = ExecutionModelBuilder::new("job").build();
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, 10, None, None).unwrap();
        let trace = tb.build().unwrap();
        assert!(blocking_bottlenecks(&trace).is_empty());
    }
}
