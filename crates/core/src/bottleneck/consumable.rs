//! Consumable-resource bottlenecks (§III-E).
//!
//! Two situations produce one:
//!
//! * **Saturation** — the resource is at (approximately) full utilization
//!   for an extended period; every active phase depending on it is
//!   bottlenecked.
//! * **Exact-limit** — a phase with an `Exact` rule consumes as much as its
//!   own demand ceiling allows, even though the resource has headroom.
//!   The paper calls this out as the least understood case: the phase would
//!   go faster if it were *configured* to use more, not if the machine had
//!   more.

use crate::attribution::{InstanceUsage, PerformanceProfile};
use crate::model::rules::AttributionRule;
use crate::trace::execution::InstanceId;
use crate::trace::resource::ResourceIdx;

/// Why a phase/resource pair is bottlenecked in a slice range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BottleneckCause {
    /// The resource itself was saturated.
    Saturation,
    /// The phase hit its own Exact demand ceiling.
    ExactLimit,
}

/// Detection thresholds.
#[derive(Clone, Debug)]
pub struct BottleneckConfig {
    /// Utilization fraction at or above which a resource counts as
    /// saturated.
    pub saturation_fraction: f64,
    /// Minimum consecutive saturated slices before saturation counts as a
    /// bottleneck ("extended periods" in the paper).
    pub min_saturation_slices: usize,
    /// Fraction of a phase's Exact demand that its usage must reach to
    /// count as an exact-limit bottleneck.
    pub exact_limit_fraction: f64,
}

impl Default for BottleneckConfig {
    fn default() -> Self {
        BottleneckConfig {
            saturation_fraction: 0.97,
            min_saturation_slices: 2,
            exact_limit_fraction: 0.97,
        }
    }
}

/// A contiguous range of bottlenecked slices for one (phase, resource).
#[derive(Clone, Debug, PartialEq)]
pub struct ConsumableBottleneck {
    /// The bottlenecked phase instance.
    pub instance: InstanceId,
    /// The limiting resource instance.
    pub resource: ResourceIdx,
    /// Saturation or exact-limit.
    pub cause: BottleneckCause,
    /// Bottlenecked slice indices (global, ascending, possibly
    /// non-contiguous).
    pub slices: Vec<usize>,
}

/// Scans the profile for consumable bottlenecks.
pub fn consumable_bottlenecks(
    profile: &PerformanceProfile,
    cfg: &BottleneckConfig,
) -> Vec<ConsumableBottleneck> {
    let nr = profile.resources.len();
    let ns = profile.grid.num_slices();

    // Per resource: which slices are inside a saturated run of sufficient
    // length.
    let mut saturated = vec![vec![false; ns]; nr];
    for r in 0..nr {
        let cap = profile.resources[r].capacity;
        let mut run_start = None;
        for s in 0..=ns {
            let is_sat =
                s < ns && profile.consumption[r][s] >= cfg.saturation_fraction * cap;
            match (run_start, is_sat) {
                (None, true) => run_start = Some(s),
                (Some(st), false) => {
                    if s - st >= cfg.min_saturation_slices {
                        for x in st..s {
                            saturated[r][x] = true;
                        }
                    }
                    run_start = None;
                }
                _ => {}
            }
        }
    }

    let mut out = Vec::new();
    for u in &profile.usages {
        let r = u.resource.0 as usize;
        let mut sat_slices = Vec::new();
        let mut exact_slices = Vec::new();
        for k in 0..u.usage.len() {
            let s = u.first_slice + k;
            // A phase only counts as bottlenecked while it actually
            // participates (non-zero demand — i.e. active and dependent).
            if u.demand[k] <= 0.0 {
                continue;
            }
            if saturated[r][s] {
                sat_slices.push(s);
            } else if exact_limit_hit(u, k, cfg) {
                exact_slices.push(s);
            }
        }
        if !sat_slices.is_empty() {
            out.push(ConsumableBottleneck {
                instance: u.instance,
                resource: u.resource,
                cause: BottleneckCause::Saturation,
                slices: sat_slices,
            });
        }
        if !exact_slices.is_empty() {
            out.push(ConsumableBottleneck {
                instance: u.instance,
                resource: u.resource,
                cause: BottleneckCause::ExactLimit,
                slices: exact_slices,
            });
        }
    }
    out
}

fn exact_limit_hit(u: &InstanceUsage, k: usize, cfg: &BottleneckConfig) -> bool {
    matches!(u.rule, AttributionRule::Exact(_))
        && u.usage[k] >= cfg.exact_limit_fraction * u.demand[k]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::{build_profile, ProfileConfig};
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::model::rules::RuleSet;
    use crate::trace::execution::TraceBuilder;
    use crate::trace::resource::{ResourceInstance, ResourceTrace};
    use crate::trace::timeslice::MILLIS;

    /// One phase using one 4-core CPU, measured saturated in the middle.
    fn saturated_profile() -> (PerformanceProfile, InstanceId) {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        b.child(r, "p", Repeat::Once);
        let model = b.build();
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, 60 * MILLIS, None, None).unwrap();
        let p = tb
            .add_phase(&[("job", 0), ("p", 0)], 0, 60 * MILLIS, Some(0), Some(0))
            .unwrap();
        let trace = tb.build().unwrap();
        let mut rt = ResourceTrace::new();
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 4.0,
        });
        // Slices: 2 low, 3 saturated, 1 low (10 ms measurements = 1 slice).
        rt.add_series(cpu, 0, 10 * MILLIS, &[1.0, 1.0, 4.0, 4.0, 4.0, 1.0]);
        let prof = build_profile(&model, &RuleSet::new(), &trace, &rt, &ProfileConfig::default());
        (prof, p)
    }

    #[test]
    fn saturation_detected_with_min_run() {
        let (prof, p) = saturated_profile();
        let found = consumable_bottlenecks(&prof, &BottleneckConfig::default());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].instance, p);
        assert_eq!(found[0].cause, BottleneckCause::Saturation);
        assert_eq!(found[0].slices, vec![2, 3, 4]);
    }

    #[test]
    fn short_saturation_spike_ignored() {
        let (prof, _) = saturated_profile();
        let cfg = BottleneckConfig {
            min_saturation_slices: 4, // longer than the 3-slice run
            ..Default::default()
        };
        assert!(consumable_bottlenecks(&prof, &cfg).is_empty());
    }

    #[test]
    fn exact_limit_detected_without_saturation() {
        // Phase limited to 25 % of the CPU, using exactly that, while the
        // machine sits at 50 % overall.
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let p_ty = b.child(r, "p", Repeat::Once);
        let q_ty = b.child(r, "q", Repeat::Once);
        let model = b.build();
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, 40 * MILLIS, None, None).unwrap();
        let p = tb
            .add_phase(&[("job", 0), ("p", 0)], 0, 40 * MILLIS, Some(0), Some(0))
            .unwrap();
        tb.add_phase(&[("job", 0), ("q", 0)], 0, 40 * MILLIS, Some(0), Some(1))
            .unwrap();
        let trace = tb.build().unwrap();
        let mut rt = ResourceTrace::new();
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 4.0,
        });
        rt.add_series(cpu, 0, 10 * MILLIS, &[2.0, 2.0, 2.0, 2.0]);
        let rules = RuleSet::new().rule(p_ty, "cpu", AttributionRule::Exact(0.25));
        let _ = q_ty;
        let prof = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
        let found = consumable_bottlenecks(&prof, &BottleneckConfig::default());
        let exact: Vec<_> = found
            .iter()
            .filter(|b| b.cause == BottleneckCause::ExactLimit)
            .collect();
        assert_eq!(exact.len(), 1);
        assert_eq!(exact[0].instance, p);
        assert_eq!(exact[0].slices.len(), 4);
    }

    #[test]
    fn underused_exact_phase_not_bottlenecked() {
        // Same setup but consumption below the exact demand: no bottleneck.
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let p_ty = b.child(r, "p", Repeat::Once);
        let model = b.build();
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, 40 * MILLIS, None, None).unwrap();
        tb.add_phase(&[("job", 0), ("p", 0)], 0, 40 * MILLIS, Some(0), Some(0))
            .unwrap();
        let trace = tb.build().unwrap();
        let mut rt = ResourceTrace::new();
        let _ = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 4.0,
        });
        rt.add_series(ResourceIdx(0), 0, 10 * MILLIS, &[0.2, 0.2, 0.2, 0.2]);
        let rules = RuleSet::new().rule(p_ty, "cpu", AttributionRule::Exact(0.25));
        let prof = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
        assert!(consumable_bottlenecks(&prof, &BottleneckConfig::default()).is_empty());
    }
}
