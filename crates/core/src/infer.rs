//! Attribution-rule inference — the paper's §V "ongoing work", implemented.
//!
//! Grade10 normally relies on an expert to write attribution rules (a week
//! of effort per framework, per the paper). This module learns them from
//! one *calibration run* monitored at fine granularity: with timeslice-level
//! measurements, the consumption of each resource kind is (approximately) a
//! linear function of how many instances of each phase type are active, and
//! the per-instance demands are the coefficients.
//!
//! For every resource kind we solve a non-negative least-squares fit
//!
//! ```text
//!   usage[machine, slice] ≈ Σ_T demand_T × active_T[machine, slice]
//! ```
//!
//! over all machines and slices, then translate the coefficients into
//! rules: a kind whose fit explains the data well yields `Exact` rules
//! (demand is a stable per-instance constant — e.g. one core per compute
//! thread); a kind with a poor fit yields `Variable` rules weighted by the
//! coefficients (demand exists but fluctuates — e.g. network usage); and
//! negligible coefficients yield `None`.

use std::collections::BTreeMap;

use crate::attribution::demand::active_fractions;
use crate::model::execution::{ExecutionModel, PhaseTypeId};
use crate::model::rules::{AttributionRule, RuleSet};
use crate::trace::execution::ExecutionTrace;
use crate::trace::resource::{ResourceIdx, ResourceTrace};
use crate::trace::timeslice::{Nanos, TimesliceGrid, MILLIS};

/// Inference settings.
#[derive(Clone, Debug)]
pub struct InferenceConfig {
    /// Fitting grid slice; use the calibration run's monitoring interval.
    pub slice: Nanos,
    /// Coefficients below this fraction of capacity become `None` rules.
    pub min_fraction: f64,
    /// R² at or above which a resource kind's coefficients become `Exact`
    /// rules; below, `Variable` rules weighted by coefficient.
    pub exact_r2: f64,
    /// Blocking resources that disturb a whole machine: slices they
    /// overlap are excluded from the fit (a stop-the-world collector burns
    /// CPU while every modeled phase reads as inactive, which would wreck
    /// the regression without teaching it anything).
    pub exclude_disturbed_by: Vec<String>,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            slice: 50 * MILLIS,
            min_fraction: 0.01,
            exact_r2: 0.8,
            exclude_disturbed_by: vec!["gc".to_string()],
        }
    }
}

/// One fitted coefficient.
#[derive(Clone, Debug)]
pub struct InferredDemand {
    /// The phase type the coefficient belongs to.
    pub phase_type: PhaseTypeId,
    /// The resource kind the entry concerns.
    pub resource_kind: String,
    /// Estimated absolute demand per active instance.
    pub demand: f64,
    /// Demand as a fraction of the resource's capacity.
    pub fraction: f64,
}

/// Fit quality for one resource kind.
#[derive(Clone, Debug)]
pub struct KindFit {
    /// The resource kind the entry concerns.
    pub resource_kind: String,
    /// Coefficient of determination of the linear fit.
    pub r2: f64,
    /// Number of (machine, slice) observations used.
    pub observations: usize,
}

/// The inference output: coefficients plus per-kind fit quality.
#[derive(Clone, Debug)]
pub struct InferenceResult {
    /// Fitted per-(phase type, resource kind) coefficients.
    pub demands: Vec<InferredDemand>,
    /// Fit quality per resource kind.
    pub fits: Vec<KindFit>,
    config: InferenceConfig,
}

impl InferenceResult {
    /// Converts the fit into a rule set (see the module docs for the
    /// Exact/Variable/None policy).
    pub fn to_rule_set(&self) -> RuleSet {
        let mut rules = RuleSet::new().with_default(AttributionRule::None);
        for d in &self.demands {
            let Some(fit) = self
                .fits
                .iter()
                .find(|f| f.resource_kind == d.resource_kind)
            else {
                unreachable!("fits are built per resource kind from these demands");
            };
            if d.fraction < self.config.min_fraction {
                continue; // implicit None
            }
            let rule = if fit.r2 >= self.config.exact_r2 {
                AttributionRule::Exact(d.fraction.min(1.0))
            } else {
                AttributionRule::Variable(d.fraction.max(1e-6))
            };
            rules.set(d.phase_type, d.resource_kind.clone(), rule);
        }
        rules
    }

    /// The fitted demand for (phase type, kind), if any.
    pub fn demand_of(&self, phase_type: PhaseTypeId, kind: &str) -> Option<f64> {
        self.demands
            .iter()
            .find(|d| d.phase_type == phase_type && d.resource_kind == kind)
            .map(|d| d.demand)
    }
}

/// Infers attribution rules from a calibration run monitored at (or near)
/// timeslice granularity.
pub fn infer_rules(
    model: &ExecutionModel,
    trace: &ExecutionTrace,
    resources: &ResourceTrace,
    cfg: &InferenceConfig,
) -> InferenceResult {
    let end = trace.makespan_end().max(resources.end()).max(cfg.slice);
    let grid = TimesliceGrid::covering(0, end, cfg.slice);
    let ns = grid.num_slices();

    // Leaf phase types present in the trace, in stable order.
    let mut leaf_types: Vec<PhaseTypeId> = Vec::new();
    for inst in trace.leaves() {
        if !leaf_types.contains(&inst.type_id) {
            leaf_types.push(inst.type_id);
        }
    }
    leaf_types.sort();

    // Active-count features per (machine, type, slice).
    let mut machines: Vec<u16> = trace
        .leaves()
        .filter_map(|i| i.machine)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    machines.sort_unstable();
    let tpos: BTreeMap<PhaseTypeId, usize> =
        leaf_types.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let mpos: BTreeMap<u16, usize> =
        machines.iter().enumerate().map(|(i, &m)| (m, i)).collect();
    let nt = leaf_types.len();
    let mut active = vec![vec![0.0f64; ns * nt]; machines.len()];
    for inst in trace.leaves() {
        let (m, t) = match (inst.machine.and_then(|m| mpos.get(&m)), tpos.get(&inst.type_id)) {
            (Some(&m), Some(&t)) => (m, t),
            _ => continue,
        };
        let (first, af) = active_fractions(trace, inst.id, &grid);
        for (k, &a) in af.iter().enumerate() {
            active[m][(first + k) * nt + t] += a;
        }
    }

    // Machine-wide disturbed slices (e.g. stop-the-world GC), excluded
    // from every fit.
    let mut disturbed = vec![vec![false; ns]; machines.len()];
    for ev in trace.blocking() {
        if !cfg.exclude_disturbed_by.contains(&ev.resource) {
            continue;
        }
        let inst = trace.instance(ev.instance);
        if let Some(&m) = inst.machine.and_then(|m| mpos.get(&m)) {
            let (bf, bl) = grid.slice_range(ev.start, ev.end);
            for s in bf..bl {
                disturbed[m][s] = true;
            }
        }
    }

    // Group resource instances by kind and fit each kind.
    let mut kinds: Vec<String> = resources
        .instances()
        .iter()
        .map(|r| r.kind.clone())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    kinds.sort();

    let mut demands = Vec::new();
    let mut fits = Vec::new();
    for kind in kinds {
        // Observations: usage per slice per instance of this kind, from
        // the measurement series snapped onto the grid.
        let mut xtx = vec![vec![0.0f64; nt]; nt];
        let mut xty = vec![0.0f64; nt];
        let mut ys = Vec::new();
        let mut rows: Vec<(usize, Vec<f64>)> = Vec::new(); // (machine, x) per obs
        let mut capacity = 1.0f64;
        for (ri, res) in resources.instances().iter().enumerate() {
            if res.kind != kind {
                continue;
            }
            capacity = res.capacity;
            let m = match res.machine.and_then(|m| mpos.get(&m)) {
                Some(&m) => m,
                None => continue,
            };
            for meas in resources.measurements(ResourceIdx(ri as u32)) {
                let ws = grid.snap(meas.start);
                let we = grid.snap(meas.end).max(ws + 1).min(ns);
                // Use only single-slice (fine) measurements for fitting;
                // coarse windows would blur the features.
                if we - ws != 1 {
                    continue;
                }
                if disturbed[m][ws] {
                    continue;
                }
                let x: Vec<f64> = (0..nt).map(|t| active[m][ws * nt + t]).collect();
                for i in 0..nt {
                    for j in 0..nt {
                        xtx[i][j] += x[i] * x[j];
                    }
                    xty[i] += x[i] * meas.avg;
                }
                ys.push(meas.avg);
                rows.push((m, x));
            }
        }
        if ys.is_empty() {
            continue;
        }
        let coeffs = nnls(&mut xtx, &mut xty, nt);

        // Fit quality.
        let mean_y: f64 = ys.iter().sum::<f64>() / ys.len() as f64;
        let (mut ss_res, mut ss_tot) = (0.0f64, 0.0f64);
        for ((_, x), &y) in rows.iter().zip(&ys) {
            let pred: f64 = x.iter().zip(&coeffs).map(|(a, c)| a * c).sum();
            ss_res += (y - pred) * (y - pred);
            ss_tot += (y - mean_y) * (y - mean_y);
        }
        let r2 = if ss_tot <= 1e-12 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        fits.push(KindFit {
            resource_kind: kind.clone(),
            r2,
            observations: ys.len(),
        });
        for (t, &c) in coeffs.iter().enumerate() {
            if c > 1e-12 {
                demands.push(InferredDemand {
                    phase_type: leaf_types[t],
                    resource_kind: kind.clone(),
                    demand: c,
                    fraction: c / capacity,
                });
            }
        }
        let _ = model;
    }
    InferenceResult {
        demands,
        fits,
        config: cfg.clone(),
    }
}

/// Non-negative least squares on precomputed normal equations, by the
/// active-set method: solve, zero out the most negative coefficient,
/// repeat. `xtx`/`xty` are consumed. A small ridge keeps singular systems
/// (phase types that always co-occur) solvable.
fn nnls(xtx: &mut [Vec<f64>], xty: &mut [f64], n: usize) -> Vec<f64> {
    let ridge = 1e-9
        * (0..n)
            .map(|i| xtx[i][i])
            .fold(0.0f64, f64::max)
            .max(1e-12);
    for (i, row) in xtx.iter_mut().enumerate() {
        row[i] += ridge;
    }
    let mut excluded = vec![false; n];
    loop {
        let coeffs = solve_gaussian(xtx, xty, &excluded, n);
        let worst = (0..n)
            .filter(|&i| !excluded[i] && coeffs[i] < -1e-9)
            .min_by(|&a, &b| coeffs[a].total_cmp(&coeffs[b]));
        match worst {
            Some(i) => excluded[i] = true,
            None => {
                return coeffs.into_iter().map(|c| c.max(0.0)).collect();
            }
        }
    }
}

/// Solves `xtx · c = xty` restricted to non-excluded variables, Gaussian
/// elimination with partial pivoting. Excluded variables get 0.
fn solve_gaussian(xtx: &[Vec<f64>], xty: &[f64], excluded: &[bool], n: usize) -> Vec<f64> {
    let vars: Vec<usize> = (0..n).filter(|&i| !excluded[i]).collect();
    let k = vars.len();
    if k == 0 {
        return vec![0.0; n];
    }
    let mut a: Vec<Vec<f64>> = vars
        .iter()
        .map(|&i| {
            let mut row: Vec<f64> = vars.iter().map(|&j| xtx[i][j]).collect();
            row.push(xty[i]);
            row
        })
        .collect();
    for col in 0..k {
        // Partial pivot.
        let Some(pivot) =
            (col..k).max_by(|&x, &y| a[x][col].abs().total_cmp(&a[y][col].abs()))
        else {
            unreachable!("col < k, so the pivot range is never empty");
        };
        a.swap(col, pivot);
        let p = a[col][col];
        if p.abs() < 1e-15 {
            continue; // singular direction; leave as zero
        }
        for row in 0..k {
            if row != col {
                let f = a[row][col] / p;
                for c in col..=k {
                    a[row][c] -= f * a[col][c];
                }
            }
        }
    }
    let mut out = vec![0.0; n];
    for (idx, &v) in vars.iter().enumerate() {
        let p = a[idx][idx];
        if p.abs() >= 1e-15 {
            out[v] = a[idx][k] / p;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::trace::execution::TraceBuilder;
    use crate::trace::resource::ResourceInstance;

    /// Two phase types with known demands (1 core and 2 cores per
    /// instance), staggered so the fit can separate them, on a 4-core
    /// machine monitored at slice granularity.
    fn calibration() -> (ExecutionModel, ExecutionTrace, ResourceTrace) {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let _a = b.child(r, "a", Repeat::Parallel);
        let _c = b.child(r, "b", Repeat::Parallel);
        let model = b.build();
        let ms = MILLIS;
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, 400 * ms, None, None).unwrap();
        // a[0]: slices 0..4, a[1]: slices 2..6, b[0]: slices 4..8.
        tb.add_phase(&[("job", 0), ("a", 0)], 0, 200 * ms, Some(0), Some(0))
            .unwrap();
        tb.add_phase(&[("job", 0), ("a", 1)], 100 * ms, 300 * ms, Some(0), Some(1))
            .unwrap();
        tb.add_phase(&[("job", 0), ("b", 0)], 200 * ms, 400 * ms, Some(0), Some(2))
            .unwrap();
        let trace = tb.build().unwrap();
        let mut rt = ResourceTrace::new();
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 4.0,
        });
        // usage = 1*active_a + 2*active_b per 50 ms slice:
        // slices: a-active 1,1,2,2,1,1,0,0; b-active 0,0,0,0,1,1,1,1.
        rt.add_series(
            cpu,
            0,
            50 * ms,
            &[1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 2.0, 2.0],
        );
        (model, trace, rt)
    }

    #[test]
    fn recovers_exact_demands_from_clean_data() {
        let (model, trace, rt) = calibration();
        let result = infer_rules(&model, &trace, &rt, &InferenceConfig::default());
        let a = model.find_by_name("a").unwrap();
        let b = model.find_by_name("b").unwrap();
        let da = result.demand_of(a, "cpu").expect("demand for a");
        let db = result.demand_of(b, "cpu").expect("demand for b");
        assert!((da - 1.0).abs() < 0.05, "a: {da}");
        assert!((db - 2.0).abs() < 0.05, "b: {db}");
        let fit = &result.fits[0];
        assert!(fit.r2 > 0.99, "r2 {}", fit.r2);
        assert_eq!(fit.observations, 8);
    }

    #[test]
    fn clean_fit_yields_exact_rules() {
        let (model, trace, rt) = calibration();
        let result = infer_rules(&model, &trace, &rt, &InferenceConfig::default());
        let rules = result.to_rule_set();
        let a = model.find_by_name("a").unwrap();
        match rules.get(a, "cpu") {
            AttributionRule::Exact(p) => assert!((p - 0.25).abs() < 0.02, "p {p}"),
            other => panic!("expected Exact, got {other:?}"),
        }
    }

    #[test]
    fn noisy_fit_yields_variable_rules() {
        let (model, trace, _) = calibration();
        let mut rt = ResourceTrace::new();
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 4.0,
        });
        // Usage uncorrelated with the phase structure.
        rt.add_series(
            cpu,
            0,
            50 * MILLIS,
            &[3.0, 0.2, 0.3, 3.5, 0.1, 3.9, 0.2, 3.1],
        );
        let result = infer_rules(&model, &trace, &rt, &InferenceConfig::default());
        assert!(result.fits[0].r2 < 0.8, "r2 {}", result.fits[0].r2);
        let rules = result.to_rule_set();
        let a = model.find_by_name("a").unwrap();
        assert!(
            !matches!(rules.get(a, "cpu"), AttributionRule::Exact(_)),
            "noisy data must not produce Exact rules"
        );
    }

    #[test]
    fn unused_resource_gets_no_rule() {
        let (model, trace, mut rt) = calibration();
        let disk = rt.add_resource(ResourceInstance {
            kind: "disk".into(),
            machine: Some(0),
            capacity: 100.0,
        });
        rt.add_series(disk, 0, 50 * MILLIS, &[0.0; 8]);
        let result = infer_rules(&model, &trace, &rt, &InferenceConfig::default());
        let rules = result.to_rule_set();
        let a = model.find_by_name("a").unwrap();
        assert!(rules.get(a, "disk").is_none());
    }

    #[test]
    fn coarse_measurements_are_ignored_for_fitting() {
        let (model, trace, mut rt) = calibration();
        // A second resource monitored coarsely (4-slice windows) only.
        let net = rt.add_resource(ResourceInstance {
            kind: "net".into(),
            machine: Some(0),
            capacity: 10.0,
        });
        rt.add_series(net, 0, 200 * MILLIS, &[5.0, 5.0]);
        let result = infer_rules(&model, &trace, &rt, &InferenceConfig::default());
        assert!(
            !result.fits.iter().any(|f| f.resource_kind == "net"),
            "coarse-only kinds must not be fitted"
        );
    }

    #[test]
    fn nnls_clamps_negative_directions() {
        // y = 2*x0 with a spurious second feature anti-correlated: plain
        // least squares would go negative on x1.
        let mut xtx = vec![vec![4.0, -2.0], vec![-2.0, 4.0]];
        let mut xty = vec![8.0, -4.0];
        let c = nnls(&mut xtx, &mut xty, 2);
        assert!(c[1] >= 0.0);
        assert!(c[0] > 0.0);
    }
}
