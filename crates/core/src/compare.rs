//! Comparing two executions of the same workload.
//!
//! The debugging loop the paper's §IV-D walks through ends with a fix —
//! and validating a fix means running again and asking *what changed,
//! where*. This module aligns two execution traces of the same execution
//! model by phase type and reports per-type duration totals, instance
//! counts, and blocked time, plus the end-to-end speedup.

use std::collections::BTreeMap;

use crate::model::execution::{ExecutionModel, PhaseTypeId};
use crate::report::table::{pct, Table};
use crate::trace::execution::ExecutionTrace;
use crate::trace::timeslice::Nanos;

/// Per-phase-type change between two runs.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeDelta {
    /// The phase type being compared.
    pub phase_type: PhaseTypeId,
    /// Total leaf duration in run A, ns.
    pub total_a: Nanos,
    /// Total leaf duration in run B, ns.
    pub total_b: Nanos,
    /// Instances in each run.
    pub count_a: usize,
    /// Instances in run B.
    pub count_b: usize,
    /// Total blocked time in each run, ns.
    pub blocked_a: Nanos,
    /// Total blocked time in run B, ns.
    pub blocked_b: Nanos,
}

impl TypeDelta {
    /// Relative change of total duration: `(b − a) / a` (0 when A is
    /// empty).
    pub fn relative_change(&self) -> f64 {
        if self.total_a == 0 {
            return 0.0;
        }
        (self.total_b as f64 - self.total_a as f64) / self.total_a as f64
    }
}

/// The comparison of two runs.
#[derive(Clone, Debug)]
pub struct RunComparison {
    /// Wall-clock extent of run A, ns.
    pub makespan_a: Nanos,
    /// Wall-clock extent of run B, ns.
    pub makespan_b: Nanos,
    /// Per-leaf-type deltas, largest absolute change first.
    pub deltas: Vec<TypeDelta>,
}

impl RunComparison {
    /// `makespan_a / makespan_b` — above 1.0 means B is faster.
    pub fn speedup(&self) -> f64 {
        if self.makespan_b == 0 {
            return 1.0;
        }
        self.makespan_a as f64 / self.makespan_b as f64
    }

    /// Renders the comparison as an aligned table.
    pub fn table(&self, model: &ExecutionModel) -> Table {
        let mut t = Table::new(&[
            "phase type",
            "total A (s)",
            "total B (s)",
            "change",
            "blocked A (s)",
            "blocked B (s)",
        ]);
        for d in &self.deltas {
            t.row(&[
                model.type_path(d.phase_type),
                format!("{:.2}", d.total_a as f64 / 1e9),
                format!("{:.2}", d.total_b as f64 / 1e9),
                pct(d.relative_change()),
                format!("{:.2}", d.blocked_a as f64 / 1e9),
                format!("{:.2}", d.blocked_b as f64 / 1e9),
            ]);
        }
        t
    }
}

/// Compares two traces of the same execution model (run A = baseline,
/// run B = candidate).
pub fn compare_traces(
    _model: &ExecutionModel,
    a: &ExecutionTrace,
    b: &ExecutionTrace,
) -> RunComparison {
    let mut acc: BTreeMap<PhaseTypeId, TypeDelta> = BTreeMap::new();
    let mut collect = |trace: &ExecutionTrace, is_a: bool| {
        for inst in trace.leaves() {
            let e = acc.entry(inst.type_id).or_insert(TypeDelta {
                phase_type: inst.type_id,
                total_a: 0,
                total_b: 0,
                count_a: 0,
                count_b: 0,
                blocked_a: 0,
                blocked_b: 0,
            });
            let blocked: Nanos = trace
                .blocking_of(inst.id)
                .map(|ev| ev.end - ev.start)
                .sum();
            if is_a {
                e.total_a += inst.duration();
                e.count_a += 1;
                e.blocked_a += blocked;
            } else {
                e.total_b += inst.duration();
                e.count_b += 1;
                e.blocked_b += blocked;
            }
        }
    };
    collect(a, true);
    collect(b, false);

    let mut deltas: Vec<TypeDelta> = acc.into_values().collect();
    deltas.sort_by(|x, y| {
        let dx = (x.total_b as i128 - x.total_a as i128).abs();
        let dy = (y.total_b as i128 - y.total_a as i128).abs();
        dy.cmp(&dx)
    });
    RunComparison {
        makespan_a: a.makespan_end() - a.origin(),
        makespan_b: b.makespan_end() - b.origin(),
        deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::trace::execution::TraceBuilder;
    use crate::trace::timeslice::MILLIS;

    fn model() -> ExecutionModel {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let _x = b.child(r, "x", Repeat::Parallel);
        let _y = b.child(r, "y", Repeat::Parallel);
        b.build()
    }

    fn trace(model: &ExecutionModel, x_ms: u64, y_ms: u64, gc_ms: u64) -> ExecutionTrace {
        let total = x_ms.max(y_ms);
        let mut tb = TraceBuilder::new(model);
        tb.add_phase(&[("job", 0)], 0, total * MILLIS, None, None).unwrap();
        let x = tb
            .add_phase(&[("job", 0), ("x", 0)], 0, x_ms * MILLIS, Some(0), Some(0))
            .unwrap();
        if gc_ms > 0 {
            tb.add_blocking(x, "gc", 0, gc_ms * MILLIS);
        }
        tb.add_phase(&[("job", 0), ("y", 0)], 0, y_ms * MILLIS, Some(0), Some(1))
            .unwrap();
        tb.build().unwrap()
    }

    #[test]
    fn detects_per_type_changes_and_speedup() {
        let m = model();
        let a = trace(&m, 100, 40, 20);
        let b = trace(&m, 60, 40, 0); // x got faster and lost its GC
        let cmp = compare_traces(&m, &a, &b);
        assert!((cmp.speedup() - 100.0 / 60.0).abs() < 1e-9);
        // Largest change first: x shrank by 40 ms, y unchanged.
        let x_ty = m.find_by_name("x").unwrap();
        assert_eq!(cmp.deltas[0].phase_type, x_ty);
        assert!((cmp.deltas[0].relative_change() + 0.4).abs() < 1e-9);
        assert_eq!(cmp.deltas[0].blocked_a, 20 * MILLIS);
        assert_eq!(cmp.deltas[0].blocked_b, 0);
        let y = &cmp.deltas[1];
        assert_eq!(y.relative_change(), 0.0);
    }

    #[test]
    fn table_renders_all_types() {
        let m = model();
        let a = trace(&m, 100, 40, 0);
        let b = trace(&m, 90, 45, 0);
        let out = compare_traces(&m, &a, &b).table(&m).render();
        assert!(out.contains("job.x"));
        assert!(out.contains("job.y"));
        assert!(out.contains("-10.0%"));
    }

    #[test]
    fn asymmetric_instance_counts_supported() {
        // Run B has an extra y instance (e.g. one more retry).
        let m = model();
        let a = trace(&m, 50, 50, 0);
        let mut tb = TraceBuilder::new(&m);
        tb.add_phase(&[("job", 0)], 0, 50 * MILLIS, None, None).unwrap();
        tb.add_phase(&[("job", 0), ("y", 0)], 0, 50 * MILLIS, Some(0), Some(0))
            .unwrap();
        tb.add_phase(&[("job", 0), ("y", 1)], 0, 30 * MILLIS, Some(0), Some(1))
            .unwrap();
        let b = tb.build().unwrap();
        let cmp = compare_traces(&m, &a, &b);
        let y_ty = m.find_by_name("y").unwrap();
        let y = cmp.deltas.iter().find(|d| d.phase_type == y_ty).unwrap();
        assert_eq!(y.count_a, 1);
        assert_eq!(y.count_b, 2);
        let x_ty = m.find_by_name("x").unwrap();
        let x = cmp.deltas.iter().find(|d| d.phase_type == x_ty).unwrap();
        assert_eq!(x.count_b, 0);
    }
}
