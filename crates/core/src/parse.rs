//! Parsing raw execution logs into traces (§III-C, "data collection").
//!
//! Grade10's input format is a stream of timestamped [`RawEvent`]s — phase
//! start/end and blocking start/end records tagged with machine and thread.
//! Engine adapters (in `grade10-engines`) translate framework logs into this
//! stream; the stream can also be serialized as JSON lines for offline
//! analysis, decoupling the monitored run from the characterization run.

use std::collections::HashMap;
use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize};

use crate::error::Grade10Error;
use crate::model::execution::ExecutionModel;
use crate::trace::execution::{ExecutionTrace, TraceBuilder};
use crate::trace::timeslice::Nanos;

/// A phase path as it appears in logs: `(type name, instance key)` segments
/// from the root.
pub type RawPath = Vec<(String, u32)>;

/// Log event kinds.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RawEventKind {
    /// A phase began.
    PhaseStart {
        /// Full instance path of the phase.
        path: RawPath,
    },
    /// A phase ended.
    PhaseEnd {
        /// Full instance path of the phase.
        path: RawPath,
    },
    /// The thread blocked on a blocking resource.
    BlockStart {
        /// Blocking resource name.
        resource: String,
    },
    /// The thread resumed.
    BlockEnd {
        /// Blocking resource name.
        resource: String,
    },
}

/// One timestamped log record.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RawEvent {
    /// Timestamp, nanoseconds since execution start.
    pub time: Nanos,
    /// Machine the event occurred on.
    pub machine: u16,
    /// Machine-local thread index.
    pub thread: u16,
    /// What happened.
    pub kind: RawEventKind,
}

/// Builds an [`ExecutionTrace`] from a raw event stream.
///
/// Blocking events are associated with the innermost phase open on the same
/// (machine, thread) when the block began — the phase whose execution the
/// resource actually halted.
pub fn build_execution_trace(
    model: &ExecutionModel,
    events: &[RawEvent],
) -> Result<ExecutionTrace, Grade10Error> {
    let mut events: Vec<&RawEvent> = events.iter().collect();
    events.sort_by_key(|e| e.time);

    struct OpenPhase {
        start: Nanos,
        machine: u16,
        thread: u16,
    }
    // Completed phases: path -> (start, end, machine, thread).
    let mut open: HashMap<RawPath, OpenPhase> = HashMap::new();
    let mut completed: Vec<(RawPath, Nanos, Nanos, u16, u16)> = Vec::new();
    // Innermost-phase stacks per (machine, thread).
    let mut stacks: HashMap<(u16, u16), Vec<RawPath>> = HashMap::new();
    // Open blocks per (machine, thread, resource): (start, blocked path).
    let mut open_blocks: HashMap<(u16, u16, String), (Nanos, Option<RawPath>)> = HashMap::new();
    // Completed blocking events: (path, resource, start, end).
    let mut blocks: Vec<(RawPath, String, Nanos, Nanos)> = Vec::new();

    for ev in events {
        match &ev.kind {
            RawEventKind::PhaseStart { path } => {
                if open.contains_key(path) {
                    return Err(Grade10Error::MalformedLog(format!(
                        "phase {path:?} started twice"
                    )));
                }
                open.insert(
                    path.clone(),
                    OpenPhase {
                        start: ev.time,
                        machine: ev.machine,
                        thread: ev.thread,
                    },
                );
                stacks
                    .entry((ev.machine, ev.thread))
                    .or_default()
                    .push(path.clone());
            }
            RawEventKind::PhaseEnd { path } => {
                let op = open.remove(path).ok_or_else(|| {
                    Grade10Error::MalformedLog(format!("phase {path:?} ended without starting"))
                })?;
                completed.push((path.clone(), op.start, ev.time, op.machine, op.thread));
                if let Some(stack) = stacks.get_mut(&(op.machine, op.thread)) {
                    if let Some(pos) = stack.iter().rposition(|p| p == path) {
                        stack.remove(pos);
                    }
                }
            }
            RawEventKind::BlockStart { resource } => {
                let blocked = stacks
                    .get(&(ev.machine, ev.thread))
                    .and_then(|s| s.last())
                    .cloned();
                open_blocks.insert(
                    (ev.machine, ev.thread, resource.clone()),
                    (ev.time, blocked),
                );
            }
            RawEventKind::BlockEnd { resource } => {
                let key = (ev.machine, ev.thread, resource.clone());
                let (start, blocked) = open_blocks.remove(&key).ok_or_else(|| {
                    Grade10Error::MalformedLog(format!(
                        "block on '{resource}' ended without starting"
                    ))
                })?;
                if let Some(path) = blocked {
                    blocks.push((path, resource.clone(), start, ev.time));
                }
                // Blocks outside any phase are dropped: there is no phase
                // execution they could have delayed.
            }
        }
    }
    if let Some((path, _)) = open.iter().next() {
        return Err(Grade10Error::MalformedLog(format!("phase {path:?} never ended")));
    }
    if let Some(((_, _, res), _)) = open_blocks.iter().next() {
        return Err(Grade10Error::MalformedLog(format!("block on '{res}' never ended")));
    }

    // Add parents before children: shorter paths first, then by start time
    // for deterministic instance ids.
    completed.sort_by(|a, b| (a.0.len(), a.1, &a.0).cmp(&(b.0.len(), b.1, &b.0)));
    let mut tb = TraceBuilder::new(model);
    let mut path_refs: Vec<(&str, u32)> = Vec::new();
    for (path, start, end, machine, thread) in &completed {
        path_refs.clear();
        path_refs.extend(path.iter().map(|(n, k)| (n.as_str(), *k)));
        tb.add_phase(&path_refs, *start, *end, Some(*machine), Some(*thread))?;
    }
    for (path, resource, start, end) in &blocks {
        path_refs.clear();
        path_refs.extend(path.iter().map(|(n, k)| (n.as_str(), *k)));
        let id = tb.instance_by_path(&path_refs).ok_or_else(|| {
            Grade10Error::MalformedLog(format!("blocked phase {path:?} not found"))
        })?;
        tb.add_blocking(id, resource.clone(), *start, *end);
    }
    tb.build()
}

/// Writes events as JSON lines.
pub fn write_events_json<W: Write>(events: &[RawEvent], mut w: W) -> std::io::Result<()> {
    for ev in events {
        serde_json::to_writer(&mut w, ev)?;
        writeln!(w)?;
    }
    Ok(())
}

/// Reads events from JSON lines.
pub fn read_events_json<R: BufRead>(r: R) -> std::io::Result<Vec<RawEvent>> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(serde_json::from_str(&line).map_err(std::io::Error::other)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::trace::timeslice::MILLIS;

    fn model() -> ExecutionModel {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let step = b.child(r, "step", Repeat::Sequential);
        let _ = b.child(step, "task", Repeat::Parallel);
        b.build()
    }

    fn path(segs: &[(&str, u32)]) -> RawPath {
        segs.iter().map(|(n, k)| (n.to_string(), *k)).collect()
    }

    fn ev(time: Nanos, machine: u16, thread: u16, kind: RawEventKind) -> RawEvent {
        RawEvent {
            time,
            machine,
            thread,
            kind,
        }
    }

    #[test]
    fn phases_and_blocks_resolve() {
        let m = model();
        let events = vec![
            ev(0, 0, 0, RawEventKind::PhaseStart { path: path(&[("job", 0)]) }),
            ev(
                0,
                0,
                0,
                RawEventKind::PhaseStart {
                    path: path(&[("job", 0), ("step", 0)]),
                },
            ),
            ev(
                0,
                0,
                1,
                RawEventKind::PhaseStart {
                    path: path(&[("job", 0), ("step", 0), ("task", 1)]),
                },
            ),
            ev(
                10 * MILLIS,
                0,
                1,
                RawEventKind::BlockStart {
                    resource: "gc".into(),
                },
            ),
            ev(
                20 * MILLIS,
                0,
                1,
                RawEventKind::BlockEnd {
                    resource: "gc".into(),
                },
            ),
            ev(
                50 * MILLIS,
                0,
                1,
                RawEventKind::PhaseEnd {
                    path: path(&[("job", 0), ("step", 0), ("task", 1)]),
                },
            ),
            ev(
                60 * MILLIS,
                0,
                0,
                RawEventKind::PhaseEnd {
                    path: path(&[("job", 0), ("step", 0)]),
                },
            ),
            ev(
                60 * MILLIS,
                0,
                0,
                RawEventKind::PhaseEnd { path: path(&[("job", 0)]) },
            ),
        ];
        let trace = build_execution_trace(&m, &events).unwrap();
        assert_eq!(trace.instances().len(), 3);
        assert_eq!(trace.blocking().len(), 1);
        let b = &trace.blocking()[0];
        assert_eq!(b.resource, "gc");
        assert_eq!(b.start, 10 * MILLIS);
        // The block attaches to the task (innermost open phase on thread 1).
        let blocked = trace.instance(b.instance);
        assert_eq!(m.name(blocked.type_id), "task");
        assert_eq!(blocked.key, 1);
    }

    #[test]
    fn unbalanced_phase_rejected() {
        let m = model();
        let events = vec![ev(
            0,
            0,
            0,
            RawEventKind::PhaseStart { path: path(&[("job", 0)]) },
        )];
        assert!(build_execution_trace(&m, &events).is_err());
    }

    #[test]
    fn end_without_start_rejected() {
        let m = model();
        let events = vec![ev(
            0,
            0,
            0,
            RawEventKind::PhaseEnd { path: path(&[("job", 0)]) },
        )];
        assert!(build_execution_trace(&m, &events).is_err());
    }

    #[test]
    fn block_outside_phase_dropped() {
        let m = model();
        let events = vec![
            ev(
                0,
                0,
                0,
                RawEventKind::BlockStart {
                    resource: "gc".into(),
                },
            ),
            ev(
                5,
                0,
                0,
                RawEventKind::BlockEnd {
                    resource: "gc".into(),
                },
            ),
            ev(10, 0, 0, RawEventKind::PhaseStart { path: path(&[("job", 0)]) }),
            ev(20, 0, 0, RawEventKind::PhaseEnd { path: path(&[("job", 0)]) }),
        ];
        let trace = build_execution_trace(&m, &events).unwrap();
        assert_eq!(trace.blocking().len(), 0);
        assert_eq!(trace.instances().len(), 1);
    }

    #[test]
    fn json_round_trip() {
        let events = vec![
            ev(5, 1, 2, RawEventKind::PhaseStart { path: path(&[("job", 0)]) }),
            ev(
                9,
                1,
                2,
                RawEventKind::BlockStart {
                    resource: "msgq".into(),
                },
            ),
        ];
        let mut buf = Vec::new();
        write_events_json(&events, &mut buf).unwrap();
        let back = read_events_json(buf.as_slice()).unwrap();
        assert_eq!(events, back);
    }

    #[test]
    fn out_of_order_events_are_sorted() {
        let m = model();
        let events = vec![
            ev(20, 0, 0, RawEventKind::PhaseEnd { path: path(&[("job", 0)]) }),
            ev(0, 0, 0, RawEventKind::PhaseStart { path: path(&[("job", 0)]) }),
        ];
        let trace = build_execution_trace(&m, &events).unwrap();
        assert_eq!(trace.instances()[0].start, 0);
        assert_eq!(trace.instances()[0].end, 20);
    }
}
