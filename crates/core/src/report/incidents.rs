//! Incident and coverage tables for supervised runs: the "what failed,
//! what degraded, what is missing" view a partial characterization ships
//! with.

use crate::report::table::Table;
use crate::supervise::{Coverage, Incident, IncidentOutcome};

/// Renders the incident log as an aligned table, one row per incident, in
/// pipeline order. Empty input yields a headers-only table (callers
/// usually print "no incidents" instead).
pub fn incident_table(incidents: &[Incident]) -> Table {
    let mut table = Table::new(&["stage", "unit", "kind", "attempts", "outcome", "detail"]);
    for i in incidents {
        let outcome = match &i.outcome {
            IncidentOutcome::Recovered { degradation } => format!("recovered: {degradation}"),
            IncidentOutcome::Dropped => "dropped".to_string(),
        };
        table.row(&[
            i.stage.to_string(),
            i.unit.clone(),
            i.kind.name().to_string(),
            i.attempts.to_string(),
            outcome,
            i.detail.clone(),
        ]);
    }
    table
}

/// Renders the per-machine coverage map: one row per machine (cluster
/// resources first), with the status of its data in the characterization.
pub fn coverage_table(coverage: &Coverage) -> Table {
    let mut table = Table::new(&["unit", "coverage"]);
    for m in &coverage.machines {
        table.row(&[m.label(), m.status.name().to_string()]);
    }
    for s in &coverage.stages {
        table.row(&[format!("stage:{}", s.stage), s.status.name().to_string()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervise::{
        IncidentKind, MachineCoverage, StageCoverage, StageStatus, UnitStatus,
    };

    #[test]
    fn tables_render_incidents_and_coverage() {
        let incidents = vec![
            Incident {
                stage: "ingest",
                unit: "machine 1".to_string(),
                kind: IncidentKind::MissingData,
                detail: "no log events from this machine".to_string(),
                attempts: 1,
                outcome: IncidentOutcome::Recovered {
                    degradation: "monitoring-only coverage".to_string(),
                },
            },
            Incident {
                stage: "attribute",
                unit: "machine 2".to_string(),
                kind: IncidentKind::Panic,
                detail: "boom".to_string(),
                attempts: 3,
                outcome: IncidentOutcome::Dropped,
            },
        ];
        let rendered = incident_table(&incidents).render();
        assert!(rendered.contains("missing-data"));
        assert!(rendered.contains("recovered: monitoring-only coverage"));
        assert!(rendered.contains("dropped"));

        let coverage = Coverage {
            machines: vec![
                MachineCoverage {
                    machine: None,
                    status: UnitStatus::Full,
                },
                MachineCoverage {
                    machine: Some(2),
                    status: UnitStatus::Dropped,
                },
            ],
            stages: vec![StageCoverage {
                stage: "ingest",
                status: StageStatus::Degraded,
            }],
        };
        let rendered = coverage_table(&coverage).render();
        assert!(rendered.contains("cluster"));
        assert!(rendered.contains("machine 2"));
        assert!(rendered.contains("stage:ingest"));
        assert!(rendered.contains("degraded"));
    }
}
