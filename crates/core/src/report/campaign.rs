//! Cross-campaign report: the ranked view over a whole mix matrix.
//!
//! Rendered from stored outcomes only — no wall-clock timestamps, cache
//! statistics, or filesystem paths — so the report is a pure function of
//! (spec, outcomes, incidents) and a resumed campaign produces the same
//! bytes as an uninterrupted one. That byte-identity is load-bearing: the
//! chaos tests diff reports across kill/resume schedules and pool widths.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Serialize, Value};

use crate::campaign::MixOutcome;
use crate::report::incidents::incident_table;
use crate::report::table::{secs, Table};
use crate::supervise::Incident;

/// A fully rendered campaign report in both output formats.
#[derive(Debug)]
pub struct CampaignReport {
    /// Aligned-table text rendering.
    pub text: String,
    /// Pretty-printed JSON rendering (trailing newline included).
    pub json: String,
}

/// Outcomes ranked by makespan impact: slowest first, ties broken by mix
/// id so the order is total and stable.
fn ranked(outcomes: &[MixOutcome]) -> Vec<&MixOutcome> {
    let mut sorted: Vec<&MixOutcome> = outcomes.iter().collect();
    sorted.sort_by(|a, b| {
        b.makespan_ns
            .cmp(&a.makespan_ns)
            .then_with(|| a.mix.id().cmp(&b.mix.id()))
    });
    sorted
}

/// Issue classes that only part of the matrix exhibits, with the mixes
/// showing them. A class every mix shares says something about the
/// workload; a class only one configuration shows says something about
/// that configuration — those are the screening hits.
fn class_flags(outcomes: &[MixOutcome]) -> Vec<(String, Vec<String>)> {
    let mut by_class: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    for o in outcomes {
        for c in &o.classes {
            by_class.entry(c.as_str()).or_default().push(o.mix.id());
        }
    }
    by_class
        .into_iter()
        .filter(|(_, mixes)| !mixes.is_empty() && mixes.len() < outcomes.len())
        .map(|(class, mut mixes)| {
            mixes.sort();
            (class.to_string(), mixes)
        })
        .collect()
}

/// Renders the campaign report over the surviving outcomes and the
/// campaign-level incident log.
pub fn campaign_report(
    campaign: &str,
    outcomes: &[MixOutcome],
    incidents: &[Incident],
) -> CampaignReport {
    let sorted = ranked(outcomes);
    let best = sorted.iter().map(|o| o.makespan_ns).min().unwrap_or(0);
    let degraded = sorted.iter().filter(|o| o.degraded || o.incidents > 0).count();

    // --- Text ---
    let mut text = String::new();
    let _ = writeln!(text, "campaign {campaign}");
    let _ = writeln!(text, "{}", "=".repeat(9 + campaign.len()));
    let _ = writeln!(
        text,
        "mixes: {} characterized, {} failed, {} degraded",
        sorted.len(),
        incidents.len(),
        degraded
    );
    text.push('\n');
    let mut table = Table::new(&["mix", "makespan", "vs best", "mode", "attempts", "classes"]);
    for o in &sorted {
        let vs_best = if best == 0 {
            "-".to_string()
        } else {
            format!("x{:.2}", o.makespan_ns as f64 / best as f64)
        };
        let mut status = o.mode.clone();
        if o.degraded || o.incidents > 0 {
            status.push_str(" (partial)");
        }
        table.row(&[
            o.mix.id(),
            secs(o.makespan_ns),
            vs_best,
            status,
            o.attempts.to_string(),
            if o.classes.is_empty() {
                "-".to_string()
            } else {
                o.classes.join(",")
            },
        ]);
    }
    text.push_str(&table.render());
    text.push('\n');
    let flags = class_flags(outcomes);
    text.push_str("class flags (issue classes not shared by the whole matrix):\n");
    if flags.is_empty() {
        text.push_str("  none\n");
    } else {
        for (class, mixes) in &flags {
            let _ = writeln!(text, "  {class}: only in {}", mixes.join(", "));
        }
    }
    text.push('\n');
    if incidents.is_empty() {
        text.push_str("incidents: none\n");
    } else {
        text.push_str("incidents:\n");
        text.push_str(&incident_table(incidents).render());
    }

    // --- JSON ---
    let ranking: Vec<Value> = sorted.iter().map(|o| o.to_value()).collect();
    let flag_values: Vec<Value> = flags
        .iter()
        .map(|(class, mixes)| {
            Value::Object(vec![
                ("class".to_string(), Value::Str(class.clone())),
                (
                    "mixes".to_string(),
                    Value::Array(mixes.iter().map(|m| Value::Str(m.clone())).collect()),
                ),
            ])
        })
        .collect();
    let incident_values: Vec<Value> = incidents
        .iter()
        .map(|i| {
            Value::Object(vec![
                ("unit".to_string(), Value::Str(i.unit.clone())),
                ("kind".to_string(), Value::Str(i.kind.name().to_string())),
                ("attempts".to_string(), Value::UInt(u64::from(i.attempts))),
                ("detail".to_string(), Value::Str(i.detail.clone())),
            ])
        })
        .collect();
    let root = Value::Object(vec![
        ("campaign".to_string(), Value::Str(campaign.to_string())),
        ("format".to_string(), Value::UInt(1)),
        ("ranking".to_string(), Value::Array(ranking)),
        ("flags".to_string(), Value::Array(flag_values)),
        ("incidents".to_string(), Value::Array(incident_values)),
    ]);
    let mut json = serde_json::to_string_pretty(&root).unwrap_or_default();
    json.push('\n');

    CampaignReport { text, json }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::MixSpec;
    use crate::supervise::{IncidentKind, IncidentOutcome};

    fn outcome(alg: &str, makespan: u64, classes: &[&str]) -> MixOutcome {
        MixOutcome {
            mix: MixSpec {
                algorithm: alg.into(),
                dataset: "rmat:6".into(),
                engine: "giraph".into(),
                machines: 2,
                seed: 46,
                fault: "none".into(),
            },
            hash: 1,
            makespan_ns: makespan,
            classes: classes.iter().map(|s| s.to_string()).collect(),
            incidents: 0,
            degraded: false,
            attempts: 1,
            mode: "strict".into(),
        }
    }

    #[test]
    fn ranks_worst_first_and_flags_partial_classes() {
        let outcomes = vec![
            outcome("pr", 1_000_000_000, &["bottleneck:cpu"]),
            outcome("bfs", 3_000_000_000, &["bottleneck:cpu", "blocking:net"]),
        ];
        let r = campaign_report("t", &outcomes, &[]);
        let bfs = r.text.find("bfs-").expect("bfs row");
        let pr = r.text.find("pr-").expect("pr row");
        assert!(bfs < pr, "slowest mix ranks first:\n{}", r.text);
        assert!(r.text.contains("x3.00"), "relative makespan:\n{}", r.text);
        assert!(
            r.text.contains("blocking:net: only in bfs-"),
            "partial class flagged:\n{}",
            r.text
        );
        assert!(
            !r.text.contains("bottleneck:cpu: only in"),
            "shared class not flagged:\n{}",
            r.text
        );
        assert!(r.text.contains("incidents: none"));
        assert!(r.json.contains("\"campaign\": \"t\""));
    }

    #[test]
    fn incident_log_is_included() {
        let incidents = vec![Incident {
            stage: "campaign",
            unit: "bfs-rmat:6-giraph-m2-s46-none".into(),
            kind: IncidentKind::Panic,
            detail: "boom".into(),
            attempts: 3,
            outcome: IncidentOutcome::Dropped,
        }];
        let r = campaign_report("t", &[outcome("pr", 1, &[])], &incidents);
        assert!(r.text.contains("incidents:\n"));
        assert!(r.text.contains("boom"));
        assert!(r.json.contains("\"kind\": \"panic\""));
    }

    #[test]
    fn report_is_deterministic() {
        let outcomes = vec![
            outcome("pr", 5, &["a"]),
            outcome("bfs", 5, &["b"]),
        ];
        let a = campaign_report("t", &outcomes, &[]);
        let rev: Vec<MixOutcome> = outcomes.iter().rev().cloned().collect();
        let b = campaign_report("t", &rev, &[]);
        assert_eq!(a.text, b.text, "input order does not matter");
        assert_eq!(a.json, b.json);
    }
}
