//! ASCII rendering of per-slice time series — the textual counterpart of
//! the paper's Fig. 3 plots (attributed usage, demand, bottleneck presence
//! over time).

/// Renders one or more aligned series as rows of a text chart.
///
/// Each series is downscaled to `width` buckets (bucket = mean of the slices
/// it covers) and drawn with a 0–8 level block glyph, normalized to
/// `max_value`.
pub fn render_series(
    labels: &[&str],
    series: &[&[f64]],
    max_value: f64,
    width: usize,
) -> String {
    assert_eq!(labels.len(), series.len());
    assert!(width > 0 && max_value > 0.0);
    const GLYPHS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, s) in labels.iter().zip(series) {
        out.push_str(&format!("{label:<label_w$} |"));
        for b in 0..width {
            let lo = b * s.len() / width;
            let hi = (((b + 1) * s.len()) / width).max(lo + 1).min(s.len());
            let mean = if lo >= s.len() {
                0.0
            } else {
                s[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            };
            let level = ((mean / max_value) * 8.0).round().clamp(0.0, 8.0) as usize;
            out.push(GLYPHS[level]);
        }
        out.push_str("|\n");
    }
    out
}

/// Renders a boolean presence row (e.g. "bottlenecked?") with `█`/space.
pub fn render_presence(label: &str, flags: &[bool], width: usize) -> String {
    let series: Vec<f64> = flags.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    render_series(&[label], &[&series], 1.0, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows_of_requested_width() {
        let s1 = vec![0.0, 0.5, 1.0, 1.0];
        let s2 = vec![1.0, 1.0, 0.0, 0.0];
        let out = render_series(&["usage", "demand"], &[&s1, &s2], 1.0, 4);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        // label + " |" + 4 glyphs + "|"
        assert_eq!(lines[0].chars().count(), 6 + 2 + 4 + 1);
        assert!(lines[0].starts_with("usage"));
    }

    #[test]
    fn empty_and_full_levels() {
        let s = vec![0.0, 1.0];
        let out = render_series(&["x"], &[&s], 1.0, 2);
        assert!(out.contains(' '), "zero renders blank");
        assert!(out.contains('█'), "max renders full block");
    }

    #[test]
    fn presence_row() {
        let out = render_presence("bn", &[true, false, true, true], 4);
        let body: String = out
            .chars()
            .skip_while(|&c| c != '|')
            .skip(1)
            .take(4)
            .collect();
        assert_eq!(body, "█ ██");
    }

    #[test]
    fn downsampling_averages() {
        let s = vec![1.0, 0.0, 1.0, 0.0];
        let out = render_series(&["x"], &[&s], 1.0, 2);
        // Each bucket averages to 0.5 → glyph level 4.
        assert_eq!(out.matches('▄').count(), 2, "{out}");
    }
}
