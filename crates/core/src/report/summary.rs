//! Profile summary tables: total attributed consumption per phase type and
//! resource — the "where did the resources go" view analysts start from.

use std::collections::BTreeMap;

use crate::attribution::PerformanceProfile;
use crate::model::execution::{ExecutionModel, PhaseTypeId};
use crate::report::table::{eng, Table};
use crate::trace::execution::ExecutionTrace;
use crate::trace::repair::IngestReport;

/// Total attributed consumption (unit-seconds) per (leaf phase type,
/// resource kind), summed over instances and machines.
pub fn usage_by_type(
    profile: &PerformanceProfile,
    trace: &ExecutionTrace,
) -> BTreeMap<(PhaseTypeId, String), f64> {
    let mut out = BTreeMap::new();
    let slice_secs = profile.grid.slice_secs();
    for u in &profile.usages {
        let ty = trace.instance(u.instance).type_id;
        let kind = profile.resources[u.resource.0 as usize].kind.clone();
        *out.entry((ty, kind)).or_insert(0.0) +=
            u.usage.iter().sum::<f64>() * slice_secs;
    }
    out
}

/// Renders the usage-by-type matrix as an aligned table: one row per leaf
/// phase type, one column per resource kind, cells in unit-seconds.
pub fn usage_table(
    profile: &PerformanceProfile,
    model: &ExecutionModel,
    trace: &ExecutionTrace,
) -> Table {
    let usage = usage_by_type(profile, trace);
    let mut kinds: Vec<String> = profile
        .resources
        .iter()
        .map(|r| r.kind.clone())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    kinds.sort();
    let mut types: Vec<PhaseTypeId> = usage.keys().map(|(t, _)| *t).collect();
    types.sort();
    types.dedup();

    let mut headers = vec!["phase type".to_string()];
    headers.extend(kinds.iter().map(|k| format!("{k} (unit-s)")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    for ty in types {
        let mut row = vec![model.type_path(ty)];
        for kind in &kinds {
            let v = usage.get(&(ty, kind.clone())).copied().unwrap_or(0.0);
            row.push(eng(v));
        }
        table.row(&row);
    }
    table
}

/// Per-resource-instance infrastructure view: total consumption, mean and
/// peak utilization — the "is the cluster even busy" table.
pub fn machine_table(profile: &PerformanceProfile) -> Table {
    let mut table = Table::new(&[
        "resource",
        "total (unit-s)",
        "mean util",
        "peak util",
    ]);
    let slice_secs = profile.grid.slice_secs();
    for (r, res) in profile.resources.iter().enumerate() {
        let row = &profile.consumption[r];
        let total: f64 = row.iter().sum::<f64>() * slice_secs;
        let mean = row.iter().sum::<f64>() / row.len().max(1) as f64 / res.capacity;
        let peak = row.iter().cloned().fold(0.0f64, f64::max) / res.capacity;
        table.row(&[
            res.label(),
            eng(total),
            format!("{:.1}%", 100.0 * mean),
            format!("{:.1}%", 100.0 * peak),
        ]);
    }
    table
}

/// Data-quality view of a degraded ingestion: one row per repair kind that
/// actually fired, plus the overall quality score and, when attribution
/// estimated unmonitored timeslices, the estimated share of the grid.
/// Empty (headers only) for a clean report — callers typically guard with
/// [`IngestReport::is_clean`].
pub fn ingest_table(report: &IngestReport) -> Table {
    let mut table = Table::new(&["input damage repaired", "count"]);
    for line in report.summary_lines() {
        // summary_lines renders "{count} {description}"; split back apart
        // so the table aligns counts in their own column.
        let (count, what) = line.split_once(' ').unwrap_or(("?", line.as_str()));
        table.row(&[what.to_string(), count.to_string()]);
    }
    let score = report.quality_score();
    table.row(&[
        "quality score (1.00 = clean)".to_string(),
        // Light damage rounds to 1.00; never display a repaired input as
        // indistinguishable from a clean one.
        if score > 0.995 && !report.is_clean() {
            "<1.00".to_string()
        } else {
            format!("{score:.2}")
        },
    ]);
    if report.slices_estimated > 0 && report.slices_total > 0 {
        table.row(&[
            "share of timeslices estimated".to_string(),
            format!(
                "{:.1}%",
                100.0 * report.slices_estimated as f64 / report.slices_total as f64
            ),
        ]);
    }
    table
}

/// Blocked-time analysis summary (the Ousterhout-style view the paper
/// generalizes): per blocking resource, total blocked leaf time and its
/// share of all leaf execution time.
pub fn blocked_time_table(trace: &ExecutionTrace) -> Table {
    let total_leaf: f64 = trace.leaves().map(|i| i.duration() as f64 / 1e9).sum();
    let mut per_resource: BTreeMap<String, f64> = BTreeMap::new();
    for ev in trace.blocking() {
        *per_resource.entry(ev.resource.clone()).or_insert(0.0) +=
            (ev.end - ev.start) as f64 / 1e9;
    }
    let mut table = Table::new(&["blocking resource", "blocked (s)", "share of leaf time"]);
    for (res, secs) in per_resource {
        table.row(&[
            res,
            format!("{secs:.2}"),
            if total_leaf > 0.0 {
                format!("{:.1}%", 100.0 * secs / total_leaf)
            } else {
                "-".to_string()
            },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::{build_profile, ProfileConfig};
    use crate::model::execution::{ExecutionModelBuilder, Repeat};
    use crate::model::rules::{AttributionRule, RuleSet};
    use crate::trace::execution::TraceBuilder;
    use crate::trace::resource::{ResourceInstance, ResourceTrace};
    use crate::trace::timeslice::MILLIS;

    fn setup() -> (ExecutionModel, ExecutionTrace, ResourceTrace, RuleSet) {
        let mut b = ExecutionModelBuilder::new("job");
        let r = b.root();
        let a = b.child(r, "a", Repeat::Parallel);
        let model = b.build();
        let trace = {
            let mut tb = TraceBuilder::new(&model);
            tb.add_phase(&[("job", 0)], 0, 100 * MILLIS, None, None).unwrap();
            tb.add_phase(&[("job", 0), ("a", 0)], 0, 100 * MILLIS, Some(0), Some(0))
                .unwrap();
            tb.add_phase(&[("job", 0), ("a", 1)], 0, 100 * MILLIS, Some(0), Some(1))
                .unwrap();
            tb.build().unwrap()
        };
        let mut rt = ResourceTrace::new();
        let cpu = rt.add_resource(ResourceInstance {
            kind: "cpu".into(),
            machine: Some(0),
            capacity: 4.0,
        });
        rt.add_series(cpu, 0, 50 * MILLIS, &[2.0, 2.0]);
        let rules = RuleSet::new().rule(a, "cpu", AttributionRule::Variable(1.0));
        (model, trace, rt, rules)
    }

    #[test]
    fn blocked_time_table_shares() {
        let (model, _, _, _) = setup();
        let mut tb = TraceBuilder::new(&model);
        tb.add_phase(&[("job", 0)], 0, 100 * MILLIS, None, None).unwrap();
        let a = tb
            .add_phase(&[("job", 0), ("a", 0)], 0, 100 * MILLIS, Some(0), Some(0))
            .unwrap();
        tb.add_blocking(a, "gc", 0, 25 * MILLIS);
        tb.add_blocking(a, "msgq", 50 * MILLIS, 75 * MILLIS);
        let trace = tb.build().unwrap();
        let t = blocked_time_table(&trace);
        let out = t.render();
        assert!(out.contains("gc"));
        assert!(out.contains("msgq"));
        // Each block is 25 of 100 ms of leaf time.
        assert_eq!(out.matches("25.0%").count(), 2, "{out}");
    }

    #[test]
    fn usage_by_type_sums_instances() {
        let (model, trace, rt, rules) = setup();
        let profile = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
        let usage = usage_by_type(&profile, &trace);
        let a = model.find_by_name("a").unwrap();
        let total = usage.get(&(a, "cpu".to_string())).copied().unwrap();
        // 2 cores × 0.1 s, split over two instances, summed back: 0.2.
        assert!((total - 0.2).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn machine_table_reports_utilization() {
        let (model, trace, rt, rules) = setup();
        let profile = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
        let t = machine_table(&profile);
        let out = t.render();
        assert!(out.contains("cpu@0"));
        // 2 of 4 cores for the whole run: 50% mean and peak.
        assert!(out.contains("50.0%"), "{out}");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ingest_table_rows_per_repair_kind() {
        let report = IngestReport {
            events_total: 100,
            duplicates_dropped: 3,
            missing_ends_synthesized: 1,
            slices_estimated: 10,
            slices_total: 40,
            ..Default::default()
        };
        let t = ingest_table(&report);
        let out = t.render();
        assert!(out.contains("duplicate records dropped"), "{out}");
        assert!(out.contains("missing end events synthesized"), "{out}");
        assert!(out.contains("quality score"), "{out}");
        assert!(out.contains("25.0%"), "{out}");
        // 3 repair rows + quality + estimated share.
        assert_eq!(t.len(), 5, "{out}");
    }

    #[test]
    fn table_has_row_per_type_and_column_per_kind() {
        let (model, trace, rt, rules) = setup();
        let profile = build_profile(&model, &rules, &trace, &rt, &ProfileConfig::default());
        let t = usage_table(&profile, &model, &trace);
        let rendered = t.render();
        assert!(rendered.contains("job.a"));
        assert!(rendered.contains("cpu (unit-s)"));
        assert!(rendered.contains("0.20"));
        assert!(!rendered.contains("NaN"));
        assert_eq!(t.len(), 1);
    }
}
